#!/usr/bin/env python
"""Register Grouping vs AVA on a register-hungry kernel (§II vs §III).

RISC-V Register Grouping (LMUL) buys longer vectors by *dividing the
architectural registers*: at LMUL=8 the compiler has 4 registers and spills
to memory with MVL-wide load/stores.  AVA keeps all 32 architectural
registers and moves data between its two-level VRF in hardware instead.

This example runs the Blackscholes kernel (23 live registers) across the
equivalent RG and AVA configurations — one engine cell batch — and
compares the resulting memory traffic and performance, reproducing the
paper's §V argument that "AVA performs the scheduling based on the
available physical registers, which are always double compared to LMUL".

Run:  python examples/rg_vs_ava_spills.py [--jobs N]
"""

import argparse

from repro import ava_config, native_config, rg_config
from repro.experiments.engine import SweepSpec, make_executor
from repro.experiments.rendering import render_table
from repro.workloads import get_workload

CONFIGS = (native_config(1), rg_config(2), ava_config(2),
           rg_config(4), ava_config(4), rg_config(8), ava_config(8))


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()
    executor = make_executor(jobs=args.jobs)

    workload = get_workload("blackscholes")
    print(f"workload: {workload.describe()}")

    results = executor.run_spec(
        SweepSpec(workloads=("blackscholes",), configs=CONFIGS))
    baseline = results[0].stats.cycles

    rows = []
    for result in results:
        stats = result.stats
        config = result.cell.config
        rows.append([
            config.name,
            f"{config.n_logical} arch / {config.n_physical} phys",
            stats.spill_loads + stats.spill_stores,
            stats.swap_loads + stats.swap_stores,
            f"{stats.memory_fraction:.0%}",
            f"{baseline / stats.cycles:.2f}x",
        ])

    print(render_table(
        ["config", "registers", "compiler spills", "hardware swaps",
         "memory %", "speedup"], rows))
    print("\nAVA schedules against twice the registers RG exposes, so its "
          "hardware swaps\nstay at or below RG's compiler spill code — and "
          "the 32 logical registers are\nnever sacrificed.")


if __name__ == "__main__":
    main()
