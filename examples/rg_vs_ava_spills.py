#!/usr/bin/env python
"""Register Grouping vs AVA on a register-hungry kernel (§II vs §III).

RISC-V Register Grouping (LMUL) buys longer vectors by *dividing the
architectural registers*: at LMUL=8 the compiler has 4 registers and spills
to memory with MVL-wide load/stores.  AVA keeps all 32 architectural
registers and moves data between its two-level VRF in hardware instead.

This example compiles the Blackscholes kernel (23 live registers) for the
equivalent RG and AVA configurations and compares the resulting memory
traffic and performance — reproducing the paper's §V argument that "AVA
performs the scheduling based on the available physical registers, which
are always double compared to LMUL".

Run:  python examples/rg_vs_ava_spills.py
"""

from repro import ava_config, rg_config, native_config, Simulator
from repro.experiments.rendering import render_table
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("blackscholes")
    print(f"workload: {workload.describe()}")
    baseline = None

    rows = []
    for config in (native_config(1), rg_config(2), ava_config(2),
                   rg_config(4), ava_config(4), rg_config(8), ava_config(8)):
        compiled = workload.compile(config)
        sim = Simulator(config, compiled.program)
        sim.warm_caches()
        stats = sim.run().stats
        if baseline is None:
            baseline = stats.cycles
        rows.append([
            config.name,
            f"{compiled.config.n_logical} arch / "
            f"{compiled.config.n_physical} phys",
            stats.spill_loads + stats.spill_stores,
            stats.swap_loads + stats.swap_stores,
            f"{stats.memory_fraction:.0%}",
            f"{baseline / stats.cycles:.2f}x",
        ])

    print(render_table(
        ["config", "registers", "compiler spills", "hardware swaps",
         "memory %", "speedup"], rows))
    print("\nAVA schedules against twice the registers RG exposes, so its "
          "hardware swaps\nstay at or below RG's compiler spill code — and "
          "the 32 logical registers are\nnever sacrificed.")


if __name__ == "__main__":
    main()
