#!/usr/bin/env python
"""Quickstart: build a vector kernel, run it on three machines, check it.

The 60-second tour of the public API:

1. write an axpy kernel with :class:`repro.KernelBuilder`,
2. strip-mine + register-allocate it for a machine configuration,
3. simulate it functionally on the baseline, on a native long-vector
   machine, and on AVA reconfigured for long vectors,
4. verify the results against numpy and compare the cycle counts.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    KernelBuilder,
    Program,
    Simulator,
    StripSchedule,
    allocate,
    ava_config,
    native_config,
    unroll_kernel,
)

N = 4096
ALPHA = 3.0


def build_axpy_program(config):
    """Compile y = alpha*x + y for one machine configuration."""
    kb = KernelBuilder()
    x = kb.load("x")
    y = kb.load("y")
    kb.store(kb.fmadd_vf(ALPHA, x, y), "y")
    body = kb.build()

    schedule = StripSchedule.for_elements(N, config.mvl)
    trace = unroll_kernel(body, schedule, config.mvl)
    allocation = allocate(trace, config.n_logical, config.mvl)
    return Program(
        name=f"axpy@{config.name}",
        insts=allocation.insts,
        buffers={"x": N, "y": N},
        spill_slots=allocation.spill_slots,
        mvl=config.mvl,
    )


def main() -> None:
    rng = np.random.default_rng(7)
    x = rng.standard_normal(N)
    y = rng.standard_normal(N)
    expected = ALPHA * x + y

    baseline_cycles = None
    for config in (native_config(1), native_config(8), ava_config(8)):
        program = build_axpy_program(config)
        sim = Simulator(config, program, functional=True)
        sim.set_data("x", x)
        sim.set_data("y", y)
        sim.warm_caches()
        result = sim.run()

        correct = np.allclose(result.buffer("y"), expected)
        if baseline_cycles is None:
            baseline_cycles = result.cycles
        speedup = baseline_cycles / result.cycles
        print(f"{config.describe()}")
        print(f"  -> {result.cycles} cycles, speedup {speedup:.2f}x, "
              f"results {'match numpy' if correct else 'WRONG'}")
        assert correct

    print("\nAVA reconfigured to MVL=128 matches the native long-vector "
          "machine\nwhile physically owning only the 8 KB register file "
          "(the paper's headline).")


if __name__ == "__main__":
    main()
