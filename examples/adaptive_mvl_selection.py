#!/usr/bin/env python
"""Adaptive MVL selection: let AVA pick its own best configuration.

The paper's LavaMD2 discussion (§V, §VI) highlights that AVA can select the
*optimal* MVL per application: LavaMD2's fixed 48-element vectors make
AVA X3 the sweet spot — larger MVLs waste register width and burn energy on
MVL-wide swap code, smaller ones need more instructions.

This example declares the whole (application × AVA reconfiguration) grid
as one engine sweep, runs it (in parallel with ``--jobs``, cached with
``--cache-dir``), reports the chosen configuration, and shows the
performance and energy consequences — the "adaptable" in Adaptable Vector
Architecture.

Run:  python examples/adaptive_mvl_selection.py [--jobs N]
"""

import argparse

from repro.core.config import SCALE_FACTORS, ava_config
from repro.experiments.engine import SweepSpec, make_executor
from repro.experiments.rendering import render_table
from repro.workloads import WORKLOAD_NAMES, get_workload


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", default=None,
                        help="persist results under this directory")
    args = parser.parse_args()
    executor = make_executor(jobs=args.jobs,
                             cache=args.cache_dir is not None,
                             cache_dir=args.cache_dir or ".repro-cache")

    spec = SweepSpec(workloads=WORKLOAD_NAMES,
                     configs=[ava_config(s) for s in SCALE_FACTORS])
    results = executor.run_spec(spec)

    rows = []
    for name, sweep in spec.chunk_by_workload(results):
        base_cycles = sweep[0].stats.cycles
        base_energy = sweep[0].energy.total
        best = min(sweep, key=lambda r: r.stats.cycles)
        workload = get_workload(name)
        rows.append([
            name,
            f"AVL={workload.effective_vl(best.cell.config.mvl)}",
            best.cell.config.name,
            f"{base_cycles / best.stats.cycles:.2f}x",
            best.stats.swap_insts,
            f"{base_energy / best.energy.total:.2f}x"
            if best.energy.total else "-",
        ])

    print(render_table(
        ["application", "vector length", "best AVA config",
         "speedup vs AVA X1", "swaps at best", "energy saving"],
        rows))
    print("\nLavaMD2 settles on AVA X3 (MVL=48 matches its box size), the "
          "long-vector\napplications push to X8, and nothing has to be "
          "re-synthesised to do it —\nthe same 8 KB register file serves "
          "every point.")


if __name__ == "__main__":
    main()
