#!/usr/bin/env python
"""Adaptive MVL selection: let AVA pick its own best configuration.

The paper's LavaMD2 discussion (§V, §VI) highlights that AVA can select the
*optimal* MVL per application: LavaMD2's fixed 48-element vectors make
AVA X3 the sweet spot — larger MVLs waste register width and burn energy on
MVL-wide swap code, smaller ones need more instructions.

This example sweeps every AVA reconfiguration for each application,
reports the chosen configuration, and shows the performance and energy
consequences — the "adaptable" in Adaptable Vector Architecture.

Run:  python examples/adaptive_mvl_selection.py
"""

from repro import ava_config, Simulator
from repro.core.config import SCALE_FACTORS
from repro.experiments.rendering import render_table
from repro.power.mcpat import McPatModel
from repro.workloads import all_workloads


def main() -> None:
    mcpat = McPatModel()
    rows = []
    for workload in all_workloads():
        best = None
        base_cycles = None
        sweep = []
        for scale in SCALE_FACTORS:
            config = ava_config(scale)
            compiled = workload.compile(config)
            sim = Simulator(config, compiled.program)
            sim.warm_caches()
            stats = sim.run().stats
            energy = mcpat.energy(config, stats).total
            if base_cycles is None:
                base_cycles = stats.cycles
            sweep.append((config, stats, energy))
            if best is None or stats.cycles < best[1].cycles:
                best = (config, stats, energy)

        assert best is not None and base_cycles is not None
        config, stats, energy = best
        rows.append([
            workload.name,
            f"AVL={workload.effective_vl(config.mvl)}",
            config.name,
            f"{base_cycles / stats.cycles:.2f}x",
            stats.swap_insts,
            f"{sweep[0][2] / energy:.2f}x" if energy else "-",
        ])

    print(render_table(
        ["application", "vector length", "best AVA config",
         "speedup vs AVA X1", "swaps at best", "energy saving"],
        rows))
    print("\nLavaMD2 settles on AVA X3 (MVL=48 matches its box size), the "
          "long-vector\napplications push to X8, and nothing has to be "
          "re-synthesised to do it —\nthe same 8 KB register file serves "
          "every point.")


if __name__ == "__main__":
    main()
