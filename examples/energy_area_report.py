#!/usr/bin/env python
"""Energy and silicon report: the §VI/§VII story in one script.

Generates, for the whole suite:

* the McPAT-style component areas of every configuration and AVA's
  constant 1.126 mm² footprint,
* a per-application energy comparison of the baseline vs AVA's best
  reconfiguration — the (application × scale) grid runs as one engine
  sweep, parallel with ``--jobs`` and shared with every other artifact
  through the result cache,
* the post-PnR summary (Table V) with the timing verdict.

Run:  python examples/energy_area_report.py [--jobs N]
"""

import argparse

from repro import ava_config, native_config
from repro.core.config import BASE_MVL, SCALE_FACTORS
from repro.experiments.engine import SweepSpec, make_executor
from repro.experiments.rendering import render_table
from repro.power.mcpat import McPatModel
from repro.power.physical import PhysicalDesignModel
from repro.workloads import WORKLOAD_NAMES


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", default=None,
                        help="persist results under this directory")
    args = parser.parse_args()
    executor = make_executor(jobs=args.jobs,
                             cache=args.cache_dir is not None,
                             cache_dir=args.cache_dir or ".repro-cache")
    mcpat = McPatModel()

    print("== silicon (Fig. 4) ==")
    rows = []
    for scale in SCALE_FACTORS:
        report = mcpat.area(native_config(scale))
        rows.append([report.config_name, f"{report.vrf:.2f}",
                     f"{report.vpu:.3f}", f"{report.total:.2f}"])
    ava_report = mcpat.area(ava_config(8))
    rows.append(["AVA (any MVL)", f"{ava_report.vrf:.2f}",
                 f"{ava_report.vpu:.3f}", f"{ava_report.total:.2f}"])
    print(render_table(["config", "VRF mm2", "VPU mm2", "total mm2"], rows))

    print("\n== energy: baseline vs best AVA reconfiguration ==")
    spec = SweepSpec(workloads=WORKLOAD_NAMES,
                     configs=[ava_config(s) for s in SCALE_FACTORS])
    results = executor.run_spec(spec)
    rows = []
    for name, sweep in spec.chunk_by_workload(results):
        base = sweep[0]
        best = min(sweep, key=lambda r: r.stats.cycles)
        rows.append([
            name, f"X{best.cell.config.mvl // BASE_MVL}",
            f"{base.stats.cycles / best.stats.cycles:.2f}x",
            f"{base.energy.total:,.0f}",
            f"{best.energy.total:,.0f}",
            f"{1 - best.energy.total / base.energy.total:+.0%}",
        ])
    print(render_table(
        ["application", "best", "speedup", "base nJ", "best nJ",
         "energy delta"], rows))

    print("\n== physical design (Table V) ==")
    pnr = PhysicalDesignModel()
    rows = []
    for config in (native_config(8), ava_config(8)):
        r = pnr.evaluate(config)
        rows.append([r.config_name, f"{r.wns_ns:+.3f}",
                     "meets 1 GHz" if r.meets_timing else "FAILS timing",
                     f"{r.power_mw:.0f}", f"{r.area_mm2:.2f}"])
    print(render_table(
        ["config", "WNS ns", "timing", "power mW", "area mm2"], rows))


if __name__ == "__main__":
    main()
