#!/usr/bin/env python
"""Energy and silicon report: the §VI/§VII story in one script.

Generates, for the whole suite:

* the McPAT-style component areas of every configuration and AVA's
  constant 1.126 mm² footprint,
* a per-application energy comparison of the baseline vs AVA's best
  reconfiguration,
* the post-PnR summary (Table V) with the timing verdict.

Run:  python examples/energy_area_report.py
"""

from repro import ava_config, native_config, Simulator
from repro.core.config import SCALE_FACTORS
from repro.experiments.rendering import render_table
from repro.power.mcpat import McPatModel
from repro.power.physical import PhysicalDesignModel
from repro.workloads import all_workloads


def main() -> None:
    mcpat = McPatModel()

    print("== silicon (Fig. 4) ==")
    rows = []
    for scale in SCALE_FACTORS:
        report = mcpat.area(native_config(scale))
        rows.append([report.config_name, f"{report.vrf:.2f}",
                     f"{report.vpu:.3f}", f"{report.total:.2f}"])
    ava_report = mcpat.area(ava_config(8))
    rows.append([f"AVA (any MVL)", f"{ava_report.vrf:.2f}",
                 f"{ava_report.vpu:.3f}", f"{ava_report.total:.2f}"])
    print(render_table(["config", "VRF mm2", "VPU mm2", "total mm2"], rows))

    print("\n== energy: baseline vs best AVA reconfiguration ==")
    rows = []
    for workload in all_workloads():
        runs = {}
        for scale in SCALE_FACTORS:
            config = ava_config(scale)
            sim = Simulator(config, workload.compile(config).program)
            sim.warm_caches()
            stats = sim.run().stats
            runs[scale] = (stats, mcpat.energy(config, stats))
        base_stats, base_energy = runs[1]
        best_scale = min(runs, key=lambda s: runs[s][0].cycles)
        best_stats, best_energy = runs[best_scale]
        rows.append([
            workload.name, f"X{best_scale}",
            f"{base_stats.cycles / best_stats.cycles:.2f}x",
            f"{base_energy.total:,.0f}",
            f"{best_energy.total:,.0f}",
            f"{1 - best_energy.total / base_energy.total:+.0%}",
        ])
    print(render_table(
        ["application", "best", "speedup", "base nJ", "best nJ",
         "energy delta"], rows))

    print("\n== physical design (Table V) ==")
    pnr = PhysicalDesignModel()
    rows = []
    for config in (native_config(8), ava_config(8)):
        r = pnr.evaluate(config)
        rows.append([r.config_name, f"{r.wns_ns:+.3f}",
                     "meets 1 GHz" if r.meets_timing else "FAILS timing",
                     f"{r.power_mw:.0f}", f"{r.area_mm2:.2f}"])
    print(render_table(
        ["config", "WNS ns", "timing", "power mW", "area mm2"], rows))


if __name__ == "__main__":
    main()
