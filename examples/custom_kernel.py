#!/usr/bin/env python
"""Bring your own kernel: a vectorised polynomial evaluator on AVA.

Shows the full workflow for a kernel the suite does not ship: a degree-7
Horner polynomial evaluated over a large input array, with the coefficient
registers hoisted out of the loop the way a hand-vectorised RISC-V kernel
would.  The example then demonstrates how register pressure interacts with
AVA's reconfiguration by printing the swap traffic across MVL choices.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import (
    KernelBuilder,
    Program,
    Simulator,
    StripSchedule,
    allocate,
    ava_config,
    unroll_kernel,
)
from repro.compiler.trace import body_pressure
from repro.experiments.rendering import render_table

COEFFS = [0.5, -1.25, 0.75, 2.0, -0.3125, 0.0625, 1.5, -0.875]
N = 4096


def build_body():
    kb = KernelBuilder()
    consts = [kb.const(c) for c in COEFFS]
    x = kb.load("x")
    acc = consts[0]
    for c in consts[1:]:
        acc = kb.fmadd(acc, x, kb.copy(c))  # acc = acc*x + c
    kb.store(acc, "y")
    return kb.build()


def reference(x: np.ndarray) -> np.ndarray:
    acc = np.full_like(x, COEFFS[0])
    for c in COEFFS[1:]:
        acc = acc * x + c
    return acc


def main() -> None:
    body = build_body()
    print(f"kernel: degree-{len(COEFFS) - 1} Horner polynomial, "
          f"live register pressure = {body_pressure(body)}")

    rng = np.random.default_rng(11)
    x = rng.uniform(-1.0, 1.0, N)
    expected = reference(x)

    rows = []
    base_cycles = None
    for scale in (1, 2, 4, 8):
        config = ava_config(scale)
        schedule = StripSchedule.for_elements(N, config.mvl)
        trace = unroll_kernel(body, schedule, config.mvl)
        allocation = allocate(trace, config.n_logical, config.mvl)
        program = Program(name=f"poly@{config.name}",
                          insts=allocation.insts,
                          buffers={"x": N, "y": N},
                          spill_slots=allocation.spill_slots,
                          mvl=config.mvl)
        sim = Simulator(config, program, functional=True)
        sim.set_data("x", x)
        sim.warm_caches()
        result = sim.run()
        assert np.allclose(result.buffer("y"), expected), "wrong results!"
        if base_cycles is None:
            base_cycles = result.cycles
        stats = result.stats
        rows.append([config.name, config.n_physical, result.cycles,
                     f"{base_cycles / result.cycles:.2f}x",
                     stats.swap_insts])

    print(render_table(
        ["config", "physical regs", "cycles", "speedup", "swap ops"], rows))
    print("\nAll configurations produce bit-identical results: the "
          "two-level VRF and\nthe swap mechanism are invisible to the "
          "program.")


if __name__ == "__main__":
    main()
