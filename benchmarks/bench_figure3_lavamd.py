"""Figure 3-c: LavaMD2 — fixed 48-element vectors; AVA X3 is optimal."""

from figure3_common import regenerate_panel


def test_figure3_lavamd(benchmark):
    panel = regenerate_panel(benchmark, "lavamd")

    # Paper: no spill for LMUL2 (15 regs fit in 16), spill from LMUL4.
    assert panel.record("RG-LMUL2").stats.spill_insts == 0
    assert panel.record("RG-LMUL4").stats.spill_insts > 0
    # Paper: AVA X3 executes the 48 elements with one instruction and has
    # 21 physical registers available — no swaps, best AVA configuration.
    x3 = panel.record("AVA X3")
    assert x3.stats.swap_insts == 0
    ava_records = [r for r in panel.records
                   if r.config.name.startswith("AVA")]
    assert max(ava_records, key=lambda r: r.speedup) is x3
    # Paper: 1.67X for AVA X3, equal to the equivalent NATIVE.
    assert 1.4 <= x3.speedup <= 1.9
    assert abs(x3.speedup - panel.record("NATIVE X3").speedup) < 0.02
    # Paper: RG-LMUL8 collapses (0.48X) because spill code runs at VL=128
    # while arithmetic runs at VL=48.
    assert panel.record("RG-LMUL8").speedup < 0.7
    assert panel.record("AVA X8").speedup > panel.record("RG-LMUL8").speedup
    # Paper: RG-LMUL8's memory operations reach ~43% of vector instructions.
    assert panel.record("RG-LMUL8").stats.memory_fraction > 0.30
