"""All headline claims of the paper, checked and archived in one run."""

from _common import publish

from repro.experiments.figure3 import build_panel
from repro.experiments.headline import check_headline_claims, render_claims


def test_headline_claims(benchmark):
    panels = {name: build_panel(name)
              for name in ("axpy", "blackscholes", "lavamd")}
    claims = benchmark.pedantic(check_headline_claims, args=(panels,),
                                rounds=1, iterations=1)
    publish("headline_claims", render_claims(claims))
    held = sum(c.holds for c in claims)
    # Every headline claim should hold in this reproduction.
    failed = [c.claim for c in claims if not c.holds]
    assert held == len(claims), f"claims failed: {failed}"
