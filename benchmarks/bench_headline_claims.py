"""All headline claims of the paper, checked and archived in one run."""

from _common import publish

from repro.experiments.engine import CellExecutor
from repro.experiments.figure3 import build_panels
from repro.experiments.headline import (CLAIM_WORKLOADS,
                                        check_headline_claims, render_claims)


def test_headline_claims(benchmark):
    panels = build_panels(CLAIM_WORKLOADS, executor=CellExecutor())
    claims = benchmark.pedantic(check_headline_claims, args=(panels,),
                                rounds=1, iterations=1)
    publish("headline_claims", render_claims(claims))
    held = sum(c.holds for c in claims)
    # Every headline claim should hold in this reproduction.
    failed = [c.claim for c in claims if not c.holds]
    assert held == len(claims), f"claims failed: {failed}"
