"""Ablation A4: physical-register design space at a fixed MVL.

Table I fixes the P-reg count as floor(8 KB / MVL); this sweep asks what a
*larger or smaller* P-VRF would buy at MVL=128 by overriding the register
count on the swap-prone Blackscholes kernel.  It quantifies the paper's core
trade: the 8 KB organisation (8 registers) loses some performance to swap
traffic, which additional physical registers buy back with silicon.  The
register axis is a configuration grid on the engine sweep.
"""

from _common import publish

from repro.core.config import ava_config, with_physical_registers
from repro.experiments.engine import CellExecutor, SweepSpec
from repro.experiments.rendering import render_table
from repro.power.sram import sram_area_mm2

PREGS = (6, 8, 12, 16, 24, 32)

SPEC = SweepSpec(
    workloads=("blackscholes",),
    configs=tuple(with_physical_registers(ava_config(8), n) for n in PREGS),
)


def _run_spec():
    return CellExecutor().run_spec(SPEC)


def test_ablation_preg_design_space(benchmark):
    cell_results = benchmark.pedantic(_run_spec, rounds=1, iterations=1)
    results = {r.cell.config.n_physical: r.stats for r in cell_results}

    base = results[8]
    rows = []
    for n, stats in results.items():
        vrf_kb = n * 128 * 8 / 1024
        rows.append([n, f"{vrf_kb:.0f}",
                     f"{sram_area_mm2(int(vrf_kb * 1024)):.2f}",
                     stats.cycles, f"{base.cycles / stats.cycles:.2f}",
                     stats.swap_insts])
    publish("ablation_preg_sweep", render_table(
        ["P-regs", "VRF KB", "VRF mm2", "cycles", "perf vs 8-preg",
         "swap ops"], rows))

    # More registers monotonically (weakly) reduce swap traffic...
    volumes = [results[n].swap_insts for n in PREGS]
    assert all(a >= b - 8 for a, b in zip(volumes, volumes[1:]))
    # ...and 32 registers eliminate it for this kernel (pressure ~20).
    assert results[32].swap_insts == 0
    # Table I's 8-register point stays within 2x of the swap-free bound,
    # which is what makes the 8 KB organisation viable.
    assert results[8].cycles <= 2.0 * results[32].cycles
