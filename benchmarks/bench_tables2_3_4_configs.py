"""Tables II, III and IV: the configuration matrix and application list."""

from _common import publish

from repro.core.config import ava_config, native_config, rg_config
from repro.experiments.tables import render_table2, render_table3, render_table4


def test_table2_native_configurations(benchmark):
    text = benchmark(render_table2)
    native8 = native_config(8)
    assert native8.vrf_bytes == 64 * 1024  # the costly 64 KB VRF
    assert native_config(1).vrf_bytes == 8 * 1024
    publish("table2", text)


def test_table3_equivalence(benchmark):
    text = benchmark(render_table3)
    # AVA preserves all 32 logical registers; RG divides them by LMUL.
    assert ava_config(8).n_logical == 32
    assert rg_config(8).n_logical == 4
    assert ava_config(8).n_physical == 8
    assert rg_config(8).n_physical == 8
    publish("table3", text)


def test_table4_applications(benchmark):
    text = benchmark(render_table4)
    for name in ("axpy", "blackscholes", "lavamd", "particlefilter",
                 "somier", "swaptions"):
        assert name in text
    publish("table4", text)
