"""Figure 3-b: Blackscholes — high register pressure (23 logical regs)."""

from figure3_common import regenerate_panel


def test_figure3_blackscholes(benchmark):
    panel = regenerate_panel(benchmark, "blackscholes")

    # Paper: spill code from LMUL=2 onward.
    assert panel.record("RG-LMUL2").stats.spill_insts > 0
    assert panel.record("RG-LMUL4").stats.spill_insts > 0
    assert panel.record("RG-LMUL8").stats.spill_insts > 0
    # Paper: "for AVA X2 there are no swap operations ... scheduling is done
    # using 32 physical vector registers".
    assert panel.record("AVA X2").stats.swap_insts == 0
    # Paper: swap operations are generated starting from AVA X4.
    assert panel.record("AVA X4").stats.swap_insts > 0
    # Paper: the number of swaps is slightly less than RG's spill code.
    assert (panel.record("AVA X8").stats.swap_insts
            < panel.record("RG-LMUL8").stats.spill_insts)
    # Paper: AVA X8 memory operations reach 38% of vector instructions.
    assert 0.30 <= panel.record("AVA X8").stats.memory_fraction <= 0.46
    # Paper: AVA beats RG at every common configuration.
    for scale in (2, 4, 8):
        assert (panel.record(f"AVA X{scale}").speedup
                >= panel.record(f"RG-LMUL{scale}").speedup)
