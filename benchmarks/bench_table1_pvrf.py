"""Table I: P-VRF configurations — physical registers vs MVL."""

from _common import publish

from repro.core.config import pvrf_registers, table1_rows
from repro.experiments.tables import render_table1

#: The paper's Table I, verbatim.
PAPER_TABLE1 = {16: 64, 32: 32, 48: 21, 64: 16, 80: 12, 96: 10, 112: 9,
                128: 8}


def test_table1_pvrf_configurations(benchmark):
    rows = benchmark(table1_rows)
    measured = {mvl: pregs for pregs, mvl in rows}
    assert measured == PAPER_TABLE1
    publish("table1", render_table1())


def test_table1_is_pure_capacity_division(benchmark):
    """The row values all derive from the 8 KB capacity: floor(1024/MVL)."""
    def check():
        for mvl, pregs in PAPER_TABLE1.items():
            assert pvrf_registers(mvl) == min(1024 // mvl, 64) == pregs
        return True

    assert benchmark(check)
