"""Shared Figure-3 panel regeneration for the six per-application benches."""

from __future__ import annotations

from typing import Optional

from _common import publish

from repro.experiments.engine import CellExecutor
from repro.experiments.figure3 import Figure3Panel, build_panel


def regenerate_panel(benchmark, workload: str,
                     executor: Optional[CellExecutor] = None) -> Figure3Panel:
    """Time one full panel regeneration (all 14 bars) and publish it."""
    panel = benchmark.pedantic(build_panel, args=(workload,),
                               kwargs={"executor": executor},
                               rounds=1, iterations=1)
    publish(f"figure3_{workload}", panel.render())
    return panel
