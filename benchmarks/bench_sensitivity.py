"""Sensitivity study: machine-axis sweeps over AVA X4/X8 vs NATIVE."""

from _common import publish

from repro.experiments.sensitivity import build_sensitivity


def test_sensitivity_study(benchmark):
    study = benchmark.pedantic(build_sensitivity, rounds=1, iterations=1)
    publish("sensitivity", study.render())

    # Slower DRAM must widen the NATIVE-vs-AVA gap monotonically at X8 —
    # the AVA organisation pays for its smaller P-VRF in swap traffic
    # through the memory hierarchy, and nowhere else.
    assert study.dram_gap_is_monotone()
    # Only the two-level AVA organisation generates swap traffic, so the
    # NATIVE columns must be flat across the DRAM axis.
    assert len({row.native_x8 for row in study.dram_rows}) == 1
