"""Figure 3-d: ParticleFilter — negligible spill/swap impact."""

from figure3_common import regenerate_panel


def test_figure3_particlefilter(benchmark):
    panel = regenerate_panel(benchmark, "particlefilter")

    # Paper: 13 logical registers -> no spill/swap for RG-LMUL2, AVA X2/X3.
    assert panel.record("RG-LMUL2").stats.spill_insts == 0
    assert panel.record("AVA X2").stats.swap_insts == 0
    assert panel.record("AVA X3").stats.swap_insts == 0
    # Paper: spill/swap operations appear at RG-LMUL4+ and AVA X4/X8...
    assert panel.record("RG-LMUL4").stats.spill_insts > 0
    assert panel.record("AVA X8").stats.swap_insts > 0
    # ... but AVA X8 still achieves performance similar to NATIVE X8
    # (the increase in memory operations is negligible, §V).
    ratio = (panel.record("AVA X8").speedup
             / panel.record("NATIVE X8").speedup)
    assert ratio > 0.85
    # AVA beats RG at the large configurations.
    assert (panel.record("AVA X8").speedup
            >= panel.record("RG-LMUL8").speedup)
