"""Table V: post-place-and-route results (the anchored PnR surrogate)."""

from _common import publish

from repro.core.config import ava_config, native_config
from repro.experiments.tables import render_table5, table5_results
from repro.power.physical import PhysicalDesignModel


def test_table5_post_pnr(benchmark):
    results = benchmark(table5_results)
    publish("table5", render_table5())

    by_name = {r.config_name: r for r in results}
    native = by_name["NATIVE X8"]
    ava = by_name["AVA X8"]
    # Anchors (Table V): NATIVE X8 -0.244ns / 2290mW / 3.90mm² / 61.0%.
    assert abs(native.wns_ns - (-0.244)) < 0.01
    assert abs(native.power_mw - 2290) < 25
    assert abs(native.area_mm2 - 3.90) < 0.05
    assert abs(native.density_pct - 61.0) < 0.3
    # Anchors: AVA +0.119ns / 1732mW / 1.98mm² / 61.8%.
    assert abs(ava.wns_ns - 0.119) < 0.01
    assert abs(ava.power_mw - 1732) < 25
    assert abs(ava.area_mm2 - 1.98) < 0.05
    # Only AVA meets the 1 GHz target.
    assert ava.meets_timing and not native.meets_timing
    # AVA structures: negligible 0.21% of the chip.
    assert ava.ava_structs_area_mm2 / ava.area_mm2 < 0.005


def test_table5_area_reduction(benchmark):
    model = PhysicalDesignModel()
    reduction = benchmark(model.area_reduction_vs, ava_config(8),
                          native_config(8))
    # Paper: "the total chip area is reduced by 50.7%".
    assert 0.45 <= reduction <= 0.55
