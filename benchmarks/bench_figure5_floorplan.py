"""Figure 5: the NATIVE X8 and AVA floorplans."""

from _common import publish

from repro.experiments.figure5 import build_figure5, render_figure5


def test_figure5_floorplans(benchmark):
    native, ava = benchmark(build_figure5)
    publish("figure5", render_figure5())

    # The AVA die is roughly half the NATIVE X8 die (paper: 50.7%).
    assert 0.40 <= ava.die_area_mm2 / native.die_area_mm2 <= 0.60
    # Both dies place eight lanes, the VMU/ROB/IQ strip and corner macros.
    for plan in (native, ava):
        labels = {b.name for b in plan.blocks}
        assert {"lane 1", "lane 8", "VMU", "ROB", "IQ"} <= labels
        assert sum(1 for b in plan.blocks
                   if b.name.startswith("VRF macro")) == 4
    # Only the AVA die carries the AVA structures block (M).
    assert any(b.name == "AVA structures" for b in ava.blocks)
    assert not any(b.name == "AVA structures" for b in native.blocks)
    # §VII's mechanism: the big NATIVE macros stretch macro-to-lane wires.
    assert (native.average_macro_lane_wire_um()
            > ava.average_macro_lane_wire_um())
