"""Figure 4: McPAT areas and performance per mm²."""

from _common import publish

from repro.experiments.figure4 import build_figure4


def test_figure4_area_and_perf_density(benchmark):
    fig4 = benchmark.pedantic(build_figure4, rounds=1, iterations=1)
    publish("figure4", fig4.render())

    # Paper Fig. 4 anchors: VRF 0.18 -> 1.41 mm², FPUs 0.94 mm².
    assert abs(fig4.native_areas[0].vrf - 0.18) < 0.01
    assert abs(fig4.native_areas[-1].vrf - 1.41) < 0.02
    assert abs(fig4.native_areas[0].fpus - 0.94) < 0.01
    # Paper: AVA structures add 0.55% to the VPU.
    assert 0.004 <= fig4.ava_overhead_fraction <= 0.007
    # Paper: 53% VPU area reduction vs NATIVE X8.
    assert 0.45 <= fig4.vpu_area_reduction <= 0.60
    # Paper: AVA area is constant (1.126 mm²) across reconfigurations.
    assert abs(fig4.ava_area.vpu - 1.126) < 0.01
    # Paper: AVA's perf/mm² beats NATIVE's at every scale above X1.
    for native, ava in zip(fig4.native_perf_mm2[1:], fig4.ava_perf_mm2[1:]):
        assert ava > native
