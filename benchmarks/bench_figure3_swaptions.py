"""Figure 3-f: Swaptions — widest register footprint (24 logical regs)."""

from figure3_common import regenerate_panel


def test_figure3_swaptions(benchmark):
    panel = regenerate_panel(benchmark, "swaptions")

    # Paper: spill code for RG-LMUL2, 4 and 8.
    for lmul in (2, 4, 8):
        assert panel.record(f"RG-LMUL{lmul}").stats.spill_insts > 0
    # Paper: RG's memory share grows from ~12% to ~34% at LMUL8.
    assert panel.record("NATIVE X1").stats.memory_fraction < 0.2
    assert panel.record("RG-LMUL8").stats.memory_fraction > 0.3
    # Paper: AVA X8 (1.78X) stays ahead of RG-LMUL8 but behind NATIVE X8
    # (2.15X).
    ava8 = panel.record("AVA X8").speedup
    assert panel.record("RG-LMUL8").speedup < ava8
    assert ava8 < panel.record("NATIVE X8").speedup
    # AVA swap count is comparable to (not wildly above) RG spill code.
    assert (panel.record("AVA X8").stats.swap_insts
            <= 1.2 * panel.record("RG-LMUL8").stats.spill_insts)
