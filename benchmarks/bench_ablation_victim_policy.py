"""Ablation A1: RAC-guided victim selection vs FIFO and round-robin.

The paper's Swap Logic picks the resident VVR with the lowest positive RAC
count.  This ablation replaces that policy with usage-blind alternatives on
the swap-heaviest cell (Blackscholes at AVA X8) and regenerates the
comparison, demonstrating why the RAC exists.  The policy grid is pure
data: a :class:`SweepSpec` over the engine's policy knob.
"""

from _common import publish

from repro.core.config import ava_config
from repro.core.swap import VictimPolicy
from repro.experiments.engine import CellExecutor, CellPolicy, SweepSpec
from repro.experiments.rendering import render_table

SPEC = SweepSpec(
    workloads=("blackscholes",),
    configs=(ava_config(8),),
    policies=tuple(CellPolicy(victim_policy=p) for p in VictimPolicy),
)


def _run_spec():
    return CellExecutor().run_spec(SPEC)


def test_ablation_victim_policy(benchmark):
    results = benchmark.pedantic(_run_spec, rounds=1, iterations=1)
    stats = {r.cell.policy.victim_policy: r.stats for r in results}

    rows = [[policy.value, s.cycles, s.swap_loads, s.swap_stores]
            for policy, s in stats.items()]
    publish("ablation_victim_policy", render_table(
        ["policy", "cycles", "swap loads", "swap stores"], rows))

    # Finding: with the dirty-bit (clean-eviction) optimisation enabled,
    # the victim policies converge — most evictions are free remaps, so the
    # RAC guidance mainly avoids pathological choices rather than winning
    # outright.  The RAC policy must stay within 10% of the best policy.
    best = min(s.cycles for s in stats.values())
    assert stats[VictimPolicy.RAC_MIN].cycles <= 1.10 * best
    # Swap volumes of all policies stay within 2x of each other (no policy
    # triggers a thrash storm on this, the swap-heaviest cell).
    volumes = [s.swap_insts for s in stats.values()]
    assert max(volumes) <= 2 * max(1, min(volumes))
