"""Ablation A2: aggressive register reclamation on vs off.

Without reclamation a physical register is only freed when its VVR returns
to the FRL at commit; the paper argues reclamation lets "physical register
usage closely match the true lifetime of registers".  Disabling it must
increase swap traffic on the register-starved configurations.  The
(workload × reclamation) grid is a single engine sweep.
"""

from _common import publish

from repro.core.config import ava_config
from repro.experiments.engine import CellExecutor, CellPolicy, SweepSpec
from repro.experiments.rendering import render_table

SPEC = SweepSpec(
    workloads=("blackscholes", "swaptions"),
    configs=(ava_config(8),),
    policies=(CellPolicy(aggressive_reclamation=True),
              CellPolicy(aggressive_reclamation=False)),
)


def _run_spec():
    return CellExecutor().run_spec(SPEC)


def test_ablation_aggressive_reclamation(benchmark):
    results = benchmark.pedantic(_run_spec, rounds=1, iterations=1)
    stats = {(r.cell.workload_name, r.cell.policy.aggressive_reclamation):
             r.stats for r in results}

    rows = []
    pairs = {}
    for name in ("blackscholes", "swaptions"):
        on, off = stats[(name, True)], stats[(name, False)]
        pairs[name] = (on, off)
        rows.append([name, "on", on.cycles, on.swap_insts])
        rows.append([name, "off", off.cycles, off.swap_insts])
    publish("ablation_reclamation", render_table(
        ["workload", "reclamation", "cycles", "swap ops"], rows))

    for name, (on, off) in pairs.items():
        assert on.swap_insts <= off.swap_insts, name
        assert on.cycles <= 1.02 * off.cycles, name
