"""Ablation A2: aggressive register reclamation on vs off.

Without reclamation a physical register is only freed when its VVR returns
to the FRL at commit; the paper argues reclamation lets "physical register
usage closely match the true lifetime of registers".  Disabling it must
increase swap traffic on the register-starved configurations.
"""

from _common import publish

from repro.core.config import ava_config
from repro.experiments.rendering import render_table
from repro.sim.simulator import Simulator
from repro.workloads.registry import get_workload


def _run(workload_name: str, reclamation: bool):
    workload = get_workload(workload_name)
    config = ava_config(8)
    compiled = workload.compile(config)
    sim = Simulator(config, compiled.program,
                    aggressive_reclamation=reclamation)
    sim.warm_caches()
    return sim.run().stats


def test_ablation_aggressive_reclamation(benchmark):
    rows = []
    results = {}
    for name in ("blackscholes", "swaptions"):
        on = _run(name, True)
        off = _run(name, False)
        results[name] = (on, off)
        rows.append([name, "on", on.cycles, on.swap_insts])
        rows.append([name, "off", off.cycles, off.swap_insts])
    benchmark.pedantic(_run, args=("blackscholes", True),
                       rounds=1, iterations=1)
    publish("ablation_reclamation", render_table(
        ["workload", "reclamation", "cycles", "swap ops"], rows))

    for name, (on, off) in results.items():
        assert on.swap_insts <= off.swap_insts, name
        assert on.cycles <= 1.02 * off.cycles, name
