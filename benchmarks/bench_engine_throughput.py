"""Engine throughput: cells/second for serial, parallel and warm-cache runs.

Tracks the experiment-execution engine itself so the perf trajectory
(``BENCH_engine.json``) can see regressions in the three execution paths:

* **serial** — inline execution, no cache (the seed repo's behaviour);
* **parallel** — the same grid fanned out over a process pool;
* **warm cache** — the same grid replayed from the persistent result
  cache (no simulations at all; the acceptance mode for re-rendering).

Run as a script (``python benchmarks/bench_engine_throughput.py``) it
measures cold serial throughput, writes ``BENCH_engine.json`` and exits
non-zero when throughput regressed more than 20% versus the committed
baseline in ``benchmarks/BENCH_engine.json`` — the CI ``bench-smoke`` job.
"""

import sys
import time
from pathlib import Path

from _common import publish

from repro.core.config import ava_config, native_config
from repro.experiments.bench import run_bench_engine
from repro.experiments.engine import (CellExecutor, ResultCache, SweepSpec,
                                      default_jobs, make_executor)
from repro.experiments.rendering import render_table

#: A small but non-trivial grid: 2 workloads x 4 configs = 8 cells.
SPEC = SweepSpec(
    workloads=("axpy", "blackscholes"),
    configs=(native_config(1), ava_config(2), ava_config(4), ava_config(8)),
)


def _timed(executor: CellExecutor):
    start = time.perf_counter()
    results = executor.run_spec(SPEC)
    return results, time.perf_counter() - start


def test_engine_throughput(benchmark, tmp_path):
    # Affinity-aware: raw os.cpu_count() oversubscribes containerized CI.
    jobs = min(4, default_jobs())
    cache_dir = tmp_path / "cache"

    serial, t_serial = _timed(CellExecutor())
    parallel, t_parallel = _timed(CellExecutor(jobs=jobs))
    cold = make_executor(jobs=1, cache=True, cache_dir=cache_dir)
    _, t_cold = _timed(cold)
    warm = make_executor(jobs=1, cache=True, cache_dir=cache_dir)
    warm_results, t_warm = _timed(warm)

    # The benchmark-tracked number is the warm-cache replay path.
    benchmark.pedantic(
        lambda: make_executor(cache=True, cache_dir=cache_dir).run_spec(SPEC),
        rounds=3, iterations=1)

    n = len(SPEC.cells())
    rows = [
        ["serial (jobs=1)", f"{t_serial:.2f}", f"{n / t_serial:.2f}",
         serial[0].from_cache],
        [f"parallel (jobs={jobs})", f"{t_parallel:.2f}",
         f"{n / t_parallel:.2f}", parallel[0].from_cache],
        ["cold cache", f"{t_cold:.2f}", f"{n / t_cold:.2f}", False],
        ["warm cache", f"{t_warm:.2f}", f"{n / t_warm:.2f}", True],
    ]
    publish("engine_throughput", render_table(
        ["mode", "seconds", "cells/s", "from cache"], rows))

    # Parallel scheduling must not change any result.
    for a, b in zip(serial, parallel):
        assert a.stats.to_dict() == b.stats.to_dict()
    # The warm run replays every cell from the cache: zero simulations.
    assert warm.stats.sims_executed == 0
    assert warm.stats.cache_hits == n
    assert all(r.from_cache for r in warm_results)
    # Replay must agree with fresh execution bit-for-bit.
    for a, b in zip(serial, warm_results):
        assert a.stats.to_dict() == b.stats.to_dict()
        assert a.energy.to_dict() == b.energy.to_dict()
    # A cache served from RAM-backed disk should beat re-simulation easily.
    assert t_warm < t_cold


def test_engine_cache_persistence(tmp_path):
    """A second executor over the same directory sees the first's results."""
    cache_dir = tmp_path / "cache"
    first = CellExecutor(cache=ResultCache(cache_dir))
    first.run_spec(SPEC)
    assert first.stats.sims_executed > 0

    second = CellExecutor(cache=ResultCache(cache_dir))
    second.run_spec(SPEC)
    assert second.stats.sims_executed == 0
    assert second.stats.cache_hits == len(SPEC.cells())


def main(argv=None) -> int:
    """CI bench-smoke entry: measure, record, gate on regression."""
    import argparse

    parser = argparse.ArgumentParser(
        description="cold-cache engine throughput smoke benchmark")
    parser.add_argument("--output", default="BENCH_engine.json",
                        help="where to write the measured record")
    parser.add_argument("--baseline",
                        default=str(Path(__file__).parent
                                    / "BENCH_engine.json"),
                        help="committed baseline to gate against")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional drop vs baseline "
                             "(default 0.20)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurement repetitions; best run is kept")
    parser.add_argument("--relative", action="store_true",
                        help="gate on the same-run scheduler-vs-reference "
                             "speedup and the warm-trace floor instead of "
                             "the committed absolute baseline "
                             "(machine-independent; used in CI)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile one cold grid run and save the "
                             "top functions next to --output")
    args = parser.parse_args(argv)
    return run_bench_engine(output=args.output,
                            baseline_path=Path(args.baseline),
                            max_regression=args.max_regression,
                            repeats=args.repeats,
                            relative=args.relative,
                            profile=args.profile)


if __name__ == "__main__":
    sys.exit(main())
