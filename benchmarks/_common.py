"""Shared helpers for the benchmark regenerators.

Each benchmark regenerates one table or figure of the paper, times the
regeneration with pytest-benchmark, prints the ASCII artifact (run pytest
with ``-s`` to see it) and archives it under ``benchmarks/out/``.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def publish(name: str, text: str) -> None:
    """Print an artifact and archive it for EXPERIMENTS.md."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[artifact saved to benchmarks/out/{name}.txt]")
