"""Figure 3-a: Axpy — the ideal case (2X at X8, no spills or swaps)."""

from figure3_common import regenerate_panel


def test_figure3_axpy(benchmark):
    panel = regenerate_panel(benchmark, "axpy")

    # Paper: 2.03X at X8 for RG, AVA and NATIVE alike.
    for name in ("NATIVE X8", "AVA X8", "RG-LMUL8"):
        assert 1.7 <= panel.record(name).speedup <= 2.4
    # Paper: no spill or swap operations in any configuration.
    for record in panel.records:
        assert record.stats.spill_insts == 0
        assert record.stats.swap_insts == 0
        # Paper: 75% memory / 25% arithmetic for every configuration.
        assert abs(record.stats.memory_fraction - 0.75) < 0.01
    # Paper: energy falls as the MVL grows (leakage amortised).
    e1 = panel.record("NATIVE X1").energy.total
    e8 = panel.record("AVA X8").energy.total
    assert e8 < e1
