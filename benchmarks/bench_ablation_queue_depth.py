"""Ablation A3: arithmetic/memory issue-queue depth sweep.

Table II fixes both queues at 32 entries.  This sweep shows the sensitivity:
shallow queues throttle the decoupling between the memory and arithmetic
pipelines, deep queues buy nothing once the window covers the memory
latency.  The depth axis is a timing-parameter grid on the engine sweep.
"""

from dataclasses import replace

from _common import publish

from repro.core.config import ava_config
from repro.experiments.engine import CellExecutor, SweepSpec
from repro.experiments.rendering import render_table
from repro.vpu.params import TimingParams

DEPTHS = (2, 4, 8, 16, 32, 64)

SPEC = SweepSpec(
    workloads=("blackscholes",),
    configs=(ava_config(4),),
    params=tuple(replace(TimingParams(), arith_queue_depth=d,
                         mem_queue_depth=d) for d in DEPTHS),
)


def _run_spec():
    return CellExecutor().run_spec(SPEC)


def test_ablation_queue_depth(benchmark):
    cell_results = benchmark.pedantic(_run_spec, rounds=1, iterations=1)
    results = {r.cell.params.arith_queue_depth: r.stats
               for r in cell_results}

    rows = [[d, s.cycles, f"{results[32].cycles / s.cycles:.2f}",
             s.swap_insts] for d, s in results.items()]
    publish("ablation_queue_depth", render_table(
        ["queue depth", "cycles", "perf vs depth-32", "swap ops"], rows))

    # Finding: with destination registers assigned at issue time, the
    # stage-2 queues hold no physical registers and the pre-issue stage is
    # the throttle, so performance is remarkably *insensitive* to queue
    # depth — Table II's 32 entries are comfortably past the knee.
    for depth in DEPTHS:
        assert abs(results[depth].cycles - results[32].cycles) \
            <= 0.05 * results[32].cycles
    # Going beyond 32 buys nothing.
    assert results[64].cycles >= 0.98 * results[32].cycles
