"""Figure 3-e: Somier — the memory-bound application."""

from figure3_common import regenerate_panel


def test_figure3_somier(benchmark):
    panel = regenerate_panel(benchmark, "somier")

    # Paper: ~46% of vector instructions are memory operations.
    base = panel.record("NATIVE X1").stats
    assert 0.38 <= base.memory_fraction <= 0.52
    # Paper: spill/swap only for RG-LMUL8 and AVA X8.
    assert panel.record("RG-LMUL4").stats.spill_insts == 0
    assert panel.record("AVA X4").stats.swap_insts == 0
    assert panel.record("RG-LMUL8").stats.spill_insts > 0
    # Paper: AVA X8 sees only few swaps and a small degradation.
    x8 = panel.record("AVA X8")
    assert x8.stats.swap_insts < 32
    assert x8.speedup > 0.9 * panel.record("NATIVE X8").speedup
    # Paper: L2 leakage dominates Somier's energy.
    e = panel.record("NATIVE X1").energy
    assert e.l2_leakage > 0.4 * e.total
