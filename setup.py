"""Setuptools shim for legacy installs; metadata lives in pyproject.toml."""
from setuptools import setup

setup()
