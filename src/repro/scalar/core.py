"""Dual-issue in-order scalar-core cost model.

The paper's scalar core (Table II) is a 64-bit dual-issue in-order RISC-V
pipeline at 2 GHz.  For the vector kernels evaluated, its only first-order
contribution to runtime is the per-iteration loop control: ``vsetvl``,
address bumps for each streamed buffer, the trip-count decrement and the
back edge.  This module converts that instruction shape into scalar cycles,
assuming IPC 2 for independent ALU work, one cycle per taken branch, and an
L1-hit latency for scalar loads (cold misses are second-order for the
strip-mine loops and are ignored).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LoopOverhead:
    """The scalar loop-control shape of one strip-mine iteration."""

    alu_insts: int = 4  # address bumps, trip-count update, vsetvl result use
    has_vsetvl: bool = True
    loads: int = 0  # scalar loads (e.g. parameter refetch)
    taken_branch: bool = True

    @property
    def instruction_count(self) -> int:
        return (self.alu_insts + (1 if self.has_vsetvl else 0)
                + self.loads + (1 if self.taken_branch else 0))


@dataclass(frozen=True)
class ScalarCoreModel:
    """Cycle-cost model for the 2 GHz dual-issue in-order scalar core."""

    issue_width: int = 2
    branch_cycles: int = 1
    vsetvl_cycles: int = 1
    l1_load_latency: int = 4

    def loop_cycles(self, overhead: LoopOverhead) -> float:
        """Scalar cycles one loop iteration's control code costs."""
        alu = math.ceil(overhead.alu_insts / self.issue_width)
        cycles = float(alu)
        if overhead.has_vsetvl:
            cycles += self.vsetvl_cycles
        if overhead.taken_branch:
            cycles += self.branch_cycles
        # Dual issue hides some load latency; charge half of it beyond the
        # first cycle, a standard in-order approximation.
        cycles += overhead.loads * (1 + (self.l1_load_latency - 1) / 2)
        return cycles


#: Default model used by the workloads.
DEFAULT_SCALAR_MODEL = ScalarCoreModel()


def loop_scalar_cycles(alu_insts: int = 4, loads: int = 0) -> float:
    """Convenience wrapper: scalar cycles for a typical strip-mine loop."""
    return DEFAULT_SCALAR_MODEL.loop_cycles(
        LoopOverhead(alu_insts=alu_insts, loads=loads))
