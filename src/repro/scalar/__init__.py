"""Scalar-core model (Table II's dual-issue in-order RISC-V at 2 GHz).

The decoupled VPU consumes vector instructions faster than the scalar core
can feed loop control around them, so what matters is the per-iteration
scalar cost.  :class:`repro.scalar.core.ScalarCoreModel` turns a loop-control
shape (instruction count, loads, branch) into the scalar-cycle figure the
workloads embed as ``scalar_block`` markers; the pipeline's dispatch stage
then replays those costs at the 2:1 clock ratio.
"""

from repro.scalar.core import LoopOverhead, ScalarCoreModel

__all__ = ["LoopOverhead", "ScalarCoreModel"]
