"""Shared preset-registry helper for the scenario layer's machine axes.

The machine, memory-system and timing registries all follow the
``register_workload`` pattern: kebab-case names map to zero-argument
factories, lookups instantiate fresh frozen configs, re-registering the
same factory is a no-op, and claiming a name another factory already
holds raises so plugins cannot silently shadow the paper's presets.
This class is that pattern, once; each axis module wraps one instance in
its public ``register_*``/``get_*`` functions.

(The workload registry keeps its own implementation: it additionally does
decorator registration and entry-point discovery.)
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, List, TypeVar

T = TypeVar("T")


class PresetRegistry(Generic[T]):
    """Name -> zero-argument-factory map with collision protection."""

    def __init__(self, kind: str) -> None:
        self.kind = kind  # noun used in error messages, e.g. "machine preset"
        self._factories: Dict[str, Callable[[], T]] = {}

    def register(self, name: str, factory: Callable[[], T]) -> None:
        existing = self._factories.get(name)
        if existing is not None and existing is not factory:
            raise ValueError(
                f"{self.kind} {name!r} is already registered")
        self._factories[name] = factory

    def unregister(self, name: str) -> bool:
        return self._factories.pop(name, None) is not None

    def get(self, name: str) -> T:
        factory = self._factories.get(name)
        if factory is None:
            raise KeyError(
                f"unknown {self.kind} {name!r}; known: "
                f"{sorted(self._factories)}")
        return factory()

    def names(self) -> List[str]:
        return sorted(self._factories)
