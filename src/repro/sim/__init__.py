"""Whole-system simulator: scalar core + VPU + memory hierarchy.

:class:`repro.sim.simulator.Simulator` is the user-facing entry point::

    from repro import Simulator, ava_config
    sim = Simulator(ava_config(8), program, functional=True)
    result = sim.run()
    print(result.stats.cycles, result.stats.swap_loads)

It wires a :class:`repro.vpu.pipeline.VectorPipeline` to a memory layout and
collects :class:`repro.sim.stats.SimStats`.
"""

from repro.sim.layout import MemoryLayout
from repro.sim.scenario import CellPolicy, Scenario, build_scenario
from repro.sim.stats import SimStats
from repro.sim.simulator import Simulator, SimResult
from repro.sim.golden import GoldenExecutor
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "MemoryLayout",
    "CellPolicy",
    "Scenario",
    "build_scenario",
    "SimStats",
    "Simulator",
    "SimResult",
    "GoldenExecutor",
    "TraceEvent",
    "TraceRecorder",
]
