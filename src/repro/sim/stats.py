"""Simulation statistics: every counter the paper's figures consume.

The mapping onto Figure 3:

* column 1 (memory instructions) — ``vloads``, ``vstores``,
  ``spill_loads``, ``spill_stores``, ``swap_loads``, ``swap_stores``;
* column 2 (% of vector instructions) — ``arith_fraction`` /
  ``memory_fraction``;
* column 3 (execution time / speedup) — ``cycles`` and ``seconds`` (1 GHz
  VPU clock);
* column 4 (energy) — the event counters (`fpu_element_ops`, VRF element
  traffic, L2/DRAM access counts) feed :mod:`repro.power.mcpat`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

#: VPU clock (Table II).
VPU_HZ = 1_000_000_000


@dataclass
class SimStats:
    """Counters accumulated over one simulation run."""

    cycles: int = 0
    committed: int = 0

    # Dynamic instruction counts (executed).
    arith_insts: int = 0
    vloads: int = 0
    vstores: int = 0
    spill_loads: int = 0
    spill_stores: int = 0
    swap_loads: int = 0
    swap_stores: int = 0
    scalar_blocks: int = 0

    # Element-level event counts (energy model inputs).
    fpu_element_ops: int = 0
    vrf_reads: int = 0
    vrf_writes: int = 0
    mvrf_reads: int = 0
    mvrf_writes: int = 0
    l2_reads: int = 0
    l2_writes: int = 0
    l2_misses: int = 0
    dram_accesses: int = 0
    mem_beats: int = 0

    # Stall / utilisation accounting.
    rename_frl_stalls: int = 0
    rename_rob_stalls: int = 0
    preissue_victim_stalls: int = 0
    preissue_queue_stalls: int = 0
    preissue_writer_stalls: int = 0
    issue_victim_stalls: int = 0
    arith_busy_cycles: int = 0
    mem_busy_cycles: int = 0
    fast_forward_cycles: int = 0

    # Scheduler efficiency: cycles the event-driven scheduler actually
    # evaluated (``events_processed``) versus cycles it jumped over between
    # events (``cycles_skipped``).  A no-progress probe cycle is evaluated
    # and then jumped over, so the counters overlap by the probe count:
    # events <= cycles <= events + skipped.  ``fast_forward_cycles`` keeps
    # its historical name and value (it counts the same skipped cycles) so
    # downstream consumers stay stable.
    events_processed: int = 0
    cycles_skipped: int = 0

    # Span charging: every fast-forward disposes of one stalled interval in
    # a single step instead of cycle-by-cycle.  ``spans_charged`` counts
    # those intervals and ``span_cycles`` the cycles they cover (the
    # evaluated probe plus the jumped cycles), so
    # ``span_cycles == spans_charged + cycles_skipped``.  Both pipelines
    # compute them from the same structural events, so they are pinned
    # byte-identical by the equivalence suite like every other counter.
    spans_charged: int = 0
    span_cycles: int = 0

    # Provenance.
    config_name: str = ""
    program_name: str = ""
    meta: dict = field(default_factory=dict)

    # -- derived ---------------------------------------------------------------
    @property
    def memory_insts(self) -> int:
        """All vector memory instructions, Fig. 3 column-1 total."""
        return (self.vloads + self.vstores + self.spill_loads
                + self.spill_stores + self.swap_loads + self.swap_stores)

    @property
    def vector_insts(self) -> int:
        return self.arith_insts + self.memory_insts

    @property
    def memory_fraction(self) -> float:
        total = self.vector_insts
        return self.memory_insts / total if total else 0.0

    @property
    def arith_fraction(self) -> float:
        total = self.vector_insts
        return self.arith_insts / total if total else 0.0

    @property
    def spill_insts(self) -> int:
        return self.spill_loads + self.spill_stores

    @property
    def swap_insts(self) -> int:
        return self.swap_loads + self.swap_stores

    @property
    def seconds(self) -> float:
        return self.cycles / VPU_HZ

    @property
    def arith_utilisation(self) -> float:
        return self.arith_busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def mem_utilisation(self) -> float:
        return self.mem_busy_cycles / self.cycles if self.cycles else 0.0

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe mapping of every counter (derived values excluded)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["meta"] = dict(self.meta)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        """Inverse of :meth:`to_dict`; unknown keys are rejected.

        ``meta`` is copied on the way in, mirroring :meth:`to_dict`'s copy
        on the way out — mutating a materialised instance must never
        corrupt the caller's dict (e.g. a cached payload shared by every
        cell that replays it).
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SimStats fields: {sorted(unknown)}")
        if "meta" in data:
            data = {**data, "meta": dict(data["meta"])}
        return cls(**data)

    def summary(self) -> str:
        return (
            f"{self.program_name} on {self.config_name}: "
            f"{self.cycles} cycles, {self.vector_insts} vector insts "
            f"({self.memory_fraction:.0%} memory), "
            f"spill={self.spill_insts}, swap={self.swap_insts}, "
            f"util arith={self.arith_utilisation:.0%} "
            f"mem={self.mem_utilisation:.0%}")
