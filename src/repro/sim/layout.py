"""Memory layout: symbolic operands -> byte addresses (+ functional data).

Three regions are laid out back to back, 64-byte aligned:

* application **DATA** buffers (declared by the program),
* compiler **SPILL** slots, each MVL elements wide,
* the **M-VRF** — one MVL-wide home slot per VVR, reserved like the paper's
  ``set_virtual_vrf`` intrinsic does with a malloc'd region.

With ``functional=True`` the layout also owns the numpy arrays behind the
DATA and SPILL regions, so loads/stores move real values and workloads can
verify results against a pure-numpy reference.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.config import MachineConfig
from repro.isa.operands import AddressSpace, MemOperand
from repro.isa.program import Program
from repro.isa.registers import ELEMENT_BYTES

#: Base byte address of the layout (arbitrary, nonzero to catch bugs).
LAYOUT_BASE = 0x1_0000
_LINE = 64


def _align(addr: int, alignment: int = _LINE) -> int:
    return (addr + alignment - 1) // alignment * alignment


class MemoryLayout:
    """Address assignment and (optional) functional backing store."""

    def __init__(self, program: Program, config: MachineConfig,
                 functional: bool = False) -> None:
        self.program = program
        self.config = config
        self.functional = functional
        self._data_base: Dict[str, int] = {}
        self._data: Dict[str, np.ndarray] = {}
        self._spill: Dict[int, np.ndarray] = {}

        addr = LAYOUT_BASE
        for name, n_elems in program.buffers.items():
            self._data_base[name] = addr
            addr = _align(addr + n_elems * ELEMENT_BYTES)
            if functional:
                self._data[name] = np.zeros(n_elems, dtype=np.float64)
        self._spill_base = addr
        addr = _align(addr + program.spill_slots * config.mvl * ELEMENT_BYTES)
        self._mvrf_base = addr
        self.total_bytes = (addr + config.n_vvr * config.mvl * ELEMENT_BYTES
                            - LAYOUT_BASE)

    # -- address resolution ---------------------------------------------------
    def base_addr(self, mem: MemOperand) -> int:
        """Byte address of element 0 of a memory operand."""
        if mem.space is AddressSpace.DATA:
            base = self._data_base.get(mem.buffer)
            if base is None:
                raise KeyError(f"program declares no buffer {mem.buffer!r}")
            return base + mem.base_elem * ELEMENT_BYTES
        if mem.space is AddressSpace.SPILL:
            slot = self._slot_index(mem.buffer)
            return (self._spill_base
                    + (slot * self.config.mvl + mem.base_elem) * ELEMENT_BYTES)
        # M-VRF: base_elem already encodes vvr * mvl.
        return self._mvrf_base + mem.base_elem * ELEMENT_BYTES

    def mvrf_operand(self, vvr: int) -> MemOperand:
        """The home M-VRF slot of a VVR, as a unit-stride operand."""
        return MemOperand(AddressSpace.MVRF, "mvrf",
                          base_elem=vvr * self.config.mvl)

    @staticmethod
    def _slot_index(buffer: str) -> int:
        if not buffer.startswith("slot"):
            raise KeyError(f"not a spill slot: {buffer!r}")
        return int(buffer[4:])

    # -- functional data -------------------------------------------------------
    def set_data(self, name: str, values: np.ndarray) -> None:
        if not self.functional:
            raise RuntimeError("layout is not functional")
        buf = self._data.get(name)
        if buf is None:
            raise KeyError(f"program declares no buffer {name!r}")
        if len(values) != len(buf):
            raise ValueError(
                f"buffer {name!r} holds {len(buf)} elements, got "
                f"{len(values)}")
        buf[:] = np.asarray(values, dtype=np.float64)

    def get_data(self, name: str) -> np.ndarray:
        if not self.functional:
            raise RuntimeError("layout is not functional")
        return self._data[name].copy()

    def load(self, mem: MemOperand, vl: int,
             index: Optional[np.ndarray] = None) -> np.ndarray:
        """Functionally read ``vl`` elements described by ``mem``."""
        if mem.space is AddressSpace.SPILL:
            slot = self._slot_index(mem.buffer)
            data = self._spill.get(slot)
            if data is None:
                return np.zeros(vl, dtype=np.float64)
            return data[:vl].copy()
        buf = self._data[mem.buffer]
        if mem.indexed:
            assert index is not None, "indexed load needs index values"
            idx = np.clip(index[:vl].astype(np.int64), 0, len(buf) - 1)
            return buf[idx].copy()
        idx = mem.base_elem + np.arange(vl) * mem.stride
        idx = np.clip(idx, 0, len(buf) - 1)
        return buf[idx].copy()

    def load_view(self, mem: MemOperand, vl: int) -> np.ndarray:
        """Zero-copy :meth:`load` for read-only consumers.

        Returns a view of the backing buffer when the access is a plain
        in-bounds unit-stride window (or a spill-slot read); falls back to
        :meth:`load` for gathers, strided accesses and clamped tails.
        """
        if mem.space is AddressSpace.SPILL:
            slot = self._slot_index(mem.buffer)
            data = self._spill.get(slot)
            if data is None:
                return np.zeros(vl, dtype=np.float64)
            return data[:vl]
        if not mem.indexed and mem.stride == 1:
            buf = self._data[mem.buffer]
            base = mem.base_elem
            if 0 <= base and base + vl <= len(buf):
                return buf[base:base + vl]
        return self.load(mem, vl)

    def store(self, mem: MemOperand, vl: int, data: np.ndarray,
              index: Optional[np.ndarray] = None) -> None:
        """Functionally write ``vl`` elements described by ``mem``."""
        if mem.space is AddressSpace.SPILL:
            slot = self._slot_index(mem.buffer)
            arr = self._spill.setdefault(
                slot, np.zeros(self.config.mvl, dtype=np.float64))
            arr[:vl] = data[:vl]
            return
        buf = self._data[mem.buffer]
        if mem.indexed:
            assert index is not None, "indexed store needs index values"
            idx = np.clip(index[:vl].astype(np.int64), 0, len(buf) - 1)
            buf[idx] = data[:vl]
            return
        idx = mem.base_elem + np.arange(vl) * mem.stride
        keep = idx < len(buf)
        buf[np.clip(idx, 0, len(buf) - 1)[keep]] = data[:vl][keep]
