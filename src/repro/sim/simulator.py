"""User-facing simulator API.

Wraps :class:`repro.vpu.pipeline.VectorPipeline` with data initialisation and
a result object, so the common flow is three lines::

    sim = Simulator(ava_config(8), program, functional=True)
    sim.set_data("x", x_values)
    result = sim.run()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.config import MachineConfig
from repro.core.swap import VictimPolicy
from repro.isa.program import Program
from repro.memory.hierarchy import MemorySystem
from repro.sim.scenario import Scenario
from repro.sim.stats import SimStats
from repro.vpu.params import TimingParams
from repro.vpu.pipeline import VectorPipeline


@dataclass
class SimResult:
    """Statistics plus (in functional mode) the final data buffers."""

    stats: SimStats
    data: Dict[str, np.ndarray]

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    def buffer(self, name: str) -> np.ndarray:
        return self.data[name]


class Simulator:
    """One (configuration, program) simulation.

    The first argument is either a bare :class:`MachineConfig` (paper
    defaults for every other machine axis) or a full
    :class:`~repro.sim.scenario.Scenario` bundling machine, timing, memory
    system and policy.
    """

    def __init__(self, config: "MachineConfig | Scenario", program: Program,
                 params: Optional[TimingParams] = None,
                 functional: bool = False,
                 memsys: Optional[MemorySystem] = None,
                 victim_policy: VictimPolicy = VictimPolicy.RAC_MIN,
                 aggressive_reclamation: bool = True,
                 sanitize: bool = False) -> None:
        self.config = (config.machine if isinstance(config, Scenario)
                       else config)
        self.program = program
        self.functional = functional
        # The pipeline owns the only scenario-vs-loose-kwargs guard:
        # forwarding everything keeps a single source of truth for the
        # "not both" rule.  ``sanitize`` is debug instrumentation, not a
        # machine axis, so it composes with a Scenario freely.
        self.pipeline = VectorPipeline(
            config, program, params=params, memsys=memsys,
            functional=functional, victim_policy=victim_policy,
            aggressive_reclamation=aggressive_reclamation,
            sanitize=sanitize)

    @classmethod
    def from_trace(cls, config: "MachineConfig | Scenario", trace: dict,
                   functional: bool = False,
                   sanitize: bool = False) -> "Simulator":
        """Replay entry for stored compiled traces.

        ``trace`` is a :class:`repro.compiler.store.TraceStore` payload;
        the program is rebuilt via :meth:`Program.from_dict`, which skips
        ``Program.validate`` — the store's schema gate and content-
        addressed key are the trust boundary for schema-matched traces,
        and replaying must stay much cheaper than recompiling.
        """
        return cls(config, Program.from_dict(trace["program"]),
                   functional=functional, sanitize=sanitize)

    def set_data(self, name: str, values: np.ndarray) -> None:
        """Initialise an application buffer (functional mode only)."""
        self.pipeline.layout.set_data(name, values)

    def warm_caches(self) -> int:
        """Pre-touch every application data line into the L2.

        Models the steady-state region the paper measures (the RiVEC kernels
        iterate over their data many times, so compulsory misses are
        negligible in the reported statistics).  Returns the number of lines
        touched.
        """
        from repro.isa.operands import AddressSpace, MemOperand
        from repro.isa.registers import ELEMENT_BYTES

        touched = 0
        for name, n_elems in self.program.buffers.items():
            base = self.pipeline.layout.base_addr(
                MemOperand(AddressSpace.DATA, name))
            for addr in range(base, base + n_elems * ELEMENT_BYTES, 64):
                self.pipeline.memsys.l2.access(addr, write=False)
                touched += 1
        self.pipeline.memsys.reset_stats()
        return touched

    def run(self, max_cycles: int = 200_000_000) -> SimResult:
        stats = self.pipeline.run(max_cycles=max_cycles)
        data: Dict[str, np.ndarray] = {}
        if self.functional:
            data = {name: self.pipeline.layout.get_data(name)
                    for name in self.program.buffers}
        return SimResult(stats=stats, data=data)
