"""Architectural golden model: in-order functional execution.

Executes a program instruction by instruction against an architectural
register file (no renaming, no timing).  Used as the differential oracle for
the pipeline's functional mode: the pipeline must produce exactly the values
the golden model produces, for every destination write and every output
buffer, regardless of how the two-level VRF shuffled data around.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.config import MachineConfig
from repro.isa.instructions import Instruction
from repro.isa.opcodes import evaluate_arith
from repro.isa.program import Program
from repro.sim.layout import MemoryLayout


class GoldenExecutor:
    """In-order architectural interpreter."""

    def __init__(self, config: MachineConfig, program: Program) -> None:
        self.config = config
        self.program = program
        self.layout = MemoryLayout(program, config, functional=True)
        self._regs: Dict[int, np.ndarray] = {}
        #: instruction uid -> destination value written (for differential
        #: debugging against the pipeline).
        self.writes: Dict[int, np.ndarray] = {}

    def set_data(self, name: str, values: np.ndarray) -> None:
        self.layout.set_data(name, values)

    def _read(self, reg: int, vl: int) -> np.ndarray:
        buf = self._regs.get(reg)
        if buf is None:
            return np.zeros(vl, dtype=np.float64)
        out = np.zeros(vl, dtype=np.float64)
        n = min(vl, len(buf))
        out[:n] = buf[:n]
        return out

    def _write(self, reg: int, value: np.ndarray, vl: int) -> None:
        buf = self._regs.get(reg)
        if buf is None or len(buf) < self.config.mvl:
            buf = np.zeros(self.config.mvl, dtype=np.float64)
            self._regs[reg] = buf
        buf[:vl] = value[:vl]

    def execute(self, inst: Instruction) -> Optional[np.ndarray]:
        """Execute one instruction; returns the destination value if any."""
        if inst.is_scalar:
            return None
        vl = inst.vl
        if inst.is_arith:
            srcs = [self._read(s, vl) for s in inst.srcs]
            result = evaluate_arith(inst.op, srcs, inst.scalar, vl)
            assert inst.dst is not None
            self._write(inst.dst, result, vl)
            self.writes[inst.uid] = result.copy()
            return result
        mem = inst.mem
        assert mem is not None
        if inst.is_load:
            index = self._read(inst.srcs[0], vl) if mem.indexed else None
            value = self.layout.load(mem, vl, index)
            assert inst.dst is not None
            self._write(inst.dst, value, vl)
            self.writes[inst.uid] = value.copy()
            return value
        data = self._read(inst.srcs[0], vl)
        index = self._read(inst.srcs[1], vl) if mem.indexed else None
        self.layout.store(mem, vl, data, index)
        return None

    def run(self) -> Dict[str, np.ndarray]:
        """Execute the whole program; returns the final data buffers."""
        for inst in self.program.insts:
            self.execute(inst)
        return {name: self.layout.get_data(name)
                for name in self.program.buffers}
