"""The declarative scenario layer: one frozen bundle per machine-side axis.

A :class:`Scenario` pins everything about the simulated machine that is not
the workload: the machine configuration (Tables I–III), the VPU timing
parameters, the memory hierarchy, and the simulator policy knobs.  The
workload axis was opened by the workload registry; this module opens the
remaining axes the same way — every component resolves from a named,
registry-backed preset:

* machine — :func:`repro.core.config.get_machine` (``native-x1`` ..
  ``ava-x8``, ``rg-lmul1`` .. ``rg-lmul8``, ``baseline``);
* memory — :func:`repro.memory.presets.get_memory_system` (``table2``,
  ``half-l2``, ``slow-l2``, ``slow-dram``, ``fast-dram``);
* timing — :func:`repro.vpu.params.get_timing` (``default``,
  ``single-swap``, ``wide-swap``, ``deep-queues``, ``shallow-queues``);
* policy — the :class:`CellPolicy` knobs the ablations sweep.

Scenarios serialise to plain JSON (:meth:`Scenario.to_dict` /
:meth:`Scenario.from_dict`, exact round-trip) so they can live in sweep
spec files and inside the result cache's content-addressed keys.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Optional, Union

from repro.core.config import MachineConfig, MachineMode, get_machine
from repro.core.swap import VictimPolicy
from repro.memory.dram import DramConfig
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import MemorySystemConfig
from repro.memory.presets import get_memory_system
from repro.vpu.params import DEFAULT_TIMING, TimingParams, get_timing


@dataclass(frozen=True)
class CellPolicy:
    """The simulator policy knobs the ablations sweep."""

    victim_policy: VictimPolicy = VictimPolicy.RAC_MIN
    aggressive_reclamation: bool = True

    def to_key(self) -> dict:
        return {"victim_policy": self.victim_policy.value,
                "aggressive_reclamation": self.aggressive_reclamation}

    # ``to_key`` predates the scenario layer and is its exact JSON form.
    to_dict = to_key

    @classmethod
    def from_dict(cls, data: dict) -> "CellPolicy":
        return cls(victim_policy=VictimPolicy(data["victim_policy"]),
                   aggressive_reclamation=bool(
                       data["aggressive_reclamation"]))


def _scalars_to_dict(obj: Any) -> dict:
    """Flatten any scalar-field dataclass (config axes) for the cache key."""
    return {f.name: getattr(obj, f.name) for f in fields(obj)}


def _machine_to_dict(config: MachineConfig) -> dict:
    data = _scalars_to_dict(config)
    data["mode"] = config.mode.value
    return data


def _machine_from_dict(data: dict) -> MachineConfig:
    return MachineConfig(**{**data, "mode": MachineMode(data["mode"])})


def _memory_to_dict(config: MemorySystemConfig) -> dict:
    return {
        "l1i": _scalars_to_dict(config.l1i),
        "l1d": _scalars_to_dict(config.l1d),
        "l2": _scalars_to_dict(config.l2),
        "dram": _scalars_to_dict(config.dram),
        "vector_interface_bytes": config.vector_interface_bytes,
    }


def _memory_from_dict(data: dict) -> MemorySystemConfig:
    return MemorySystemConfig(
        l1i=CacheConfig(**data["l1i"]),
        l1d=CacheConfig(**data["l1d"]),
        l2=CacheConfig(**data["l2"]),
        dram=DramConfig(**data["dram"]),
        vector_interface_bytes=data["vector_interface_bytes"],
    )


@dataclass(frozen=True)
class Scenario:
    """Machine config + timing + memory system + policy, as one value.

    Frozen and hashable: two scenarios built from the same presets compare
    equal, key the same memo entries, and hash to the same result-cache
    key.  The default scenario (any machine, everything else defaulted)
    reproduces the paper's platform exactly.
    """

    machine: MachineConfig
    timing: TimingParams = DEFAULT_TIMING
    memory: MemorySystemConfig = MemorySystemConfig()
    policy: CellPolicy = CellPolicy()

    def to_dict(self) -> dict:
        """Plain-JSON form; exact inverse of :meth:`from_dict`."""
        return {
            "machine": _machine_to_dict(self.machine),
            "timing": _scalars_to_dict(self.timing),
            "memory": _memory_to_dict(self.memory),
            "policy": self.policy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            machine=_machine_from_dict(data["machine"]),
            timing=TimingParams(**data["timing"]),
            memory=_memory_from_dict(data["memory"]),
            policy=CellPolicy.from_dict(data["policy"]),
        )


def build_scenario(
        machine: Union[str, MachineConfig],
        timing: Union[str, TimingParams, None] = None,
        memory: Union[str, MemorySystemConfig, None] = None,
        policy: Union[str, CellPolicy, None] = None) -> Scenario:
    """Resolve per-axis preset names (or instances) into a Scenario.

    Strings go through the axis registries (for ``policy``, a
    :class:`~repro.core.swap.VictimPolicy` name like ``"fifo"``); ``None``
    means the paper's default for that axis.  This is the single
    resolution point the sweep spec parser, the sensitivity study and
    user code share — a wrong-typed axis fails here, not deep inside the
    pipeline.
    """
    if isinstance(machine, str):
        machine = get_machine(machine)
    if isinstance(timing, str):
        timing = get_timing(timing)
    if isinstance(memory, str):
        memory = get_memory_system(memory)
    if isinstance(policy, str):
        policy = CellPolicy(victim_policy=VictimPolicy(policy))
    for axis, value, expected in (("machine", machine, MachineConfig),
                                  ("timing", timing, TimingParams),
                                  ("memory", memory, MemorySystemConfig),
                                  ("policy", policy, CellPolicy)):
        if value is not None and not isinstance(value, expected):
            raise TypeError(
                f"{axis} must be a preset name or a "
                f"{expected.__name__}, got {type(value).__name__}")
    return Scenario(
        machine=machine,
        timing=timing if timing is not None else DEFAULT_TIMING,
        memory=memory if memory is not None else MemorySystemConfig(),
        policy=policy if policy is not None else CellPolicy(),
    )
