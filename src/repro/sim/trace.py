"""Instruction-level trace recording for pipeline debugging.

Attach a :class:`TraceRecorder` to a pipeline before running and it captures
one :class:`TraceEvent` per issued micro-op — rename/issue/completion
timestamps, the full VVR/physical mappings, and swap provenance.  The
recorder is how the repository's own debugging sessions inspected the Swap
Mechanism; it is part of the public API because anyone extending the
pipeline will want it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.uop import MicroOp
from repro.isa.instructions import Tag
from repro.vpu.pipeline import VectorPipeline


@dataclass(frozen=True)
class TraceEvent:
    """One issued micro-op, flattened for inspection."""

    seq: int
    opcode: str
    tag: str
    vl: int
    src_vvrs: tuple
    dst_vvr: Optional[int]
    src_pregs: tuple
    dst_preg: Optional[int]
    renamed_at: int
    issued_at: int
    first_ready: int
    done_at: int

    @property
    def issue_latency(self) -> int:
        """Cycles from rename to issue (queueing + operand waits)."""
        return self.issued_at - self.renamed_at

    def describe(self) -> str:
        return (f"#{self.seq:<5d} {self.opcode:<10s} {self.tag:<6s} "
                f"vl={self.vl:<3d} "
                f"vvr {self.src_vvrs}->{self.dst_vvr} "
                f"preg {self.src_pregs}->{self.dst_preg} "
                f"ren@{self.renamed_at} iss@{self.issued_at} "
                f"done@{self.done_at}")


class TraceRecorder:
    """Captures every issue event of one pipeline run."""

    def __init__(self, pipeline: VectorPipeline) -> None:
        self.events: List[TraceEvent] = []
        self._pipeline = pipeline
        self._original = pipeline._finish_issue

        def hooked(uop: MicroOp, occupancy: int, dead: int,
                   latency: int) -> None:
            self._original(uop, occupancy, dead, latency)
            self.events.append(self._snapshot(uop))

        pipeline._finish_issue = hooked  # type: ignore[method-assign]

    @staticmethod
    def _snapshot(uop: MicroOp) -> TraceEvent:
        return TraceEvent(
            seq=uop.seq,
            opcode=uop.inst.op.value,
            tag=uop.inst.tag.value,
            vl=uop.inst.vl,
            src_vvrs=uop.src_vvrs,
            dst_vvr=uop.dst_vvr,
            src_pregs=uop.src_pregs,
            dst_preg=uop.dst_preg,
            renamed_at=uop.renamed_at,
            issued_at=uop.issued_at,
            first_ready=uop.first_ready,
            done_at=uop.done_at,
        )

    # -- queries ------------------------------------------------------------
    def swaps(self) -> List[TraceEvent]:
        return [e for e in self.events if e.tag == Tag.SWAP.value]

    def for_vvr(self, vvr: int) -> List[TraceEvent]:
        """Every event touching a VVR (producer or consumer)."""
        return [e for e in self.events
                if e.dst_vvr == vvr or vvr in e.src_vvrs]

    def issue_order_is_per_uop_monotone(self) -> bool:
        """Sanity: timestamps are internally consistent for every event."""
        return all(e.renamed_at <= e.issued_at <= e.first_ready <= e.done_at
                   for e in self.events)

    def render(self, limit: int = 40) -> str:
        lines = [e.describe() for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
