"""Deterministic fault injection for chaos-testing the execution stack.

Long-running sweeps meet real infrastructure faults: workers OOM-killed
mid-cell, cells that hang on a wedged filesystem, cache writes that hit
ENOSPC or a directory gone read-only, entries silently corrupted by bit
rot.  The engine claims to degrade gracefully under all of them — this
module makes that claim *testable* by injecting every one of those faults
on demand, deterministically, from a seed.

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers:

* **cell faults** (``worker-crash`` / ``cell-hang`` / ``slow-cell``) fire
  inside :func:`repro.experiments.engine._execute_cell`, matched by cell
  label and gated by attempt number — a crash spec gated on attempt 0
  kills the first execution and lets the retry through, which is exactly
  the transient-infrastructure-fault shape the retry budget exists for;
* **cache faults** (``cache-corrupt`` / ``cache-enospc`` /
  ``cache-readonly``) fire inside :meth:`repro.cachefs.AtomicJsonStore.
  put`, matched by store site (``results`` / ``traces``) and gated by the
  ordinal of the matching write.

The active plan propagates to pool workers through the
:data:`FAULT_PLAN_ENV` environment variable (and, under the default
``fork`` start method, through the inherited module global), so one
:func:`install` covers inline execution, the parent's cache writes and
every worker process.

Faults are *injected* errors, so they never import anything from the rest
of the package: the engine and cache layers consult this module, never
the other way around.
"""

from __future__ import annotations

import json
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

#: Environment variable carrying the active plan's JSON to pool workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The exit code an injected worker crash dies with (recognisable in CI
#: logs; any nonzero code breaks the pool the same way the OOM killer
#: does).
CRASH_EXIT_CODE = 87

WORKER_CRASH = "worker-crash"
CELL_HANG = "cell-hang"
SLOW_CELL = "slow-cell"
CACHE_CORRUPT = "cache-corrupt"
CACHE_ENOSPC = "cache-enospc"
CACHE_READONLY = "cache-readonly"

#: Faults that fire at cell-execution time (in the worker, or inline).
CELL_KINDS = (WORKER_CRASH, CELL_HANG, SLOW_CELL)
#: Faults that fire at cache-write time (wherever the store lives).
CACHE_KINDS = (CACHE_CORRUPT, CACHE_ENOSPC, CACHE_READONLY)

ALL_KINDS = CELL_KINDS + CACHE_KINDS

#: The infrastructure-fault taxonomy: exception type *names* the execution
#: backends may treat as retry-eligible.  Everything else that escapes a
#: cell is a simulation bug — retrying it would recompute the same wrong
#: answer (or mask nondeterminism), so the F002 lint rule rejects retry
#: tuples that stray outside this set.  Names, not classes: the backends'
#: own exception types (``CellDeadlineExceeded``) and stdlib pool failures
#: (``BrokenExecutor``) must not be imported here just to be listed.
INFRASTRUCTURE_FAULT_NAMES = frozenset({
    "TransientFaultError",   # this module's injected transient fault
    "BrokenExecutor",        # concurrent.futures pool collapse
    "CellDeadlineExceeded",  # per-cell wall-clock deadline (backends)
    "OSError",               # I/O flakes: ENOSPC, EIO, dropped mounts
    "TimeoutError",          # stdlib sibling of the deadline class
    "ConnectionError",       # remote-executor transport failures
})


class TransientFaultError(RuntimeError):
    """An injected *infrastructure* fault: retryable by contract.

    Raised in place of a hard worker kill when the faulted cell executes
    inline (``jobs=1``) — ``os._exit`` in the parent would take the whole
    CLI (or the test process) down, which is not the failure mode under
    test.  The engine classifies it with ``BrokenExecutor`` and deadline
    timeouts: retried with backoff, never failed fast.
    """


@dataclass
class FaultSpec:
    """One trigger: what to inject, where, and how often.

    ``match`` is a substring filter — against the cell label for
    :data:`CELL_KINDS`, against the content key for :data:`CACHE_KINDS`
    (empty matches everything).  ``site`` narrows cache faults to one
    store (``"results"`` / ``"traces"``).  ``attempt`` gates cell faults
    to specific attempt numbers (the deterministic-retry contract: a
    crash on attempt 0 with a clean attempt 1 *must* end in success);
    ``None`` fires on every attempt, which models a deterministic
    infrastructure failure and must exhaust the retry budget instead of
    looping.  ``ordinal`` gates cache faults to the Nth matching write
    (0-based).  ``times`` caps firings per process.
    """

    kind: str
    match: str = ""
    site: str = ""
    attempt: Union[int, List[int], None] = 0
    ordinal: Optional[int] = None
    times: int = 1
    delay_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {ALL_KINDS}")

    def matches_attempt(self, attempt: int) -> bool:
        if self.attempt is None:
            return True
        if isinstance(self.attempt, int):
            return attempt == self.attempt
        return attempt in self.attempt


@dataclass
class FaultPlan:
    """A seed plus its triggers, with per-process firing state.

    The spec list is the serialized contract; the counters (`fired`,
    per-spec call ordinals) are runtime state local to each process —
    workers forked from the parent start from the parent's counters,
    freshly-spawned ones from zero, and neither matters for determinism
    because the seeded plans gate cell faults on (label, attempt), which
    is identical in every process.
    """

    seed: int = 0
    specs: List[FaultSpec] = field(default_factory=list)
    _fired: List[int] = field(default_factory=list, repr=False)
    _calls: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._fired = [0] * len(self.specs)
        self._calls = [0] * len(self.specs)

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "specs": [{"kind": s.kind, "match": s.match, "site": s.site,
                           "attempt": s.attempt, "ordinal": s.ordinal,
                           "times": s.times, "delay_s": s.delay_s}
                          for s in self.specs]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError("a fault plan must be a JSON object")
        specs = [FaultSpec(**spec) for spec in payload.get("specs", [])]
        return cls(seed=int(payload.get("seed", 0)), specs=specs)

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        try:
            payload = json.loads(blob)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def describe(self) -> str:
        """One compact human-readable line, for the chaos report."""
        parts = []
        for spec in self.specs:
            target = spec.match or spec.site or "*"
            gate = ""
            if spec.kind in CELL_KINDS and spec.attempt is not None:
                gate = f"@attempt{spec.attempt}"
            elif spec.kind in CACHE_KINDS and spec.ordinal is not None:
                gate = f"@write{spec.ordinal}"
            parts.append(f"{spec.kind}({target}{gate})")
        return " + ".join(parts) if parts else "no faults"

    # -- firing ----------------------------------------------------------------
    def fire_cell(self, label: str, attempt: int, in_worker: bool) -> None:
        """Apply every armed cell fault matching (label, attempt).

        A crash in a pool worker hard-exits the process (indistinguishable
        from the OOM killer); inline it raises
        :class:`TransientFaultError` so the caller survives to retry.
        Hangs and slow cells sleep — a hang for longer than any sane
        deadline (the watchdog is expected to cut it short), a slow cell
        for its configured delay.
        """
        for i, spec in enumerate(self.specs):
            if spec.kind not in CELL_KINDS:
                continue
            if spec.match and spec.match not in label:
                continue
            if not spec.matches_attempt(attempt):
                continue
            if self._fired[i] >= spec.times:
                continue
            self._fired[i] += 1
            if spec.kind == SLOW_CELL:
                time.sleep(spec.delay_s)
            elif spec.kind == CELL_HANG:
                time.sleep(spec.delay_s)
            elif spec.kind == WORKER_CRASH:
                if in_worker:
                    os._exit(CRASH_EXIT_CODE)
                raise TransientFaultError(
                    f"injected worker crash for {label} "
                    f"(attempt {attempt})")

    def cache_fault(self, site: str, key: str) -> Optional[str]:
        """The fault kind a store write should suffer, or ``None``.

        Every matching spec's call ordinal advances on every consult
        (that is what makes ``ordinal`` deterministic: it counts matching
        writes, fired or not); the first spec whose gates all pass wins.
        """
        fired: Optional[str] = None
        for i, spec in enumerate(self.specs):
            if spec.kind not in CACHE_KINDS:
                continue
            if spec.site and spec.site != site:
                continue
            if spec.match and spec.match not in key:
                continue
            call = self._calls[i]
            self._calls[i] = call + 1
            if spec.ordinal is not None and call != spec.ordinal:
                continue
            if self._fired[i] >= spec.times:
                continue
            if fired is None:
                self._fired[i] += 1
                fired = spec.kind
        return fired


def seeded_plan(seed: int, labels: Sequence[str], *,
                hang_s: float = 30.0, slow_s: float = 0.1) -> FaultPlan:
    """The standard chaos mix, chosen deterministically from ``seed``.

    Always arms one worker crash, one cell hang and one slow cell (on
    labels drawn from the grid), plus one corrupted result write and one
    ENOSPC result write on distinct write ordinals — the acceptance mix
    (≥1 kill, ≥1 hang, ≥1 corruption, ≥1 ENOSPC).  Identical seeds and
    labels produce identical plans in every process.
    """
    distinct = list(dict.fromkeys(labels))
    if not distinct:
        raise ValueError("seeded_plan needs at least one cell label")
    rng = random.Random(seed)
    picks = distinct[:]
    rng.shuffle(picks)
    crash = picks[0]
    hang = picks[1 % len(picks)]
    slow = picks[2 % len(picks)]
    n_writes = max(len(labels), 2)
    corrupt_at, enospc_at = rng.sample(range(n_writes), 2)
    return FaultPlan(seed=seed, specs=[
        FaultSpec(kind=WORKER_CRASH, match=crash, attempt=0),
        # The hang stays armed over the first three attempts: a crash
        # wave (charged, attempt bumped) may consume attempt 0 — and a
        # second wave attempt 1 — before the cell is ever observed
        # running, and the plan must still hang it long enough for the
        # watchdog to prove itself.  Crash specs fire on attempt 0 only,
        # so at most two waves can occur; by attempt 2 the hang always
        # reaches the deadline, and a default budget of 3 retries always
        # outlasts it.
        FaultSpec(kind=CELL_HANG, match=hang, attempt=[0, 1, 2],
                  delay_s=hang_s),
        FaultSpec(kind=SLOW_CELL, match=slow, attempt=0, delay_s=slow_s),
        FaultSpec(kind=CACHE_CORRUPT, site="results", ordinal=corrupt_at),
        FaultSpec(kind=CACHE_ENOSPC, site="results", ordinal=enospc_at),
    ])


# ---------------------------------------------------------------------------
# plan activation
# ---------------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None
_ENV_MEMO: Tuple[str, Optional[FaultPlan]] = ("", None)


def install(plan: FaultPlan) -> None:
    """Activate ``plan`` for this process and (via the environment) every
    worker process created afterwards."""
    global _ACTIVE
    _ACTIVE = plan
    os.environ[FAULT_PLAN_ENV] = plan.to_json()


def uninstall() -> None:
    """Deactivate fault injection (idempotent)."""
    global _ACTIVE, _ENV_MEMO
    _ACTIVE = None
    _ENV_MEMO = ("", None)
    os.environ.pop(FAULT_PLAN_ENV, None)


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with injected(plan): ...`` — install, then always uninstall."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def active_plan() -> Optional[FaultPlan]:
    """The plan in force for this process, or ``None``.

    An explicitly installed plan wins; otherwise the environment variable
    is consulted (that is how spawned pool workers inherit the parent's
    plan) and parsed once per distinct value.  A malformed value is
    ignored — fault injection must never be able to break a run it was
    not even meant to touch.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    blob = os.environ.get(FAULT_PLAN_ENV)
    if not blob:
        return None
    global _ENV_MEMO
    if _ENV_MEMO[0] != blob:
        try:
            plan: Optional[FaultPlan] = FaultPlan.from_json(blob)
        except (ValueError, TypeError):
            plan = None
        _ENV_MEMO = (blob, plan)
    return _ENV_MEMO[1]
