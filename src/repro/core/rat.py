"""First-level renaming: logical registers -> Virtual Vector Registers.

Implements the paper's §III.A first level: a Register Alias Table (RAT,
6-bit × 32 entries) mapping logical registers to VVRs, and a Free Register
List (FRL) of available VVRs.  A destination rename pops a VVR from the FRL
and records the previous mapping as the *old destination*, which returns to
the FRL when the renaming instruction commits.

A retirement copy of the RAT is maintained at commit for §III.D recovery —
AVA keeps exactly one checkpoint, updated every time a vector instruction
commits, which is what :meth:`commit` does here.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional


class RenameTable:
    """RAT + FRL over ``n_vvr`` virtual vector registers."""

    __slots__ = ("n_logical", "n_vvr", "_rat", "_frl", "_retirement_rat",
                 "sanitizer")

    def __init__(self, n_logical: int, n_vvr: int) -> None:
        if n_vvr < n_logical:
            raise ValueError("need at least one VVR per logical register")
        self.n_logical = n_logical
        self.n_vvr = n_vvr
        # Identity initial mapping; the remaining VVRs start free.
        self._rat: List[int] = list(range(n_logical))
        self._frl: Deque[int] = deque(range(n_logical, n_vvr))
        self._retirement_rat: List[int] = list(self._rat)
        #: Optional sanitizer probe; destination renames report through it.
        self.sanitizer = None

    # -- queries ---------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._frl)

    def lookup(self, logical: int) -> int:
        """Current VVR holding logical register ``logical``."""
        return self._rat[logical]

    def mapping(self) -> List[int]:
        return list(self._rat)

    # -- rename ------------------------------------------------------------------
    def can_rename_dst(self) -> bool:
        return bool(self._frl)

    def rename_sources(self, logicals: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(self._rat[l] for l in logicals)

    def rename_destination(self, logical: int) -> tuple[int, int]:
        """Allocate a fresh VVR for ``logical``.

        Returns ``(new_vvr, old_vvr)``; raises if the FRL is empty (callers
        check :meth:`can_rename_dst` first — an empty FRL stalls the scalar
        core, which is precisely the RG-LMUL8 pathology of §II).
        """
        if not self._frl:
            raise RuntimeError("FRL empty: rename must stall")
        old = self._rat[logical]
        new = self._frl.popleft()
        self._rat[logical] = new
        if self.sanitizer is not None:
            self.sanitizer.on_rename()
        return new, old

    # -- commit / recovery ---------------------------------------------------------
    def commit(self, logical: Optional[int], new_vvr: Optional[int],
               old_vvr: Optional[int]) -> None:
        """Retire one instruction: free its old destination VVR.

        Updates the single retirement checkpoint (§III.D): after this call
        the retirement RAT reflects the committed architectural state.
        """
        if logical is None:
            return
        if new_vvr is None or old_vvr is None:
            raise ValueError("destination commits need both VVR ids")
        self._retirement_rat[logical] = new_vvr
        self._frl.append(old_vvr)

    def recover(self) -> None:
        """Roll back to the retirement state after a squash (§III.D).

        The speculative RAT becomes the retirement RAT; every VVR not mapped
        by the retirement RAT is free again (FRL pointers reset).
        """
        self._rat = list(self._retirement_rat)
        live = set(self._rat)
        self._frl = deque(v for v in range(self.n_vvr) if v not in live)

    def live_vvrs(self) -> set[int]:
        """VVRs currently mapped by the speculative RAT."""
        return set(self._rat)
