"""AVA core structures — the paper's primary contribution (§III).

Everything Figure 1 highlights lives here:

* :mod:`repro.core.config` — machine configurations: NATIVE X1–X8, AVA
  X1–X8 and RG-LMUL1–8 (Tables I–III),
* :mod:`repro.core.rat` — first-level renaming (RAT + FRL onto Virtual
  Vector Registers),
* :mod:`repro.core.rac` — the 3-bit Register Access Counters,
* :mod:`repro.core.vrf_mapping` — second-level mapping (PRMT, VRLT, PFRL),
* :mod:`repro.core.vrf` — the two-level register file (P-VRF + M-VRF) with
  optional functional value transport,
* :mod:`repro.core.swap` — the Swap Logic's victim selection,
* :mod:`repro.core.rob` — the reorder buffer,
* :mod:`repro.core.uop` — the in-flight micro-op record the pipeline stages
  annotate,
* :mod:`repro.core.recovery` — commit-time checkpointing (§III.D).

The cycle-by-cycle stage interplay (pre-issue swap generation, dual in-order
queues, chaining) is composed in :mod:`repro.vpu.pipeline`.
"""

from repro.core.config import (
    MachineConfig,
    MachineMode,
    ava_config,
    native_config,
    pvrf_registers,
    rg_config,
)
from repro.core.rat import RenameTable
from repro.core.rac import RegisterAccessCounters
from repro.core.vrf_mapping import VRFMapping
from repro.core.vrf import TwoLevelVRF
from repro.core.swap import SwapLogic
from repro.core.rob import ReorderBuffer
from repro.core.uop import MicroOp, UopState

__all__ = [
    "MachineConfig",
    "MachineMode",
    "ava_config",
    "native_config",
    "rg_config",
    "pvrf_registers",
    "RenameTable",
    "RegisterAccessCounters",
    "VRFMapping",
    "TwoLevelVRF",
    "SwapLogic",
    "ReorderBuffer",
    "MicroOp",
    "UopState",
]
