"""Reorder buffer: in-order commit of the decoupled VPU (§III, step 4).

Entries are micro-ops; hardware-generated swap operations do **not** occupy
ROB entries (they are a pre-issue artefact invisible to the architectural
instruction stream — the paper's Fig. 1 shows only the renamed instruction
reaching the ROB), but the pipeline still tracks their completion for the
issue rules.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.core.uop import MicroOp, UopState


class ReorderBuffer:
    """Bounded in-order retirement queue."""

    __slots__ = ("capacity", "commit_width", "_entries", "total_committed",
                 "sanitizer")

    def __init__(self, capacity: int = 64, commit_width: int = 2) -> None:
        if capacity < 1:
            raise ValueError("ROB needs at least one entry")
        self.capacity = capacity
        self.commit_width = commit_width
        self._entries: Deque[MicroOp] = deque()
        self.total_committed = 0
        #: Optional sanitizer probe; retire() reports commits through it.
        self.sanitizer = None

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def allocate(self, uop: MicroOp) -> int:
        if self.full:
            raise RuntimeError("ROB full: rename must stall")
        uop.rob_index = self.total_committed + len(self._entries)
        self._entries.append(uop)
        return uop.rob_index

    def committable(self, now: int) -> List[MicroOp]:
        """Up to ``commit_width`` head entries whose execution finished."""
        ready: List[MicroOp] = []
        for uop in self._entries:
            if len(ready) >= self.commit_width:
                break
            if uop.state is UopState.DONE and uop.done_at <= now:
                ready.append(uop)
            else:
                break
        return ready

    def retire(self, uop: MicroOp, now: int) -> None:
        head = self._entries.popleft()
        if head is not uop:
            raise RuntimeError("out-of-order retire attempted")
        if self.sanitizer is not None:
            self.sanitizer.on_commit(uop)
        uop.state = UopState.COMMITTED
        uop.committed_at = now
        self.total_committed += 1

    def oldest_uncommitted_memory(self) -> Optional[MicroOp]:
        """Oldest in-flight vector memory instruction (reclamation rule b)."""
        for uop in self._entries:
            if uop.inst.is_memory:
                return uop
        return None

    def has_inflight_memory(self) -> bool:
        return self.oldest_uncommitted_memory() is not None

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self._entries)

    def flush(self) -> List[MicroOp]:
        """Squash every in-flight entry (recovery); returns them oldest-first."""
        squashed = list(self._entries)
        self._entries.clear()
        return squashed
