"""Register Access Counters (RAC): 3-bit usage counters per VVR (§III.C).

The RAC drives both of AVA's register-management policies:

* **aggressive register reclamation** — a VVR whose count reaches zero has
  been overwritten (it became an old destination) *and* has no outstanding
  readers, so its physical register can be freed early;
* **swap-victim selection** — among P-VRF-resident VVRs, the one with the
  lowest non-zero count is the best candidate to send to the M-VRF.

Update protocol (exactly §III.C):

* at rename: the new destination VVR and every source VVR increment; the old
  destination VVR decrements;
* at commit: every source VVR decrements.

Counters saturate at 7 (3-bit).  A saturated counter stops counting in both
directions until explicitly reset, mirroring a conservative hardware
saturating counter; VVR lifetimes in the evaluated kernels keep counts well
below saturation, and a unit test pins the saturation behaviour.
"""

from __future__ import annotations

from typing import Iterable, List

#: 3-bit counters.
RAC_MAX = 7


class RegisterAccessCounters:
    """One saturating counter per VVR."""

    __slots__ = ("n_vvr", "_counts", "_saturated")

    def __init__(self, n_vvr: int) -> None:
        self.n_vvr = n_vvr
        self._counts: List[int] = [0] * n_vvr
        self._saturated: List[bool] = [False] * n_vvr

    def count(self, vvr: int) -> int:
        return self._counts[vvr]

    def counts(self) -> List[int]:
        return list(self._counts)

    def increment(self, vvr: int) -> None:
        if self._saturated[vvr]:
            return
        if self._counts[vvr] >= RAC_MAX:
            # Saturation: the counter is no longer trustworthy for this VVR
            # until it is reset (the VVR can then never be reclaimed early or
            # chosen as a swap victim, which is safe).
            self._saturated[vvr] = True
            return
        self._counts[vvr] += 1

    def decrement(self, vvr: int) -> None:
        if self._saturated[vvr]:
            return
        if self._counts[vvr] == 0:
            raise RuntimeError(
                f"RAC underflow on VVR {vvr}: update protocol violated")
        self._counts[vvr] -= 1

    def reset(self, vvr: int) -> None:
        """Zero a counter (used when a VVR returns to the FRL at commit)."""
        self._counts[vvr] = 0
        self._saturated[vvr] = False

    def is_reclaimable(self, vvr: int) -> bool:
        """True when the count is zero and trustworthy."""
        return self._counts[vvr] == 0 and not self._saturated[vvr]

    def min_positive(self, candidates: Iterable[int]) -> int | None:
        """The candidate VVR with the lowest positive, unsaturated count.

        This is the Swap Logic's selection rule: 1 is the lowest count for
        swaps (0 means aggressive reclamation applies instead).  Ties break
        toward the lowest VVR index, keeping the model deterministic.
        """
        best: int | None = None
        best_count = RAC_MAX + 1
        for vvr in candidates:
            if self._saturated[vvr]:
                continue
            c = self._counts[vvr]
            if c <= 0:
                continue
            if c < best_count or (c == best_count
                                  and best is not None and vvr < best):
                best = vvr
                best_count = c
        return best
