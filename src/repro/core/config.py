"""Machine configurations: Tables I, II and III of the paper.

Three machine families share one pipeline model:

* **NATIVE Xn** — a VPU designed for MVL = 16·n elements: 64 physical
  registers at the native width (VRF grows from 8 KB at X1 to 64 KB at X8),
  single-level renaming, no M-VRF.
* **AVA Xn** — the paper's proposal: always an 8 KB P-VRF; reconfiguring the
  MVL to 16·n shrinks the number of physical registers per Table I
  (64 → 8), with the remaining VVRs living in the M-VRF and moved by the
  hardware Swap Mechanism.  All 32 architectural and 64 virtual registers
  are preserved at every MVL.
* **RG-LMULn** — the RISC-V Register Grouping alternative: grouping divides
  both the architectural registers (32/LMUL) and the physical registers
  (64/LMUL); spill code comes from the compiler.

The element is a 64-bit word throughout, so MVL=16 means a 1024-bit register.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, List

from repro.isa.registers import ELEMENT_BYTES, NUM_LOGICAL_VREGS
from repro.registry import PresetRegistry

#: Baseline MVL (elements) of the short-vector design.
BASE_MVL = 16
#: Total VVRs / renamed registers of the baseline design.
BASE_RENAMED_REGS = 64
#: P-VRF capacity in 64-bit elements: 8 KB = 1024 elements (Table I's basis).
PVRF_ELEMENTS = (8 * 1024) // ELEMENT_BYTES
#: Table III's NATIVE/AVA scaling factors.
SCALE_FACTORS = (1, 2, 3, 4, 8)
#: Legal LMUL values of the RISC-V vector extension.
LMUL_VALUES = (1, 2, 4, 8)


class MachineMode(enum.Enum):
    NATIVE = "native"
    AVA = "ava"
    RG = "rg"


def pvrf_registers(mvl: int) -> int:
    """Table I: physical registers that fit the 8 KB P-VRF at a given MVL.

    >>> [pvrf_registers(m) for m in (16, 32, 48, 64, 80, 96, 112, 128)]
    [64, 32, 21, 16, 12, 10, 9, 8]
    """
    if mvl <= 0:
        raise ValueError("mvl must be positive")
    regs = PVRF_ELEMENTS // mvl
    if regs < 1:
        raise ValueError(f"MVL {mvl} does not fit the 8 KB P-VRF")
    return min(regs, BASE_RENAMED_REGS)


@dataclass(frozen=True)
class MachineConfig:
    """One row of the Tables II/III configuration matrix."""

    name: str
    mode: MachineMode
    mvl: int
    n_logical: int
    n_vvr: int
    n_physical: int
    lanes: int = 8
    lmul: int = 1

    def __post_init__(self) -> None:
        if self.n_physical > self.n_vvr:
            raise ValueError("physical registers cannot exceed VVRs")
        if self.n_logical > self.n_vvr:
            raise ValueError("need at least as many VVRs as logical registers")
        if self.mvl % self.lanes:
            raise ValueError("MVL must be a multiple of the lane count")

    @property
    def two_level(self) -> bool:
        """True when an M-VRF backs the P-VRF (AVA with fewer P-regs than VVRs)."""
        return self.mode is MachineMode.AVA and self.n_physical < self.n_vvr

    @property
    def vrf_bytes(self) -> int:
        """Size of the physical VRF SRAM."""
        return self.n_physical * self.mvl * ELEMENT_BYTES

    @property
    def mvrf_bytes(self) -> int:
        """Memory reserved for the M-VRF (zero for single-level machines)."""
        if not self.two_level:
            return 0
        return (self.n_vvr - self.n_physical) * self.mvl * ELEMENT_BYTES

    @property
    def vector_bits(self) -> int:
        return self.mvl * ELEMENT_BYTES * 8

    def describe(self) -> str:
        return (f"{self.name}: MVL={self.mvl} ({self.vector_bits}-bit), "
                f"{self.n_logical} logical / {self.n_vvr} virtual / "
                f"{self.n_physical} physical regs, "
                f"VRF {self.vrf_bytes // 1024} KB"
                + (f", M-VRF {self.mvrf_bytes // 1024} KB" if self.two_level
                   else ""))


def native_config(scale: int) -> MachineConfig:
    """NATIVE Xn (Table II): native hardware for MVL = 16·scale."""
    if scale not in SCALE_FACTORS:
        raise ValueError(f"scale must be one of {SCALE_FACTORS}")
    mvl = BASE_MVL * scale
    return MachineConfig(
        name=f"NATIVE X{scale}",
        mode=MachineMode.NATIVE,
        mvl=mvl,
        n_logical=NUM_LOGICAL_VREGS,
        n_vvr=BASE_RENAMED_REGS,
        n_physical=BASE_RENAMED_REGS,
    )


def ava_config(scale: int) -> MachineConfig:
    """AVA Xn (Table III): the 8 KB P-VRF reconfigured for MVL = 16·scale."""
    if scale not in SCALE_FACTORS:
        raise ValueError(f"scale must be one of {SCALE_FACTORS}")
    mvl = BASE_MVL * scale
    return MachineConfig(
        name=f"AVA X{scale}",
        mode=MachineMode.AVA,
        mvl=mvl,
        n_logical=NUM_LOGICAL_VREGS,
        n_vvr=BASE_RENAMED_REGS,
        n_physical=pvrf_registers(mvl),
    )


def rg_config(lmul: int) -> MachineConfig:
    """RG-LMULn (Table III): Register Grouping over the baseline hardware."""
    if lmul not in LMUL_VALUES:
        raise ValueError(f"lmul must be one of {LMUL_VALUES}")
    return MachineConfig(
        name=f"RG-LMUL{lmul}",
        mode=MachineMode.RG,
        mvl=BASE_MVL * lmul,
        n_logical=NUM_LOGICAL_VREGS // lmul,
        n_vvr=BASE_RENAMED_REGS // lmul,
        n_physical=BASE_RENAMED_REGS // lmul,
        lmul=lmul,
    )


def baseline_config() -> MachineConfig:
    """The paper's baseline: NATIVE X1 == AVA X1 == RG-LMUL1 hardware."""
    return native_config(1)


def with_physical_registers(config: MachineConfig,
                            n_physical: int) -> MachineConfig:
    """Ablation hook: override the P-reg count of an AVA configuration."""
    return replace(config, n_physical=n_physical,
                   name=f"{config.name} ({n_physical}-preg)")


def table1_rows() -> list[tuple[int, int]]:
    """Table I as (P-regs, MVL) pairs, in the paper's column order."""
    return [(pvrf_registers(mvl), mvl)
            for mvl in (16, 32, 48, 64, 80, 96, 112, 128)]


# ---------------------------------------------------------------------------
# machine registry: named presets for the scenario layer's machine axis
# ---------------------------------------------------------------------------
# Factories (not instances) keep the registry cheap to import and
# guarantee every lookup returns a fresh frozen MachineConfig, mirroring
# how the workload registry instantiates per lookup.
_MACHINE_REGISTRY: PresetRegistry[MachineConfig] = \
    PresetRegistry("machine preset")


def register_machine(name: str,
                     factory: Callable[[], MachineConfig]) -> None:
    """Add a named machine preset (the ``register_workload`` pattern).

    Re-registering the same factory under its name is a no-op; claiming a
    name another factory already holds raises ``ValueError`` so plugins
    cannot silently shadow the paper's configuration matrix.
    """
    _MACHINE_REGISTRY.register(name, factory)


def unregister_machine(name: str) -> bool:
    """Remove ``name`` from the registry (plugin/test cleanup hook)."""
    return _MACHINE_REGISTRY.unregister(name)


def get_machine(name: str) -> MachineConfig:
    """Instantiate a machine preset by its registered name."""
    return _MACHINE_REGISTRY.get(name)


def machine_names() -> List[str]:
    """Every registered machine-preset name, sorted."""
    return _MACHINE_REGISTRY.names()


def _register_builtin_machines() -> None:
    """The Tables II/III matrix under canonical kebab-case names."""
    for scale in SCALE_FACTORS:
        register_machine(f"native-x{scale}",
                         lambda s=scale: native_config(s))
        register_machine(f"ava-x{scale}", lambda s=scale: ava_config(s))
    for lmul in LMUL_VALUES:
        register_machine(f"rg-lmul{lmul}", lambda l=lmul: rg_config(l))
    register_machine("baseline", baseline_config)


_register_builtin_machines()
