"""The Swap Logic: choosing which VVR leaves the P-VRF (§III.C).

Given the RAC counters and the current residency, the Swap Logic selects the
victim VVR to send to the M-VRF when a physical register is needed:

1. prefer **aggressive reclamation** — any resident VVR with RAC == 0 whose
   value is architecturally dead can release its register without a
   Swap-Store (no data movement at all);
2. otherwise pick the resident VVR with the **lowest positive RAC count**
   ("1 is the lowest count for swaps"), excluding
   * the current instruction's source and destination VVRs (the paper's
     deadlock-avoidance rule), and
   * VVRs whose value is not yet valid (an in-flight producer has not
     written them; storing them would ship garbage to the M-VRF).

Victim-selection policy is pluggable so the A1 ablation can compare the
paper's RAC-guided choice against FIFO and round-robin eviction.
"""

from __future__ import annotations

import enum
from typing import Callable, Container, Iterable, Optional, Sequence

from repro.core.rac import RegisterAccessCounters
from repro.core.vrf import TwoLevelVRF
from repro.core.vrf_mapping import VRFMapping


class VictimPolicy(enum.Enum):
    """Eviction policies for the A1 ablation."""

    RAC_MIN = "rac-min"  # the paper's policy
    FIFO = "fifo"  # oldest resident mapping
    ROUND_ROBIN = "round-robin"  # rotating pointer, ignores usage


class SwapLogic:
    """Victim selection and reclamation scans over the P-VRF residents."""

    def __init__(self, mapping: VRFMapping, rac: RegisterAccessCounters,
                 vrf: TwoLevelVRF,
                 policy: VictimPolicy = VictimPolicy.RAC_MIN) -> None:
        self.mapping = mapping
        self.rac = rac
        self.vrf = vrf
        self.policy = policy
        # FIFO policy state: an insertion-ordered dict used as an ordered
        # set, so releases are O(1) dict pops instead of O(n) list removes
        # (long-resident grids used to pay quadratic cost on the release
        # path).  Iteration order == allocation order, same as the list it
        # replaces.
        self._allocation_order: dict[int, None] = {}
        self._rr_pointer = 0

    # -- bookkeeping hooks (called by the pipeline) ------------------------------
    # Allocation order is only ever read by the FIFO policy, so the other
    # policies skip the bookkeeping on the commit/release path entirely.
    def note_allocation(self, vvr: int) -> None:
        if self.policy is VictimPolicy.FIFO:
            # A release always precedes re-allocation, so plain assignment
            # appends at the end — the position a remove+append would give.
            self._allocation_order[vvr] = None

    def note_release(self, vvr: int) -> None:
        if self.policy is VictimPolicy.FIFO:
            self._allocation_order.pop(vvr, None)

    # -- reclamation ---------------------------------------------------------------
    def reclaimable_vvr(self, excluded: Iterable[int] = ()) -> Optional[int]:
        """A resident VVR with RAC == 0 and valid data (free without store)."""
        banned = set(excluded)
        for vvr in self.mapping.resident_vvrs():
            if vvr in banned:
                continue
            if self.rac.is_reclaimable(vvr) and self.vrf.is_valid(vvr):
                return vvr
        return None

    # -- victim selection --------------------------------------------------------------
    def select_victim(self, excluded: Sequence[int],
                      has_queued_reader: Optional[Callable[[int], bool]] = None,
                      rat_live: Optional[Container[int]] = None,
                      is_clean: Optional[Callable[[int], bool]] = None,
                      ) -> Optional[int]:
        """The VVR to Swap-Store, or None if no legal candidate exists.

        ``excluded`` must contain the current instruction's source and
        destination VVRs (the paper's deadlock-avoidance rule).  A None
        return stalls until an in-flight producer completes (turning its VVR
        into a candidate).

        Under the RAC_MIN policy the base rule is the paper's "lowest
        positive count"; the pipeline supplies two cheap refinements the
        hardware also has access to:

        * ``has_queued_reader(vvr)`` — evicting a VVR some queued instruction
          is about to read forces an immediate Swap-Load back, so such VVRs
          are deprioritised;
        * ``rat_live`` — a VVR that has been architecturally overwritten and
          has no queued readers will never be reloaded (its Swap-Store is
          pure writeback), making it a cheap victim;
        * ``is_clean(vvr)`` — a VVR whose M-VRF slot already holds its value
          can be evicted without any Swap-Store at all (the dirty-bit
          optimisation), making it the cheapest victim of all.
        """
        banned = set(excluded)
        candidates = [
            vvr for vvr in self.mapping.resident_vvrs()
            if vvr not in banned and self.vrf.is_valid(vvr)
            and self.rac.count(vvr) > 0
        ]
        if not candidates:
            return None
        if self.policy is VictimPolicy.RAC_MIN:
            queued = has_queued_reader or (lambda vvr: False)
            clean = is_clean or (lambda vvr: False)
            live = rat_live if rat_live is not None else frozenset()

            def rank(vvr: int) -> tuple:
                return (queued(vvr),  # False sorts first: no reload pressure
                        not clean(vvr),  # clean eviction costs no store
                        vvr in live,  # dead values are free of future loads
                        self.rac.count(vvr),
                        vvr)

            return min(candidates, key=rank)
        if self.policy is VictimPolicy.FIFO:
            for vvr in self._allocation_order:
                if vvr in candidates:
                    return vvr
            return candidates[0]
        # Round-robin: rotating pointer over the VVR index space.
        ordered = sorted(candidates)
        for vvr in ordered:
            if vvr >= self._rr_pointer:
                self._rr_pointer = vvr + 1
                return vvr
        self._rr_pointer = ordered[0] + 1
        return ordered[0]
