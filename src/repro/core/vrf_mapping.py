"""Second-level mapping: VVRs -> physical / memory registers (§III.A).

Three structures, exactly as the paper lays them out:

* **PRMT** (Physical Register Mapping Table, 6-bit × 64): which physical
  register currently holds each VVR (meaningful only while the VRLT says the
  VVR is physical);
* **VRLT** (Vector Register Location Table, 1-bit × 64): 1 = the VVR lives
  in the P-VRF, 0 = it lives in the M-VRF (or holds no mapping yet);
* **PFRL** (Physical Free Register List): free physical registers.

This module owns only the mapping state; *policy* (who gets evicted, when
swaps are generated) lives in :mod:`repro.core.swap` and the pre-issue stage.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional


class VRFMapping:
    """PRMT + VRLT + PFRL over ``n_vvr`` VVRs and ``n_physical`` P-regs."""

    __slots__ = ("n_vvr", "n_physical", "vvr_version", "stamp", "_prmt",
                 "_vrlt", "_pfrl", "_owner", "_in_mvrf", "sanitizer")

    def __init__(self, n_vvr: int, n_physical: int) -> None:
        if n_physical < 1:
            raise ValueError("need at least one physical register")
        if n_physical > n_vvr:
            raise ValueError("more physical registers than VVRs is senseless")
        self.n_vvr = n_vvr
        self.n_physical = n_physical
        #: Per-VVR residency version, bumped on every transition of that
        #: VVR (allocate / evict / release); the pipeline memoizes stalled
        #: probes against exactly the VVRs they depend on.  Versions only
        #: ever increase, so a sum over a fixed VVR set is unchanged iff
        #: every member is unchanged.
        self.vvr_version: List[int] = [0] * n_vvr
        #: Global transition counter: bumped on *every* mapping transition
        #: (any VVR's allocate / evict / release).  An unchanged stamp
        #: proves every per-VVR version sum is unchanged, so the scheduler
        #: can revalidate whole memoized stall outcomes in O(1) instead of
        #: re-summing versions over each uop's source set.
        self.stamp: int = 0
        self._prmt: List[Optional[int]] = [None] * n_vvr
        self._vrlt: List[bool] = [False] * n_vvr
        self._pfrl: Deque[int] = deque(range(n_physical))
        # Reverse map for O(1) "which VVR occupies P-reg p".
        self._owner: List[Optional[int]] = [None] * n_physical
        # VRLT == 0 is ambiguous between "lives in the M-VRF" and "holds no
        # mapping at all"; the hardware knows the difference because only
        # evicted VVRs have M-VRF contents.  Track it explicitly.
        self._in_mvrf: List[bool] = [False] * n_vvr
        #: Optional :class:`~repro.analysis.sanitizer.PipelineSanitizer`
        #: probe; every residency transition reports through it when set.
        self.sanitizer = None

    # -- queries -----------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._pfrl)

    def in_pvrf(self, vvr: int) -> bool:
        return self._vrlt[vvr]

    def in_mvrf(self, vvr: int) -> bool:
        """True when the VVR's live value sits in the M-VRF (was evicted)."""
        return self._in_mvrf[vvr]

    def preg_of(self, vvr: int) -> int:
        if not self._vrlt[vvr]:
            raise KeyError(f"VVR {vvr} is not mapped in the P-VRF")
        preg = self._prmt[vvr]
        assert preg is not None
        return preg

    def owner_of(self, preg: int) -> Optional[int]:
        return self._owner[preg]

    def resident_vvrs(self) -> List[int]:
        """All VVRs currently mapped in the P-VRF."""
        return [v for v in range(self.n_vvr) if self._vrlt[v]]

    # -- transitions -----------------------------------------------------------------
    def allocate(self, vvr: int) -> int:
        """Map ``vvr`` onto a free physical register (PFRL pop)."""
        if not self._pfrl:
            raise RuntimeError("PFRL empty: caller must free a register first")
        if self._vrlt[vvr]:
            raise RuntimeError(f"VVR {vvr} is already mapped in the P-VRF")
        preg = self._pfrl.popleft()
        self._prmt[vvr] = preg
        self._vrlt[vvr] = True
        self._in_mvrf[vvr] = False
        self._owner[preg] = vvr
        self.vvr_version[vvr] += 1
        self.stamp += 1
        if self.sanitizer is not None:
            self.sanitizer.on_map_alloc(vvr, preg)
        return preg

    def evict(self, vvr: int) -> int:
        """Unmap ``vvr`` (it moves to the M-VRF); frees and returns its P-reg."""
        preg = self.preg_of(vvr)
        self._vrlt[vvr] = False
        self._in_mvrf[vvr] = True
        self._prmt[vvr] = None
        self._owner[preg] = None
        self._pfrl.append(preg)
        self.vvr_version[vvr] += 1
        self.stamp += 1
        if self.sanitizer is not None:
            self.sanitizer.on_map_evict(vvr, preg)
        return preg

    def release(self, vvr: int) -> Optional[int]:
        """Drop any mapping ``vvr`` holds (VVR freed / value dead).

        Returns the freed physical register, or None if the VVR was in the
        M-VRF (its backing slot simply becomes reusable).
        """
        if not self._vrlt[vvr]:
            self._prmt[vvr] = None
            self._in_mvrf[vvr] = False
            self.vvr_version[vvr] += 1
            self.stamp += 1
            if self.sanitizer is not None:
                self.sanitizer.on_map_release(vvr, None)
            return None
        preg = self.evict(vvr)
        self._in_mvrf[vvr] = False
        if self.sanitizer is not None:
            self.sanitizer.on_map_release(vvr, preg)
        return preg

    def invariant_check(self) -> None:
        """Structural consistency (used by tests and debug runs)."""
        mapped = [v for v in range(self.n_vvr) if self._vrlt[v]]
        pregs = [self._prmt[v] for v in mapped]
        if len(set(pregs)) != len(pregs):
            raise AssertionError("two VVRs share a physical register")
        for v in mapped:
            p = self._prmt[v]
            assert p is not None
            if self._owner[p] != v:
                raise AssertionError("owner map out of sync with PRMT")
        if len(mapped) + len(self._pfrl) != self.n_physical:
            raise AssertionError("mapped + free registers != total registers")
