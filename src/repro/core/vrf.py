"""The two-level Vector Register File: P-VRF backed by an M-VRF (§III.B).

The P-VRF is the 8 KB multi-ported SRAM distributed across the eight lanes
(eight 4R/2W 1 KB banks); the M-VRF is a plain memory region reserved via the
``set_virtual_vrf`` intrinsic.  This class models both levels' *state*:

* the value arrays (optional — ``functional=True`` moves real numpy data so
  the swap mechanism's correctness is observable end to end),
* the per-VVR valid bits (set to 0 when a VVR is allocated at rename, set to
  1 when the producing instruction completes write-back),
* element read/write counters per level, consumed by the energy model.

Timing is not modelled here; the pipeline charges VRF port occupancy through
the execution model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class TwoLevelVRF:
    """Value + valid-bit state for the P-VRF and M-VRF."""

    def __init__(self, n_vvr: int, n_physical: int, mvl: int,
                 functional: bool = False) -> None:
        self.n_vvr = n_vvr
        self.n_physical = n_physical
        self.mvl = mvl
        self.functional = functional
        self._valid: List[bool] = [True] * n_vvr
        self._pvrf: Dict[int, np.ndarray] = {}
        self._mvrf: Dict[int, np.ndarray] = {}
        # VVRs whose M-VRF home slot holds a valid copy of their value.  A
        # VVR is written exactly once per renaming generation, so once it
        # has been Swap-Stored the copy stays valid until the VVR is freed —
        # evicting such a "clean" VVR again needs no store at all (the
        # dirty-bit optimisation; ablation A4 switches it off).
        self._mvrf_valid: set[int] = set()
        # Renaming generation per VVR, bumped whenever the VVR's value dies
        # (drop_mvrf).  Swap operations are stamped with the generation they
        # serve; a Swap-Store whose generation died in flight must not write
        # the (recycled) VVR's home slot.
        self._generation: List[int] = [0] * n_vvr
        # Energy counters (element granularity).
        self.pvrf_reads = 0
        self.pvrf_writes = 0
        self.mvrf_reads = 0
        self.mvrf_writes = 0
        self._retired_valid: List[bool] = [True] * n_vvr
        #: Optional sanitizer probe; swap data movement reports through it.
        self.sanitizer = None

    # -- valid bits -----------------------------------------------------------
    def is_valid(self, vvr: int) -> bool:
        return self._valid[vvr]

    def mark_pending(self, vvr: int) -> None:
        """A new producer was renamed onto ``vvr``: data not yet valid."""
        self._valid[vvr] = False

    def mark_valid(self, vvr: int) -> None:
        """The producer of ``vvr`` completed write-back."""
        self._valid[vvr] = True

    def commit_valid(self, vvr: int) -> None:
        """Update the retirement copy of the valid bit (§III.D)."""
        self._retired_valid[vvr] = self._valid[vvr]

    def recover_valid(self) -> None:
        self._valid = list(self._retired_valid)

    # -- functional value transport ---------------------------------------------
    def write_preg(self, preg: int, value: Optional[np.ndarray],
                   vl: int) -> None:
        """Write ``vl`` elements into a physical register.

        ``value`` may be None in counters-only mode, where only the write
        energy/port accounting matters and no data is transported.
        """
        self.pvrf_writes += vl
        if not self.functional:
            return
        buf = self._pvrf.get(preg)
        if buf is None or len(buf) != self.mvl:
            buf = np.zeros(self.mvl, dtype=np.float64)
            self._pvrf[preg] = buf
        buf[:vl] = np.asarray(value, dtype=np.float64)[:vl]

    def read_preg(self, preg: int, vl: int) -> Optional[np.ndarray]:
        """Read ``vl`` elements from a physical register."""
        self.pvrf_reads += vl
        if not self.functional:
            return None
        buf = self._pvrf.get(preg)
        if buf is None:
            # Reading a never-written register returns zeros (SRAM reset
            # state); kernels only do this for dont-care lanes.
            return np.zeros(vl, dtype=np.float64)
        return buf[:vl].copy()

    def read_preg_view(self, preg: int, vl: int) -> Optional[np.ndarray]:
        """Zero-copy :meth:`read_preg` for callers that only *read* the
        returned elements before the register is next written (the
        vectorized execute paths); identical counters and values."""
        self.pvrf_reads += vl
        if not self.functional:
            return None
        buf = self._pvrf.get(preg)
        if buf is None:
            return np.zeros(vl, dtype=np.float64)
        return buf[:vl]

    def has_mvrf_copy(self, vvr: int) -> bool:
        """True when the M-VRF already holds this VVR generation's value."""
        return vvr in self._mvrf_valid

    def swap_out(self, vvr: int, preg: int) -> None:
        """Swap-Store data movement: P-reg contents -> M-VRF slot of ``vvr``."""
        self.pvrf_reads += self.mvl
        self.mvrf_writes += self.mvl
        self._mvrf_valid.add(vvr)
        if self.sanitizer is not None:
            self.sanitizer.on_swap_out(vvr, preg)
        if not self.functional:
            return
        buf = self._pvrf.get(preg)
        self._mvrf[vvr] = (buf.copy() if buf is not None
                           else np.zeros(self.mvl, dtype=np.float64))

    def swap_in(self, vvr: int, preg: int) -> None:
        """Swap-Load data movement: M-VRF slot of ``vvr`` -> P-reg."""
        self.mvrf_reads += self.mvl
        self.pvrf_writes += self.mvl
        if self.sanitizer is not None:
            self.sanitizer.on_swap_in(vvr, preg)
        if not self.functional:
            return
        data = self._mvrf.get(vvr)
        self._pvrf[preg] = (data.copy() if data is not None
                            else np.zeros(self.mvl, dtype=np.float64))

    def generation(self, vvr: int) -> int:
        """Current renaming generation of a VVR (for swap-op stamping)."""
        return self._generation[vvr]

    def drop_mvrf(self, vvr: int) -> None:
        """The VVR's value died; its M-VRF slot is reusable.

        Bumps the generation so in-flight swap operations stamped with the
        old generation are recognised as dead and squash their data
        movement.
        """
        self._mvrf.pop(vvr, None)
        self._mvrf_valid.discard(vvr)
        self._generation[vvr] += 1

    # -- diagnostics -----------------------------------------------------------
    def peek_preg(self, preg: int) -> Optional[np.ndarray]:
        buf = self._pvrf.get(preg)
        return None if buf is None else buf.copy()

    @property
    def total_element_traffic(self) -> int:
        return (self.pvrf_reads + self.pvrf_writes
                + self.mvrf_reads + self.mvrf_writes)
