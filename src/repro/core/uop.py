"""The in-flight micro-op record annotated by each pipeline stage.

A :class:`MicroOp` wraps one immutable :class:`~repro.isa.instructions.Instruction`
with everything the pipeline learns about it: VVR mappings from first-level
rename, physical registers from pre-issue, swap-rule dependencies, and the
execution timestamps the chaining model produces.

Ordering invariant (the basis of the deadlock-freedom argument in DESIGN.md):
``seq`` numbers micro-ops by **issue-queue entry order** (hardware swap
operations enter the memory queue before the instruction they serve, so they
get smaller sequence numbers than it even though they are created during its
pre-issue).  Every dependency recorded on a micro-op — producers, swap-store
guards, swap-load reader sets — references a strictly earlier entrant
(``dep.seq < self.seq``); :meth:`MicroOp.validate_ordering` checks this when
the micro-op enters its queue, which is what makes pipeline deadlock
structurally impossible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.isa.instructions import Instruction


class UopState(enum.Enum):
    RENAMED = "renamed"
    PRE_ISSUED = "pre-issued"  # second-level mapping done, in an issue queue
    ISSUED = "issued"  # executing
    DONE = "done"  # result fully written back
    COMMITTED = "committed"


@dataclass(slots=True)
class MicroOp:
    """One vector instruction in flight.

    ``slots=True``: simulations create one of these per dynamic instruction
    and the pipeline probes their fields on every evaluated cycle, so the
    per-instance dict is pure overhead.
    """

    inst: Instruction
    seq: int = -1  # issue-queue entry order; -1 until the uop enters a queue
    state: UopState = UopState.RENAMED
    #: True for Swap-Stores inserted at the memory-queue *front* to free a
    #: register for an issuing instruction; they depend on nothing and are
    #: exempt from entry-order accounting.
    priority: bool = False

    # -- first-level rename (logical -> VVR) ---------------------------------
    src_vvrs: Tuple[int, ...] = ()
    dst_vvr: Optional[int] = None
    old_dst_vvr: Optional[int] = None

    # -- second-level mapping (VVR -> physical register) ---------------------
    src_pregs: Tuple[int, ...] = ()
    dst_preg: Optional[int] = None

    # -- dependencies ---------------------------------------------------------
    #: producers of each source's value (None = value already valid).
    producers: List[Optional["MicroOp"]] = field(default_factory=list)
    #: Swap-Store that must complete before this op may overwrite its dst preg
    #: (paper issue rule 1).
    store_guard: Optional["MicroOp"] = None
    #: older readers of the evicted value that must finish before a Swap-Load
    #: overwrites the physical register (paper issue rule 2).
    reader_guards: List["MicroOp"] = field(default_factory=list)

    # -- execution timestamps (VPU cycles) ------------------------------------
    renamed_at: int = -1
    pre_issued_at: int = -1
    issued_at: int = -1
    first_ready: int = -1  # first result element available for chaining
    done_at: int = -1  # last element written back (valid bit set)
    committed_at: int = -1

    # -- bookkeeping ----------------------------------------------------------
    rob_index: int = -1
    #: stall cycles this op's beats spent waiting on DRAM (memory ops).
    dram_stall: int = 0
    #: VVR renaming generation a swap operation was created for; if the
    #: generation died before the op executes, its data movement is squashed.
    swap_gen: int = -1
    #: Sum of the sources' :class:`~repro.core.vrf_mapping.VRFMapping`
    #: per-VVR residency versions at which this uop's issue-time operand
    #: resolution last completed; while every source's version is unchanged
    #: (versions only grow, so the sum detects that) the scheduler skips
    #: re-resolving — sources cannot have moved.  -1 = never resolved.
    resolved_version: int = -1
    #: Same residency-version sum, taken when pre-issue last stalled on this
    #: uop; while it is unchanged the stall outcome cannot have changed and
    #: the scheduler only re-counts the stall.  -1 = no memoized stall.
    preissue_stall_version: int = -1
    #: Which pre-issue stall was memoized: 0 = waiting on an unissued
    #: producer (source has no physical register yet), 1 = target issue
    #: queue full at dispatch step C.
    preissue_stall_kind: int = 0
    #: Memoized earliest-ready wake-up (the scheduler's cached
    #: ``_head_wait_time``): -2.0 = no memo; -1.0 = known-unknown (some
    #: dependency has not issued), valid while ``wake_stamp`` matches the
    #: pipeline's issue stamp; >= 0.0 = final (every dependency issued, so
    #: its ``issued_at`` can never change again).  Any dependency-set
    #: mutation (attach / producer rebuild / pruning) resets the memo.
    wake_at: float = -2.0
    wake_stamp: int = -1

    def attach_producer(self, producer: Optional["MicroOp"]) -> None:
        self.producers.append(producer)
        self.wake_at = -2.0

    def attach_store_guard(self, guard: "MicroOp") -> None:
        self.store_guard = guard
        self.wake_at = -2.0

    def attach_reader_guard(self, reader: "MicroOp") -> None:
        self.reader_guards.append(reader)
        self.wake_at = -2.0

    def validate_ordering(self) -> None:
        """Assert every dependency entered an issue queue before this uop.

        Called when the uop receives its queue-entry ``seq``; together with
        per-queue in-order issue this guarantees the wait graph is acyclic.
        """
        if self.seq < 0:
            raise AssertionError("validate_ordering before seq assignment")
        deps = [p for p in self.producers if p is not None]
        deps.extend(self.reader_guards)
        if self.store_guard is not None:
            deps.append(self.store_guard)
        for dep in deps:
            if dep.priority:
                continue  # front-inserted Swap-Stores depend on nothing
            if dep.seq < 0 or dep.seq >= self.seq:
                raise AssertionError(
                    f"dependency ordering violated: uop#{self.seq} depends "
                    f"on uop#{dep.seq}")

    @property
    def is_swap(self) -> bool:
        from repro.isa.instructions import Tag

        return self.inst.tag is Tag.SWAP

    @property
    def executed(self) -> bool:
        return self.state in (UopState.DONE, UopState.COMMITTED)

    def describe(self) -> str:
        return (f"uop#{self.seq} [{self.state.value}] {self.inst.describe()} "
                f"vvrs={self.src_vvrs}->{self.dst_vvr} "
                f"pregs={self.src_pregs}->{self.dst_preg}")
