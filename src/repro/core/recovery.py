"""Micro-architectural state recovery (§III.D).

After a squash event (branch misprediction or exception in the scalar
pipeline) AVA rolls back using a *single* checkpoint that is refreshed at
every commit:

* the RAT and the FRL pointers (held by :class:`repro.core.rat.RenameTable`),
* the valid bits (held by :class:`repro.core.vrf.TwoLevelVRF`).

The RAC counters are deliberately *not* checkpointed: §III.D argues that
because a freed VVR's counter is zeroed, stale counts cannot cause a
correctness problem — only conservative (missed) reclamations.  We model the
same choice and expose a helper that conservatively re-derives safe counter
values so the property tests can verify the claim.
"""

from __future__ import annotations

from typing import List

from repro.core.rac import RegisterAccessCounters
from repro.core.rat import RenameTable
from repro.core.vrf import TwoLevelVRF
from repro.core.vrf_mapping import VRFMapping


class RecoveryController:
    """Coordinates the §III.D rollback across the renaming structures."""

    def __init__(self, rat: RenameTable, rac: RegisterAccessCounters,
                 mapping: VRFMapping, vrf: TwoLevelVRF) -> None:
        self.rat = rat
        self.rac = rac
        self.mapping = mapping
        self.vrf = vrf
        self.recoveries = 0

    def recover(self, squashed_dst_vvrs: List[int]) -> None:
        """Roll back after a squash.

        Args:
            squashed_dst_vvrs: destination VVRs allocated by squashed (never
                committed) instructions; their mappings and counters must be
                scrubbed so the VVRs are clean when the FRL re-issues them.
        """
        self.recoveries += 1
        self.rat.recover()
        self.vrf.recover_valid()
        live = self.rat.live_vvrs()
        for vvr in squashed_dst_vvrs:
            if vvr in live:
                raise AssertionError(
                    "squashed destination VVR survives in the retirement RAT")
            self.mapping.release(vvr)
            self.vrf.drop_mvrf(vvr)
            # §III.D: not restoring the counter is safe *because* freed VVRs
            # are zeroed; do exactly that.
            self.rac.reset(vvr)
