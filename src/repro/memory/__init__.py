"""Memory-hierarchy substrate (Table II's memory system).

The paper's platform: 32 KB L1I and L1D (4-cycle latency), a 1 MB unified L2
(12-cycle latency), 512-bit cache lines throughout, and 2 GB DDR3 behind the
L2.  The Vector Memory Unit bypasses the L1 and sits directly on the L2 bus
with a 512-bit interface (8 × 64-bit elements per beat).

This package provides set-associative write-back caches with LRU replacement,
a flat-latency DRAM model, and the composed :class:`MemorySystem` the
simulator and the energy model share (the energy model consumes the access
counters).
"""

from repro.memory.cache import Cache, CacheConfig, CacheStats
from repro.memory.dram import Dram, DramConfig
from repro.memory.hierarchy import MemorySystem, MemorySystemConfig
from repro.memory.presets import (
    get_memory_system,
    memory_system_names,
    register_memory_system,
    unregister_memory_system,
)

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "Dram",
    "DramConfig",
    "MemorySystem",
    "MemorySystemConfig",
    "get_memory_system",
    "memory_system_names",
    "register_memory_system",
    "unregister_memory_system",
]
