"""Flat-latency DRAM model (Table II's 2 GB DDR3).

A single latency plus a line-transfer cost is enough at the fidelity this
reproduction targets: every configuration being compared sees the same DRAM,
and the experiments sweep register-file organisations, not memory
controllers.  Counters feed the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramConfig:
    """DRAM timing in VPU (1 GHz) cycles."""

    latency: int = 80
    line_transfer: int = 4  # 512-bit line over a 128-bit DDR interface

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ValueError("DRAM latency must be positive")
        if self.line_transfer <= 0:
            raise ValueError("DRAM line-transfer cost must be positive")


@dataclass
class Dram:
    """Access counter + latency provider for the main memory."""

    config: DramConfig = DramConfig()
    line_reads: int = 0
    line_writes: int = 0

    def read_line(self) -> int:
        """Fetch one line; returns the service latency in cycles."""
        self.line_reads += 1
        return self.config.latency + self.config.line_transfer

    def write_line(self) -> int:
        """Write back one line; returns the occupancy cost in cycles."""
        self.line_writes += 1
        return self.config.line_transfer

    @property
    def accesses(self) -> int:
        return self.line_reads + self.line_writes

    def reset(self) -> None:
        self.line_reads = 0
        self.line_writes = 0
