"""Named memory-hierarchy presets: the scenario layer's memory axis.

``table2`` is the paper's platform (the :class:`MemorySystemConfig`
defaults); the other presets are single-knob departures the sensitivity
study sweeps — a slower/faster DRAM, a halved or slower L2 — so paper-style
"what if the memory system were worse?" questions become registry lookups
instead of hand-built config objects.

The registry mirrors :func:`repro.workloads.register_workload`: factories
are registered under kebab-case names, lookups instantiate fresh frozen
configs, and name collisions raise instead of silently shadowing the
paper's platform.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List

from repro.memory.dram import DramConfig
from repro.memory.hierarchy import MemorySystemConfig
from repro.registry import PresetRegistry

_MEMORY_REGISTRY: PresetRegistry[MemorySystemConfig] = \
    PresetRegistry("memory preset")


def register_memory_system(name: str,
                           factory: Callable[[], MemorySystemConfig]
                           ) -> None:
    """Add a named memory-hierarchy preset.

    Re-registering the same factory is a no-op; claiming a name another
    factory already holds raises ``ValueError``.
    """
    _MEMORY_REGISTRY.register(name, factory)


def unregister_memory_system(name: str) -> bool:
    """Remove ``name`` from the registry (plugin/test cleanup hook)."""
    return _MEMORY_REGISTRY.unregister(name)


def get_memory_system(name: str) -> MemorySystemConfig:
    """Instantiate a memory-hierarchy preset by its registered name."""
    return _MEMORY_REGISTRY.get(name)


def memory_system_names() -> List[str]:
    """Every registered memory-preset name, sorted."""
    return _MEMORY_REGISTRY.names()


def _table2() -> MemorySystemConfig:
    return MemorySystemConfig()


def _half_l2() -> MemorySystemConfig:
    base = MemorySystemConfig()
    return replace(base, l2=replace(base.l2, size_bytes=base.l2.size_bytes
                                    // 2))


def _slow_l2() -> MemorySystemConfig:
    base = MemorySystemConfig()
    return replace(base, l2=replace(base.l2, latency=2 * base.l2.latency))


def _slow_dram() -> MemorySystemConfig:
    base = MemorySystemConfig()
    return replace(base, dram=DramConfig(latency=2 * base.dram.latency,
                                         line_transfer=base.dram
                                         .line_transfer))


def _fast_dram() -> MemorySystemConfig:
    base = MemorySystemConfig()
    return replace(base, dram=DramConfig(latency=base.dram.latency // 2,
                                         line_transfer=base.dram
                                         .line_transfer))


#: The builtin presets, under their canonical names.
register_memory_system("table2", _table2)
register_memory_system("half-l2", _half_l2)
register_memory_system("slow-l2", _slow_l2)
register_memory_system("slow-dram", _slow_dram)
register_memory_system("fast-dram", _fast_dram)
