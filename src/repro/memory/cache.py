"""Set-associative write-back cache with true-LRU replacement.

The model is behavioural: it tracks tag state, hit/miss/writeback counts and
exposes a per-access boolean (hit?) so the caller can assemble latency.  It
deliberately has no MSHRs or bank conflicts — the VPU's memory unit is
in-order and issues line requests back-to-back, so a hit/miss stream plus a
fixed miss penalty captures the timing behaviour the paper's comparisons
depend on (vector kernels here are dominated by capacity behaviour in the
1 MB L2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int = 64  # 512-bit lines, per Table II
    associativity: int = 8
    latency: int = 12

    def __post_init__(self) -> None:
        # Full validation up front: a bad sweep preset must fail when the
        # spec is parsed, not mid-grid inside a worker process.
        if self.line_bytes <= 0:
            raise ValueError(f"{self.name}: line size must be positive")
        if self.associativity <= 0:
            raise ValueError(f"{self.name}: associativity must be positive")
        if self.size_bytes <= 0:
            raise ValueError(f"{self.name}: size must be positive")
        if self.latency <= 0:
            raise ValueError(f"{self.name}: latency must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                f"{self.name}: size must be a multiple of line*assoc")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class CacheStats:
    """Access counters (consumed by the McPAT-style energy model)."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.misses / self.accesses if self.accesses else 1.0

    def reset(self) -> None:
        self.reads = self.writes = 0
        self.read_misses = self.write_misses = self.writebacks = 0


class Cache:
    """One cache level.

    ``access(addr, write)`` returns True on hit.  Replacement is true LRU,
    implemented with a per-set monotonic timestamp; dirty evictions increment
    the ``writebacks`` counter (the DRAM model charges them bandwidth).
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # Geometry hoisted out of the per-access path (n_sets is a derived
        # property; accesses happen per line per memory instruction).
        self._n_sets = config.n_sets
        self._line_bytes = config.line_bytes
        self._assoc = config.associativity
        # set index -> {tag: (last_use, dirty)}
        self._sets: List[Dict[int, List]] = [
            {} for _ in range(config.n_sets)]
        self._tick = 0

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // self._line_bytes
        return line % self._n_sets, line // self._n_sets

    def access(self, addr: int, write: bool = False) -> bool:
        """Access the byte address ``addr``; returns True on hit."""
        tick = self._tick = self._tick + 1
        line = addr // self._line_bytes
        ways = self._sets[line % self._n_sets]
        tag = line // self._n_sets
        stats = self.stats
        if write:
            stats.writes += 1
        else:
            stats.reads += 1

        entry = ways.get(tag)
        if entry is not None:
            entry[0] = tick
            entry[1] = entry[1] or write
            return True

        if write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1

        if len(ways) >= self._assoc:
            victim_tag = min(ways, key=lambda t: ways[t][0])
            if ways[victim_tag][1]:
                stats.writebacks += 1
            del ways[victim_tag]
        # Write-allocate: the line is brought in either way.
        ways[tag] = [tick, write]
        return False

    def contains(self, addr: int) -> bool:
        set_idx, tag = self._locate(addr)
        return tag in self._sets[set_idx]

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines flushed."""
        dirty = 0
        for ways in self._sets:
            dirty += sum(1 for entry in ways.values() if entry[1])
            ways.clear()
        return dirty

    @property
    def occupancy(self) -> int:
        """Number of resident lines (diagnostics / tests)."""
        return sum(len(ways) for ways in self._sets)
