"""The composed memory system of Table II.

The Vector Memory Unit (VMU) bypasses the L1 caches and talks to the L2
directly over a 512-bit interface, so the central entry point here is
:meth:`MemorySystem.vector_line_access`: one 512-bit beat into the L2,
returning the latency contribution of that beat (L2 hit latency, plus the
DRAM penalty on a miss).

The scalar side (L1I/L1D) only matters for the scalar-core overhead model
and the area/energy accounting, but it is a real cache pair and is exercised
by the scalar-block cost model and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import Cache, CacheConfig
from repro.memory.dram import Dram, DramConfig


@dataclass(frozen=True)
class MemorySystemConfig:
    """Geometry/latency bundle; defaults reproduce Table II."""

    l1i: CacheConfig = CacheConfig("L1I", 32 * 1024, 64, 8, latency=4)
    l1d: CacheConfig = CacheConfig("L1D", 32 * 1024, 64, 8, latency=4)
    l2: CacheConfig = CacheConfig("L2", 1024 * 1024, 64, 16, latency=12)
    dram: DramConfig = DramConfig()
    #: 512-bit VMU interface = 8 × 64-bit elements per beat.
    vector_interface_bytes: int = 64

    def __post_init__(self) -> None:
        # The CacheConfig/DramConfig members validate themselves on
        # construction; what remains is the composition.
        if self.vector_interface_bytes <= 0:
            raise ValueError("vector interface width must be positive")
        for cache in (self.l1i, self.l1d, self.l2):
            if not isinstance(cache, CacheConfig):
                raise TypeError(
                    f"expected a CacheConfig, got {type(cache).__name__}")
        if not isinstance(self.dram, DramConfig):
            raise TypeError(
                f"expected a DramConfig, got {type(self.dram).__name__}")


class MemorySystem:
    """L1I + L1D + unified L2 + DRAM, shared by timing and energy models."""

    def __init__(self, config: MemorySystemConfig | None = None) -> None:
        self.config = config or MemorySystemConfig()
        self.l1i = Cache(self.config.l1i)
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(self.config.l2)
        self.dram = Dram(self.config.dram)

    # -- vector side (VMU -> L2) ---------------------------------------------
    def vector_line_access(self, addr: int, write: bool) -> bool:
        """One 512-bit VMU beat into the L2 at byte address ``addr``.

        Returns True on an L2 miss.  The miss's line fill is counted against
        the DRAM here; how the latency and transfer cost surface in the
        pipeline (bandwidth-serialised fill beats, once-per-instruction
        latency) is the VMU's concern — see
        :class:`repro.vpu.vmu.MemoryAccessPlan`.
        """
        if self.l2.access(addr, write):
            return False
        # Write-allocate: misses fill the line from DRAM either way; dirty
        # writebacks are charged when the victim line is evicted.
        self.dram.read_line()
        return True

    @property
    def vector_first_latency(self) -> int:
        """Pipeline latency from VMU issue to first element (L2 hit path)."""
        return self.config.l2.latency

    # -- scalar side -----------------------------------------------------------
    def scalar_read(self, addr: int) -> int:
        """Scalar load; returns its latency in scalar-core cycles."""
        if self.l1d.access(addr, write=False):
            return self.config.l1d.latency
        if self.l2.access(addr, write=False):
            return self.config.l1d.latency + self.config.l2.latency
        return (self.config.l1d.latency + self.config.l2.latency
                + self.dram.read_line())

    def fetch(self, addr: int) -> int:
        """Instruction fetch; returns its latency in scalar-core cycles."""
        if self.l1i.access(addr, write=False):
            return self.config.l1i.latency
        if self.l2.access(addr, write=False):
            return self.config.l1i.latency + self.config.l2.latency
        return (self.config.l1i.latency + self.config.l2.latency
                + self.dram.read_line())

    def reset_stats(self) -> None:
        self.l1i.stats.reset()
        self.l1d.stats.reset()
        self.l2.stats.reset()
        self.dram.reset()
