"""F-rules: fault-taxonomy discipline for exception handling.

PR 7 introduced a deliberate split between *infrastructure* faults
(worker crashes, deadlines, transient I/O — retryable) and *simulation*
bugs (never retryable: a retry would just recompute the same wrong
answer, or worse, mask nondeterminism).  Two rules keep the split real:

* **F001** — ``except Exception`` / bare ``except:`` requires the repo's
  justification idiom on the same line: ``# noqa: BLE001 — <reason>``.
  An empty reason is still a finding.  Cleanup guards whose body ends in
  a bare ``raise`` are exempt: they swallow nothing, and the hazard this
  rule polices is swallowing.  Fixable: ``--fix`` appends a
  ``TODO``-marked scaffold for a human to complete.
* **F002** — retry-eligibility tuples in the execution backends (names
  matching ``*RETRYABLE*``) may only contain exceptions from the
  infrastructure-fault taxonomy exported by :mod:`repro.faults`
  (:data:`~repro.faults.INFRASTRUCTURE_FAULT_NAMES`).  Retrying a
  ``ValueError`` is how a simulation bug becomes a flaky test.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.pragmas import ble_justification
from repro.analysis.registry import register_rule
from repro.analysis.reporting import Finding
from repro.analysis.walker import SourceFile, dotted_name

_SCAFFOLD = "  # noqa: BLE001 — TODO: justify this broad except"


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [dotted_name(e) for e in handler.type.elts]
    else:
        names = [dotted_name(handler.type)]
    return any(n is not None and n.split(".")[-1] in
               ("Exception", "BaseException") for n in names)


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True for cleanup guards: the handler's last statement re-raises."""
    last = handler.body[-1]
    return isinstance(last, ast.Raise) and last.exc is None


@register_rule("F001", name="justified-broad-except",
               summary="except Exception requires a # noqa: BLE001 — "
                       "<reason> justification",
               fixer=lambda src: _fix_missing_justification(src))
def check_broad_except(sources: List[SourceFile]) -> Iterable[Finding]:
    for src in sources:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node) or _reraises(node):
                continue
            reason = ble_justification(src.line(node.lineno))
            if reason is None:
                yield Finding(
                    src.relpath, node.lineno, "F001",
                    "broad except without a # noqa: BLE001 — <reason> "
                    "justification", fixable=True)
            elif not reason:
                yield Finding(
                    src.relpath, node.lineno, "F001",
                    "# noqa: BLE001 pragma with an empty reason; say why "
                    "the broad except is safe")


def _fix_missing_justification(src: SourceFile) -> Optional[str]:
    """Append a TODO justification scaffold to unannotated broad excepts."""
    targets = []
    for node in ast.walk(src.tree):
        if isinstance(node, ast.ExceptHandler) and _is_broad(node) and \
                not _reraises(node) and \
                ble_justification(src.line(node.lineno)) is None:
            targets.append(node.lineno)
    if not targets:
        return None
    lines = src.text.splitlines(keepends=True)
    for lineno in targets:
        raw = lines[lineno - 1]
        stripped = raw.rstrip("\n")
        newline = raw[len(stripped):]
        lines[lineno - 1] = stripped + _SCAFFOLD + newline
    return "".join(lines)


def _taxonomy_names() -> frozenset:
    from repro.faults import INFRASTRUCTURE_FAULT_NAMES
    return INFRASTRUCTURE_FAULT_NAMES


@register_rule("F002", name="retryable-taxonomy",
               summary="retry-eligibility tuples may only contain "
                       "infrastructure-fault exception types")
def check_retryable_taxonomy(sources: List[SourceFile]) \
        -> Iterable[Finding]:
    taxonomy = None
    for src in sources:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Assign):
                continue
            names = [t.id for t in node.targets
                     if isinstance(t, ast.Name) and "RETRYABLE" in t.id]
            if not names or not isinstance(node.value, ast.Tuple):
                continue
            if taxonomy is None:
                taxonomy = _taxonomy_names()
            for elt in node.value.elts:
                dotted = dotted_name(elt)
                if dotted is None:
                    continue
                leaf = dotted.split(".")[-1]
                if leaf not in taxonomy:
                    yield Finding(
                        src.relpath, elt.lineno, "F002",
                        f"{leaf} in retry tuple {names[0]} is not an "
                        f"infrastructure fault (taxonomy: "
                        f"{', '.join(sorted(taxonomy))}); retrying it "
                        f"would mask a simulation bug")
