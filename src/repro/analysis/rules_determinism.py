"""D-rules: determinism contracts for the simulation core.

The whole caching/equivalence story rests on simulation being a pure
function of the scenario: same cell key, same stats, byte-identical
stdout.  Two rule families guard that:

* **D001** — no wall-clock, no entropy, no environment reads inside the
  deterministic sub-packages (``repro.{sim,vpu,core,compiler,isa,scalar,
  memory,power,workloads}``).  ``repro.faults`` seeds its own RNGs and
  ``repro.experiments`` measures wall-clock on purpose; both are
  allowlisted by scope, not by pragma.
* **D002** — no direct iteration over ``set`` values in those packages.
  Iteration order of a set is an implementation detail; anything that
  flows from it (free-list order, output order, hash input) silently
  couples results to the interpreter.  Dedupe with ``dict.fromkeys`` or
  iterate ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.registry import register_rule
from repro.analysis.reporting import Finding
from repro.analysis.walker import SourceFile, dotted_name

#: Modules whose import alone is a finding: everything they offer is a
#: source of entropy.
_FORBIDDEN_IMPORTS = frozenset({"random", "secrets"})

#: Fully-qualified callables that read the clock, the environment or an
#: entropy pool.
_FORBIDDEN_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "os.urandom", "os.getenv", "os.getenvb",
    "uuid.uuid1", "uuid.uuid4",
})

#: ``datetime.now()`` / ``date.today()`` style calls, matched on the last
#: two attribute components so both ``datetime.now`` and
#: ``datetime.datetime.now`` forms are caught.
_FORBIDDEN_TAILS = frozenset({
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
})

#: Attribute chains that are findings on *access*, not just call.
_FORBIDDEN_ATTRS = frozenset({"os.environ"})


def _is_seeded_default_rng(node: ast.Call) -> bool:
    """``np.random.default_rng(seed)`` with an explicit argument is fine."""
    return bool(node.args or node.keywords)


def _iter_d001(src: SourceFile) -> Iterable[Finding]:
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _FORBIDDEN_IMPORTS:
                    yield Finding(
                        src.relpath, node.lineno, "D001",
                        f"import of entropy module {alias.name!r} in "
                        f"deterministic code")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _FORBIDDEN_IMPORTS:
                yield Finding(
                    src.relpath, node.lineno, "D001",
                    f"import from entropy module {node.module!r} in "
                    f"deterministic code")
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            tail = tuple(parts[-2:])
            if name in _FORBIDDEN_CALLS:
                yield Finding(
                    src.relpath, node.lineno, "D001",
                    f"call to {name}() in deterministic code")
            elif len(parts) >= 2 and tail in _FORBIDDEN_TAILS and not (
                    node.args or node.keywords):
                yield Finding(
                    src.relpath, node.lineno, "D001",
                    f"argless {name}() reads the wall clock")
            elif len(parts) >= 2 and parts[-2] == "random" and \
                    parts[0] in ("np", "numpy"):
                if parts[-1] != "default_rng" or \
                        not _is_seeded_default_rng(node):
                    yield Finding(
                        src.relpath, node.lineno, "D001",
                        f"{name}() draws from unseeded global entropy; "
                        f"thread an explicitly seeded Generator instead")
        elif isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name in _FORBIDDEN_ATTRS:
                yield Finding(
                    src.relpath, node.lineno, "D001",
                    f"{name} access in deterministic code; configuration "
                    f"must flow through the Scenario")


@register_rule("D001", name="no-entropy",
               summary="no clock/entropy/environment reads in the "
                       "deterministic sub-packages")
def check_no_entropy(sources: List[SourceFile]) -> Iterable[Finding]:
    for src in sources:
        if not src.deterministic_scope:
            continue
        yield from _iter_d001(src)


def _set_valued(node: ast.AST) -> bool:
    """True when ``node`` evaluates to a bare set (literal or set() call)."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


def _iter_d002(src: SourceFile) -> Iterable[Finding]:
    for node in ast.walk(src.tree):
        iters: List[ast.AST] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _set_valued(it):
                yield Finding(
                    src.relpath, it.lineno, "D002",
                    "iteration over a set has interpreter-defined order; "
                    "use dict.fromkeys(...) to dedupe or sorted(...) to "
                    "order")


@register_rule("D002", name="no-set-iteration",
               summary="no direct iteration over set values in the "
                       "deterministic sub-packages")
def check_no_set_iteration(sources: List[SourceFile]) -> Iterable[Finding]:
    for src in sources:
        if not src.deterministic_scope:
            continue
        yield from _iter_d002(src)
