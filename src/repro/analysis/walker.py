"""Source collection and shared AST context for the lint rules.

A :class:`SourceFile` bundles everything a rule needs — the parsed AST,
the raw lines (for pragma lookups) and scope classification — so each
file is read and parsed exactly once per lint run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

#: Sub-packages of ``repro`` whose code must be deterministic (D-rules).
#: ``repro.faults`` and ``repro.experiments`` are deliberately absent:
#: fault plans seed themselves and executors measure wall-clock time.
DETERMINISTIC_PACKAGES = frozenset({
    "sim", "vpu", "core", "compiler", "isa", "scalar", "memory", "power",
    "workloads",
})


@dataclass
class SourceFile:
    """One parsed Python source file under analysis."""

    path: Path
    text: str
    tree: ast.Module
    #: Path relative to the repo's ``src`` directory when the file lives
    #: under ``src/repro``; otherwise the path as given.
    relpath: str
    #: ``repro`` sub-package name ("sim", "vpu", ...) or None for files
    #: outside the package (explicitly passed fixtures).
    subpackage: Optional[str]
    lines: List[str] = field(default_factory=list)

    def line(self, lineno: int) -> str:
        """1-based source line, empty string when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    @property
    def deterministic_scope(self) -> bool:
        """True when the D-rules apply to this file.

        Files inside ``src/repro`` are in scope iff they belong to one of
        the deterministic sub-packages; files outside the package (test
        fixtures passed explicitly) are always in scope — the fixture is
        standing in for core code.
        """
        if self.subpackage is None:
            return "repro" not in Path(self.relpath).parts
        return self.subpackage in DETERMINISTIC_PACKAGES


def _classify(path: Path) -> tuple[str, Optional[str]]:
    parts = path.resolve().parts
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        rel = "/".join(parts[idx:])
        inner = parts[idx + 1:-1]
        sub = inner[0] if inner else None
        return rel, sub
    return str(path), None


def load_source(path: Path) -> SourceFile:
    """Read and parse one file (raises SyntaxError on unparsable input)."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    relpath, subpackage = _classify(path)
    return SourceFile(path=path, text=text, tree=tree, relpath=relpath,
                      subpackage=subpackage, lines=text.splitlines())


def collect_sources(paths: List[Path]) -> List[SourceFile]:
    """Expand files/directories into parsed sources, sorted by path."""
    files: List[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    seen = set()
    sources = []
    for f in files:
        resolved = f.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        sources.append(load_source(f))
    return sources


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
