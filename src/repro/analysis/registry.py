"""The lint-rule registry, mirroring ``repro.workloads.register_workload``.

A rule is a function ``check(sources) -> Iterable[Finding]`` registered
under a stable code (``D001``, ``K002``, ...).  Third-party or test rules
register through the same decorator the built-ins use; duplicate codes
fail loudly, exactly like workload name collisions.

    @register_rule("X001", name="no-eval",
                   summary="eval() is forbidden in core code")
    def check_no_eval(sources):
        ...
        yield Finding(path, line, "X001", "eval() call")

Rules that can be mechanically repaired attach a ``fixer`` callable
(``fixer(source) -> Optional[str]`` returning the rewritten text); these
are what ``repro lint --fix`` applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.analysis.reporting import Finding
from repro.analysis.walker import SourceFile

CheckFn = Callable[[List[SourceFile]], Iterable[Finding]]
FixFn = Callable[[SourceFile], Optional[str]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    name: str
    summary: str
    check: CheckFn
    fixer: Optional[FixFn] = None


_RULES: Dict[str, Rule] = {}


def register_rule(code: str, *, name: str, summary: str,
                  fixer: Optional[FixFn] = None) -> Callable[[CheckFn],
                                                             CheckFn]:
    """Decorator registering ``check`` under ``code``.

    Raises ValueError on a duplicate code — two rules silently shadowing
    each other is exactly the kind of bug this subsystem exists to stop.
    """

    def wrap(check: CheckFn) -> CheckFn:
        if code in _RULES:
            raise ValueError(
                f"lint rule code {code!r} is already registered "
                f"({_RULES[code].name})")
        _RULES[code] = Rule(code=code, name=name, summary=summary,
                            check=check, fixer=fixer)
        return check

    return wrap


def get_rule(code: str) -> Rule:
    try:
        return _RULES[code]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {code!r}; known: "
            f"{', '.join(sorted(_RULES))}") from None


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    return [_RULES[code] for code in sorted(_RULES)]


def rule_codes() -> List[str]:
    return sorted(_RULES)


def _reset_for_tests() -> Dict[str, Rule]:
    """Testing hook: snapshot the registry (callers restore it manually)."""
    return dict(_RULES)
