"""Finding objects and the text / JSON reporters for ``repro lint``."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Version stamp of the ``--json`` output shape; bump on any key change.
LINT_JSON_SCHEMA = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    path: str
    line: int
    code: str
    message: str
    fixable: bool = field(default=False, compare=False)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def render_text(findings: List[Finding], *, files_checked: int,
                rules_run: List[str],
                fixed: Optional[List[str]] = None) -> str:
    """Human-readable report, one ``file:line: CODE message`` per finding."""
    lines = [f.render() for f in sorted(findings)]
    if fixed:
        lines.extend(f"fixed: {path}" for path in fixed)
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"repro lint: {len(findings)} {noun} "
                 f"({files_checked} files, rules: {', '.join(rules_run)})")
    return "\n".join(lines)


def render_json(findings: List[Finding], *, files_checked: int,
                rules_run: List[str],
                fixed: Optional[List[str]] = None) -> str:
    """Machine-readable report (stable key order, one JSON object)."""
    payload: Dict = {
        "schema": LINT_JSON_SCHEMA,
        "files_checked": files_checked,
        "rules": sorted(rules_run),
        "count": len(findings),
        "findings": [
            {"path": f.path, "line": f.line, "code": f.code,
             "message": f.message, "fixable": f.fixable}
            for f in sorted(findings)
        ],
    }
    if fixed is not None:
        payload["fixed"] = sorted(fixed)
    return json.dumps(payload, indent=2, sort_keys=True)
