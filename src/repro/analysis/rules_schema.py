"""S-rules: cache-schema synchronisation and hot-path ``__slots__``.

* **S001** — the serialized shapes (``SimStats`` fields, the per-cell
  result payload keys) must match the committed schema lock; changing
  either without bumping ``CACHE_SCHEMA`` *and* regenerating the lock is
  a finding.  See :mod:`repro.analysis.schema_lock` for the protocol.
* **S002** — classes in the hot-path registry
  (:data:`repro.analysis.hotpath.HOT_PATH_CLASSES`) must declare
  ``__slots__`` (directly or via ``@dataclass(slots=True)``) or carry a
  justified ``# lint: slots-exempt(<why>)`` pragma.  Fixable: ``repro
  lint --fix`` derives the slot tuple from ``self.X = ...`` assignments
  in ``__init__`` and inserts it.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis import schema_lock
from repro.analysis.hotpath import HOT_PATH_CLASSES
from repro.analysis.pragmas import SLOTS_EXEMPT, has_pragma
from repro.analysis.registry import register_rule
from repro.analysis.reporting import Finding
from repro.analysis.walker import SourceFile


def _simstats_fields_from_ast(node: ast.ClassDef) -> List[str]:
    out = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name) and \
                not stmt.target.id.startswith("_"):
            out.append(stmt.target.id)
    return out


def _cache_schema_from_ast(src: SourceFile) -> Optional[int]:
    for node in src.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "CACHE_SCHEMA" and \
                        isinstance(node.value, ast.Constant):
                    return int(node.value.value)
    return None


def _run_cell_payload_keys(src: SourceFile) -> Optional[List[str]]:
    """String keys of the dict literal ``_run_cell`` returns, if defined."""
    for node in src.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "_run_cell":
            for sub in ast.walk(node):
                if isinstance(sub, ast.Return) and \
                        isinstance(sub.value, ast.Dict):
                    keys = [k.value for k in sub.value.keys
                            if isinstance(k, ast.Constant) and
                            isinstance(k.value, str)]
                    if keys:
                        return keys
    return None


@register_rule("S001", name="schema-sync",
               summary="SimStats / result-payload shape changes require a "
                       "CACHE_SCHEMA bump and a regenerated schema lock")
def check_schema_sync(sources: List[SourceFile]) -> Iterable[Finding]:
    locked_fields = tuple(schema_lock.LOCKED_SIMSTATS_FIELDS)
    locked_schema = schema_lock.LOCKED_CACHE_SCHEMA
    locked_keys = tuple(schema_lock.LOCKED_RESULT_KEYS)

    schema: Optional[int] = None
    schema_src: Optional[SourceFile] = None
    schema_line = 1
    stats_node: Optional[ast.ClassDef] = None
    stats_src: Optional[SourceFile] = None
    payload_keys: Optional[List[str]] = None
    payload_src: Optional[SourceFile] = None

    for src in sources:
        value = _cache_schema_from_ast(src)
        if value is not None:
            schema, schema_src = value, src
            for node in src.tree.body:
                if isinstance(node, ast.Assign) and any(
                        isinstance(t, ast.Name) and t.id == "CACHE_SCHEMA"
                        for t in node.targets):
                    schema_line = node.lineno
        keys = _run_cell_payload_keys(src)
        if keys is not None:
            payload_keys, payload_src = keys, src
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef) and node.name == "SimStats":
                stats_node, stats_src = node, src

    if stats_node is not None and stats_src is not None:
        live = tuple(_simstats_fields_from_ast(stats_node))
        if live != locked_fields:
            if schema is not None and schema != locked_schema:
                yield Finding(
                    stats_src.relpath, stats_node.lineno, "S001",
                    "SimStats shape changed and CACHE_SCHEMA was bumped; "
                    "regenerate the schema lock "
                    "(repro.analysis.schema_lock.render_lock())")
            else:
                added = sorted(set(live) - set(locked_fields))
                removed = sorted(set(locked_fields) - set(live))
                yield Finding(
                    stats_src.relpath, stats_node.lineno, "S001",
                    f"SimStats shape changed (added={added}, "
                    f"removed={removed}) without a CACHE_SCHEMA bump; "
                    f"stale cache entries would deserialize into the "
                    f"wrong shape")
        elif schema is not None and schema != locked_schema and \
                schema_src is not None:
            yield Finding(
                schema_src.relpath, schema_line, "S001",
                f"CACHE_SCHEMA is {schema} but the schema lock was "
                f"generated against {locked_schema}; regenerate the lock")

    if payload_keys is not None and payload_src is not None:
        if tuple(payload_keys) != locked_keys:
            yield Finding(
                payload_src.relpath, 1, "S001",
                f"_run_cell result payload keys {payload_keys} differ "
                f"from the locked shape {list(locked_keys)}; bump "
                f"CACHE_SCHEMA and regenerate the schema lock")


def _has_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name) and \
                stmt.target.id == "__slots__":
            return True
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            for kw in deco.keywords:
                if kw.arg == "slots" and \
                        isinstance(kw.value, ast.Constant) and \
                        kw.value.value is True:
                    return True
    return False


def _slots_exempt(src: SourceFile, node: ast.ClassDef) -> bool:
    linenos = [node.lineno] + [d.lineno for d in node.decorator_list]
    return any(has_pragma(src.line(n), SLOTS_EXEMPT) for n in linenos)


def _init_self_attrs(node: ast.ClassDef) -> List[str]:
    """Slot candidates: ``self.X = ...`` targets in ``__init__``, in order."""
    attrs: List[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for sub in ast.walk(stmt):
                targets = []
                if isinstance(sub, ast.Assign):
                    targets = sub.targets
                elif isinstance(sub, ast.AnnAssign):
                    targets = [sub.target]
                for t in targets:
                    if isinstance(t, ast.Attribute) and \
                            isinstance(t.value, ast.Name) and \
                            t.value.id == "self" and t.attr not in attrs:
                        attrs.append(t.attr)
    return attrs


def _fix_missing_slots(src: SourceFile) -> Optional[str]:
    """Insert a derived ``__slots__`` into hot-path classes lacking one."""
    insertions = []  # (insert-at-line0, indent, slots)
    for node in ast.walk(src.tree):
        if not (isinstance(node, ast.ClassDef) and
                node.name in HOT_PATH_CLASSES):
            continue
        if _has_slots(node) or _slots_exempt(src, node):
            continue
        attrs = _init_self_attrs(node)
        if not attrs:
            continue
        first = node.body[0]
        # Skip a docstring so the slots land after it, repo style.
        if isinstance(first, ast.Expr) and \
                isinstance(first.value, ast.Constant) and \
                isinstance(first.value.value, str) and len(node.body) > 1:
            first = node.body[1]
        indent = " " * first.col_offset
        rendered = ", ".join(f'"{a}"' for a in attrs)
        insertions.append((first.lineno - 1, indent,
                           f"{indent}__slots__ = ({rendered},)\n\n"))
    if not insertions:
        return None
    lines = src.text.splitlines(keepends=True)
    for line0, _indent, text in sorted(insertions, reverse=True):
        lines.insert(line0, text)
    return "".join(lines)


@register_rule("S002", name="hot-path-slots",
               summary="hot-path registry classes must declare __slots__ "
                       "or be slots-exempt",
               fixer=_fix_missing_slots)
def check_hot_path_slots(sources: List[SourceFile]) -> Iterable[Finding]:
    for src in sources:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef) and \
                    node.name in HOT_PATH_CLASSES:
                if not _has_slots(node) and not _slots_exempt(src, node):
                    yield Finding(
                        src.relpath, node.lineno, "S002",
                        f"hot-path class {node.name} has no __slots__ "
                        f"(add one, or # lint: slots-exempt(<why>))",
                        fixable=True)
