"""repro.analysis — the determinism & contract analyzer, and the sanitizer.

Two halves:

* ``repro lint`` (:func:`repro.analysis.cli.run_lint`) — a repo-specific
  static analyzer.  Rule families: **D** (determinism: no entropy/clock/
  environment reads, no set-iteration in the simulation core), **K**
  (cache-key completeness of the scenario dataclasses), **S** (cache-
  schema sync + hot-path ``__slots__``), **F** (fault-taxonomy discipline
  for broad excepts and retry tuples).  The repo self-hosts: ``repro
  lint`` runs clean over ``src/repro`` in CI.
* ``Simulator(..., sanitize=True)``
  (:class:`repro.analysis.sanitizer.PipelineSanitizer`) — a dynamic
  microarchitectural sanitizer checking VRF/ROB/RAT/span invariants on
  every uop event of either pipeline.

Importing this package registers the built-in rules.  The sanitizer
module deliberately has no dependencies on the rest of the package so the
pipelines can import it lazily without pulling in the analyzer.
"""

from repro.analysis import (  # noqa: F401  (import-for-registration)
    rules_determinism,
    rules_keys,
    rules_schema,
    rules_taxonomy,
)
from repro.analysis.cli import LintResult, default_lint_paths, run_lint
from repro.analysis.registry import all_rules, register_rule, rule_codes
from repro.analysis.reporting import LINT_JSON_SCHEMA, Finding
from repro.analysis.sanitizer import PipelineSanitizer, SanitizerError

__all__ = [
    "Finding",
    "LINT_JSON_SCHEMA",
    "LintResult",
    "PipelineSanitizer",
    "SanitizerError",
    "all_rules",
    "default_lint_paths",
    "register_rule",
    "rule_codes",
    "run_lint",
]
