"""The schema lock: the committed manifest S001 diffs the live code against.

``CACHE_SCHEMA`` gates every persistent payload (result cache, trace
store, shard files).  The rule "any diff-visible change to the stats
shape bumps the schema" is only enforceable if the *last agreed shape*
is recorded somewhere the analyzer can read — that record is this
module.

When a stats field is added/removed/renamed or the result payload grows
a key, ``repro lint`` fails with S001 until **both** of these happen in
the same change:

1. ``CACHE_SCHEMA`` in ``repro.experiments.engine`` is bumped, and
2. this lock is regenerated (:func:`render_lock` prints the new module
   text; paste it over the constants below).

That makes a silent schema drift — new field, old schema number, stale
cache entries deserializing into the wrong shape — a lint failure
instead of a debugging session.
"""

from __future__ import annotations

#: ``CACHE_SCHEMA`` value the manifest below was generated against.
LOCKED_CACHE_SCHEMA = 4

#: ``SimStats`` dataclass fields, in declaration order.
LOCKED_SIMSTATS_FIELDS = (
    "cycles", "committed", "arith_insts", "vloads", "vstores",
    "spill_loads", "spill_stores", "swap_loads", "swap_stores",
    "scalar_blocks", "fpu_element_ops", "vrf_reads", "vrf_writes",
    "mvrf_reads", "mvrf_writes", "l2_reads", "l2_writes", "l2_misses",
    "dram_accesses", "mem_beats", "rename_frl_stalls", "rename_rob_stalls",
    "preissue_victim_stalls", "preissue_queue_stalls",
    "preissue_writer_stalls", "issue_victim_stalls", "arith_busy_cycles",
    "mem_busy_cycles", "fast_forward_cycles", "events_processed",
    "cycles_skipped", "spans_charged", "span_cycles", "config_name",
    "program_name", "meta",
)

#: Top-level keys of the per-cell result payload (``_run_cell``'s return).
LOCKED_RESULT_KEYS = ("schema", "label", "stats", "energy", "correct")


def current_manifest() -> dict:
    """The live shape, reflected from the running code."""
    from dataclasses import fields

    from repro.experiments.engine import CACHE_SCHEMA
    from repro.sim.stats import SimStats

    return {
        "cache_schema": CACHE_SCHEMA,
        "simstats_fields": tuple(f.name for f in fields(SimStats)),
    }


def render_lock() -> str:
    """Regenerated constant block for this module, ready to paste."""
    live = current_manifest()
    lines = [f"LOCKED_CACHE_SCHEMA = {live['cache_schema']}", "",
             "LOCKED_SIMSTATS_FIELDS = ("]
    lines.extend(f"    {name!r}," for name in live["simstats_fields"])
    lines.append(")")
    return "\n".join(lines)
