"""Driver for ``repro lint``: rule selection, --fix, and report rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.registry import Rule, all_rules, get_rule
from repro.analysis.reporting import Finding, render_json, render_text
from repro.analysis.walker import SourceFile, load_source


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding]
    files_checked: int
    rules_run: List[str]
    output: str
    fixed: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def default_lint_paths(repo_root: Path) -> List[Path]:
    """What a bare ``repro lint`` analyzes: the whole ``repro`` package."""
    return [repo_root / "src" / "repro"]


def _collect(paths: Sequence[Path]) -> tuple:
    """(sources, syntax_findings): unparsable files become E001 findings."""
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    seen = set()
    sources: List[SourceFile] = []
    broken: List[Finding] = []
    for f in files:
        resolved = f.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        try:
            sources.append(load_source(f))
        except SyntaxError as exc:
            broken.append(Finding(str(f), exc.lineno or 1, "E001",
                                  f"file does not parse: {exc.msg}"))
    return sources, broken


def _apply_fixes(sources: List[SourceFile],
                 rules: Sequence[Rule]) -> tuple:
    """Run each rule's fixer to a fixed point; returns (sources, fixed)."""
    fixed: List[str] = []
    fixers = [r.fixer for r in rules if r.fixer is not None]
    out: List[SourceFile] = []
    for src in sources:
        current = src
        changed = False
        for fixer in fixers:
            # A fixer returns the full rewritten text, or None when the
            # file is already clean — which is also the idempotence test.
            for _ in range(8):
                new_text = fixer(current)
                if new_text is None or new_text == current.text:
                    break
                current.path.write_text(new_text, encoding="utf-8")
                current = load_source(current.path)
                changed = True
        if changed:
            fixed.append(current.relpath)
        out.append(current)
    return out, fixed


def run_lint(paths: Sequence[Path], *, rules: Optional[Sequence[str]] = None,
             as_json: bool = False, fix: bool = False) -> LintResult:
    """Run the analyzer over ``paths`` and render a report.

    ``rules`` filters by code ("D001") or family prefix ("D"); None runs
    everything.  With ``fix=True`` the fixable rules rewrite files in
    place before checks run, so the report reflects the repaired tree.
    """
    if rules:
        selected: List[Rule] = []
        for want in rules:
            if len(want) > 1 and want[1:].isdigit():
                selected.append(get_rule(want))
            else:
                family = [r for r in all_rules()
                          if r.code.startswith(want)]
                if not family:
                    raise KeyError(f"no lint rules in family {want!r}")
                selected.extend(family)
        # Stable order, dedupe repeats from overlapping selections.
        chosen = sorted({r.code: r for r in selected}.values(),
                        key=lambda r: r.code)
    else:
        chosen = all_rules()

    sources, findings = _collect(paths)
    fixed: List[str] = []
    if fix:
        sources, fixed = _apply_fixes(sources, chosen)
    for rule in chosen:
        findings.extend(rule.check(sources))

    codes = [r.code for r in chosen]
    render = render_json if as_json else render_text
    output = render(findings, files_checked=len(sources),
                    rules_run=codes, fixed=fixed if fix else None)
    return LintResult(findings=sorted(findings), files_checked=len(sources),
                      rules_run=codes, output=output, fixed=fixed)
