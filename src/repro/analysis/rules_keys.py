"""K-rules: cache-key completeness for the scenario/signature dataclasses.

The persistent caches are only sound if every field that can change a
result reaches the hash.  PR 6 made the cell key hash the *full scenario*
(machine + timing + memory + policy), which holds exactly as long as the
serialization layer keeps up with the dataclasses.  These rules make the
contract mechanical:

* **K001** — every declared field of a key dataclass (:class:`Scenario`,
  :class:`TimingParams`, :class:`MemorySystemConfig`, :class:`CellPolicy`,
  :class:`CompileSignature`) must appear as a key somewhere in the real
  serialized cache-key payload, or carry an explicit
  ``# lint: key-exempt(<why>)`` pragma on its definition line.  The payload
  key set is computed by *running* the real ``Scenario.to_dict()`` — the
  rule can never drift from the serializer it polices.
* **K002** — a key dataclass that hand-writes ``from_dict`` must mention
  every declared field inside it (a dropped field deserializes to its
  default and silently collides cache entries).  Classes deserialized by
  generic kwargs-splat reflection (``TimingParams(**data)``) are exempt by
  construction.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.pragmas import KEY_EXEMPT, has_pragma
from repro.analysis.registry import register_rule
from repro.analysis.reporting import Finding
from repro.analysis.walker import SourceFile

#: Dataclasses whose fields must reach cache-key hashing.
KEY_CLASSES = frozenset({
    "Scenario", "TimingParams", "MemorySystemConfig", "CellPolicy",
    "CompileSignature",
})


def _class_fields(node: ast.ClassDef) -> List[Tuple[str, int]]:
    """(name, lineno) of each annotated field in a dataclass body."""
    out: List[Tuple[str, int]] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            if not name.startswith("_") and not name.isupper():
                out.append((name, stmt.lineno))
    return out


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = getattr(target, "id", None) or getattr(target, "attr", None)
        if name == "dataclass":
            return True
    return False


def _key_payload_names() -> Set[str]:
    """Key names reachable in the real cache-key payload, flattened.

    Computed from the live serializers so the rule polices the actual
    hash input, not a parallel list that could rot.
    """
    from repro.compiler.signature import CompileSignature
    from repro.core.config import ava_config
    from repro.sim.scenario import Scenario

    def flatten(value, out: Set[str]) -> None:
        if isinstance(value, dict):
            for key, sub in value.items():
                out.add(str(key))
                flatten(sub, out)

    names: Set[str] = set()
    flatten(Scenario(machine=ava_config(2)).to_dict(), names)
    flatten(CompileSignature(mvl=64, n_logical=32).to_dict(), names)
    return names


def _target_classes(src: SourceFile) -> Iterable[ast.ClassDef]:
    for node in ast.walk(src.tree):
        if isinstance(node, ast.ClassDef) and node.name in KEY_CLASSES \
                and _is_dataclass(node):
            yield node


@register_rule("K001", name="key-coverage",
               summary="every field of a cache-key dataclass reaches the "
                       "serialized key payload or is key-exempt")
def check_key_coverage(sources: List[SourceFile]) -> Iterable[Finding]:
    payload: Optional[Set[str]] = None
    for src in sources:
        for node in _target_classes(src):
            for name, lineno in _class_fields(node):
                if has_pragma(src.line(lineno), KEY_EXEMPT):
                    continue
                if payload is None:
                    payload = _key_payload_names()
                if name not in payload:
                    yield Finding(
                        src.relpath, lineno, "K001",
                        f"field {node.name}.{name} never reaches the "
                        f"cache-key payload; serialize it or mark it "
                        f"# lint: key-exempt(<why>)")


def _from_dict_names(node: ast.ClassDef) -> Optional[Set[str]]:
    """Identifier-ish names mentioned inside ``from_dict``, or None."""
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "from_dict":
            names: Set[str] = set()
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Constant) and \
                        isinstance(sub.value, str):
                    names.add(sub.value)
                elif isinstance(sub, ast.keyword) and sub.arg:
                    names.add(sub.arg)
                elif isinstance(sub, ast.Attribute):
                    names.add(sub.attr)
            return names
    return None


@register_rule("K002", name="key-roundtrip",
               summary="a hand-written from_dict on a cache-key dataclass "
                       "restores every declared field")
def check_key_roundtrip(sources: List[SourceFile]) -> Iterable[Finding]:
    for src in sources:
        for node in _target_classes(src):
            mentioned = _from_dict_names(node)
            if mentioned is None:
                continue  # generic kwargs-splat construction
            for name, lineno in _class_fields(node):
                if has_pragma(src.line(lineno), KEY_EXEMPT):
                    continue
                if name not in mentioned:
                    yield Finding(
                        src.relpath, lineno, "K002",
                        f"{node.name}.from_dict never restores field "
                        f"{name!r}; a serialized value would silently "
                        f"fall back to the default")
