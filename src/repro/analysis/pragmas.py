"""Lint pragma comments: explicit, justified exemptions.

Every exemption the analyzer honours must carry a reason in the source —
an empty justification is itself a finding.  Three forms exist:

* ``# lint: key-exempt(<why>)`` — a dataclass field deliberately excluded
  from cache-key hashing (K-rules);
* ``# lint: slots-exempt(<why>)`` — a hot-path class that intentionally
  keeps ``__dict__`` (S-rules; e.g. :class:`Instruction`'s shared derived-
  attribute cache);
* ``# noqa: BLE001 — <reason>`` — the repo's pre-existing justification
  idiom for a deliberate broad ``except Exception`` (F-rules).  A plain
  ASCII ``-`` separator is accepted too.
"""

from __future__ import annotations

import re
from typing import Dict, Optional

_LINT_PRAGMA = re.compile(r"#\s*lint:\s*([a-z-]+)\s*\(([^)]*)\)")
_BLE_PRAGMA = re.compile(r"#\s*noqa:\s*BLE001\s*(?:[—-]\s*(.*))?$")

KEY_EXEMPT = "key-exempt"
SLOTS_EXEMPT = "slots-exempt"


def lint_pragma(line: str) -> Optional[Dict[str, str]]:
    """Parse a ``# lint: <kind>(<why>)`` pragma from a source line.

    Returns ``{"kind": ..., "why": ...}`` or None.  The ``why`` may be
    empty — callers decide whether an unjustified pragma is acceptable
    (it never is; see the rule implementations).
    """
    match = _LINT_PRAGMA.search(line)
    if match is None:
        return None
    return {"kind": match.group(1), "why": match.group(2).strip()}


def has_pragma(line: str, kind: str) -> bool:
    """True when ``line`` carries a *justified* pragma of ``kind``."""
    found = lint_pragma(line)
    return found is not None and found["kind"] == kind and bool(found["why"])


def ble_justification(line: str) -> Optional[str]:
    """The reason attached to a ``# noqa: BLE001`` pragma, if present.

    Returns the (possibly empty) reason string when the pragma exists,
    None when there is no pragma at all.
    """
    match = _BLE_PRAGMA.search(line)
    if match is None:
        return None
    return (match.group(1) or "").strip()
