"""Dynamic microarchitectural sanitizer: a TSan-analog for the simulated VPU.

Enabled via ``Simulator(..., sanitize=True)`` (or ``repro figure3
--sanitize``), a :class:`PipelineSanitizer` rides along with either pipeline
implementation and checks invariants the equivalence suite can only observe
indirectly:

* **VRF read-before-write** — a physical register allocated as a
  destination must be written (by its producer's issue-time execute, or by a
  Swap-Load's ``swap_in``) before any micro-op reads it.  The only legal
  unwritten read is the SRAM reset state of a never-defined source, which
  the pre-issue stage classifies explicitly.
* **Double-write-per-cycle** — no physical register takes two write-port
  accesses in the same cycle (the banks are 4R/2W per *lane*, but one
  register never has two same-cycle writers under the rename discipline).
* **Swap-Store read ordering** — a register freed by eviction with a
  Swap-Store in flight must not be overwritten by its new owner before the
  store's streaming read happened (issue rule 1 made observable).
* **ROB in-order commit** — committed micro-ops carry strictly sequential
  ``rob_index`` stamps and are DONE at commit time.
* **RAT mapping consistency** — the speculative RAT stays injective and
  disjoint from the FRL after every rename.
* **VRF mapping consistency** — :meth:`VRFMapping.invariant_check` runs on
  every residency transition, not just at test boundaries.
* **Span-accounting conservation** — ``span_cycles == spans_charged +
  cycles_skipped`` after *every* fast-forward interval, not just at the end
  of the run.

The sanitizer is wired through two kinds of probe points: ``sanitizer``
attributes on the core structures (:class:`VRFMapping`,
:class:`ReorderBuffer`, :class:`RenameTable`, :class:`TwoLevelVRF`) for the
operations both pipelines route through method calls, and direct hooks in
the pipeline stage methods for the paths the event-driven scheduler inlines
(commit, rename, the counters-only execute fast paths).  Every hook site is
guarded by a single ``is not None`` test, so a non-sanitizing run pays one
attribute check per uop-event and nothing else.

Violations raise :class:`SanitizerError` immediately (first finding wins)
with the cycle, the offending micro-op and the check name attached.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

# Physical-register value states.
_AWAIT_WRITE = 0  # allocated as a destination; producer has not executed
_READABLE = 1  # written, or explicitly classified as legal reset-state


class SanitizerError(RuntimeError):
    """A microarchitectural invariant violation caught by the sanitizer.

    Attributes:
        check: short name of the violated invariant.
        cycle: simulated cycle at which the violation was observed.
        uop: ``describe()`` string of the involved micro-op, if any.
    """

    def __init__(self, check: str, cycle: int, detail: str,
                 uop: Optional[str] = None, label: str = "") -> None:
        self.check = check
        self.cycle = cycle
        self.uop = uop
        where = f" [{label}]" if label else ""
        who = f" uop={uop}" if uop else ""
        super().__init__(
            f"sanitizer:{check}{where} at cycle {cycle}:{who} {detail}")


class PipelineSanitizer:
    """Shadow state and invariant checks for one pipeline instance."""

    __slots__ = ("label", "_clock", "_rat", "_mapping", "_preg",
                 "_last_write", "_pending_swap_reads", "_commits",
                 "checks_run")

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._clock: Callable[[], int] = lambda: -1
        self._rat = None
        self._mapping = None
        # preg -> _AWAIT_WRITE / _READABLE shadow state.
        self._preg: Dict[int, int] = {}
        # preg -> cycle of its most recent write (double-write check).
        self._last_write: Dict[int, int] = {}
        # preg -> number of emitted-but-unexecuted Swap-Stores that must
        # stream the old value out before any new owner writes it.
        self._pending_swap_reads: Dict[int, int] = {}
        self._commits = 0
        #: Total invariant evaluations, reported as evidence that a clean
        #: run actually checked something.
        self.checks_run = 0

    def bind(self, clock: Callable[[], int], rat=None, mapping=None) -> None:
        """Attach the pipeline's clock and the structures scanned whole."""
        self._clock = clock
        self._rat = rat
        self._mapping = mapping

    # -- helpers ---------------------------------------------------------------
    def _fail(self, check: str, detail: str, uop=None) -> None:
        described = uop.describe() if uop is not None else None
        raise SanitizerError(check, self._clock(), detail, uop=described,
                             label=self.label)

    # -- VRF mapping probes (fired from VRFMapping itself) ---------------------
    def on_map_alloc(self, vvr: int, preg: int) -> None:
        self.checks_run += 1
        if self._mapping is not None:
            self._mapping.invariant_check()
        # Default classification: a fresh mapping awaits its producer's
        # write.  The pre-issue never-defined-source path overrides this
        # with on_reset_alloc (reading the SRAM reset state is legal).
        self._preg[preg] = _AWAIT_WRITE

    def on_map_evict(self, vvr: int, preg: int) -> None:
        self.checks_run += 1
        if self._mapping is not None:
            self._mapping.invariant_check()
        self._preg.pop(preg, None)

    def on_map_release(self, vvr: int, preg: Optional[int]) -> None:
        self.checks_run += 1
        if self._mapping is not None:
            self._mapping.invariant_check()
        if preg is not None:
            self._preg.pop(preg, None)

    def on_reset_alloc(self, preg: int) -> None:
        """Pre-issue classified this register as a legal reset-state read."""
        self._preg[preg] = _READABLE

    # -- execute-path hooks (fired from the pipeline stage methods) ------------
    def on_execute(self, uop) -> None:
        """Record the issue-time VRF traffic of a regular (non-swap) uop."""
        now = self._clock()
        for preg in uop.src_pregs:
            self._read(preg, uop, now)
        inst = uop.inst
        if inst.is_arith or inst.is_load:
            self._write(uop.dst_preg, uop, now)

    def _read(self, preg: int, uop, now: int) -> None:
        self.checks_run += 1
        state = self._preg.get(preg)
        if state is None:
            self._fail("vrf-read-unmapped",
                       f"read of physical register {preg} which holds no "
                       f"live mapping", uop)
        elif state == _AWAIT_WRITE:
            self._fail("vrf-read-before-write",
                       f"physical register {preg} read before its "
                       f"producer wrote it", uop)

    def _write(self, preg: int, uop, now: int) -> None:
        self.checks_run += 1
        if self._pending_swap_reads.get(preg, 0) > 0:
            self._fail("swap-store-overwrite",
                       f"physical register {preg} written while an emitted "
                       f"Swap-Store has not yet streamed the old value out",
                       uop)
        if self._last_write.get(preg) == now:
            self._fail("vrf-double-write",
                       f"physical register {preg} written twice in the "
                       f"same cycle", uop)
        self._last_write[preg] = now
        self._preg[preg] = _READABLE

    # -- swap data movement (fired from TwoLevelVRF + squash hooks) ------------
    def on_swap_store_emitted(self, preg: int) -> None:
        pending = self._pending_swap_reads
        pending[preg] = pending.get(preg, 0) + 1

    def on_swap_out(self, vvr: int, preg: int) -> None:
        """A Swap-Store streamed the evicted value out of ``preg``."""
        self.checks_run += 1
        pending = self._pending_swap_reads
        count = pending.get(preg, 0)
        if count <= 0:
            self._fail("swap-store-unexpected",
                       f"Swap-Store read of physical register {preg} "
                       f"without a recorded emission (VVR {vvr})")
        pending[preg] = count - 1

    def on_swap_squashed(self, preg: int) -> None:
        """A Swap-Store's generation died in flight; its read never happens."""
        self.checks_run += 1
        pending = self._pending_swap_reads
        count = pending.get(preg, 0)
        if count <= 0:
            self._fail("swap-store-unexpected",
                       f"Swap-Store squash on physical register {preg} "
                       f"without a recorded emission")
        pending[preg] = count - 1

    def on_swap_in(self, vvr: int, preg: int) -> None:
        """A Swap-Load streamed the M-VRF value into ``preg``: a write."""
        self._write(preg, None, self._clock())

    # -- commit / rename -------------------------------------------------------
    def on_commit(self, uop) -> None:
        self.checks_run += 1
        now = self._clock()
        if uop.rob_index != self._commits:
            self._fail("rob-out-of-order",
                       f"committed rob_index {uop.rob_index}, expected "
                       f"{self._commits} (commits are sequential)", uop)
        self._commits += 1
        if uop.done_at > now:
            self._fail("rob-early-commit",
                       f"committed before completion (done_at="
                       f"{uop.done_at})", uop)

    def on_rename(self) -> None:
        self.checks_run += 1
        rat = self._rat
        if rat is None:
            return
        mapped = rat._rat
        if len(set(mapped)) != len(mapped):
            self._fail("rat-aliased",
                       "two logical registers map to the same VVR in the "
                       "speculative RAT")
        free = set(rat._frl)
        if len(free) != len(rat._frl):
            self._fail("rat-frl-duplicate", "duplicate VVR in the FRL")
        overlap = free.intersection(mapped)
        if overlap:
            self._fail("rat-frl-live",
                       f"VVRs {sorted(overlap)} are both mapped and free")

    # -- span accounting -------------------------------------------------------
    def on_span(self, stats) -> None:
        """Per-interval conservation: every fast-forward leaves the span
        counters balanced, not just the end-of-run totals."""
        self.checks_run += 1
        if stats.span_cycles != stats.spans_charged + stats.cycles_skipped:
            self._fail("span-conservation",
                       f"span_cycles={stats.span_cycles} != spans_charged="
                       f"{stats.spans_charged} + cycles_skipped="
                       f"{stats.cycles_skipped} after a fast-forward "
                       f"interval")

    def on_run_end(self, stats) -> None:
        self.checks_run += 1
        if stats.span_cycles != stats.spans_charged + stats.cycles_skipped:
            self._fail("span-conservation",
                       f"span_cycles={stats.span_cycles} != spans_charged="
                       f"{stats.spans_charged} + cycles_skipped="
                       f"{stats.cycles_skipped} at end of run")
        if stats.fast_forward_cycles != stats.cycles_skipped:
            self._fail("span-conservation",
                       f"fast_forward_cycles={stats.fast_forward_cycles} "
                       f"!= cycles_skipped={stats.cycles_skipped}")
