"""The hot-path class registry: structures required to declare ``__slots__``.

These classes are instantiated or touched per micro-op (or per physical
register) inside the simulation inner loop; an accidental ``__dict__``
costs both memory and attribute-lookup time at exactly the wrong place.
The registry keys on class *names* so the rule also applies to test
fixtures standing in for core code.

A class that deliberately keeps ``__dict__`` opts out with
``# lint: slots-exempt(<why>)`` on its ``class`` (or decorator) line —
:class:`repro.isa.instructions.Instruction` does, because its derived-
attribute cache writes through ``__dict__.update``.
"""

from __future__ import annotations

#: Class names that must define ``__slots__`` (directly, or via
#: ``@dataclass(slots=True)``).  "ROB"/"RAT"/"RAC" from the issue tracker
#: shorthand resolve to the actual class names used in ``repro.core``.
HOT_PATH_CLASSES = frozenset({
    "MicroOp",          # core.uop — one per instruction per strip
    "ReorderBuffer",    # core.rob ("ROB")
    "RegisterAccessCounters",  # core.rac ("RAC")
    "RenameTable",      # core.rat ("RAT")
    "VRFMapping",       # core.vrf_mapping
    "Instruction",      # isa.instructions (slots-exempt, with the why)
})
