"""Area, energy and physical-design models (the paper's McPAT + Cadence).

Three layers:

* :mod:`repro.power.technology` — the 22nm constants, calibrated once
  against the paper's published anchors (Fig. 4 component areas, Table V
  post-PnR rows) and frozen;
* :mod:`repro.power.sram` / :mod:`repro.power.mcpat` — CACTI-lite SRAM
  geometry plus component assembly: per-configuration area reports and
  per-run energy reports consuming :class:`repro.sim.stats.SimStats`;
* :mod:`repro.power.physical` / :mod:`repro.power.floorplan` — the
  synthesis/place-and-route surrogate behind Table V and Figure 5.
"""

from repro.power.technology import Technology, TECH_22NM
from repro.power.sram import SramMacro, sram_area_mm2, sram_leakage_mw, sram_access_energy_pj
from repro.power.mcpat import AreaReport, EnergyReport, McPatModel
from repro.power.physical import PhysicalDesignModel, PnrResult
from repro.power.floorplan import Floorplan, build_floorplan

__all__ = [
    "Technology",
    "TECH_22NM",
    "SramMacro",
    "sram_area_mm2",
    "sram_leakage_mw",
    "sram_access_energy_pj",
    "AreaReport",
    "EnergyReport",
    "McPatModel",
    "PhysicalDesignModel",
    "PnrResult",
    "Floorplan",
    "build_floorplan",
]
