"""Block floorplanner for Figure 5's chip plots.

Produces a simplified rectangular floorplan of the VPU matching the paper's
layout description: eight lanes in two columns (blocks A–H), the Vector
Memory Unit (I), ROB (J), instruction queue (K), the remaining modules (L),
the AVA structures (M, only on AVA dies), and the VRF memory macros placed
at the corners — "VRF memory macros can be identified on the corners".

The floorplan also yields an average SRAM-to-lane wire-length estimate,
which is the mechanism §VII blames for NATIVE X8's negative slack; a unit
test checks that the estimate grows with the macro area the way the WNS
surrogate assumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.core.config import MachineConfig, MachineMode
from repro.power.physical import PhysicalDesignModel
from repro.power.technology import TECH_22NM, Technology


@dataclass(frozen=True)
class Block:
    """One placed rectangle (µm coordinates)."""

    label: str
    name: str
    x: float
    y: float
    width: float
    height: float

    @property
    def centre(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def area_um2(self) -> float:
        return self.width * self.height


@dataclass
class Floorplan:
    """A placed die."""

    config_name: str
    die_width_um: float
    die_height_um: float
    blocks: List[Block] = field(default_factory=list)

    @property
    def die_area_mm2(self) -> float:
        return self.die_width_um * self.die_height_um * 1e-6

    def average_macro_lane_wire_um(self) -> float:
        """Mean centre-to-centre distance from VRF macros to lane logic."""
        macros = [b for b in self.blocks if b.name.startswith("VRF")]
        lanes = [b for b in self.blocks if b.name.startswith("lane")]
        if not macros or not lanes:
            return 0.0
        total = 0.0
        count = 0
        for m in macros:
            mx, my = m.centre
            for lane in lanes:
                lx, ly = lane.centre
                total += abs(mx - lx) + abs(my - ly)  # Manhattan
                count += 1
        return total / count

    def ascii_art(self, width: int = 60, height: int = 24) -> str:
        """Render the floorplan as ASCII (Fig. 5 style)."""
        grid = [[" "] * width for _ in range(height)]
        sx = width / self.die_width_um
        sy = height / self.die_height_um
        for block in self.blocks:
            x0 = int(block.x * sx)
            y0 = int(block.y * sy)
            x1 = max(x0 + 1, int((block.x + block.width) * sx))
            y1 = max(y0 + 1, int((block.y + block.height) * sy))
            for y in range(y0, min(y1, height)):
                for x in range(x0, min(x1, width)):
                    grid[y][x] = block.label
        border = "+" + "-" * width + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in grid)
        return f"{border}\n{body}\n{border}"

    def legend(self) -> str:
        seen = {}
        for b in self.blocks:
            seen.setdefault(b.label, b.name)
        return "  ".join(f"{label}={name}" for label, name in
                         sorted(seen.items()))


def build_floorplan(config: MachineConfig,
                    tech: Technology = TECH_22NM) -> Floorplan:
    """Place the VPU blocks for one configuration (Fig. 5)."""
    pnr = PhysicalDesignModel(tech).evaluate(config)
    # The paper's dies: NATIVE X8 is 2600×1500 µm, AVA 1800×1100 µm; keep
    # the published 26:15 aspect ratio and size the die from the PnR area.
    aspect = 2600.0 / 1500.0
    area_um2 = pnr.area_mm2 * 1e6
    die_h = math.sqrt(area_um2 / aspect)
    die_w = aspect * die_h

    plan = Floorplan(config.name, die_w, die_h)
    blocks = plan.blocks

    # VRF macros at the four corners.
    macro_um2 = pnr.vrf_macro_area_mm2 * 1e6
    quarter = macro_um2 / 4.0
    mw = math.sqrt(quarter * aspect)
    mh = quarter / mw
    for label, (cx, cy) in zip("WXYZ", ((0, 0), (1, 0), (0, 1), (1, 1))):
        blocks.append(Block(
            label="#", name=f"VRF macro {label}",
            x=cx * (die_w - mw), y=cy * (die_h - mh), width=mw, height=mh))

    # Eight lanes in two columns between the corner macros.
    lane_labels = "ABCDEFGH"
    inner_w = die_w - 2 * mw
    lane_w = inner_w / 2.0
    lane_h = die_h / 4.0 * 0.72
    for i, label in enumerate(lane_labels):
        col = i % 2
        row = i // 2
        blocks.append(Block(
            label=label, name=f"lane {i + 1}",
            x=mw + col * lane_w, y=row * (die_h / 4.0),
            width=lane_w, height=lane_h))

    # Shared blocks along the horizontal midline strips.
    strip_h = die_h / 4.0 * 0.28
    shared = [("I", "VMU"), ("J", "ROB"), ("K", "IQ"), ("L", "misc")]
    seg = inner_w / len(shared)
    for i, (label, name) in enumerate(shared):
        blocks.append(Block(
            label=label, name=name,
            x=mw + i * seg, y=die_h / 4.0 * 0.72,
            width=seg, height=strip_h))

    if config.mode is MachineMode.AVA:
        s_um2 = pnr.ava_structs_area_mm2 * 1e6
        side = math.sqrt(s_um2)
        blocks.append(Block(
            label="M", name="AVA structures",
            x=mw + inner_w * 0.45, y=die_h * 0.48,
            width=max(side, die_w * 0.02), height=max(side, die_h * 0.02)))

    return plan
