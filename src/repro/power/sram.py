"""CACTI-lite SRAM model: area, access energy and leakage vs size and ports.

A deliberately small analytical model with the scaling laws that matter for
the paper's comparisons:

* **area** grows linearly with capacity and with port count (each additional
  port beyond the 2-port base cell adds ``port_area_factor`` of the cell);
* **access energy** grows with the square root of capacity (bitline/wordline
  length) and linearly with... nothing else at this fidelity;
* **leakage** is proportional to area.

The constants are anchored so a 4R/2W VRF matches the paper's published
Fig. 4 points exactly (8 KB -> 0.18 mm², 64 KB -> 1.41 mm²).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.power.technology import TECH_22NM, Technology

#: Reference VRF size for the sqrt energy scaling.
_REF_KB = 8.0


def _port_scale(ports: int, tech: Technology) -> float:
    """Area multiplier of a ``ports``-port cell relative to the anchor."""
    anchor = 1.0 + tech.port_area_factor * (tech.vrf_ports - 2)
    return (1.0 + tech.port_area_factor * (max(ports, 2) - 2)) / anchor


def sram_area_mm2(size_bytes: int, ports: int = 6,
                  tech: Technology = TECH_22NM) -> float:
    """Silicon area of an SRAM of ``size_bytes`` with ``ports`` ports."""
    if size_bytes < 0:
        raise ValueError("size must be non-negative")
    kb = size_bytes / 1024.0
    return tech.vrf_mm2_per_kb * kb * _port_scale(ports, tech)


def sram_leakage_mw(size_bytes: int, ports: int = 6,
                    tech: Technology = TECH_22NM) -> float:
    """Leakage power, proportional to area."""
    kb = size_bytes / 1024.0
    return tech.vrf_leak_mw_per_kb * kb * _port_scale(ports, tech)


def sram_access_energy_pj(size_bytes: int, element_bytes: int = 8,
                          tech: Technology = TECH_22NM) -> float:
    """Energy of one ``element_bytes`` access (sqrt-capacity scaling)."""
    kb = max(size_bytes / 1024.0, 0.25)
    scale = math.sqrt(kb / _REF_KB) * (element_bytes / 8.0)
    return tech.vrf_pj_per_element * scale


@dataclass(frozen=True)
class SramMacro:
    """A named SRAM instance with its derived physical properties."""

    name: str
    size_bytes: int
    ports: int = 6
    tech: Technology = TECH_22NM

    @property
    def area_mm2(self) -> float:
        return sram_area_mm2(self.size_bytes, self.ports, self.tech)

    @property
    def leakage_mw(self) -> float:
        return sram_leakage_mw(self.size_bytes, self.ports, self.tech)

    @property
    def access_energy_pj(self) -> float:
        return sram_access_energy_pj(self.size_bytes, tech=self.tech)

    def describe(self) -> str:
        return (f"{self.name}: {self.size_bytes // 1024} KB, {self.ports} "
                f"ports, {self.area_mm2:.3f} mm², {self.leakage_mw:.2f} mW "
                f"leak, {self.access_energy_pj:.2f} pJ/access")
