"""Synthesis / place-and-route surrogate (Table V, §VII).

The paper implements AVA on the Hydra VPU at RTL and reports post-PnR
figures from Cadence Genus/Innovus on GF 22FDX at a 1 GHz target.  No RTL
tools exist in this environment, so this module provides an **analytical
surrogate anchored at the paper's two published rows** (NATIVE X8 and AVA)
that models the mechanisms the paper credits for the differences:

* VRF macro area/power follow memory-compiler scaling laws (sub-linear in
  capacity) fitted through the two published macro figures;
* logic area carries a wiring/floorplan overhead proportional to macro area
  (big macros push lane logic apart);
* worst negative slack degrades with the square root of chip area — the
  paper attributes NATIVE X8's failed timing to "longer wires between the
  SRAMs and the lane logic";
* placement density falls slowly with chip area.

Because the model is anchored, it reproduces Table V exactly at the two
published points and *extrapolates* the intermediate NATIVE configurations
(X2–X4), which the paper does not report — a useful extension for the
benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import MachineConfig, MachineMode
from repro.power.technology import TECH_22NM, Technology


@dataclass(frozen=True)
class PnrResult:
    """One Table V row."""

    config_name: str
    wns_ns: float
    power_mw: float
    area_mm2: float
    density_pct: float
    vrf_macro_power_mw: float
    vrf_macro_area_mm2: float
    ava_structs_power_mw: float
    ava_structs_area_mm2: float

    @property
    def meets_timing(self) -> bool:
        return self.wns_ns >= 0.0

    @property
    def achievable_ghz(self) -> float:
        """Highest clock the critical path supports."""
        period = 1.0 - self.wns_ns  # target period minus slack = path delay
        return 1.0 / period if period > 0 else float("inf")

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("WNS (ns)", f"{self.wns_ns:+.3f}"),
            ("Power (mW)", f"{self.power_mw:.0f}"),
            ("Area (mm2)", f"{self.area_mm2:.2f}"),
            ("Density", f"{self.density_pct:.1f}%"),
            ("-VRF macros (mW / mm2)",
             f"{self.vrf_macro_power_mw:.0f} / {self.vrf_macro_area_mm2:.3f}"),
            ("-AVA structures (mW / mm2)",
             f"{self.ava_structs_power_mw:.3f} / "
             f"{self.ava_structs_area_mm2:.4f}"),
        ]


class PhysicalDesignModel:
    """Anchored post-PnR estimator for VPU configurations."""

    def __init__(self, tech: Technology = TECH_22NM) -> None:
        self.tech = tech

    def _vrf_kb(self, config: MachineConfig) -> float:
        if config.mode is MachineMode.NATIVE:
            return config.vrf_bytes / 1024.0
        return 8.0  # AVA and RG implement the baseline 8 KB P-VRF

    def evaluate(self, config: MachineConfig) -> PnrResult:
        tech = self.tech
        kb = self._vrf_kb(config)
        macro_area = tech.pnr_macro_area_coeff * kb ** tech.pnr_macro_area_exp
        macro_power = (tech.pnr_macro_power_coeff
                       * kb ** tech.pnr_macro_power_exp)

        has_ava = config.mode is MachineMode.AVA
        structs_area = tech.pnr_ava_structs_mm2 if has_ava else 0.0
        structs_power = tech.pnr_ava_structs_mw if has_ava else 0.0

        logic_area = (tech.pnr_base_logic_mm2
                      + tech.pnr_wiring_overhead
                      * (macro_area - tech.pnr_macro_area_coeff
                         * 8.0 ** tech.pnr_macro_area_exp))
        area = logic_area + macro_area + structs_area

        logic_power = (tech.pnr_base_logic_mw
                       + tech.pnr_power_per_mm2
                       * (area - tech.pnr_ref_area_mm2))
        power = logic_power + macro_power + structs_power

        wns = (tech.pnr_slack0_ns
               - tech.pnr_wire_delay_ns_per_sqrt_mm2
               * (math.sqrt(area) - math.sqrt(tech.pnr_ref_area_mm2)))
        density = (tech.pnr_density0
                   - tech.pnr_density_slope
                   * (area - tech.pnr_ref_area_mm2))

        return PnrResult(
            config_name=config.name,
            wns_ns=wns,
            power_mw=power,
            area_mm2=area,
            density_pct=density,
            vrf_macro_power_mw=macro_power,
            vrf_macro_area_mm2=macro_area,
            ava_structs_power_mw=structs_power,
            ava_structs_area_mm2=structs_area,
        )

    def area_reduction_vs(self, config_a: MachineConfig,
                          config_b: MachineConfig) -> float:
        """Fractional chip-area reduction of A relative to B (§VII: 50.7%)."""
        a = self.evaluate(config_a).area_mm2
        b = self.evaluate(config_b).area_mm2
        return 1.0 - a / b
