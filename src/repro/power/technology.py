"""22nm technology constants.

Two kinds of numbers live here:

* **Anchored** constants are taken directly from the paper's published
  results (Fig. 4 component areas; Table V post-PnR rows) — the model must
  reproduce those points exactly by construction.
* **Calibrated** constants (per-event dynamic energies, leakage powers) are
  plausible 22nm figures tuned once so the paper's *energy shape* statements
  hold in this reproduction's (smaller, cache-warm) workload regime:
  axpy saves ~37% total energy when reconfigured to X8 (leakage-dominated);
  Somier's energy is dominated by L2 leakage; spill/swap-heavy X8 runs burn
  visibly more dynamic energy.  Because the simulated problem sizes are
  scaled down from the gem5 testbed, leakage powers carry a single
  workload-scale factor (documented below) that keeps the leakage-to-dynamic
  ratio in the paper's regime; all cross-configuration ratios are unaffected
  by this factor.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """One technology node's model constants."""

    name: str = "GF 22nm (22FDX-class)"

    # ---- anchored areas (mm², from Fig. 4) --------------------------------
    #: 4R/2W VRF SRAM, per KB (0.18 mm² at 8 KB ... 1.41 mm² at 64 KB).
    vrf_mm2_per_kb: float = 0.022
    #: Port-count scaling of SRAM area relative to the 2-port base cell.
    port_area_factor: float = 0.15
    #: Reference port count of the anchored VRF figure (4R + 2W).
    vrf_ports: int = 6
    #: One lane's FPU datapath (8 lanes = 0.94 mm²).
    fpu_mm2_per_lane: float = 0.1175
    #: Scalar core pipeline.
    core_mm2: float = 1.04
    #: L1 instruction cache (32 KB).
    l1i_mm2: float = 0.14
    #: L1 data cache (32 KB, more ports).
    l1d_mm2: float = 0.29
    #: Unified 1 MB L2.
    l2_mm2: float = 2.46
    #: The AVA structures: RAT/PRMT/VRLT/RAC/PFRL + swap logic (0.55% of
    #: the baseline VPU).
    ava_structs_mm2: float = 0.0061

    # ---- calibrated dynamic energies ---------------------------------------
    #: One 64-bit FPU operation (pJ).
    fpu_pj_per_op: float = 15.0
    #: One 64-bit VRF element access at the 8 KB reference size (pJ);
    #: scales with sqrt(size) like a CACTI bitline model.
    vrf_pj_per_element: float = 4.0
    #: One 512-bit L2 access (pJ).
    l2_pj_per_access: float = 200.0
    #: One 512-bit DRAM line transfer (pJ).
    dram_pj_per_access: float = 2000.0
    #: AVA bookkeeping energy as a fraction of VPU dynamic energy (the
    #: paper reports 0.4% of VPU energy at X1).
    ava_dynamic_fraction: float = 0.004

    # ---- calibrated leakage powers (mW) -------------------------------------
    #: Includes the workload-scale factor (~6×) that maps the paper's
    #: second-scale runs onto this reproduction's microsecond-scale runs.
    l2_leak_mw: float = 240.0
    vrf_leak_mw_per_kb: float = 4.5
    fpu_leak_mw_per_lane: float = 9.0
    ava_structs_leak_mw: float = 0.3

    # ---- Table V anchors (post-PnR surrogate) --------------------------------
    #: VRF macro area: mm² = pnr_macro_area_coeff * KB ** pnr_macro_area_exp
    #: (fits AVA 8 KB -> 0.257 mm² and NATIVE X8 64 KB -> 1.252 mm²).
    pnr_macro_area_coeff: float = 0.0529
    pnr_macro_area_exp: float = 0.76
    #: VRF macro power: mW = coeff * KB ** exp (184 mW @ 8 KB, 388 @ 64 KB).
    pnr_macro_power_coeff: float = 86.9
    pnr_macro_power_exp: float = 0.359
    #: Wiring/floorplan overhead of logic area per mm² of macro area.
    pnr_wiring_overhead: float = 0.934
    #: Base (AVA) logic area and power after removing macros and structures.
    pnr_base_logic_mm2: float = 1.719
    pnr_base_logic_mw: float = 1542.7
    #: Extra logic/clock-tree power per mm² of additional chip area.
    pnr_power_per_mm2: float = 187.0
    #: Worst negative slack model: wns = slack0 - k·(sqrt(A) - sqrt(A0)).
    pnr_slack0_ns: float = 0.119
    pnr_wire_delay_ns_per_sqrt_mm2: float = 0.639
    #: Placement density: d = d0 - k·(A - A0).
    pnr_density0: float = 61.8
    pnr_density_slope: float = 0.417
    #: AVA structures at PnR (Table V).
    pnr_ava_structs_mm2: float = 0.0042
    pnr_ava_structs_mw: float = 5.266
    #: Reference chip area (the AVA configuration).
    pnr_ref_area_mm2: float = 1.98

    #: Target clock (GHz) of the physical implementation.
    pnr_clock_ghz: float = 1.0


#: The technology file every experiment uses.
TECH_22NM = Technology()
