"""McPAT-lite: per-configuration area and per-run energy reports.

Reproduces the two McPAT products the paper uses:

* **Figure 4** — component areas per configuration plus performance/mm²
  (average speedup divided by *VPU* area, matching the paper's right axis);
* **Figure 3, column 4** — per-application energy split into the main
  contributors the paper reports: L2 dynamic/leakage, VRF dynamic/leakage
  (AVA's bookkeeping energy is folded into the VRF bars, as the paper
  describes), and FPU dynamic/leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.core.config import MachineConfig, MachineMode
from repro.power.sram import sram_access_energy_pj, sram_area_mm2, sram_leakage_mw
from repro.power.technology import TECH_22NM, Technology
from repro.sim.stats import SimStats, VPU_HZ


@dataclass(frozen=True)
class AreaReport:
    """Component areas (mm²) of one machine configuration."""

    config_name: str
    vrf: float
    fpus: float
    ava_structs: float
    core: float
    l1i: float
    l1d: float
    l2: float

    @property
    def vpu(self) -> float:
        """The vector processing unit (what the paper's 53% claim covers)."""
        return self.vrf + self.fpus + self.ava_structs

    @property
    def total(self) -> float:
        return self.vpu + self.core + self.l1i + self.l1d + self.l2

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("VPU VRF", self.vrf),
            ("VPU FPUs", self.fpus),
            ("AVA structures", self.ava_structs),
            ("Core pipeline", self.core),
            ("L1-I", self.l1i),
            ("L1-D", self.l1d),
            ("L2 cache", self.l2),
        ]


@dataclass(frozen=True)
class EnergyReport:
    """Energy (nJ) of one simulation run, split like Fig. 3 column 4."""

    config_name: str
    program_name: str
    l2_dynamic: float
    l2_leakage: float
    vrf_dynamic: float
    vrf_leakage: float
    fpu_dynamic: float
    fpu_leakage: float
    dram_dynamic: float
    seconds: float

    @property
    def total(self) -> float:
        return (self.l2_dynamic + self.l2_leakage + self.vrf_dynamic
                + self.vrf_leakage + self.fpu_dynamic + self.fpu_leakage)

    @property
    def dynamic(self) -> float:
        return self.l2_dynamic + self.vrf_dynamic + self.fpu_dynamic

    @property
    def leakage(self) -> float:
        return self.l2_leakage + self.vrf_leakage + self.fpu_leakage

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("L2 dynamic", self.l2_dynamic),
            ("L2 leakage", self.l2_leakage),
            ("VRF dynamic", self.vrf_dynamic),
            ("VRF leakage", self.vrf_leakage),
            ("FPU dynamic", self.fpu_dynamic),
            ("FPU leakage", self.fpu_leakage),
        ]

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe mapping (floats round-trip exactly through json)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyReport":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown EnergyReport fields: {sorted(unknown)}")
        return cls(**data)


class McPatModel:
    """Area/energy model over machine configurations and run statistics."""

    def __init__(self, tech: Technology = TECH_22NM) -> None:
        self.tech = tech

    # ---- area (Fig. 4) -------------------------------------------------------
    def area(self, config: MachineConfig) -> AreaReport:
        tech = self.tech
        has_ava = config.mode is MachineMode.AVA
        return AreaReport(
            config_name=config.name,
            vrf=sram_area_mm2(self._pvrf_bytes(config), ports=tech.vrf_ports,
                              tech=tech),
            fpus=tech.fpu_mm2_per_lane * config.lanes,
            ava_structs=tech.ava_structs_mm2 if has_ava else 0.0,
            core=tech.core_mm2,
            l1i=tech.l1i_mm2,
            l1d=tech.l1d_mm2,
            l2=tech.l2_mm2,
        )

    @staticmethod
    def _pvrf_bytes(config: MachineConfig) -> int:
        """Physical SRAM the configuration instantiates.

        AVA and RG always build the baseline 8 KB structure regardless of the
        MVL they are reconfigured to; NATIVE machines build the full-width
        register file (8–64 KB).
        """
        if config.mode is MachineMode.NATIVE:
            return config.vrf_bytes
        from repro.core.config import BASE_MVL, BASE_RENAMED_REGS
        from repro.isa.registers import ELEMENT_BYTES

        return BASE_RENAMED_REGS * BASE_MVL * ELEMENT_BYTES

    def performance_per_mm2(self, config: MachineConfig,
                            avg_speedup: float) -> float:
        """The paper's Fig. 4 right axis: average speedup per VPU mm²."""
        return avg_speedup / self.area(config).vpu

    # ---- energy (Fig. 3 column 4) ----------------------------------------------
    def energy(self, config: MachineConfig, stats: SimStats) -> EnergyReport:
        tech = self.tech
        seconds = stats.cycles / VPU_HZ
        pvrf_bytes = self._pvrf_bytes(config)

        l2_dyn = (stats.l2_reads + stats.l2_writes) * tech.l2_pj_per_access
        dram_dyn = stats.dram_accesses * tech.dram_pj_per_access
        vrf_access_pj = sram_access_energy_pj(pvrf_bytes, tech=tech)
        vrf_elements = (stats.vrf_reads + stats.vrf_writes
                        + stats.mvrf_reads + stats.mvrf_writes)
        vrf_dyn = vrf_elements * vrf_access_pj
        fpu_dyn = stats.fpu_element_ops * tech.fpu_pj_per_op

        if config.mode is MachineMode.AVA:
            # The paper folds the (0.4%-scale) AVA bookkeeping energy into
            # the VRF dynamic bars; do the same.
            vrf_dyn += (vrf_dyn + fpu_dyn) * tech.ava_dynamic_fraction

        l2_leak = tech.l2_leak_mw * 1e-3 * seconds * 1e9  # mW·s -> nJ
        vrf_leak = (sram_leakage_mw(pvrf_bytes, ports=tech.vrf_ports,
                                    tech=tech)
                    * 1e-3 * seconds * 1e9)
        if config.mode is MachineMode.AVA:
            vrf_leak += tech.ava_structs_leak_mw * 1e-3 * seconds * 1e9
        fpu_leak = (tech.fpu_leak_mw_per_lane * config.lanes
                    * 1e-3 * seconds * 1e9)

        return EnergyReport(
            config_name=config.name,
            program_name=stats.program_name,
            l2_dynamic=l2_dyn * 1e-3,  # pJ -> nJ
            l2_leakage=l2_leak,
            vrf_dynamic=vrf_dyn * 1e-3,
            vrf_leakage=vrf_leak,
            fpu_dynamic=fpu_dyn * 1e-3,
            fpu_leakage=fpu_leak,
            dram_dynamic=dram_dyn * 1e-3,
            seconds=seconds,
        )
