"""Single-source package version.

The authoritative version lives in ``pyproject.toml``.  Installed copies
read it back through importlib metadata; source checkouts run with
``PYTHONPATH=src`` (no dist-info on disk), so the fallback parses the
sibling ``pyproject.toml`` directly.  Either way there is exactly one
place to bump.
"""

from __future__ import annotations

import re
from importlib import metadata
from pathlib import Path

_DIST_NAME = "repro-ava"


def _from_pyproject() -> str | None:
    pyproject = Path(__file__).resolve().parent.parent.parent / "pyproject.toml"
    try:
        text = pyproject.read_text()
    except OSError:
        return None
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
    return match.group(1) if match else None


def _resolve() -> str:
    try:
        return metadata.version(_DIST_NAME)
    except metadata.PackageNotFoundError:
        return _from_pyproject() or "0.0.0+unknown"


__version__ = _resolve()
