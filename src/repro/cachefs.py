"""Crash-safe, umask-honouring JSON file stores shared by the caches.

Both persistent stores — the engine's :class:`~repro.experiments.engine.
ResultCache` (cell results) and the compiler's :class:`~repro.compiler.
store.TraceStore` (compiled instruction traces) — need the same disk
discipline:

* one JSON file per key, written atomically (tempfile + ``os.replace``)
  so concurrent processes can share a store directory;
* tempfiles orphaned by SIGKILL-ed writers reaped opportunistically, past
  a grace window so in-flight writers are never raced;
* entries chmod-ed to what a plain ``open()`` would have produced under
  the process umask, so a shared directory serves every user the umask
  promises to serve.

:class:`AtomicJsonStore` owns all of it; subclasses add only their schema
check (:meth:`AtomicJsonStore._validate`) and payload shapes.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Optional, Tuple, Union

_PROCESS_UMASK: Optional[int] = None


def process_umask() -> int:
    """The process umask, read once and reused for every store write.

    POSIX only exposes the umask by *setting* it, and that flip is
    process-global — concurrent executors flipping it per ``put`` could
    observe each other's transient zero.  Reading it a single time per
    process keeps every later write race-free (a process that changes its
    umask mid-run keeps the startup value, which is the documented
    shared-store contract).
    """
    global _PROCESS_UMASK
    if _PROCESS_UMASK is None:
        umask = os.umask(0)
        os.umask(umask)
        _PROCESS_UMASK = umask
    return _PROCESS_UMASK


class AtomicJsonStore:
    """Content-addressed JSON store: one file per key under ``root``.

    Writes are atomic (tempfile + ``os.replace``) so concurrent processes
    can share a store directory.  A writer killed between ``mkstemp`` and
    ``os.replace`` leaves a ``*.tmp`` orphan behind; those are reaped by
    :meth:`clear` (past a short grace, so in-flight writers are never
    raced) and — once per store instance, for stale ones — on :meth:`put`.
    """

    #: A ``*.tmp`` older than this is an orphan from a killed writer, not
    #: a concurrent in-flight write, and may be reaped.
    TMP_MAX_AGE_S = 3600.0

    #: :meth:`clear` reaps tempfiles past this much shorter grace — long
    #: enough that a concurrent writer between ``mkstemp`` and
    #: ``os.replace`` (milliseconds) is never raced, short enough that an
    #: explicit wipe still takes recent orphans with it.
    CLEAR_GRACE_S = 60.0

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._swept = False

    # -- layout ----------------------------------------------------------------
    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def stats(self) -> Tuple[int, int]:
        """(number of entries, total bytes) currently on disk."""
        entries = 0
        size = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                try:
                    size += entry.stat().st_size
                except OSError:
                    continue  # deleted concurrently
                entries += 1
        return entries, size

    # -- orphan reaping --------------------------------------------------------
    def sweep_orphans(self, max_age_s: Optional[float] = None) -> int:
        """Reap tempfiles abandoned by SIGKILL-ed writers; returns a count.

        Only files older than ``max_age_s`` (default
        :data:`TMP_MAX_AGE_S`) go, so a concurrent writer mid-``put`` is
        never raced; pass ``0`` to reap unconditionally.
        """
        if max_age_s is None:
            max_age_s = self.TMP_MAX_AGE_S
        cutoff = time.time() - max_age_s
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.tmp"):
                try:
                    if max_age_s <= 0 or entry.stat().st_mtime <= cutoff:
                        entry.unlink()
                        removed += 1
                except OSError:
                    pass  # another process reaped (or finished) it first
        return removed

    # -- payload validation ----------------------------------------------------
    def _validate(self, payload: dict) -> bool:
        """Subclass hook: is this payload structurally sound (right schema,
        required sections present)?  Failing entries read as misses."""
        return True

    # -- read / write / clear --------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """The stored payload, or None (corrupt entries are misses).

        Corrupt includes structurally truncated entries: valid JSON that
        fails the subclass :meth:`_validate` check must be re-derived by
        the caller, never crash it.
        """
        try:
            payload = json.loads(self.path(key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if not self._validate(payload):
            return None
        return payload

    def put(self, key: str, payload: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        if not self._swept:
            # Opportunistic orphan reaping, once per store instance so the
            # directory scan never becomes a per-put cost on hot sweeps.
            self._swept = True
            self.sweep_orphans()
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            # mkstemp creates the file 0600; widen to what a plain open()
            # would have produced under the process umask, or entries
            # written by one user are unreadable to the other processes the
            # shared-directory contract promises to serve.
            os.chmod(tmp, 0o666 & ~process_umask())
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry plus orphaned tempfiles; returns how many
        files were removed.

        Tempfiles younger than :data:`CLEAR_GRACE_S` survive: one may be
        a concurrent writer mid-``put``, and unlinking it would crash
        that writer's ``os.replace`` — entries, by contrast, can go at
        any age because replacing over a deleted path is safe.
        """
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                entry.unlink()
                removed += 1
            removed += self.sweep_orphans(max_age_s=self.CLEAR_GRACE_S)
        return removed
