"""Crash-safe, integrity-checked JSON file stores shared by the caches.

Both persistent stores — the engine's :class:`~repro.experiments.engine.
ResultCache` (cell results) and the compiler's :class:`~repro.compiler.
store.TraceStore` (compiled instruction traces) — need the same disk
discipline:

* one JSON file per key, written atomically (tempfile + ``os.replace``)
  so concurrent processes can share a store directory;
* an embedded sha256 content checksum, verified on every read: an entry
  whose bytes rotted (or were damaged by a crashed writer slipping past
  the atomic rename) is *quarantined* — moved to ``quarantine/`` for
  post-mortem — and reads as a miss, never as silently-wrong data;
* optional size-bounded LRU eviction (``max_bytes``): reads refresh an
  entry's mtime, writes evict the oldest entries until the store fits.
  Eviction only ever unlinks committed entries (never ``*.tmp`` files),
  and a concurrent writer's atomic rename re-commits unscathed, so two
  executors can evict against each other without losing in-flight
  writes;
* graceful degradation when the directory is unwritable (read-only
  filesystem, ENOSPC): the payload lands in an in-process overlay, one
  warning is emitted, and the run keeps going — a broken disk costs
  persistence, never results;
* tempfiles orphaned by SIGKILL-ed writers reaped opportunistically, past
  a grace window so in-flight writers are never raced;
* entries chmod-ed to what a plain ``open()`` would have produced under
  the process umask, so a shared directory serves every user the umask
  promises to serve.

:class:`AtomicJsonStore` owns all of it; subclasses add only their schema
check (:meth:`AtomicJsonStore._validate`), payload shapes and a
:data:`AtomicJsonStore.FAULT_SITE` name for the fault-injection layer
(:mod:`repro.faults`) to address them by.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import time
import warnings
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro import faults

_PROCESS_UMASK: Optional[int] = None


def process_umask() -> int:
    """The process umask, read once and reused for every store write.

    POSIX only exposes the umask by *setting* it, and that flip is
    process-global — concurrent executors flipping it per ``put`` could
    observe each other's transient zero.  Reading it a single time per
    process keeps every later write race-free (a process that changes its
    umask mid-run keeps the startup value, which is the documented
    shared-store contract).
    """
    global _PROCESS_UMASK
    if _PROCESS_UMASK is None:
        umask = os.umask(0)
        os.umask(umask)
        _PROCESS_UMASK = umask
    return _PROCESS_UMASK


class AtomicJsonStore:
    """Content-addressed JSON store: one checksummed file per key.

    On disk each entry is a wrapper object ``{"sha256": <digest>,
    "body": <payload JSON as a string>}`` — the digest covers the exact
    body bytes, so verification never depends on re-canonicalising the
    payload.  Reads verify the digest and quarantine mismatches; writes
    are atomic (tempfile + ``os.replace``) so concurrent processes can
    share a store directory.  A writer killed between ``mkstemp`` and
    ``os.replace`` leaves a ``*.tmp`` orphan behind; those are reaped by
    :meth:`clear` (past a short grace, so in-flight writers are never
    raced) and — once per store instance, for stale ones — on :meth:`put`.
    """

    #: A ``*.tmp`` older than this is an orphan from a killed writer, not
    #: a concurrent in-flight write, and may be reaped.
    TMP_MAX_AGE_S = 3600.0

    #: :meth:`clear` reaps tempfiles past this much shorter grace — long
    #: enough that a concurrent writer between ``mkstemp`` and
    #: ``os.replace`` (milliseconds) is never raced, short enough that an
    #: explicit wipe still takes recent orphans with it.
    CLEAR_GRACE_S = 60.0

    #: Where integrity failures go for post-mortem (a subdirectory, so
    #: ``*.json`` globs over the store root never see them).
    QUARANTINE_SUBDIR = "quarantine"

    #: Site name :mod:`repro.faults` cache specs match against.
    FAULT_SITE = "store"

    def __init__(self, root: Union[str, Path],
                 max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.quarantined = 0
        self.evicted = 0
        self._swept = False
        self._mem: Dict[str, dict] = {}
        self._warned_unwritable = False

    # -- layout ----------------------------------------------------------------
    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def quarantine_dir(self) -> Path:
        return self.root / self.QUARANTINE_SUBDIR

    def stats(self) -> Tuple[int, int]:
        """(number of entries, total bytes) currently on disk."""
        entries = 0
        size = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                try:
                    size += entry.stat().st_size
                except OSError:
                    continue  # deleted concurrently
                entries += 1
        return entries, size

    # -- orphan reaping --------------------------------------------------------
    def sweep_orphans(self, max_age_s: Optional[float] = None) -> int:
        """Reap tempfiles abandoned by SIGKILL-ed writers; returns a count.

        Only files older than ``max_age_s`` (default
        :data:`TMP_MAX_AGE_S`) go, so a concurrent writer mid-``put`` is
        never raced; pass ``0`` to reap unconditionally.
        """
        if max_age_s is None:
            max_age_s = self.TMP_MAX_AGE_S
        cutoff = time.time() - max_age_s
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.tmp"):
                try:
                    if max_age_s <= 0 or entry.stat().st_mtime <= cutoff:
                        entry.unlink()
                        removed += 1
                except OSError:
                    pass  # another process reaped (or finished) it first
        return removed

    # -- payload validation ----------------------------------------------------
    def _validate(self, payload: dict) -> bool:
        """Subclass hook: is this payload structurally sound (right schema,
        required sections present)?  Failing entries read as misses."""
        return True

    # -- read ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """The stored payload, or None.

        Misses cover the full damage taxonomy: absent files, integrity
        failures (undecodable bytes, checksum mismatch — quarantined on
        sight), entries from before the checksum format (``legacy``) and
        schema-failing payloads (``stale``).  The caller re-derives;
        nothing a store can contain crashes a read.
        """
        payload, _ = self._read(key)
        if payload is not None:
            return payload
        return self._mem.get(key)

    def _read(self, key: str) -> Tuple[Optional[dict], str]:
        """(payload, status) — status is one of ``ok`` / ``absent`` /
        ``quarantined`` / ``legacy`` / ``stale``."""
        path = self.path(key)
        try:
            raw = path.read_text()
        except OSError:
            return None, "absent"
        try:
            wrapper = json.loads(raw)
        except ValueError:
            self._quarantine(key)
            return None, "quarantined"
        if not (isinstance(wrapper, dict)
                and isinstance(wrapper.get("sha256"), str)
                and isinstance(wrapper.get("body"), str)):
            # Pre-checksum formats (and foreign JSON) are stale, not
            # corrupt: a miss, but nothing worth a post-mortem.
            return None, "legacy"
        body = wrapper["body"]
        if hashlib.sha256(body.encode()).hexdigest() != wrapper["sha256"]:
            self._quarantine(key)
            return None, "quarantined"
        try:
            payload = json.loads(body)
        except ValueError:
            # The digest matched, so the writer itself stored a non-JSON
            # body — damaged at write time: same post-mortem bucket.
            self._quarantine(key)
            return None, "quarantined"
        if not isinstance(payload, dict) or not self._validate(payload):
            return None, "stale"
        self._touch(path)
        return payload, "ok"

    def _touch(self, path: Path) -> None:
        """Refresh the entry's mtime so eviction is least-recently-USED,
        not least-recently-written."""
        if self.max_bytes is None:
            return  # unbounded stores skip the syscall on every hit
        try:
            os.utime(path)
        except OSError:
            pass  # read-only store: LRU degrades to insertion order

    def _quarantine(self, key: str) -> bool:
        """Move a damaged entry to the quarantine directory (same
        filesystem, atomic); count it.  On an unwritable store the entry
        stays put — it still reads as a miss either way."""
        try:
            qdir = self.quarantine_dir()
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(self.path(key), qdir / f"{key}.json")
        except OSError:
            return False
        self.quarantined += 1
        return True

    def verify(self) -> Dict[str, int]:
        """Check every entry's integrity; quarantine what fails.

        Returns counts: ``entries`` scanned, ``ok``, ``quarantined``
        (integrity failures moved aside), ``stale`` (wrong schema),
        ``legacy`` (pre-checksum format).  Safe to run concurrently with
        readers and writers — every individual step is atomic.
        """
        counts = {"entries": 0, "ok": 0, "quarantined": 0, "stale": 0,
                  "legacy": 0}
        if not self.root.is_dir():
            return counts
        for entry in sorted(self.root.glob("*.json")):
            payload, status = self._read(entry.stem)
            if status == "absent":
                continue  # deleted concurrently: nothing to verify
            counts["entries"] += 1
            counts[status] += 1
        return counts

    # -- write -----------------------------------------------------------------
    def put(self, key: str, payload: dict) -> None:
        """Persist a payload under ``key`` — or, if the store directory
        is unwritable (read-only filesystem, disk full), fall back to an
        in-process overlay with a single warning and keep going."""
        try:
            self._put_disk(key, payload)
        except OSError as exc:
            self._mem[key] = payload
            if not self._warned_unwritable:
                self._warned_unwritable = True
                warnings.warn(
                    f"cache at {self.root} is unwritable ({exc}); "
                    f"continuing with in-memory results — this run's new "
                    f"cells will not persist", RuntimeWarning,
                    stacklevel=3)

    def _put_disk(self, key: str, payload: dict) -> None:
        plan = faults.active_plan()
        fault = plan.cache_fault(self.FAULT_SITE, key) if plan else None
        if fault == faults.CACHE_READONLY:
            raise OSError(errno.EROFS,
                          "injected fault: read-only file system",
                          str(self.root))
        self.root.mkdir(parents=True, exist_ok=True)
        if not self._swept:
            # Opportunistic orphan reaping, once per store instance so the
            # directory scan never becomes a per-put cost on hot sweeps.
            self._swept = True
            self.sweep_orphans()
        # Insertion order, not sort_keys: the digest covers the body's
        # exact bytes (no canonical form needed), and consumers reload
        # dicts in the order the writer built them — allocation payloads
        # are replayed in that order.
        body = json.dumps(payload)
        digest = hashlib.sha256(body.encode()).hexdigest()
        if fault == faults.CACHE_CORRUPT:
            # Bit rot in miniature: the entry lands structurally intact
            # but its digest can never match — verify-on-read must catch
            # and quarantine it.
            digest = ("0" * 8) + digest[8:]
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump({"sha256": digest, "body": body}, fh)
                if fault == faults.CACHE_ENOSPC:
                    raise OSError(errno.ENOSPC,
                                  "injected fault: no space left on device",
                                  str(self.root))
            # mkstemp creates the file 0600; widen to what a plain open()
            # would have produced under the process umask, or entries
            # written by one user are unreadable to the other processes the
            # shared-directory contract promises to serve.
            os.chmod(tmp, 0o666 & ~process_umask())
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._evict(keep=key)

    # -- eviction --------------------------------------------------------------
    def _evict(self, keep: Optional[str] = None) -> int:
        """Unlink least-recently-used entries until the store fits
        ``max_bytes``; returns how many went.

        Never touches ``*.tmp`` files (a concurrent writer's in-flight
        bytes) and never evicts ``keep`` (the entry just written — with
        one pathological exception, a single entry larger than the whole
        budget, the bound holds after every put).  Unlink races with
        concurrent readers, writers and other evictors are all benign:
        a reader sees a miss, a writer's ``os.replace`` re-commits.
        """
        if self.max_bytes is None or not self.root.is_dir():
            return 0
        entries = []
        total = 0
        for entry in self.root.glob("*.json"):
            try:
                st = entry.stat()
            except OSError:
                continue  # evicted by a concurrent executor
            total += st.st_size
            entries.append((st.st_mtime, st.st_size, entry))
        if total <= self.max_bytes:
            return 0
        keep_path = self.path(keep) if keep is not None else None
        removed = 0
        for mtime, size, entry in sorted(entries, key=lambda e: (e[0],
                                                                 str(e[2]))):
            if total <= self.max_bytes:
                break
            if keep_path is not None and entry == keep_path:
                continue
            try:
                entry.unlink()
            except OSError:
                continue  # already gone: someone else evicted it
            total -= size
            removed += 1
        self.evicted += removed
        return removed

    # -- clear -----------------------------------------------------------------
    def clear(self) -> int:
        """Delete every entry plus orphaned tempfiles; returns how many
        files were removed.

        Safe against concurrent writers: the entry list is snapshotted up
        front and gated on the clear's start time, so an entry committed
        *while* the clear runs — a just-finished cell from a live
        executor — is never deleted, and a racing unlink (two concurrent
        clears) is not an error.  Tempfiles younger than
        :data:`CLEAR_GRACE_S` survive: one may be a concurrent writer
        mid-``put``, and unlinking it would crash that writer's
        ``os.replace`` — entries, by contrast, can go at any age because
        replacing over a deleted path is safe.
        """
        removed = 0
        started = time.time()
        if self.root.is_dir():
            for entry in list(self.root.glob("*.json")):
                try:
                    if entry.stat().st_mtime > started:
                        continue  # committed after the clear began
                    entry.unlink()
                except OSError:
                    continue  # a concurrent clear beat us to it
                removed += 1
            removed += self.sweep_orphans(max_age_s=self.CLEAR_GRACE_S)
        self._mem.clear()
        return removed
