"""Command-line regenerators: ``python -m repro <artifact>``.

Artifacts:

* ``table1`` .. ``table5`` — the paper's tables;
* ``figure3 <app>`` — one application's four-chart panel
  (``figure3 all`` runs the suite);
* ``figure4`` — areas and performance/mm²;
* ``figure5`` — the two floorplans;
* ``claims`` — every headline claim, paper vs measured.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables and figures of the AVA paper.")
    parser.add_argument("artifact",
                        choices=["table1", "table2", "table3", "table4",
                                 "table5", "figure3", "figure4", "figure5",
                                 "claims"])
    parser.add_argument("workload", nargs="?", default="axpy",
                        help="application for figure3 (or 'all')")
    args = parser.parse_args(argv)

    if args.artifact == "table1":
        from repro.experiments.tables import render_table1
        print(render_table1())
    elif args.artifact == "table2":
        from repro.experiments.tables import render_table2
        print(render_table2())
    elif args.artifact == "table3":
        from repro.experiments.tables import render_table3
        print(render_table3())
    elif args.artifact == "table4":
        from repro.experiments.tables import render_table4
        print(render_table4())
    elif args.artifact == "table5":
        from repro.experiments.tables import render_table5
        print(render_table5())
    elif args.artifact == "figure3":
        from repro.experiments.figure3 import build_panel
        from repro.workloads import WORKLOAD_NAMES
        names = (WORKLOAD_NAMES if args.workload == "all"
                 else [args.workload])
        for name in names:
            print(build_panel(name).render())
    elif args.artifact == "figure4":
        from repro.experiments.figure4 import build_figure4
        print(build_figure4().render())
    elif args.artifact == "figure5":
        from repro.experiments.figure5 import render_figure5
        print(render_figure5())
    else:
        from repro.experiments.figure3 import build_panel
        from repro.experiments.headline import (check_headline_claims,
                                                render_claims)
        panels = {name: build_panel(name)
                  for name in ("axpy", "blackscholes", "lavamd")}
        print(render_claims(check_headline_claims(panels)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
