"""Command-line regenerators: ``python -m repro <artifact>``.

Artifacts:

* ``table1`` .. ``table5`` — the paper's tables;
* ``figure3 <app>`` — one application's four-chart panel
  (``figure3 all`` runs Table IV's six; ``figure3 extended`` or
  ``--extended`` the full ten-kernel suite; ``--workloads a,b`` any
  registry selection — including kernels plugged in via
  :func:`repro.workloads.register_workload`);
* ``figure4`` — areas and performance/mm²;
* ``figure5`` — the two floorplans;
* ``claims`` — every headline claim, paper vs measured;
* ``sweep <spec.json>`` — any (workload × machine × memory × timing ×
  policy) grid from a declarative JSON spec file naming per-axis presets
  or inline overrides (see :mod:`repro.experiments.sweep`);
* ``sensitivity`` — the machine-axis sensitivity study (L2 latency, DRAM
  penalty, swap budget over AVA X4/X8 vs NATIVE);
* ``chaos <spec.json>`` — run the sweep three times (clean, under a
  seeded fault plan with worker kills / hangs / cache corruption, then
  warm over the scarred cache) and assert all three render byte-identical
  output with zero failed cells (``--seed`` picks the plan);
* ``merge <stats.json>...`` — combine per-shard ``--stats-json`` counter
  files (associative field-wise sums) into one batch summary, the
  ``merge-counters`` step of a sharded sweep;
* ``cache stats`` / ``cache clear [--traces|--results]`` /
  ``cache verify`` — inspect, prune or integrity-check the two
  persistent stores (cell results at ``--cache-dir``, compiled traces
  under its ``traces/`` subdirectory; ``verify`` re-hashes every entry
  and quarantines corruption).

Simulation-backed artifacts (``figure3``, ``figure4``, ``claims``) run
through the experiment-execution engine:

* ``--jobs N`` streams independent cells over N worker processes
  (output is byte-identical to a serial run); ``--jobs auto`` — the
  default — resolves to the CPUs this process may actually use
  (affinity-aware, so containerized CI never oversubscribes);
* ``--backend {auto,inline,pool,shard}`` picks the execution backend
  explicitly (``auto`` keeps the jobs contract: inline at 1, a pool
  above; ``shard`` partitions the grid into ``--shards N`` deterministic
  shards run sequentially) — stdout is byte-identical across backends;
* ``sweep --shards N --shard-index K`` runs only shard K of the grid
  (for fanning one sweep out over CI matrix jobs or separate hosts
  against a shared/synced cache dir); ``--stats-json FILE`` writes the
  run's engine counters for a later ``repro merge``;
* results persist in a content-addressed cache (``--cache-dir``,
  default ``.repro-cache``) so re-rendering any artifact — or another
  artifact sharing cells — is near-instant; ``--no-cache`` disables it.
  Every cell is cached the moment it completes, so an interrupted grid
  resumes by rerunning: finished cells replay as hits;
* ``--cache-stats`` prints hit/miss/simulation counters to stderr (plus
  a ``resilience:`` line — retries, timeouts, quarantined/evicted cache
  entries — whenever any of those is nonzero);
* ``--deadline S`` arms a per-cell deadline (a watchdog kills hung
  workers and retries the cell), ``--retries N`` bounds how many
  infrastructure failures a cell may survive (default 3), and
  ``--cache-max-bytes N`` bounds the result cache with LRU eviction;
* ``--progress`` / ``--no-progress`` force the live stderr progress line
  on or off (default: on when stderr is a terminal).  Progress never
  touches stdout, so piped artifacts stay byte-identical.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.engine import (DEFAULT_CACHE_DIR, ProgressRenderer,
                                      default_jobs, make_executor)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables and figures of the AVA paper.")
    from repro._version import __version__
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("artifact",
                        choices=["table1", "table2", "table3", "table4",
                                 "table5", "figure3", "figure4", "figure5",
                                 "claims", "bench", "sweep", "sensitivity",
                                 "chaos", "cache", "merge", "lint"])
    parser.add_argument("workload", nargs="?", default=None,
                        help="application for figure3 (a registered name, "
                             "'all' for Table IV, 'extended' for the "
                             "ten-kernel suite; default: axpy); benchmark "
                             "name for bench ('engine'); spec file path "
                             "for sweep and chaos; action for cache "
                             "('stats', 'clear' or 'verify'; default: "
                             "stats); first stats file for merge; first "
                             "path to analyze for lint (default: the "
                             "repro package)")
    parser.add_argument("files", nargs="*", default=[], metavar="FILE",
                        help="merge: further per-shard stats files "
                             "(written by --stats-json); lint: further "
                             "paths to analyze")
    parser.add_argument("--traces", action="store_true",
                        help="cache clear: prune only the trace store")
    parser.add_argument("--results", action="store_true",
                        help="cache clear: prune only the result store")
    parser.add_argument("--extended", action="store_true",
                        help="run the extended ten-kernel suite "
                             "(figure3 [all] / figure4 / claims / "
                             "bench engine)")
    parser.add_argument("--workloads", metavar="LIST",
                        help="comma-separated registered workload names: "
                             "the suite for figure3/figure4; for claims, "
                             "extra kernels simulated alongside the fixed "
                             "claim apps (not applicable to bench)")
    parser.add_argument("--bench-output", default="BENCH_engine.json",
                        metavar="FILE",
                        help="where 'bench engine' writes its JSON record "
                             "(default: BENCH_engine.json)")
    parser.add_argument("--profile", action="store_true",
                        help="bench engine: cProfile one cold grid run and "
                             "print/save the top cumulative functions")
    parser.add_argument("--jobs", "-j", default="auto", metavar="N",
                        help="worker processes for simulation cells: a "
                             "count, or 'auto' for the CPUs this process "
                             "may use (affinity-aware; the default)")
    parser.add_argument("--backend",
                        choices=["auto", "inline", "pool", "shard"],
                        default="auto",
                        help="execution backend (default: auto — inline "
                             "at --jobs 1, a process pool above; 'shard' "
                             "partitions the grid into --shards "
                             "deterministic shards); stdout is "
                             "byte-identical across backends")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shard count for --backend shard (default: 4) "
                             "or for --shard-index")
    parser.add_argument("--shard-index", type=int, default=None,
                        metavar="K",
                        help="sweep: run only shard K (0-based) of the "
                             "--shards N partition — for fanning one "
                             "sweep over several hosts/CI jobs against a "
                             "shared cache dir")
    parser.add_argument("--stats-json", default=None, metavar="FILE",
                        help="write the run's engine counters to FILE "
                             "(JSON) for a later 'repro merge'")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the result cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help="result-cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--cache-stats", action="store_true",
                        help="print engine cache/simulation counters "
                             "to stderr")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        metavar="N",
                        help="bound the result cache to N bytes with "
                             "least-recently-used eviction (default: "
                             "unbounded)")
    parser.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="per-cell deadline in seconds: hung cells "
                             "are killed and retried (default: none; "
                             "chaos defaults to its own)")
    parser.add_argument("--retries", type=int, default=3, metavar="N",
                        help="how many infrastructure failures (worker "
                             "death, timeout, transient I/O) one cell may "
                             "survive before failing (default: 3)")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="chaos: seed selecting the injected fault "
                             "plan (default: 0)")
    parser.add_argument("--rules", default=None, metavar="LIST",
                        help="lint: comma-separated rule codes (D001) or "
                             "families (D,K) to run (default: all rules)")
    parser.add_argument("--json", action="store_true",
                        help="lint: emit the machine-readable JSON report")
    parser.add_argument("--fix", action="store_true",
                        help="lint: mechanically repair fixable findings "
                             "(missing hot-path __slots__, missing "
                             "broad-except justification scaffolds) "
                             "before checking")
    parser.add_argument("--sanitize", action="store_true",
                        help="run every simulation cell under the "
                             "microarchitectural sanitizer (VRF/ROB/RAT/"
                             "span invariants checked per uop-event; "
                             "stats and stdout are byte-identical, cells "
                             "fail loudly on any violation)")
    parser.add_argument("--progress", dest="progress", action="store_true",
                        default=None,
                        help="render a live cells-done/hits/misses/rate "
                             "line on stderr (default: only when stderr "
                             "is a terminal; stdout is never touched)")
    parser.add_argument("--no-progress", dest="progress",
                        action="store_false",
                        help="disable the live progress line")
    args = parser.parse_args(argv)
    if args.jobs == "auto":
        args.jobs = default_jobs()
    else:
        try:
            args.jobs = int(args.jobs)
        except ValueError:
            parser.error(f"--jobs takes a count or 'auto', "
                         f"got {args.jobs!r}")
        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
    if args.files and args.artifact not in ("merge", "lint"):
        parser.error("extra positional arguments apply only to merge "
                     "and lint")
    if args.artifact != "lint" and (args.rules or args.json or args.fix):
        parser.error("--rules/--json/--fix apply only to lint")
    if args.sanitize and args.artifact in ("table1", "table2", "table3",
                                           "table4", "table5", "figure5",
                                           "bench", "chaos", "cache",
                                           "merge", "lint"):
        parser.error("--sanitize applies to simulation-backed artifacts "
                     "(figure3, figure4, claims, sweep, sensitivity)")
    if args.shard_index is not None:
        if args.artifact != "sweep":
            parser.error("--shard-index applies only to sweep")
        if args.backend == "shard":
            parser.error("--shard-index runs one shard through a normal "
                         "backend; it does not combine with "
                         "--backend shard")
        if args.shards is None:
            parser.error("--shard-index requires --shards N")
        if not 0 <= args.shard_index < args.shards:
            parser.error(f"--shard-index must be in [0, {args.shards})")
    if args.shards is not None:
        if args.shards < 1:
            parser.error("--shards must be >= 1")
        if args.backend != "shard" and args.shard_index is None:
            parser.error("--shards needs --backend shard or --shard-index")
    elif args.backend == "shard":
        args.shards = 4

    show_progress = (args.progress if args.progress is not None
                     else sys.stderr.isatty())
    renderer = ProgressRenderer() if show_progress else None
    try:
        return _dispatch(parser, args, renderer)
    finally:
        if renderer is not None:
            renderer.close()


def _dispatch(parser: argparse.ArgumentParser, args: argparse.Namespace,
              renderer: ProgressRenderer | None) -> int:
    if args.artifact == "merge":
        from repro.experiments.shard import render_merge
        paths = ([args.workload] if args.workload else []) + args.files
        if not paths:
            parser.error("merge needs at least one stats file: repro "
                         "merge shard-0.json shard-1.json ...")
        try:
            print(render_merge(paths))
        except ValueError as exc:
            parser.error(str(exc))
        return 0
    if args.artifact == "lint":
        return _lint_command(parser, args)
    if args.artifact == "cache":
        return _cache_command(parser, args)
    if args.traces or args.results:
        parser.error("--traces/--results apply only to 'cache clear'")
    if args.artifact in ("bench", "chaos") and args.stats_json:
        parser.error(f"--stats-json does not apply to {args.artifact}")
    if args.artifact == "chaos":
        if not args.workload:
            parser.error("chaos needs a JSON spec file: repro chaos "
                         "examples/sweep_smoke.json")
        if args.workloads or args.extended:
            parser.error("--workloads/--extended do not apply to chaos; "
                         "list the workloads in the spec file")
        if args.no_cache:
            parser.error("chaos exercises the cache under faults; "
                         "--no-cache does not apply")
        from repro.experiments.chaos import DEFAULT_DEADLINE_S, run_chaos
        from repro.experiments.sweep import parse_sweep
        try:
            parsed = parse_sweep(args.workload)
        except ValueError as exc:
            parser.error(str(exc))
        code = run_chaos(
            parsed, seed=args.seed, jobs=args.jobs,
            cache_dir=args.cache_dir,
            deadline_s=(args.deadline if args.deadline is not None
                        else DEFAULT_DEADLINE_S),
            retries=args.retries, progress=renderer,
            backend=args.backend, shards=args.shards or 4,
            stats_out=sys.stderr if args.cache_stats else None)
        if renderer is not None:
            renderer.close()
        return code
    if args.artifact == "bench":
        if args.workload != "engine":
            parser.error("available benchmarks: engine")
        if args.workloads:
            parser.error("--workloads does not apply to bench; "
                         "use --extended for the ten-kernel grid")
        if args.backend != "auto":
            parser.error("--backend does not apply to bench; the cold "
                         "throughput benchmark measures serial execution")
        from repro.experiments.bench import run_bench_engine
        return run_bench_engine(output=args.bench_output,
                                extended=args.extended,
                                profile=args.profile,
                                progress=renderer)

    from repro.workloads.registry import select_workloads

    def selection(default: str | None = None) -> list[str]:
        """Resolve --workloads / --extended (plus a positional default)."""
        try:
            return select_workloads(args.workloads or default,
                                    extended=args.extended)
        except KeyError as exc:
            parser.error(str(exc))

    executor = make_executor(jobs=args.jobs, cache=not args.no_cache,
                             cache_dir=args.cache_dir, progress=renderer,
                             deadline_s=args.deadline, retries=args.retries,
                             cache_max_bytes=args.cache_max_bytes,
                             backend=args.backend, shards=args.shards or 4,
                             sanitize=args.sanitize)
    try:
        code = _render_artifact(parser, args, executor, selection)
        if renderer is not None:
            renderer.close()  # never interleave stats with a live line
        if args.sanitize and code == 0:
            # Any violation would have raised SanitizerError inside its
            # cell and failed the run; reaching here means every checked
            # invariant held.  Diagnostics go to stderr so artifact
            # stdout stays byte-identical with and without --sanitize.
            print("sanitize: 0 sanitizer findings", file=sys.stderr)
        if args.cache_stats:
            print(executor.stats.summary(), file=sys.stderr)
        if args.stats_json:
            _write_stats_json(args, executor.stats)
        return code
    finally:
        executor.close()


def _lint_command(parser: argparse.ArgumentParser,
                  args: argparse.Namespace) -> int:
    """``repro lint [paths...] [--rules LIST] [--json] [--fix]``."""
    from pathlib import Path

    from repro.analysis import run_lint

    paths = [Path(p)
             for p in ([args.workload] if args.workload else []) + args.files]
    if not paths:
        # Default target: the installed repro package itself (src layout
        # or site-packages alike), so a bare ``repro lint`` self-hosts.
        paths = [Path(__file__).resolve().parent]
    for path in paths:
        if not path.exists():
            parser.error(f"lint path does not exist: {path}")
    rules = None
    if args.rules:
        rules = [tok.strip() for tok in args.rules.split(",") if tok.strip()]
    try:
        result = run_lint(paths, rules=rules, as_json=args.json,
                          fix=args.fix)
    except KeyError as exc:
        parser.error(str(exc))
    print(result.output)
    return result.exit_code


def _write_stats_json(args: argparse.Namespace, stats) -> None:
    """Persist one run's engine counters for a later ``repro merge``."""
    import json
    from pathlib import Path

    from repro.experiments.shard import stats_payload
    name = ""
    if args.artifact in ("sweep", "chaos") and args.workload:
        name = Path(args.workload).stem
    elif args.workload:
        name = args.workload
    payload = stats_payload(stats, artifact=args.artifact, name=name,
                            shards=args.shards,
                            shard_index=args.shard_index)
    Path(args.stats_json).write_text(json.dumps(payload, indent=2) + "\n")


def _format_size(n_bytes: int) -> str:
    if n_bytes >= 1024 * 1024:
        return f"{n_bytes / (1024 * 1024):.1f} MiB"
    if n_bytes >= 1024:
        return f"{n_bytes / 1024:.1f} KiB"
    return f"{n_bytes} B"


def _cache_command(parser: argparse.ArgumentParser,
                   args: argparse.Namespace) -> int:
    """``repro cache stats`` / ``repro cache clear [--traces|--results]``.

    Both stores live under ``--cache-dir``: cell results at the root,
    compiled traces in its ``traces/`` subdirectory.  ``clear`` prunes
    both unless narrowed by a flag.
    """
    from pathlib import Path

    from repro.compiler.store import TRACE_SUBDIR, TraceStore
    from repro.experiments.engine import ResultCache

    action = args.workload or "stats"
    if action not in ("stats", "clear", "verify"):
        parser.error(f"cache actions: stats, clear, verify (got {action!r})")
    if args.no_cache:
        parser.error("--no-cache does not apply to the cache command")
    if (args.traces or args.results) and action != "clear":
        parser.error("--traces/--results apply only to 'cache clear'")
    root = Path(args.cache_dir)
    results = ResultCache(root)
    traces = TraceStore(root / TRACE_SUBDIR)
    if action == "stats":
        print(f"cache at {root}")
        for label, store in (("results", results), ("traces", traces)):
            entries, size = store.stats()
            print(f"  {label}: {entries} entries, {_format_size(size)}")
    elif action == "verify":
        # Re-hash every entry; corruption is moved to quarantine/ (and
        # thereby re-simulates on the next run), stale/legacy entries are
        # reported but left in place — they already read as misses.
        bad = 0
        print(f"cache at {root}")
        for label, store in (("results", results), ("traces", traces)):
            counts = store.verify()
            print(f"  {label}: {counts['entries']} entries, "
                  f"{counts['ok']} ok, {counts['quarantined']} quarantined, "
                  f"{counts['stale']} stale, {counts['legacy']} legacy")
            bad += counts["quarantined"]
        return 1 if bad else 0
    else:
        # Neither flag means both stores, exactly like a full wipe.
        both = not (args.traces or args.results)
        if args.results or both:
            print(f"cleared {results.clear()} result entries")
        if args.traces or both:
            print(f"cleared {traces.clear()} trace entries")
    return 0


def _render_artifact(parser: argparse.ArgumentParser,
                     args: argparse.Namespace, executor,
                     selection) -> int:
    if args.artifact == "table1":
        from repro.experiments.tables import render_table1
        print(render_table1())
    elif args.artifact == "table2":
        from repro.experiments.tables import render_table2
        print(render_table2())
    elif args.artifact == "table3":
        from repro.experiments.tables import render_table3
        print(render_table3())
    elif args.artifact == "table4":
        from repro.experiments.tables import render_table4
        print(render_table4())
    elif args.artifact == "table5":
        from repro.experiments.tables import render_table5
        print(render_table5())
    elif args.artifact == "figure3":
        from repro.experiments.figure3 import build_panels
        # A bare `figure3` renders the axpy panel as always; a bare
        # `figure3 --extended` means the whole ten-kernel suite.  An
        # explicit positional name always wins over --extended.
        if args.workload is None and not args.extended:
            names = selection(default="axpy")
        else:
            names = selection(default=args.workload)
        panels = build_panels(names, executor=executor)
        for name in names:
            print(panels[name].render())
    elif args.artifact == "figure4":
        from repro.experiments.figure4 import build_figure4
        print(build_figure4(executor=executor,
                            workload_names=selection()).render())
    elif args.artifact == "figure5":
        from repro.experiments.figure5 import render_figure5
        print(render_figure5())
    elif args.artifact == "sweep":
        if not args.workload:
            parser.error("sweep needs a JSON spec file: repro sweep "
                         "examples/sensitivity.json")
        if args.workloads or args.extended:
            parser.error("--workloads/--extended do not apply to sweep; "
                         "list the workloads in the spec file")
        from repro.experiments.sweep import parse_sweep, run_sweep
        # Only parse-time problems are usage errors; a failure inside the
        # grid itself must surface as the exception it is.
        try:
            parsed = parse_sweep(args.workload)
        except ValueError as exc:
            parser.error(str(exc))
        if args.shard_index is not None:
            from repro.experiments.shard import run_sweep_shard
            print(run_sweep_shard(parsed, executor, shards=args.shards,
                                  shard_index=args.shard_index))
        else:
            print(run_sweep(parsed, executor=executor))
    elif args.artifact == "sensitivity":
        from repro.experiments.sensitivity import (SENSITIVITY_WORKLOAD,
                                                   build_sensitivity)
        if args.extended:
            parser.error("--extended does not apply to sensitivity")
        if args.workload in ("all", "extended"):
            # The positional selectors would re-open the whole-suite blowup
            # the --extended guard exists to prevent.
            parser.error("sensitivity runs specific applications; pass a "
                         "registered name (or --workloads a,b)")
        names = selection(default=args.workload or SENSITIVITY_WORKLOAD)
        for name in names:
            print(build_sensitivity(executor=executor,
                                    workload=name).render())
    else:
        from repro.experiments.headline import (check_headline_claims,
                                                render_claims)
        extra = selection() if (args.extended or args.workloads) else ()
        print(render_claims(check_headline_claims(executor=executor,
                                                  extra_workloads=extra)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
