"""Figure 3 regenerator: the per-application four-chart panels.

For one application the panel contains, like the paper's rows:

1. memory-instruction breakdown — VLoad / VStore / Spill-Load /
   Spill-Store / Swap-Load / Swap-Store per configuration;
2. vector instruction mix — % arithmetic vs % memory;
3. execution time (cycles, and seconds at the 1 GHz VPU clock) and speedup
   over NATIVE X1;
4. energy split into L2 / VRF / FPU dynamic and leakage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.engine import (CellExecutor, RunRecord,
                                      figure3_spec, fill_speedups,
                                      record_from_result)
from repro.experiments.rendering import render_bars, render_table
from repro.vpu.params import TimingParams


@dataclass
class Figure3Panel:
    """One application's full panel."""

    workload: str
    records: List[RunRecord]

    def memory_breakdown_rows(self) -> List[List[object]]:
        rows = []
        for r in self.records:
            s = r.stats
            rows.append([r.config.name, s.vloads, s.vstores, s.spill_loads,
                         s.spill_stores, s.swap_loads, s.swap_stores,
                         s.memory_insts])
        return rows

    def mix_rows(self) -> List[List[object]]:
        return [[r.config.name,
                 f"{r.stats.arith_fraction:.1%}",
                 f"{r.stats.memory_fraction:.1%}"]
                for r in self.records]

    def performance_rows(self) -> List[List[object]]:
        return [[r.config.name, r.stats.cycles,
                 f"{r.stats.seconds * 1e6:.2f}",
                 f"{r.speedup:.2f}"]
                for r in self.records]

    def energy_rows(self) -> List[List[object]]:
        rows = []
        for r in self.records:
            e = r.energy
            rows.append([r.config.name,
                         f"{e.l2_dynamic:.0f}", f"{e.l2_leakage:.0f}",
                         f"{e.vrf_dynamic:.0f}", f"{e.vrf_leakage:.0f}",
                         f"{e.fpu_dynamic:.0f}", f"{e.fpu_leakage:.0f}",
                         f"{e.total:.0f}"])
        return rows

    def render(self) -> str:
        parts = [f"=== Figure 3 panel: {self.workload} ==="]
        parts.append(f"-- ({self.workload}1) memory instructions --")
        parts.append(render_table(
            ["config", "VLoad", "VStore", "Spill-L", "Spill-S",
             "Swap-L", "Swap-S", "total"],
            self.memory_breakdown_rows()))
        parts.append(f"-- ({self.workload}2) vector instruction mix --")
        parts.append(render_table(["config", "Varithmetic", "Vmemory"],
                                  self.mix_rows()))
        parts.append(f"-- ({self.workload}3) execution time / speedup --")
        parts.append(render_table(
            ["config", "cycles", "time (us)", "speedup vs NATIVE X1"],
            self.performance_rows()))
        parts.append(render_bars([(r.config.name, r.speedup)
                                  for r in self.records], fmt="{:.2f}",
                                 unit="x"))
        parts.append(f"-- ({self.workload}4) energy (nJ) --")
        parts.append(render_table(
            ["config", "L2 dyn", "L2 leak", "VRF dyn", "VRF leak",
             "FPU dyn", "FPU leak", "total"],
            self.energy_rows()))
        return "\n".join(parts)

    def record(self, config_name: str) -> RunRecord:
        for r in self.records:
            if r.config.name == config_name:
                return r
        raise KeyError(config_name)


def build_panels(workload_names: Sequence[str],
                 params: Optional[TimingParams] = None,
                 check: bool = False,
                 executor: Optional[CellExecutor] = None,
                 label: str = "figure3") -> Dict[str, Figure3Panel]:
    """Run the Fig. 3 grid for several applications as ONE cell batch.

    Batching lets a parallel executor stream every (workload ×
    configuration) cell at once instead of panel by panel; results come
    back in grid order, so rendering is identical to the serial path.
    ``label`` names the batch in the executor's progress reporting.
    """
    executor = executor or CellExecutor()
    spec = figure3_spec(workload_names, params=params, check=check)
    results = executor.run_spec(spec, label=label)

    panels: Dict[str, Figure3Panel] = {}
    for name, chunk in spec.chunk_by_workload(results):
        records = fill_speedups([record_from_result(r) for r in chunk],
                                baseline_index=0)
        panels[name] = Figure3Panel(workload=name, records=records)
    return panels


def build_panel(workload_name: str,
                params: Optional[TimingParams] = None,
                check: bool = False,
                executor: Optional[CellExecutor] = None) -> Figure3Panel:
    """Run all Fig. 3 bars for one application."""
    return build_panels([workload_name], params=params, check=check,
                        executor=executor)[workload_name]
