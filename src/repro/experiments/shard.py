"""Deterministic grid sharding and per-shard counter merging.

A sweep over a (workload × machine × timing × memory × policy) grid is
embarrassingly partitionable: every cell is independent and the shared
content-addressed ``.repro-cache`` is already concurrent-safe (atomic
writes, checksummed entries).  This module supplies the three pieces
that turn one grid into N cooperating runs:

* :func:`shard_of` / :func:`partition` — a deterministic, reorder-stable
  assignment of cells to shards.  The shard of a cell depends only on
  the cell's *identity* (workload name, full scenario, execution flags),
  hashed with sha256 — never on its position in the grid, the process,
  or the Python hash seed — so every host computes the same partition
  and the shards are disjoint and exhaustive by construction;
* :func:`merge_stats` / :func:`merge_progress` — associative,
  commutative, identity-preserving merges of
  :class:`~repro.experiments.engine.ExecutorStats` /
  :class:`~repro.experiments.engine.Progress` counters (the
  ``merge-counters.py`` pattern): per-shard counter files combine into
  one batch summary in any order;
* :class:`ShardBackend` — an :class:`~repro.experiments.backends.ExecutionBackend`
  that runs all N shards of a batch sequentially in one process, each
  shard as an independent restartable unit over the shared cache.  Its
  rendered output is byte-identical to an inline or pool run of the same
  grid: sharding only regroups *scheduling*, results stay keyed by
  request position.

Cross-host sharding uses the same partition from the CLI instead:
``repro sweep --shards N --shard-index K`` runs only shard K's cells
(writing its counters with ``--stats-json``), and ``repro merge``
combines the per-shard counter files once every shard has landed in the
shared cache dir — a warm full-sweep rerun then renders the figures with
zero duplicate simulations.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.experiments.backends import (ExecutionBackend, FailFn,
                                        InlineBackend, Job, LandFn,
                                        ProcessPoolBackend)
from repro.experiments.engine import (Cell, ExecutorStats, Progress,
                                      _scenario_key)

#: Schema of the ``--stats-json`` counter files ``repro merge`` consumes.
STATS_SCHEMA = 1


# ---------------------------------------------------------------------------
# deterministic partitioning
# ---------------------------------------------------------------------------
def shard_key(cell: Cell) -> str:
    """A cell's shard-assignment identity, as a stable content hash.

    Deliberately *cheaper* than the result-cache key: no compiled-program
    fingerprint (sharding must not compile), no code fingerprint (all
    hosts of one sweep run the same code by contract, and the partition
    must survive code edits so a resumed shard re-runs the same cells).
    Two cells that would produce the same result always land in the same
    shard, so the in-batch dedupe keeps working per shard.
    """
    payload = {
        "workload": cell.workload_name,
        "scenario": _scenario_key(cell.scenario()),
        "functional": cell.functional,
        "warm": cell.warm,
        "check": cell.check,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def shard_of(cell: Cell, shards: int) -> int:
    """The shard index in ``[0, shards)`` this cell belongs to."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return int(shard_key(cell), 16) % shards


def partition(cells: Sequence[Cell], shards: int) -> List[List[int]]:
    """Positions of ``cells`` grouped per shard.

    Disjoint and exhaustive by construction (every position lands in
    exactly one bucket) and stable under reordering: membership is a
    pure function of the cell, so permuting the input only permutes
    positions *within* buckets, never cells *across* them.
    """
    buckets: List[List[int]] = [[] for _ in range(shards)]
    for i, cell in enumerate(cells):
        buckets[shard_of(cell, shards)].append(i)
    return buckets


def select_shard(cells: Sequence[Cell], shards: int,
                 shard_index: int) -> List[int]:
    """Positions of the cells shard ``shard_index`` owns."""
    if not 0 <= shard_index < shards:
        raise ValueError(
            f"shard index must be in [0, {shards}), got {shard_index}")
    return partition(cells, shards)[shard_index]


# ---------------------------------------------------------------------------
# counter merging (merge-counters.py style)
# ---------------------------------------------------------------------------
def merge_stats(*stats: ExecutorStats) -> ExecutorStats:
    """Field-wise sum of executor counter sets.

    Associative and commutative (integer addition per field) with
    ``ExecutorStats()`` as the identity, so per-shard counter files merge
    into the same batch summary in any order and any grouping —
    ``merge(a, merge(b, c)) == merge(merge(a, b), c)``.
    """
    merged = ExecutorStats()
    for one in stats:
        for f in fields(ExecutorStats):
            setattr(merged, f.name,
                    getattr(merged, f.name) + getattr(one, f.name))
    return merged


#: Progress fields that merge by summation (``total`` included: shard
#: snapshots cover disjoint cell sets).
_PROGRESS_COUNTERS = ("total", "done", "hits", "misses", "failed",
                      "retries", "timeouts")


def merge_progress(*snapshots: Progress) -> Progress:
    """Sum per-shard :class:`Progress` snapshots into one batch view.

    The merged snapshot keeps the first labelled shard's label stripped
    of its ``[shard k/N]`` suffix; the elapsed clock restarts (wall time
    is not additive across hosts and is never part of the artifacts).
    """
    merged = Progress(total=0)
    for snap in snapshots:
        if not merged.label and snap.label:
            merged.label = snap.label.split(" [shard ", 1)[0]
        for name in _PROGRESS_COUNTERS:
            setattr(merged, name, getattr(merged, name) + getattr(snap, name))
    return merged


# ---------------------------------------------------------------------------
# the shard backend
# ---------------------------------------------------------------------------
class ShardBackend(ExecutionBackend):
    """Run a batch as N disjoint shards, sequentially, in one process.

    Each shard is dispatched through an inner inline/pool backend (by
    ``jobs``) as its own unit: a kill between (or during) shards loses at
    most the in-flight shard's unfinished cells, because every finished
    cell already streamed into the shared cache — rerunning resumes with
    the finished shards replaying as hits.  ``per_shard`` records each
    shard's execution-side counter *delta* (simulations, retries,
    timeouts, scheduler counters); their :func:`merge_stats` sum equals
    the executor's own execution counters, which is the invariant the
    shard tests pin.
    """

    name = "shard"

    def __init__(self, shards: int = 4, jobs: int = 1) -> None:
        super().__init__()
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.jobs = jobs
        self._inner = (InlineBackend() if jobs == 1
                       else ProcessPoolBackend(jobs))
        #: Execution-counter deltas per shard, refreshed each batch.
        self.per_shard: List[ExecutorStats] = []
        #: Cells dispatched per shard in the last batch (pending cells
        #: only — cache hits are finalised before backends see the batch).
        self.shard_sizes: List[int] = []

    def bind(self, executor) -> None:
        super().bind(executor)
        self._inner.bind(executor)

    def compile_pool(self):
        return self._inner.compile_pool()

    def discard_pool(self) -> None:
        self._inner.discard_pool()

    def close(self) -> None:
        self._inner.close()

    @staticmethod
    def _snapshot(stats: ExecutorStats) -> ExecutorStats:
        return ExecutorStats(**{f.name: getattr(stats, f.name)
                                for f in fields(ExecutorStats)})

    @staticmethod
    def _delta(before: ExecutorStats, after: ExecutorStats) -> ExecutorStats:
        return ExecutorStats(**{f.name: (getattr(after, f.name)
                                         - getattr(before, f.name))
                                for f in fields(ExecutorStats)})

    def execute(self, jobs_list: List[Job], land: LandFn, fail: FailFn,
                progress: "Progress") -> None:
        buckets = partition([cell for cell, _ in jobs_list], self.shards)
        self.per_shard = []
        self.shard_sizes = [len(b) for b in buckets]
        base_label = progress.label
        executor = self.executor
        try:
            for index, bucket in enumerate(buckets):
                before = self._snapshot(executor.stats)
                if bucket:
                    suffix = f"[shard {index + 1}/{self.shards}]"
                    progress.label = (f"{base_label} {suffix}" if base_label
                                      else suffix)
                    sub = [jobs_list[i] for i in bucket]
                    # Positions are local to the shard inside the inner
                    # backend; translate back to batch positions so land/
                    # fail keep finalising by *request* position.
                    self._inner.execute(
                        sub,
                        lambda pos, payload, b=bucket: land(b[pos], payload),
                        lambda pos, exc, b=bucket: fail(b[pos], exc),
                        progress)
                self.per_shard.append(self._delta(before, executor.stats))
        finally:
            progress.label = base_label


# ---------------------------------------------------------------------------
# per-shard counter files (`--stats-json` / `repro merge`)
# ---------------------------------------------------------------------------
def stats_payload(stats: ExecutorStats, *, artifact: str = "",
                  name: str = "", shards: Optional[int] = None,
                  shard_index: Optional[int] = None) -> dict:
    """The JSON document one run's ``--stats-json FILE`` writes."""
    return {
        "schema": STATS_SCHEMA,
        "artifact": artifact,
        "name": name,
        "shards": shards,
        "shard_index": shard_index,
        "stats": stats.to_dict(),
    }


def load_stats_file(path: Union[str, Path]) -> dict:
    """Read and validate one counter file; raises ``ValueError`` on
    anything ``repro merge`` cannot safely sum."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read stats file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if (not isinstance(payload, dict)
            or payload.get("schema") != STATS_SCHEMA
            or not isinstance(payload.get("stats"), dict)):
        raise ValueError(f"{path} is not a repro stats file "
                         f"(expected schema {STATS_SCHEMA})")
    return payload


def render_merge(paths: Sequence[Union[str, Path]]) -> str:
    """The ``repro merge`` body: per-shard one-liners plus the merged
    summary (whose first line is the same grep interface every run
    prints under ``--cache-stats``)."""
    payloads = [load_stats_file(p) for p in paths]
    per_shard = [ExecutorStats.from_dict(p["stats"]) for p in payloads]
    merged = merge_stats(*per_shard)
    lines = [f"merged {len(payloads)} runs"]
    for path, payload, stats in zip(paths, payloads, per_shard):
        tags = []
        if payload.get("name"):
            tags.append(str(payload["name"]))
        if payload.get("shard_index") is not None:
            tags.append(f"shard {payload['shard_index']}"
                        + (f"/{payload['shards']}"
                           if payload.get("shards") else ""))
        tag = f" ({', '.join(tags)})" if tags else ""
        lines.append(f"  {Path(path).name}{tag}: "
                     f"{stats.cells_requested} cells, "
                     f"{stats.cache_hits} hits, "
                     f"{stats.sims_executed} simulations, "
                     f"{stats.cells_failed} failed")
    lines.append(merged.summary())
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# sharded sweep rendering (`repro sweep --shard-index K`)
# ---------------------------------------------------------------------------
def run_sweep_shard(parsed, executor, *, shards: int,
                    shard_index: int) -> str:
    """Run only shard ``shard_index`` of a parsed sweep and render its
    rows.

    The header names the shard and the owned/total cell counts; the
    table shares the full sweep's column layout, so eyeballing shard
    outputs side by side lines up.  The full-grid render comes later,
    from a warm rerun over the merged cache — never by concatenating
    shard tables.
    """
    from repro.experiments.sweep import render_rows
    pairs = parsed.labelled_cells()
    owned = select_shard([cell for _, cell in pairs], shards, shard_index)
    picked = [pairs[i] for i in owned]
    results = executor.run(
        [cell for _, cell in picked],
        label=f"{parsed.name} [shard {shard_index}/{shards}]")
    header = (f"=== sweep: {parsed.name} shard {shard_index}/{shards} === "
              f"({len(picked)} of {len(pairs)} cells)")
    body = render_rows(parsed, [label for label, _ in picked], results)
    return header + "\n" + body if picked else header + "\n(no cells)"
