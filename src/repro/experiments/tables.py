"""Tables I, II, III, IV and V regenerators."""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import ava_config, native_config, table1_rows
from repro.experiments.configs import equivalence_rows, table2_rows
from repro.experiments.rendering import render_table
from repro.power.physical import PhysicalDesignModel, PnrResult
from repro.workloads.registry import all_workloads


def render_table1() -> str:
    """Table I: P-VRF configurations (P-regs vs MVL)."""
    rows = table1_rows()
    return render_table(
        ["P-Regs", "MVL"],
        [[p, m] for p, m in rows]) + "\n(paper: 64/32/21/16/12/10/9/8)"


def render_table2() -> str:
    """Table II: the five NATIVE system configurations."""
    return render_table(["configuration", "parameters"], table2_rows())


def render_table3() -> str:
    """Table III: NATIVE / AVA / RG equivalence."""
    return render_table(["NATIVE", "AVA (P-regs)", "RG"], equivalence_rows())


def render_table4() -> str:
    """Table IV: the selected RiVEC applications."""
    rows = [[w.name, w.domain, w.model] for w in all_workloads()]
    return render_table(["Application", "Domain", "Algorithmic Model"], rows)


def table5_results(model: Optional[PhysicalDesignModel] = None
                   ) -> List[PnrResult]:
    """Table V rows (NATIVE X8 and AVA), plus extrapolated NATIVE X2–X4."""
    model = model or PhysicalDesignModel()
    configs = [native_config(8), ava_config(8),
               native_config(2), native_config(3), native_config(4)]
    return [model.evaluate(cfg) for cfg in configs]


def render_table5() -> str:
    model = PhysicalDesignModel()
    results = table5_results(model)
    rows = []
    for r in results:
        rows.append([r.config_name, f"{r.wns_ns:+.3f}", f"{r.power_mw:.0f}",
                     f"{r.area_mm2:.2f}", f"{r.density_pct:.1f}%",
                     f"{r.vrf_macro_power_mw:.0f}/{r.vrf_macro_area_mm2:.3f}",
                     f"{r.ava_structs_power_mw:.3f}/"
                     f"{r.ava_structs_area_mm2:.4f}"])
    reduction = model.area_reduction_vs(ava_config(8), native_config(8))
    return (render_table(
        ["config", "WNS (ns)", "Power (mW)", "Area (mm2)", "Density",
         "VRF macros (mW/mm2)", "AVA structs (mW/mm2)"], rows)
        + f"\nChip area reduction AVA vs NATIVE X8: {reduction:.1%} "
          f"(paper: 50.7%)"
        + "\n(rows below AVA extrapolate configurations the paper does not "
          "publish)")
