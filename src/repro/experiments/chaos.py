"""``repro chaos``: prove a sweep survives injected faults byte-for-byte.

The crash-safety story (streaming cache writes, retry budget, deadlines,
integrity checks) is only worth what can be demonstrated, so this module
turns it into one executable assertion.  A chaos run executes the same
sweep spec three times:

1. **clean** — a fresh cache directory, no faults: the reference stdout;
2. **faulted** — another fresh cache directory, under a seeded
   :func:`repro.faults.seeded_plan` (a worker kill, a hung cell, a slow
   cell, a corrupted result write and an ENOSPC write), with a per-cell
   deadline armed so the hang dies to the watchdog instead of stalling
   the sweep;
3. **warm** — the faulted run's cache directory again, faults off: the
   corrupt entry must quarantine into a re-simulation, everything else
   must replay as hits.

All three rendered tables must be **byte-identical** and no cell may
fail; anything else is a reproducibility bug, reported with a nonzero
exit code.  The faulted run must also show its scars — nonzero retries
(the injected faults actually fired) — or the plan silently missed and
the test proved nothing.
"""

from __future__ import annotations

import shutil
import sys
from pathlib import Path
from typing import Optional, TextIO, Union

from repro import faults
from repro.experiments.engine import (DEFAULT_CACHE_DIR, CellExecutionError,
                                      ExecutorStats, ProgressCallback,
                                      make_executor)
from repro.experiments.sweep import ParsedSweep, parse_sweep, run_sweep

#: Per-cell deadline for chaos runs: far above any real cell in the smoke
#: grids (they run in milliseconds), far below the injected hang.
DEFAULT_DEADLINE_S = 5.0

#: Injected hang duration — long enough that only the watchdog (never the
#: cell finishing on its own) can end it within the deadline.
HANG_S = 30.0


class ChaosDivergence(AssertionError):
    """The faulted (or warm) run's stdout diverged from the clean run's."""


def _run_phase(parsed: ParsedSweep, cache_dir: Path, *, jobs: int,
               deadline_s: Optional[float], retries: int, backoff_s: float,
               progress: Optional[ProgressCallback],
               backend: str = "auto", shards: int = 4
               ) -> "tuple[str, ExecutorStats]":
    # A fresh backend per phase: backends bind to one executor at a time,
    # and each phase owns its pool/shard state end to end.
    executor = make_executor(jobs=jobs, cache=True, cache_dir=cache_dir,
                             progress=progress, deadline_s=deadline_s,
                             retries=retries, backoff_s=backoff_s,
                             backend=backend, shards=shards)
    with executor:
        rendered = run_sweep(parsed, executor)
    return rendered, executor.stats


def run_chaos(spec: Union[str, Path, dict, ParsedSweep], *,
              seed: int = 0,
              jobs: int = 2,
              cache_dir: Union[str, Path] = DEFAULT_CACHE_DIR,
              deadline_s: Optional[float] = DEFAULT_DEADLINE_S,
              retries: int = 3,
              backoff_s: float = 0.05,
              progress: Optional[ProgressCallback] = None,
              backend: str = "auto",
              shards: int = 4,
              stats_out: Optional[TextIO] = None,
              out: Optional[TextIO] = None) -> int:
    """Run the clean/faulted/warm triple; returns a process exit code.

    The sweep's rendered table is written to ``out`` (stdout by default)
    once — from the *faulted* run, the one under attack — followed by a
    one-line verdict.  ``stats_out`` (``--cache-stats``) additionally
    receives the faulted run's engine counters on stderr-style output.
    The three runs use dedicated cache directories under
    ``<cache_dir>/chaos/`` so a chaos run never pollutes (nor borrows
    from) the real result cache.
    """
    parsed = spec if isinstance(spec, ParsedSweep) else parse_sweep(spec)
    labels = [cell.label() for _, cell in parsed.labelled_cells()]
    plan = faults.seeded_plan(seed, labels, hang_s=HANG_S)
    root = Path(cache_dir) / "chaos"
    out = out if out is not None else sys.stdout

    def fresh(name: str) -> Path:
        phase_dir = root / name
        shutil.rmtree(phase_dir, ignore_errors=True)
        return phase_dir

    phase_kwargs = dict(jobs=jobs, deadline_s=deadline_s, retries=retries,
                        backoff_s=backoff_s, progress=progress,
                        backend=backend, shards=shards)
    clean, _ = _run_phase(parsed, fresh("clean"), **phase_kwargs)

    faulted_dir = fresh("faulted")
    try:
        with faults.injected(plan):
            faulted, stats = _run_phase(parsed, faulted_dir, **phase_kwargs)
    except CellExecutionError as exc:
        out.write(f"chaos[seed={seed}]: plan={plan.describe()}; "
                  f"FAILED — {exc}\n")
        return 1

    # Warm rerun over the faulted cache, faults off: the corrupted entry
    # must be quarantined into a re-simulation, not replayed as truth.
    warm, warm_stats = _run_phase(parsed, faulted_dir, **phase_kwargs)

    if stats_out is not None:
        stats_out.write(stats.summary() + "\n")

    verdicts = []
    if faulted != clean:
        verdicts.append("faulted stdout DIVERGED from clean")
    if warm != clean:
        verdicts.append("warm replay DIVERGED from clean")
    if stats.retries == 0:
        verdicts.append("no retries charged — the fault plan never fired")
    quarantined = stats.cache_quarantined + warm_stats.cache_quarantined
    table = faulted if faulted.endswith("\n") else faulted + "\n"
    if verdicts:
        out.write(table)
        out.write(f"chaos[seed={seed}]: plan={plan.describe()}; "
                  f"FAILED — {'; '.join(verdicts)}\n")
        return 1

    out.write(table)
    out.write(f"chaos[seed={seed}]: plan={plan.describe()}; "
              f"byte-identical stdout across clean/faulted/warm runs; "
              f"{stats.cells_failed} failed cells; {stats.retries} retries; "
              f"{stats.timeouts} timeouts; {quarantined} quarantined\n")
    return 0
