"""Experiment harness: one regenerator per table and figure of the paper.

* :mod:`repro.experiments.configs` — Tables II/III configuration matrix,
  Table IV application list;
* :mod:`repro.experiments.engine` — the unified execution engine: sweep
  specs, the inline/parallel cell executor and the persistent
  content-addressed result cache every artifact shares;
* :mod:`repro.experiments.runner` — compatibility shim over the engine
  that decorates statistics with speedups and energy reports;
* :mod:`repro.experiments.figure3` — the six per-application panels
  (memory-instruction breakdown, instruction mix, execution time/speedup,
  energy);
* :mod:`repro.experiments.figure4` — component areas + performance/mm²;
* :mod:`repro.experiments.figure5` — the two floorplans;
* :mod:`repro.experiments.tables` — Tables I and V;
* :mod:`repro.experiments.headline` — the paper's headline claims checked
  in one place (used by EXPERIMENTS.md and the integration tests);
* :mod:`repro.experiments.rendering` — ASCII tables and bar charts.
"""

from repro.experiments.configs import (
    figure3_series,
    native_series,
    ava_series,
    rg_series,
)
from repro.experiments.engine import (
    Cell,
    CellExecutor,
    CellPolicy,
    CellResult,
    ResultCache,
    SweepSpec,
    make_executor,
)
from repro.experiments.runner import RunRecord, run_cell, run_series

__all__ = [
    "figure3_series",
    "native_series",
    "ava_series",
    "rg_series",
    "Cell",
    "CellExecutor",
    "CellPolicy",
    "CellResult",
    "ResultCache",
    "SweepSpec",
    "make_executor",
    "RunRecord",
    "run_cell",
    "run_series",
]
