"""Experiment harness: one regenerator per table and figure of the paper.

* :mod:`repro.experiments.configs` — Tables II/III configuration matrix,
  Table IV application list;
* :mod:`repro.experiments.engine` — the unified execution engine: sweep
  specs, the backend-driven cell executor and the persistent
  content-addressed result cache every artifact shares;
* :mod:`repro.experiments.backends` — the pluggable execution backends
  (inline / process pool) the executor schedules through;
* :mod:`repro.experiments.shard` — deterministic grid sharding, the
  shard backend and ``merge-counters``-style per-shard stat merging;
* :mod:`repro.experiments.sweep` — JSON sweep-spec files: named axis
  presets (machine / memory / timing / policy) expanded into engine grids
  behind the ``repro sweep`` CLI artifact;
* :mod:`repro.experiments.sensitivity` — the machine-axis sensitivity
  study (L2 latency × DRAM penalty × swap budget over AVA vs NATIVE);
* :mod:`repro.experiments.figure3` — the six per-application panels
  (memory-instruction breakdown, instruction mix, execution time/speedup,
  energy);
* :mod:`repro.experiments.figure4` — component areas + performance/mm²;
* :mod:`repro.experiments.figure5` — the two floorplans;
* :mod:`repro.experiments.tables` — Tables I and V;
* :mod:`repro.experiments.headline` — the paper's headline claims checked
  in one place (used by EXPERIMENTS.md and the integration tests);
* :mod:`repro.experiments.rendering` — ASCII tables and bar charts.
"""

from repro.experiments.backends import (
    ExecutionBackend,
    InlineBackend,
    ProcessPoolBackend,
    default_jobs,
    make_backend,
)
from repro.experiments.configs import (
    figure3_series,
    native_series,
    ava_series,
    rg_series,
)
from repro.experiments.engine import (
    Cell,
    CellError,
    CellExecutionError,
    CellExecutor,
    CellPolicy,
    CellResult,
    Progress,
    ProgressRenderer,
    ResultCache,
    RunRecord,
    SweepSpec,
    make_executor,
)
from repro.experiments.sensitivity import build_sensitivity
from repro.experiments.shard import (
    ShardBackend,
    merge_progress,
    merge_stats,
    partition,
    shard_of,
)
from repro.experiments.sweep import parse_sweep, run_sweep

__all__ = [
    "figure3_series",
    "native_series",
    "ava_series",
    "rg_series",
    "Cell",
    "CellError",
    "CellExecutionError",
    "CellExecutor",
    "CellPolicy",
    "CellResult",
    "Progress",
    "ProgressRenderer",
    "ResultCache",
    "SweepSpec",
    "make_executor",
    "RunRecord",
    "build_sensitivity",
    "parse_sweep",
    "run_sweep",
    "ExecutionBackend",
    "InlineBackend",
    "ProcessPoolBackend",
    "ShardBackend",
    "default_jobs",
    "make_backend",
    "merge_progress",
    "merge_stats",
    "partition",
    "shard_of",
]
