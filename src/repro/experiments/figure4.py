"""Figure 4 regenerator: component areas and performance per mm².

The paper's bars: per-configuration component areas (VPU VRF, VPU FPUs,
core pipeline, L1-I, L1-D, L2, AVA structures) and, on the right axis, the
average performance (over the six applications) divided by the VPU area.
AVA's area is constant (1.126 mm² — the 8 KB organisation plus the 0.55%
bookkeeping structures) across every reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import SCALE_FACTORS, ava_config, native_config
from repro.experiments.engine import (CellExecutor, RunRecord, SweepSpec,
                                      fill_speedups, record_from_result)
from repro.experiments.rendering import render_table
from repro.power.mcpat import AreaReport, McPatModel
from repro.vpu.params import TimingParams
from repro.workloads.registry import WORKLOAD_NAMES


@dataclass
class Figure4:
    """Areas plus performance/mm² for the NATIVE and AVA series."""

    native_areas: List[AreaReport]
    ava_area: AreaReport
    native_perf_mm2: List[float]
    ava_perf_mm2: List[float]
    avg_speedups_native: List[float]
    avg_speedups_ava: List[float]

    def area_rows(self) -> List[List[object]]:
        rows = []
        for report in [self.native_areas[0], self.ava_area,
                       *self.native_areas[1:]]:
            rows.append([report.config_name, f"{report.vrf:.2f}",
                         f"{report.fpus:.2f}", f"{report.ava_structs:.4f}",
                         f"{report.vpu:.3f}", f"{report.total:.2f}"])
        return rows

    def perf_rows(self) -> List[List[object]]:
        rows = []
        for i, scale in enumerate(SCALE_FACTORS):
            rows.append([f"X{scale}",
                         f"{self.avg_speedups_native[i]:.2f}",
                         f"{self.native_perf_mm2[i]:.2f}",
                         f"{self.avg_speedups_ava[i]:.2f}",
                         f"{self.ava_perf_mm2[i]:.2f}"])
        return rows

    @property
    def vpu_area_reduction(self) -> float:
        """AVA vs NATIVE X8 VPU area (the paper's 53%)."""
        return 1.0 - self.ava_area.vpu / self.native_areas[-1].vpu

    @property
    def ava_overhead_fraction(self) -> float:
        """AVA structures as a fraction of the VPU (the paper's 0.55%)."""
        return self.ava_area.ava_structs / self.ava_area.vpu

    def render(self) -> str:
        parts = ["=== Figure 4: area and performance/mm2 ==="]
        parts.append(render_table(
            ["config", "VRF", "FPUs", "AVA structs", "VPU", "total"],
            self.area_rows()))
        parts.append(render_table(
            ["scale", "NATIVE avg speedup", "NATIVE perf/mm2",
             "AVA avg speedup", "AVA perf/mm2"],
            self.perf_rows()))
        parts.append(
            f"AVA structures overhead: {self.ava_overhead_fraction:.2%} "
            f"of VPU (paper: 0.55%)")
        parts.append(
            f"VPU area reduction vs NATIVE X8: "
            f"{self.vpu_area_reduction:.1%} (paper: 53%)")
        return "\n".join(parts)


def build_figure4(params: Optional[TimingParams] = None,
                  per_workload: Optional[Dict[str, List[RunRecord]]] = None,
                  executor: Optional[CellExecutor] = None,
                  workload_names: Optional[Sequence[str]] = None) -> Figure4:
    """Compute Fig. 4; re-runs the applications unless records are given.

    The performance-per-mm² averages run over ``workload_names`` — Table
    IV's six by default, or any registry selection (the CLI's
    ``--extended`` / ``--workloads`` pass the ten-kernel grid through
    here).
    """
    mcpat = McPatModel()
    native_cfgs = [native_config(s) for s in SCALE_FACTORS]
    ava_cfgs = [ava_config(s) for s in SCALE_FACTORS]

    if per_workload is None:
        # One batch over the whole (workload × configuration) grid; a
        # parallel executor fans all cells out at once, and every cell
        # is shared with figure3/claims through the result cache.
        executor = executor or CellExecutor()
        spec = SweepSpec(workloads=list(workload_names or WORKLOAD_NAMES),
                         configs=native_cfgs + ava_cfgs, params=(params,))
        results = executor.run_spec(spec, label="figure4")
        per_workload = {
            name: fill_speedups([record_from_result(r) for r in chunk],
                                baseline_index=0)
            for name, chunk in spec.chunk_by_workload(results)}

    n = len(SCALE_FACTORS)
    avg_native = [
        sum(records[i].speedup for records in per_workload.values())
        / len(per_workload) for i in range(n)]
    avg_ava = [
        sum(records[n + i].speedup for records in per_workload.values())
        / len(per_workload) for i in range(n)]

    native_areas = [mcpat.area(cfg) for cfg in native_cfgs]
    ava_area = mcpat.area(ava_cfgs[-1])
    return Figure4(
        native_areas=native_areas,
        ava_area=ava_area,
        native_perf_mm2=[s / a.vpu for s, a in zip(avg_native, native_areas)],
        ava_perf_mm2=[s / ava_area.vpu for s in avg_ava],
        avg_speedups_native=avg_native,
        avg_speedups_ava=avg_ava,
    )
