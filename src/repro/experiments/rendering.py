"""ASCII rendering: tables and horizontal bar charts for the regenerators."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Simple fixed-width table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt(list(headers)), sep]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_bars(items: Sequence[Tuple[str, float]], width: int = 40,
                unit: str = "", fmt: str = "{:.2f}") -> str:
    """Horizontal bar chart (one bar per item, scaled to the maximum)."""
    if not items:
        return "(empty)"
    peak = max(value for _, value in items) or 1.0
    label_w = max(len(label) for label, _ in items)
    lines = []
    for label, value in items:
        bar = "#" * max(1 if value > 0 else 0, int(round(value / peak * width)))
        lines.append(f"{label.ljust(label_w)} | {bar.ljust(width)} "
                     f"{fmt.format(value)}{unit}")
    return "\n".join(lines)


def render_stacked(items: Sequence[Tuple[str, Sequence[Tuple[str, float]]]],
                   width: int = 40) -> List[str]:
    """Stacked bars: each item is (label, [(component, value), ...])."""
    totals = [sum(v for _, v in parts) for _, parts in items]
    peak = max(totals) if totals else 1.0
    peak = peak or 1.0
    label_w = max(len(label) for label, _ in items) if items else 0
    glyphs = "#=+*ox%@"
    lines = []
    for (label, parts), total in zip(items, totals):
        bar = ""
        for i, (_, value) in enumerate(parts):
            bar += glyphs[i % len(glyphs)] * int(round(value / peak * width))
        lines.append(f"{label.ljust(label_w)} | {bar.ljust(width)} "
                     f"{total:,.1f}")
    if items:
        legend = "  ".join(f"{glyphs[i % len(glyphs)]}={name}"
                           for i, (name, _) in enumerate(items[0][1]))
        lines.append(f"{' ' * label_w}   {legend}")
    return lines
