"""Engine throughput benchmark: the ``repro bench engine`` entry point.

Measures cold-cache cells/second (and cycles simulated/second) of the
experiment-execution engine over the standard 8-cell benchmark grid —
2 workloads x 4 machine configurations, the same grid
``benchmarks/bench_engine_throughput.py`` has tracked since PR 1 — and
writes the result as ``BENCH_engine.json`` so CI can gate on throughput
regressions.

The committed reference numbers live in ``benchmarks/BENCH_engine.json``;
:func:`check_regression` fails when the measured cold throughput drops more
than the allowed fraction below them.  ``pr1_baseline_cells_per_sec`` in
that file records the throughput of the pre-event-driven-scheduler engine
(PR 1), measured on the same machine with the same grid, so the scheduler's
speedup stays visible next to the current numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional

from repro.core.config import ava_config, native_config
from repro.experiments.engine import CellExecutor, SweepSpec
from repro.workloads.registry import ALL_WORKLOAD_NAMES

#: The configurations both benchmark grids sweep.
_BENCH_CONFIGS = (native_config(1), ava_config(2), ava_config(4),
                  ava_config(8))

#: The benchmark grid (PR 1's): small but non-trivial, 8 cells.
BENCH_SPEC = SweepSpec(workloads=("axpy", "blackscholes"),
                       configs=_BENCH_CONFIGS)

#: The extended-grid variant: the full ten-kernel builtin suite over the
#: same configurations (40 cells) — ``repro bench engine --extended``.
EXTENDED_BENCH_SPEC = SweepSpec(workloads=tuple(ALL_WORKLOAD_NAMES),
                                configs=_BENCH_CONFIGS)

#: Where the committed reference numbers live.
BASELINE_PATH = Path(__file__).resolve().parents[3] / "benchmarks" \
    / "BENCH_engine.json"


def measure_engine_throughput(repeats: int = 3,
                              spec: SweepSpec = BENCH_SPEC,
                              progress=None) -> dict:
    """Run a benchmark grid cold (no cache) ``repeats`` times serially.

    Returns the best run (shared machines are noisy; the minimum is the
    least-contended measurement), with scheduler-efficiency counters from
    the executed simulations.  ``progress`` (a
    :class:`repro.experiments.engine.Progress` callback) streams per-cell
    completion to stderr without perturbing the timed region beyond the
    callback itself.
    """
    n_cells = len(spec.cells())
    best: Optional[dict] = None
    for repeat in range(max(1, repeats)):
        # no cache: every cell simulates
        executor = CellExecutor(progress=progress)
        start = time.perf_counter()
        executor.run_spec(spec, label=f"bench cold run {repeat + 1}")
        elapsed = time.perf_counter() - start
        stats = executor.stats
        run = {
            "cells": n_cells,
            "seconds": round(elapsed, 4),
            "cells_per_sec": round(n_cells / elapsed, 3),
            "cycles_simulated": stats.sim_cycles,
            "cycles_per_sec": round(stats.sim_cycles / elapsed, 1),
            "events_processed": stats.sim_events_processed,
            "cycles_skipped": stats.sim_cycles_skipped,
            "spans_charged": stats.sim_spans_charged,
            "span_cycles": stats.sim_span_cycles,
        }
        if best is None or run["cells_per_sec"] > best["cells_per_sec"]:
            best = run
    assert best is not None
    return best


def measure_warm_trace_throughput(repeats: int = 3,
                                  spec: SweepSpec = BENCH_SPEC,
                                  progress=None) -> dict:
    """Cold results, warm traces: the compile-once/replay-many speedup.

    Prewarms a throwaway :class:`~repro.compiler.store.TraceStore` with
    one unmeasured compile per distinct (workload, signature) pair, then
    times cache-less runs whose every program replays from the store —
    the steady state of any repo that has run a sweep before.  A fresh
    executor per repeat keeps the in-process memo out of the measurement.
    """
    import tempfile

    from repro.compiler.signature import CompileSignature
    from repro.compiler.store import TraceStore

    n_cells = len(spec.cells())
    best: Optional[dict] = None
    with tempfile.TemporaryDirectory(prefix="repro-bench-traces-") as tmp:
        store = TraceStore(Path(tmp))
        seen = set()
        for cell in spec.cells():
            workload = cell.resolve_workload()
            signature = CompileSignature.from_config(cell.config)
            key = store.key(workload, signature)
            if key not in seen:
                seen.add(key)
                store.put_trace(key, workload.compile(signature))
        for repeat in range(max(1, repeats)):
            executor = CellExecutor(traces=TraceStore(Path(tmp)),
                                    progress=progress)
            start = time.perf_counter()
            executor.run_spec(spec, label=f"bench warm-trace run {repeat + 1}")
            elapsed = time.perf_counter() - start
            # A benchmark that silently recompiled would measure the wrong
            # thing entirely.
            assert executor.stats.compiles == 0, executor.stats.summary()
            run = {
                "warm_trace_seconds": round(elapsed, 4),
                "warm_trace_cells_per_sec": round(n_cells / elapsed, 3),
                "trace_hits": executor.stats.trace_hits,
                "trace_misses": executor.stats.trace_misses,
            }
            if (best is None or run["warm_trace_cells_per_sec"]
                    > best["warm_trace_cells_per_sec"]):
                best = run
    assert best is not None
    return best


def measure_scheduler_speedup(spec: SweepSpec = BENCH_SPEC,
                              repeats: int = 3) -> dict:
    """Machine-independent check: event-driven scheduler vs the retained
    reference stepper, same grid, same machine, same run.

    Unlike the absolute cells/second gate (valid only on the machine the
    baseline was recorded on), this ratio cancels host speed, so CI can
    gate on it without cross-machine flakiness.  Each engine is timed
    ``repeats`` times and the best (least-contended) run is kept — a
    single pass swings the ratio by +/-15% on a noisy runner, which is
    wider than the regression margin the gate is meant to detect.
    """
    import numpy as np

    from repro.vpu.pipeline import VectorPipeline
    from repro.vpu.reference import ReferencePipeline

    jobs = []
    for cell in spec.cells():
        workload = cell.resolve_workload()
        jobs.append((workload, workload.compile(cell.config).program,
                     cell.config))
    timings = {}
    for label, cls in (("reference", ReferencePipeline),
                       ("scheduler", VectorPipeline)):
        best = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            for workload, program, config in jobs:
                pipe = cls(config, program)
                workload.init_data(np.random.default_rng(42))
                pipe.run()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        timings[label] = best
    return {
        "reference_seconds": round(timings["reference"], 4),
        "scheduler_seconds": round(timings["scheduler"], 4),
        "speedup_vs_reference": round(
            timings["reference"] / timings["scheduler"], 3),
    }


def profile_engine(spec: SweepSpec = BENCH_SPEC, top: int = 25) -> str:
    """cProfile one cold grid run; returns the top-``top`` cumulative rows.

    The next perf PR starts from this table instead of guesses: it is
    printed by ``repro bench engine --profile`` and written next to the
    benchmark JSON.  One run, no repeats — profiling overhead (~2.5x)
    distorts absolute time anyway; only the ranking is meaningful.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    CellExecutor().run_spec(spec, label="bench profile run")
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def load_baseline(path: Path = BASELINE_PATH) -> Optional[dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def check_regression(measured: dict, baseline: dict,
                     max_regression: float = 0.20) -> Optional[str]:
    """None if within budget, else a human-readable failure message."""
    reference = baseline.get("cells_per_sec")
    if not reference:
        return None
    floor = reference * (1.0 - max_regression)
    if measured["cells_per_sec"] < floor:
        return (f"engine throughput regressed: {measured['cells_per_sec']} "
                f"cells/s vs committed baseline {reference} "
                f"(allowed floor {floor:.2f})")
    return None


def render_report(measured: dict, baseline: Optional[dict]) -> str:
    lines = [
        "engine cold-cache throughput "
        f"({measured['cells']} cells, serial):",
        f"  {measured['cells_per_sec']} cells/s "
        f"({measured['seconds']} s, "
        f"{measured['cycles_per_sec']:,.0f} cycles/s)",
        f"  scheduler: {measured['events_processed']} events processed, "
        f"{measured['cycles_skipped']} of {measured['cycles_simulated']} "
        "cycles skipped",
    ]
    if measured.get("spans_charged"):
        lines.append(
            f"  spans: {measured['spans_charged']} charged covering "
            f"{measured['span_cycles']} cycles")
    if "warm_trace_cells_per_sec" in measured:
        lines.insert(2, f"  warm trace store: "
                        f"{measured['warm_trace_cells_per_sec']} cells/s "
                        f"({measured['warm_trace_seconds']} s, "
                        f"{measured['trace_hits']} trace hits, "
                        "0 kernel compiles)")
    if baseline:
        pr1 = baseline.get("pr1_baseline_cells_per_sec")
        if pr1:
            lines.append(f"  vs PR 1 engine ({pr1} cells/s): "
                         f"{measured['cells_per_sec'] / pr1:.2f}x")
        ref = baseline.get("cells_per_sec")
        if ref:
            lines.append(f"  vs committed baseline ({ref} cells/s): "
                         f"{measured['cells_per_sec'] / ref:.2f}x")
    return "\n".join(lines)


def run_bench_engine(output: Optional[str] = "BENCH_engine.json",
                     baseline_path: Path = BASELINE_PATH,
                     max_regression: float = 0.20,
                     repeats: int = 3,
                     relative: bool = False,
                     min_relative_speedup: float = 1.3,
                     min_warm_ratio: float = 0.95,
                     extended: bool = False,
                     profile: bool = False,
                     progress=None) -> int:
    """CLI body for ``repro bench engine``; returns an exit status.

    ``relative=True`` gates on machine-independent ratios instead of the
    committed absolute baseline — the mode CI uses.  Two ratios must hold:
    the same-run scheduler-vs-reference speedup
    (``min_relative_speedup``), and the warm-trace/cold ratio
    (``min_warm_ratio`` — replaying stored traces skips every compile, so
    warm throughput falling measurably below cold means the replay path
    itself regressed).  ``extended=True`` measures the ten-kernel grid
    (:data:`EXTENDED_BENCH_SPEC`); the absolute gate only applies when the
    committed baseline was recorded on the same grid.  ``profile=True``
    appends a cProfile table of one cold run (written next to ``output``).
    ``progress`` forwards live per-cell completion to the engine's
    progress callback.
    """
    spec = EXTENDED_BENCH_SPEC if extended else BENCH_SPEC
    grid = "extended" if extended else "standard"
    baseline = load_baseline(baseline_path)
    if baseline is not None and baseline.get("grid", "standard") != grid:
        print(f"note: committed baseline covers the "
              f"{baseline.get('grid', 'standard')} grid, not {grid}; "
              "the absolute regression gate is skipped")
        baseline = None
    if baseline is None and not relative:
        print(f"note: no committed {grid}-grid baseline at {baseline_path}; "
              "the regression gate is skipped (run from a repository "
              "checkout to enable it)")
    measured = measure_engine_throughput(repeats=repeats, spec=spec,
                                         progress=progress)
    measured.update(measure_warm_trace_throughput(repeats=repeats, spec=spec,
                                                  progress=progress))
    measured["grid"] = grid
    if baseline and "pr1_baseline_cells_per_sec" in baseline:
        measured["pr1_baseline_cells_per_sec"] = (
            baseline["pr1_baseline_cells_per_sec"])
    if relative:
        measured.update(measure_scheduler_speedup(spec=spec,
                                                  repeats=repeats))
    print(render_report(measured, baseline))
    if output:
        Path(output).write_text(json.dumps(measured, indent=2) + "\n")
        print(f"[written to {output}]")
    if profile:
        table = profile_engine(spec=spec)
        print(table)
        if output:
            profile_path = Path(output).with_name(
                Path(output).stem + "_profile.txt")
            profile_path.write_text(table)
            print(f"[profile written to {profile_path}]")
    if relative:
        status = 0
        ratio = measured["speedup_vs_reference"]
        print(f"  vs reference stepper (same run): {ratio}x")
        if ratio < min_relative_speedup:
            print(f"scheduler regressed: only {ratio}x over the reference "
                  f"stepper (floor {min_relative_speedup}x)")
            status = 1
        warm_ratio = (measured["warm_trace_cells_per_sec"]
                      / measured["cells_per_sec"])
        print(f"  warm-trace vs cold (same run): {warm_ratio:.2f}x")
        if warm_ratio < min_warm_ratio:
            print(f"warm-trace path regressed: {warm_ratio:.2f}x cold "
                  f"throughput (floor {min_warm_ratio}x) — trace replay "
                  "should never be slower than compiling")
            status = 1
        return status
    if baseline:
        failure = check_regression(measured, baseline, max_regression)
        if failure:
            print(failure)
            return 1
    return 0
