"""Pluggable execution backends: *where* cells run, split from *what* runs.

:class:`~repro.experiments.engine.CellExecutor` owns the semantic side of
a batch — compile memo, cache scan, dedupe, result ordering, counters —
and delegates every scheduling decision to one of these backends:

* :class:`InlineBackend` — in-process execution (no subprocess, no
  pickling), with the per-cell ``SIGALRM`` deadline and the retry budget;
* :class:`ProcessPoolBackend` — the streaming dispatcher over one
  persistent :class:`concurrent.futures.ProcessPoolExecutor`, with the
  watchdog that kills hung workers, broken-pool reclamation and the same
  retry budget.  Single-job batches short-circuit to inline execution,
  exactly as the pre-backend executor did;
* :class:`~repro.experiments.shard.ShardBackend` — deterministic
  partition of a grid into N disjoint shards by cell identity, each run
  as an independent restartable unit (see :mod:`repro.experiments.shard`).

Every backend receives the same ``(jobs_list, land, fail, progress)``
contract: execute each ``(cell, source)`` pair exactly once, finalise it
through ``land``/``fail`` keyed by its *position*, never by completion
order.  The executor's outputs are therefore byte-identical across
backends — the acceptance criterion the CLI's ``--backend`` flag is
gated on.

The module avoids importing the engine at module scope (the engine
imports it first); worker-side entry points are imported lazily at
dispatch time.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor, Future,
                                ProcessPoolExecutor, wait)
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional, Set,
                    Tuple)

from repro import faults

if TYPE_CHECKING:  # pragma: no cover — type names only, no import cycle
    from repro.experiments.engine import CellExecutor, Progress

#: One dispatchable unit: ``(cell, Program-or-TraceRef)``.
Job = Tuple[object, object]
#: Finalisers the executor hands the backend: position-keyed.
LandFn = Callable[[int, dict], None]
FailFn = Callable[[int, BaseException], None]


def default_jobs() -> int:
    """The worker count ``--jobs auto`` resolves to.

    Prefers the CPUs this *process* may actually use — Python 3.13's
    :func:`os.process_cpu_count`, else the scheduler affinity mask — over
    :func:`os.cpu_count`, which reports the whole machine and makes a
    containerized CI job oversubscribe its cgroup quota.
    """
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        n = counter()
        if n:
            return n
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover — affinity query denied
            pass
    return os.cpu_count() or 1


class CellDeadlineExceeded(RuntimeError):
    """A cell ran past the executor's per-cell deadline.

    Pool mode: the watchdog observed the cell RUNNING for longer than
    ``deadline_s`` and killed the worker pool out from under it (a hung
    future cannot be cancelled).  Inline mode: a ``SIGALRM`` timer
    interrupted the simulation.  Classified as an *infrastructure*
    failure — retried within the budget, never failed fast — because a
    hang is a property of the worker's environment (wedged filesystem,
    livelocked I/O), not of the cell.
    """


#: Failure types the retry budget covers: infrastructure faults (a dead
#: worker, a deadline-killed hang, transient I/O) where a fresh attempt
#: can plausibly succeed.  Deterministic cell exceptions — a raising
#: workload, a bad config — fail fast instead: retrying them burns the
#: budget reproducing the same traceback.
_RETRYABLE = (BrokenExecutor, CellDeadlineExceeded,
              faults.TransientFaultError, OSError)


def _execute_cell(job):
    """The worker-side entry point, resolved lazily from the engine
    (the engine imports this module at load time, so the reverse import
    must wait until dispatch)."""
    from repro.experiments.engine import _execute_cell as execute
    return execute(job)


class ExecutionBackend:
    """Scheduling strategy behind a :class:`CellExecutor` batch.

    ``jobs`` is the backend's worker width (1 for inline).  ``bind``
    attaches the owning executor — backends read the resilience knobs
    (``deadline_s`` / ``retries`` / ``backoff_s``), charge the shared
    :class:`~repro.experiments.engine.ExecutorStats` and emit progress
    through it.  A backend belongs to exactly one executor at a time.
    """

    name = "backend"
    jobs = 1

    def __init__(self) -> None:
        self._executor: Optional["CellExecutor"] = None

    def bind(self, executor: "CellExecutor") -> None:
        self._executor = executor

    @property
    def executor(self) -> "CellExecutor":
        if self._executor is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to an "
                               f"executor")
        return self._executor

    def execute(self, jobs_list: List[Job], land: LandFn, fail: FailFn,
                progress: "Progress") -> None:
        """Run every job exactly once, finalising by position."""
        raise NotImplementedError

    def compile_pool(self) -> Optional[ProcessPoolExecutor]:
        """A pool the executor may fan compiles out over (None = serial)."""
        return None

    def discard_pool(self) -> None:
        """Drop any broken/interrupted pool without waiting (no-op when
        the backend holds no pool)."""

    def close(self) -> None:
        """Release scheduling resources; the backend stays reusable."""


def _execute_deadlined(executor: "CellExecutor", job) -> dict:
    """Inline execution under the per-cell deadline (``SIGALRM``).

    The alarm only exists on the main thread of a POSIX process;
    anywhere else the deadline degrades to unenforced — inline cells
    are the executor's own computation, and there is no second thread
    to cut them short from.
    """
    deadline = executor.deadline_s
    if (deadline is None or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        return _execute_cell(job)
    cell, attempt = job[0], job[2]

    def on_alarm(signum: int, frame: object) -> None:
        raise CellDeadlineExceeded(
            f"cell {cell.label()} exceeded its {deadline:.3g}s deadline "
            f"(attempt {attempt})")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, deadline)
    try:
        return _execute_cell(job)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_inline(executor: "CellExecutor", jobs_list: List[Job],
               land: LandFn, fail: FailFn, progress: "Progress") -> None:
    """Execute a batch in-process, with the same retry budget and
    deadline the pool path enforces.  Shared by :class:`InlineBackend`
    and the pool backend's single-job shortcut."""
    for pos, (cell, source) in enumerate(jobs_list):
        attempt = 0
        while True:
            try:
                payload = _execute_deadlined(executor,
                                             (cell, source, attempt))
            except Exception as exc:  # noqa: BLE001 — isolated per cell
                if isinstance(exc, CellDeadlineExceeded):
                    executor.stats.timeouts += 1
                    progress.timeouts += 1
                if isinstance(exc, _RETRYABLE) and attempt < executor.retries:
                    attempt += 1
                    executor.stats.retries += 1
                    progress.retries += 1
                    executor._emit(progress)
                    time.sleep(executor._backoff_delay(cell.label(), pos,
                                                       attempt))
                    continue
                fail(pos, exc)
            else:
                land(pos, payload)
            break


class InlineBackend(ExecutionBackend):
    """In-process execution: no subprocess, no pickling, deterministic
    request order.  The ``jobs=1`` scheduling of the pre-backend
    executor, verbatim."""

    name = "inline"
    jobs = 1

    def execute(self, jobs_list: List[Job], land: LandFn, fail: FailFn,
                progress: "Progress") -> None:
        run_inline(self.executor, jobs_list, land, fail, progress)


class ProcessPoolBackend(ExecutionBackend):
    """Streaming dispatch over one persistent process pool.

    The pool is spun up on first use and reused across batches
    (``close()`` shuts it down; the backend stays usable — the next
    parallel batch starts a fresh pool).  ``jobs == 1`` and single-job
    batches execute inline, exactly as the pre-backend executor did:
    there is nothing to overlap, and the subprocess round-trip would
    only add pickling.
    """

    name = "pool"

    def __init__(self, jobs: int = 2) -> None:
        super().__init__()
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            from repro.experiments.engine import _pool_worker_init
            self._pool = ProcessPoolExecutor(max_workers=self.jobs,
                                             initializer=_pool_worker_init)
        return self._pool

    def discard_pool(self) -> None:
        """Drop the pool without waiting — used when it broke or the batch
        was interrupted; the next parallel batch spins up a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _kill_pool(self) -> None:
        """Kill the pool's worker processes, then discard it.

        The watchdog's hammer: a future that is already RUNNING cannot be
        cancelled, and ``shutdown(wait=False)`` would still leave the
        interpreter joining a hung worker at exit — so the workers are
        killed outright (the hung cell with them) before the teardown.
        Reaches into ``ProcessPoolExecutor._processes``; a stdlib that
        renamed it degrades to a plain discard, never an error.
        """
        pool = self._pool
        if pool is None:
            return
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.kill()
            except Exception:  # noqa: BLE001 — already dead is fine
                pass
        self.discard_pool()

    def compile_pool(self) -> Optional[ProcessPoolExecutor]:
        return self._ensure_pool() if self.jobs > 1 else None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # -- dispatch ----------------------------------------------------------
    def execute(self, jobs_list: List[Job], land: LandFn, fail: FailFn,
                progress: "Progress") -> None:
        if self.jobs == 1 or len(jobs_list) == 1:
            run_inline(self.executor, jobs_list, land, fail, progress)
        else:
            self._stream(jobs_list, land, fail, progress)

    def _stream(self, jobs_list: List[Job], land: LandFn, fail: FailFn,
                progress: "Progress") -> None:
        """Submit every job, finalise each as it completes — and survive
        the infrastructure dying under the batch.

        Three failure channels feed the shared retry budget
        (``attempts[pos]`` counts *charged* failures per position; a cell
        fails for real only once it exceeds the executor's ``retries``):

        * a **retryable worker exception** (transient I/O, an injected
          fault) charges that cell and resubmits it after backoff;
        * a **broken pool** (OOM-killed / segfaulted worker) fails every
          in-flight future at once with no way to identify the culprit —
          futures that finished before the break are drained and cached
          first, then every victim is charged one attempt and resubmitted
          to a fresh pool;
        * a **deadline expiry** — the watchdog tracks when each future is
          first observed RUNNING and, once one overstays ``deadline_s``,
          kills the pool (a running future cannot be cancelled).  Only the
          overdue cells are charged (and counted as timeouts); collateral
          in-flight cells are resubmitted *uncharged*, attempt counts
          preserved — they did nothing wrong.

        Deterministic cell exceptions bypass the budget and fail fast.
        Everything that completed before an interruption was already
        cached by ``land``, so Ctrl-C keeps its resume-by-rerun contract.
        """
        executor = self.executor
        attempts = [0] * len(jobs_list)
        inflight: Dict[Future, int] = {}
        first_running: Dict[Future, float] = {}
        #: Positions waiting out a backoff (or a pool respawn):
        #: (monotonic resubmit time, position).
        delayed: List[Tuple[float, int]] = []

        def submit(pos: int) -> None:
            cell, source = jobs_list[pos]
            job = (cell, source, attempts[pos])
            try:
                future = self._ensure_pool().submit(_execute_cell, job)
            except BrokenExecutor as exc:
                # The pool broke since the last drain (another worker
                # death): handle the wave right here — drain and charge
                # the stranded futures — so the replacement pool never
                # shares the in-flight map with a dead one.
                self.discard_pool()
                reclaim(exc, set(inflight.values()))
                future = self._ensure_pool().submit(_execute_cell, job)
            inflight[future] = pos

        def charge(pos: int, exc: BaseException) -> None:
            attempts[pos] += 1
            if attempts[pos] > executor.retries:
                fail(pos, exc)
                return
            executor.stats.retries += 1
            progress.retries += 1
            executor._emit(progress)
            delay = executor._backoff_delay(jobs_list[pos][0].label(), pos,
                                            attempts[pos])
            delayed.append((time.monotonic() + delay, pos))

        def reclaim(exc: BaseException, charged: Set[int]) -> None:
            """The pool just died: drain every future that actually
            finished (their results are real and must be cached), charge
            the positions in ``charged``, resubmit the rest uncharged."""
            for future, pos in list(inflight.items()):
                del inflight[future]
                first_running.pop(future, None)
                payload = None
                if future.done() and not future.cancelled():
                    try:
                        payload = future.result()
                    except BaseException:  # noqa: BLE001 — died with pool
                        payload = None
                if payload is not None:
                    land(pos, payload)
                elif pos in charged:
                    if isinstance(exc, CellDeadlineExceeded):
                        executor.stats.timeouts += 1
                        progress.timeouts += 1
                    charge(pos, exc)
                else:
                    delayed.append((time.monotonic(), pos))

        try:
            for pos in range(len(jobs_list)):
                submit(pos)
            while inflight or delayed:
                now = time.monotonic()
                if delayed:
                    due = [pos for when, pos in delayed if when <= now]
                    delayed = [(when, pos) for when, pos in delayed
                               if when > now]
                    for pos in due:
                        submit(pos)
                if not inflight:
                    next_due = min(when for when, _ in delayed)
                    time.sleep(max(0.0, next_due - time.monotonic()))
                    continue
                timeout: Optional[float] = None
                if delayed:
                    timeout = max(0.0, min(when for when, _ in delayed) - now)
                if executor.deadline_s is not None:
                    # Poll fast enough to observe futures entering RUNNING
                    # and to fire the watchdog promptly.
                    poll = min(0.05, executor.deadline_s / 4)
                    timeout = poll if timeout is None else min(timeout, poll)
                done, _ = wait(list(inflight), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                broken: Optional[BaseException] = None
                broken_pos: Set[int] = set()
                for future in done:
                    pos = inflight.pop(future)
                    first_running.pop(future, None)
                    try:
                        payload = future.result()
                    except BrokenExecutor as exc:
                        # One raised it, but the whole wave is dead —
                        # handled together below so finished futures
                        # drain before anything is charged.
                        broken = exc
                        broken_pos.add(pos)
                    except Exception as exc:  # noqa: BLE001 — per cell
                        if isinstance(exc, _RETRYABLE):
                            charge(pos, exc)
                        else:
                            fail(pos, exc)
                    else:
                        land(pos, payload)
                if broken is not None:
                    self.discard_pool()
                    # No way to tell which cell killed the worker: every
                    # victim is charged one attempt.  A deterministic
                    # crasher exhausts its budget within `retries` waves;
                    # innocents ride along well inside theirs.
                    reclaim(broken, set(inflight.values()) | broken_pos)
                    for pos in broken_pos:
                        charge(pos, broken)
                    first_running.clear()
                    continue
                if executor.deadline_s is not None and inflight:
                    now = time.monotonic()
                    for future in inflight:
                        if future not in first_running and future.running():
                            first_running[future] = now
                    overdue = {inflight[future]
                               for future, seen in first_running.items()
                               if future in inflight
                               and now - seen >= executor.deadline_s}
                    if overdue:
                        exc_t = CellDeadlineExceeded(
                            f"cell exceeded its {executor.deadline_s:.3g}s "
                            f"deadline")
                        self._kill_pool()
                        reclaim(exc_t, overdue)
                        first_running.clear()
        except BaseException:
            # Interrupted mid-drain (Ctrl-C, a raising progress callback):
            # abandon what is left — everything finalised so far is cached.
            self.discard_pool()
            raise


def make_backend(name: str = "auto", jobs: int = 1,
                 shards: int = 4) -> ExecutionBackend:
    """Resolve a ``--backend`` flag value into a backend instance.

    ``auto`` (the default) preserves the historical ``--jobs`` contract:
    inline at ``jobs == 1``, a process pool above.  ``shard`` builds a
    :class:`~repro.experiments.shard.ShardBackend` over ``shards``
    partitions, each executed through an inner auto backend of the same
    ``jobs`` width.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if name in ("auto", None):
        return InlineBackend() if jobs == 1 else ProcessPoolBackend(jobs)
    if name == "inline":
        return InlineBackend()
    if name == "pool":
        return ProcessPoolBackend(jobs)
    if name == "shard":
        from repro.experiments.shard import ShardBackend
        return ShardBackend(shards=shards, jobs=jobs)
    raise ValueError(f"unknown backend {name!r}; "
                     f"known: auto, inline, pool, shard")
