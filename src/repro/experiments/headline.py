"""The paper's headline claims, checked in one place.

Produces a structured paper-vs-measured record used by EXPERIMENTS.md, the
`bench_headline_claims` benchmark and the integration tests:

1. axpy reaches ~2X by reconfiguring AVA X1 -> X8 (abstract / §V);
2. AVA matches the equivalent NATIVE configurations on axpy;
3. AVA adds ~0.55% area to the VPU and saves ~53% VPU area vs NATIVE X8
   (§VI);
4. AVA X8 beats RG-LMUL8 on the spill-prone applications (§V);
5. LavaMD2's best AVA configuration is X3 (fixed 48-element vectors, §V);
6. axpy saves ~37% energy when reconfigured for long vectors (§VI);
7. the AVA chip is ~50% smaller after PnR and meets 1 GHz timing while
   NATIVE X8 does not (§VII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import ava_config, native_config
from repro.experiments.engine import CellExecutor
from repro.experiments.figure3 import Figure3Panel, build_panels
from repro.experiments.rendering import render_table
from repro.power.physical import PhysicalDesignModel

#: The three applications the headline claims simulate.
CLAIM_WORKLOADS = ("axpy", "blackscholes", "lavamd")


@dataclass
class Claim:
    """One paper-vs-measured data point."""

    claim: str
    paper: str
    measured: str
    holds: bool


def check_headline_claims(
        panels: Optional[dict[str, Figure3Panel]] = None,
        executor: Optional[CellExecutor] = None,
        extra_workloads: Sequence[str] = ()) -> List[Claim]:
    """Evaluate every headline claim; reuses panels if provided.

    Without precomputed panels the three applications run as one engine
    batch — with a cache-backed executor they are shared with ``figure3``.
    ``extra_workloads`` widens that batch (the CLI's ``--extended`` passes
    the full ten-kernel grid), warming the shared cache without changing
    which claims are evaluated.
    """
    if panels is None:
        names = list(CLAIM_WORKLOADS) + [n for n in extra_workloads
                                         if n not in CLAIM_WORKLOADS]
        panels = build_panels(names, executor=executor, label="claims")
    claims: List[Claim] = []

    axpy = panels["axpy"]
    ava_x8 = axpy.record("AVA X8").speedup
    claims.append(Claim(
        "axpy speedup AVA X8 vs baseline", "2.03x", f"{ava_x8:.2f}x",
        1.7 <= ava_x8 <= 2.4))
    native_x8 = axpy.record("NATIVE X8").speedup
    claims.append(Claim(
        "axpy: AVA X8 matches NATIVE X8", "equal",
        f"{ava_x8 / native_x8:.3f} of native", abs(ava_x8 / native_x8 - 1) < 0.02))
    swaps = axpy.record("AVA X8").stats.swap_insts
    claims.append(Claim(
        "axpy generates no swap operations", "0", str(swaps), swaps == 0))

    # Area claims come from the anchored model; no simulation needed.
    from repro.power.mcpat import McPatModel
    mcpat = McPatModel()
    ava_area = mcpat.area(ava_config(8))
    native_area = mcpat.area(native_config(8))
    overhead = ava_area.ava_structs / ava_area.vpu
    claims.append(Claim(
        "AVA structures area overhead", "0.55% of VPU", f"{overhead:.2%}",
        0.004 <= overhead <= 0.007))
    reduction = 1.0 - ava_area.vpu / native_area.vpu
    claims.append(Claim(
        "VPU area reduction vs NATIVE X8", "53%", f"{reduction:.1%}",
        0.45 <= reduction <= 0.60))

    bs = panels["blackscholes"]
    ava_vs_rg = (bs.record("AVA X8").speedup, bs.record("RG-LMUL8").speedup)
    claims.append(Claim(
        "blackscholes: AVA X8 beats RG-LMUL8",
        "1.64x vs 1.49x", f"{ava_vs_rg[0]:.2f}x vs {ava_vs_rg[1]:.2f}x",
        ava_vs_rg[0] > ava_vs_rg[1]))
    ava_x2_swaps = bs.record("AVA X2").stats.swap_insts
    claims.append(Claim(
        "blackscholes: AVA X2 is swap-free (32 P-regs)", "0 swaps",
        str(ava_x2_swaps), ava_x2_swaps == 0))
    mem_frac = bs.record("AVA X8").stats.memory_fraction
    claims.append(Claim(
        "blackscholes AVA X8 memory fraction", "38%", f"{mem_frac:.0%}",
        0.30 <= mem_frac <= 0.46))

    lavamd = panels["lavamd"]
    ava_records = [r for r in lavamd.records
                   if r.config.name.startswith("AVA")]
    best = max(ava_records, key=lambda r: r.speedup)
    claims.append(Claim(
        "lavamd: best AVA configuration", "AVA X3 (1.67x)",
        f"{best.config.name} ({best.speedup:.2f}x)",
        best.config.name == "AVA X3"))
    rg8 = lavamd.record("RG-LMUL8").speedup
    claims.append(Claim(
        "lavamd: RG-LMUL8 collapses below baseline", "0.48x",
        f"{rg8:.2f}x", rg8 < 0.7))

    # Energy: axpy saving when reconfigured to X8.
    e1 = axpy.record("NATIVE X1").energy.total
    e8 = axpy.record("AVA X8").energy.total
    saving = 1.0 - e8 / e1
    claims.append(Claim(
        "axpy energy saving at AVA X8", "37%", f"{saving:.0%}",
        0.25 <= saving <= 0.50))

    pnr = PhysicalDesignModel()
    native_pnr = pnr.evaluate(native_config(8))
    ava_pnr = pnr.evaluate(ava_config(8))
    claims.append(Claim(
        "PnR: AVA meets 1 GHz, NATIVE X8 does not",
        "+0.119ns vs -0.244ns",
        f"{ava_pnr.wns_ns:+.3f}ns vs {native_pnr.wns_ns:+.3f}ns",
        ava_pnr.meets_timing and not native_pnr.meets_timing))
    chip_red = pnr.area_reduction_vs(ava_config(8), native_config(8))
    claims.append(Claim(
        "PnR: chip area reduction", "50.7%", f"{chip_red:.1%}",
        0.45 <= chip_red <= 0.55))
    return claims


def render_claims(claims: List[Claim]) -> str:
    rows = [[c.claim, c.paper, c.measured, "yes" if c.holds else "NO"]
            for c in claims]
    held = sum(c.holds for c in claims)
    return (render_table(["claim", "paper", "measured", "holds"], rows)
            + f"\n{held}/{len(claims)} headline claims hold")
