"""Figure 5 regenerator: the NATIVE X8 and AVA floorplans.

Floorplans are derived analytically from the configurations (no
simulation cells), so this artifact takes no engine executor; rendering
accepts precomputed plans so callers that already built them (benchmarks)
do not pay twice.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ava_config, native_config
from repro.power.floorplan import Floorplan, build_floorplan


def build_figure5() -> tuple[Floorplan, Floorplan]:
    """The two dies of Fig. 5 (NATIVE X8 on top, AVA below)."""
    return build_floorplan(native_config(8)), build_floorplan(ava_config(8))


def render_figure5(width: int = 64, height: int = 16,
                   plans: Optional[tuple[Floorplan, Floorplan]] = None) -> str:
    native, ava = plans if plans is not None else build_figure5()
    parts = ["=== Figure 5: post-PnR floorplans ==="]
    for plan in (native, ava):
        parts.append(f"-- {plan.config_name}: "
                     f"{plan.die_width_um:.0f} x {plan.die_height_um:.0f} um "
                     f"({plan.die_area_mm2:.2f} mm2) --")
        parts.append(plan.ascii_art(width, height))
        parts.append(plan.legend())
        parts.append(f"average VRF-macro to lane wire length: "
                     f"{plan.average_macro_lane_wire_um():.0f} um")
    ratio = (native.average_macro_lane_wire_um()
             / max(ava.average_macro_lane_wire_um(), 1e-9))
    parts.append(
        f"NATIVE X8 wires are {ratio:.2f}x longer — the mechanism behind "
        f"its negative slack in Table V (§VII)")
    return "\n".join(parts)
