"""Unified experiment-execution engine.

Every artifact of the paper boils down to a grid of independent
(workload × configuration × timing-params × policy-knob) simulation
*cells*.  This module makes that grid explicit and executes it once:

* :class:`Cell` — one simulation, fully described by data: a workload
  plus the machine-side scenario axes (machine config, timing params,
  memory system, policy);
* :class:`SweepSpec` — a declarative grid that enumerates cells in a
  deterministic order, so new sweeps are data, not new code;
* :class:`ResultCache` — a persistent, content-addressed store of
  :class:`repro.sim.stats.SimStats` / :class:`repro.power.mcpat.EnergyReport`
  JSON under ``.repro-cache/``.  The key hashes the configuration fields,
  the *compiled program* fingerprint, the timing parameters, the policy
  knobs and :data:`DATA_SEED` — any change to any of them is a miss;
* :class:`CellExecutor` — runs cells inline or fanned out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Results are keyed by
  their position in the request, never by completion order, so the output
  is byte-identical regardless of scheduling and of ``jobs``.

The figure/table regenerators, the CLI, the benchmarks and the examples
all route through here, so ``figure3 all``, ``figure4`` and ``claims``
share cells instead of recomputing them.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import MachineConfig
from repro.isa.program import Program
from repro.memory.hierarchy import MemorySystemConfig
from repro.power.mcpat import EnergyReport, McPatModel
from repro.sim.scenario import CellPolicy, Scenario
from repro.sim.simulator import Simulator
from repro.sim.stats import SimStats
from repro.vpu.params import DEFAULT_TIMING, TimingParams
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload

#: Seed used by every experiment so figures are reproducible.  Part of the
#: cache key: changing it invalidates every cached cell.
DATA_SEED = 42

#: Bump when the payload layout or the simulator's observable behaviour
#: changes in a way the content hash cannot see.
#: Schema 2: ``stats`` payloads carry the event-driven scheduler's
#: ``events_processed`` / ``cycles_skipped`` counters.
#: Schema 3: keys hash the cell's full :class:`~repro.sim.scenario.Scenario`
#: (machine + timing + memory system + policy) — entries can never collide
#: across memory or timing presets.
CACHE_SCHEMA = 3

#: Default on-disk location of the persistent result cache.
DEFAULT_CACHE_DIR = ".repro-cache"


# ---------------------------------------------------------------------------
# cell description
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Cell:
    """One (workload, scenario) simulation, fully described by data.

    ``workload`` is normally a Table-IV registry name; passing a
    :class:`~repro.workloads.base.Workload` instance is allowed for
    out-of-registry kernels (the cache key hashes the compiled program, so
    the name is never trusted on its own).  ``params``/``memsys`` left at
    ``None`` mean the paper's defaults — :meth:`scenario` folds all four
    machine-side axes into one frozen bundle.
    """

    workload: Union[str, Workload]
    config: MachineConfig
    params: Optional[TimingParams] = None
    policy: CellPolicy = CellPolicy()
    memsys: Optional[MemorySystemConfig] = None
    functional: bool = False
    warm: bool = True
    check: bool = False

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name

    def label(self) -> str:
        return f"{self.workload_name}@{self.config.name}"

    def resolve_workload(self) -> Workload:
        if isinstance(self.workload, str):
            return get_workload(self.workload)
        return self.workload

    def scenario(self) -> Scenario:
        """The cell's machine-side axes as one frozen scenario."""
        return Scenario(
            machine=self.config,
            timing=self.params if self.params is not None else DEFAULT_TIMING,
            memory=(self.memsys if self.memsys is not None
                    else MemorySystemConfig()),
            policy=self.policy)

    @classmethod
    def from_scenario(cls, workload: Union[str, Workload],
                      scenario: Scenario, *, functional: bool = False,
                      warm: bool = True, check: bool = False) -> "Cell":
        """Build a cell from a scenario bundle (inverse of :meth:`scenario`)."""
        return cls(workload=workload, config=scenario.machine,
                   params=scenario.timing, policy=scenario.policy,
                   memsys=scenario.memory, functional=functional,
                   warm=warm, check=check)


@dataclass
class SweepSpec:
    """A declarative (workload × config × params × memsys × policy) grid.

    :meth:`cells` enumerates the full cartesian product in a fixed nested
    order — workload outermost, policy innermost — so a spec always expands
    to the same cell list regardless of who runs it.
    """

    workloads: Sequence[Union[str, Workload]]
    configs: Sequence[MachineConfig]
    params: Sequence[Optional[TimingParams]] = (None,)
    memsys: Sequence[Optional[MemorySystemConfig]] = (None,)
    policies: Sequence[CellPolicy] = (CellPolicy(),)
    functional: bool = False
    warm: bool = True
    check: bool = False

    def cells(self) -> List[Cell]:
        return [Cell(workload=w, config=cfg, params=p, memsys=mem,
                     policy=pol, functional=self.functional, warm=self.warm,
                     check=self.check)
                for w in self.workloads
                for cfg in self.configs
                for p in self.params
                for mem in self.memsys
                for pol in self.policies]

    def __len__(self) -> int:
        return (len(self.workloads) * len(self.configs) * len(self.params)
                * len(self.memsys) * len(self.policies))

    def chunk_by_workload(self, results: Sequence["CellResult"]
                          ) -> List[Tuple[str, List["CellResult"]]]:
        """Split a :meth:`cells`-ordered result list per workload.

        Owns the stride arithmetic (configs × params × memsys × policies),
        so consumers stay correct if a spec grows extra axes.
        """
        stride = (len(self.configs) * len(self.params) * len(self.memsys)
                  * len(self.policies))
        if len(results) != stride * len(self.workloads):
            raise ValueError(
                f"expected {stride * len(self.workloads)} results for this "
                f"spec, got {len(results)}")
        return [(w if isinstance(w, str) else w.name,
                 list(results[i * stride:(i + 1) * stride]))
                for i, w in enumerate(self.workloads)]


@dataclass
class CellResult:
    """Statistics, energy and (with ``check=True``) the correctness verdict."""

    cell: Cell
    stats: SimStats
    energy: EnergyReport
    correct: Optional[bool] = None
    key: str = ""
    from_cache: bool = False


@dataclass
class RunRecord:
    """One rendered cell: statistics decorated with a relative speedup.

    Historically the result type of ``repro.experiments.runner``; the
    figure renderers consume it, so it lives with the engine now that the
    runner module is a deprecation stub.
    """

    config: MachineConfig
    stats: SimStats
    energy: EnergyReport
    correct: Optional[bool] = None
    speedup: float = field(default=1.0)

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def record_from_result(result: CellResult) -> RunRecord:
    """Adapt an engine result to the renderers' record type."""
    return RunRecord(config=result.cell.config, stats=result.stats,
                     energy=result.energy, correct=result.correct)


def fill_speedups(records: List[RunRecord],
                  baseline_index: int = 0) -> List[RunRecord]:
    """Decorate records with speedups vs the baseline entry, in place."""
    base_cycles = records[baseline_index].cycles
    for record in records:
        record.speedup = base_cycles / record.cycles if record.cycles else 0.0
    return records


def average_speedups(per_workload: Dict[str, List[RunRecord]]) -> List[float]:
    """Geometric-mean-free average speedup per series position (Fig. 4)."""
    n = min(len(records) for records in per_workload.values())
    return [float(np.mean([records[i].speedup
                           for records in per_workload.values()]))
            for i in range(n)]


# ---------------------------------------------------------------------------
# content hashing
# ---------------------------------------------------------------------------
_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file, computed once per process.

    Part of the cache key: simulator/model behaviour lives in code, not in
    the cell inputs, so ANY edit to the package must invalidate cached
    results — a reproduction repo must never replay pre-change numbers as
    freshly measured.  Conservative by design (editing a rendering helper
    also invalidates), which errs on the side of re-simulating.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro
        root = Path(repro.__file__).parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
        _CODE_FINGERPRINT = h.hexdigest()
    return _CODE_FINGERPRINT


def program_fingerprint(program: Program) -> str:
    """Content hash of a compiled program (instruction trace + shape).

    Instruction uids are excluded — two compilations of the same kernel for
    the same configuration fingerprint identically.  Scalar operands are
    hashed via ``float.hex()`` (exact), not the 6-significant-digit display
    form, so kernels differing only in a constant never collide.
    """
    parts = [f"{program.name}|mvl={program.mvl}"
             f"|spill_slots={program.spill_slots}\n"]
    for name in sorted(program.buffers):
        parts.append(f"buf {name}:{program.buffers[name]}\n")
    for inst in program.insts:
        scalar = None if inst.scalar is None else float(inst.scalar).hex()
        mem = inst.mem and (inst.mem.space.value, inst.mem.buffer,
                            inst.mem.base_elem, inst.mem.stride,
                            inst.mem.indexed)
        parts.append(f"{inst.op.value}|d={inst.dst}|s={inst.srcs}|f={scalar}"
                     f"|vl={inst.vl}|mem={mem}|tag={inst.tag.value}\n")
    # One hash update over the joined trace: identical digest to updating
    # line by line, at a fraction of the call overhead.
    return hashlib.sha256("".join(parts).encode()).hexdigest()


# Memo for the reflection-heavy scenario key dicts; Scenario is frozen and
# hashable, so equal scenarios (however many cells reference them) share
# one entry and the cache stays as small as the set of distinct scenarios
# ever keyed.
_KEY_CACHE: Dict[Scenario, dict] = {}


def _scenario_key(scenario: Scenario) -> dict:
    key = _KEY_CACHE.get(scenario)
    if key is None:
        key = scenario.to_dict()
        _KEY_CACHE[scenario] = key
    return key


def cell_key(cell: Cell, program: Program) -> str:
    """The cache key: every input that can change the cell's results.

    The machine-side inputs are hashed as the cell's *full scenario* —
    machine config, timing params, memory-system config and policy — so
    entries can never collide across memory or timing presets (before the
    scenario layer, the memory system was invisible to the key).
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "code": code_fingerprint(),
        "data_seed": DATA_SEED,
        "workload": cell.workload_name,
        "scenario": _scenario_key(cell.scenario()),
        "functional": cell.functional or cell.check,
        "warm": cell.warm,
        "check": cell.check,
        "program": program_fingerprint(program),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


# ---------------------------------------------------------------------------
# persistent result cache
# ---------------------------------------------------------------------------
class ResultCache:
    """Content-addressed JSON store for cell results.

    One file per cell under ``root``; writes are atomic (tempfile +
    ``os.replace``) so concurrent processes can share a cache directory.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The stored payload, or None (corrupt entries are misses).

        Corrupt includes structurally truncated entries: valid JSON that
        lost its ``stats``/``energy`` sections must re-simulate, not crash
        the render.
        """
        try:
            payload = json.loads(self.path(key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            return None
        if not (isinstance(payload.get("stats"), dict)
                and isinstance(payload.get("energy"), dict)):
            return None
        return payload

    def put(self, key: str, payload: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            # mkstemp creates the file 0600; widen to what a plain open()
            # would have produced under the process umask, or entries
            # written by one user are unreadable to the other processes the
            # shared-directory contract promises to serve.
            umask = os.umask(0)
            os.umask(umask)
            os.chmod(tmp, 0o666 & ~umask)
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                entry.unlink()
                removed += 1
        return removed


# ---------------------------------------------------------------------------
# cell execution
# ---------------------------------------------------------------------------
def _execute_cell(job: Tuple[Cell, Program]) -> dict:
    """Simulate and measure one pre-compiled cell; returns the cache payload.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; must stay
    deterministic — everything it consumes is in the cell (plus
    :data:`DATA_SEED`).  The program was already compiled by the executor
    for key computation, so it is shipped rather than recompiled.
    """
    cell, program = job
    workload = cell.resolve_workload()
    functional = cell.functional or cell.check
    sim = Simulator(cell.scenario(), program, functional=functional)
    rng = np.random.default_rng(DATA_SEED)
    data = workload.init_data(rng)
    if functional:
        for name, values in data.items():
            sim.set_data(name, values)
    if cell.warm:
        sim.warm_caches()
    result = sim.run()

    correct: Optional[bool] = None
    if cell.check:
        reference = workload.reference(data)
        correct = all(
            bool(np.allclose(result.buffer(name), expected,
                             rtol=1e-9, atol=1e-12))
            for name, expected in reference.items())

    energy = McPatModel().energy(cell.config, result.stats)
    return {
        "schema": CACHE_SCHEMA,
        "label": cell.label(),
        "stats": result.stats.to_dict(),
        "energy": energy.to_dict(),
        "correct": correct,
    }


@dataclass
class ExecutorStats:
    """Observable engine counters (the warm-cache acceptance check).

    ``cache_misses`` counts every cell whose result was not replayed from
    a cache — including every cell of a cache-less executor, so
    ``cache_misses`` always equals ``cells_requested - cache_hits``.
    ``compiles`` counts actual kernel compilations; the per-(workload,
    config) memo keeps it at the number of *distinct* pairs keyed, however
    many cells request them and whether or not they hit the cache (key
    computation needs the program fingerprint, so one compile per pair is
    the floor).  Named cells memoize for the executor's lifetime;
    instance-backed cells only within one batch, because the caller owns
    the instance and may mutate it between batches.  ``sim_*`` counters aggregate the event-driven scheduler's
    efficiency over the simulations this executor actually ran (cache hits
    replay stored results and schedule nothing).
    """

    cells_requested: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    sims_executed: int = 0
    compiles: int = 0
    sim_cycles: int = 0
    sim_events_processed: int = 0
    sim_cycles_skipped: int = 0

    def summary(self) -> str:
        text = (f"engine: {self.cells_requested} cells requested, "
                f"{self.cache_hits} cache hits, "
                f"{self.cache_misses} misses, "
                f"{self.sims_executed} simulations executed, "
                f"{self.compiles} kernel compiles")
        if self.sim_cycles:
            skipped = 100.0 * self.sim_cycles_skipped / self.sim_cycles
            text += (f"\nscheduler: {self.sim_cycles} cycles simulated, "
                     f"{self.sim_events_processed} events processed, "
                     f"{self.sim_cycles_skipped} cycles skipped "
                     f"({skipped:.0f}%)")
        return text


class CellExecutor:
    """Runs cell batches inline or over a process pool, with caching.

    ``jobs=1`` executes inline (no subprocess, no pickling); ``jobs>1``
    fans misses out over a :class:`ProcessPoolExecutor`.  Identical cells
    within a batch are simulated once.  Results always come back in
    request order.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.stats = ExecutorStats()
        # Compilation memo for *named* cells: the registry instantiates a
        # fresh default-shaped instance per lookup, so (name, config) is
        # pure for the life of the executor.  Instance-backed cells are
        # memoized per batch only (see :meth:`run`): the caller owns the
        # instance and may mutate it between batches.
        self._programs: Dict[Tuple[Union[str, Workload], MachineConfig],
                             Program] = {}

    # -- public API ------------------------------------------------------------
    def _program_for(self, cell: Cell,
                     batch_memo: Dict[Tuple[Union[str, Workload],
                                            MachineConfig], Program]
                     ) -> Program:
        """The cell's compiled program, memoized per (workload, config)."""
        memo = (self._programs if isinstance(cell.workload, str)
                else batch_memo)
        memo_key = (cell.workload, cell.config)
        program = memo.get(memo_key)
        if program is None:
            program = cell.resolve_workload().compile(cell.config).program
            self.stats.compiles += 1
            memo[memo_key] = program
        return program

    def run(self, cells: Sequence[Cell]) -> List[CellResult]:
        """Execute a batch; element ``i`` of the result matches ``cells[i]``."""
        self.stats.cells_requested += len(cells)
        # One compile per distinct (workload, config) pair: the program
        # feeds both the cache key and (for misses) the simulation itself.
        batch_memo: Dict[Tuple[Union[str, Workload], MachineConfig],
                         Program] = {}
        programs = [self._program_for(cell, batch_memo) for cell in cells]
        keys = [cell_key(cell, program)
                for cell, program in zip(cells, programs)]

        results: Dict[int, CellResult] = {}
        pending: List[int] = []
        for i, (cell, key) in enumerate(zip(cells, keys)):
            payload = self.cache.get(key) if self.cache else None
            if payload is not None:
                self.stats.cache_hits += 1
                results[i] = self._materialise(cell, key, payload,
                                               from_cache=True)
            else:
                self.stats.cache_misses += 1
                pending.append(i)

        if pending:
            # Dedupe identical cells inside the batch: one simulation each.
            by_key: Dict[str, List[int]] = {}
            for i in pending:
                by_key.setdefault(keys[i], []).append(i)
            unique = [(key, indices[0]) for key, indices in by_key.items()]
            payloads = self._simulate([(cells[i], programs[i])
                                       for _, i in unique])
            self.stats.sims_executed += len(unique)
            for payload in payloads:
                sim_stats = payload["stats"]
                self.stats.sim_cycles += sim_stats["cycles"]
                self.stats.sim_events_processed += (
                    sim_stats["events_processed"])
                self.stats.sim_cycles_skipped += sim_stats["cycles_skipped"]
            for (key, _), payload in zip(unique, payloads):
                if self.cache is not None:
                    self.cache.put(key, payload)
                for i in by_key[key]:
                    results[i] = self._materialise(cells[i], key, payload,
                                                   from_cache=False)
        return [results[i] for i in range(len(cells))]

    def run_spec(self, spec: SweepSpec) -> List[CellResult]:
        """Expand a sweep spec and execute its grid."""
        return self.run(spec.cells())

    def run_one(self, cell: Cell) -> CellResult:
        return self.run([cell])[0]

    # -- internals -------------------------------------------------------------
    def _simulate(self, jobs_list: List[Tuple[Cell, Program]]) -> List[dict]:
        if self.jobs == 1 or len(jobs_list) == 1:
            return [_execute_cell(job) for job in jobs_list]
        workers = min(self.jobs, len(jobs_list))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_execute_cell, jobs_list))

    @staticmethod
    def _materialise(cell: Cell, key: str, payload: dict,
                     from_cache: bool) -> CellResult:
        return CellResult(
            cell=cell,
            stats=SimStats.from_dict(payload["stats"]),
            energy=EnergyReport.from_dict(payload["energy"]),
            correct=payload.get("correct"),
            key=key,
            from_cache=from_cache,
        )


def figure3_spec(workloads: Sequence[Union[str, Workload]],
                 params: Optional[TimingParams] = None,
                 check: bool = False) -> SweepSpec:
    """The Figure-3 grid — all 14 chart configurations — over ``workloads``.

    The shared declarative spec behind ``figure3``, ``claims`` and the
    extended-suite CLI selections, so every consumer enumerates the same
    cells in the same order (and therefore shares them through the cache).
    """
    from repro.experiments.configs import figure3_series
    return SweepSpec(workloads=list(workloads), configs=figure3_series(),
                     params=(params,), check=check)


def make_executor(jobs: int = 1, cache: bool = False,
                  cache_dir: Union[str, Path] = DEFAULT_CACHE_DIR
                  ) -> CellExecutor:
    """Build an executor from the CLI-style knobs (--jobs / --no-cache /
    --cache-dir)."""
    return CellExecutor(jobs=jobs,
                        cache=ResultCache(cache_dir) if cache else None)
