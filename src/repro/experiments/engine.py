"""Unified experiment-execution engine.

Every artifact of the paper boils down to a grid of independent
(workload × configuration × timing-params × policy-knob) simulation
*cells*.  This module makes that grid explicit and executes it once:

* :class:`Cell` — one simulation, fully described by data: a workload
  plus the machine-side scenario axes (machine config, timing params,
  memory system, policy);
* :class:`SweepSpec` — a declarative grid that enumerates cells in a
  deterministic order, so new sweeps are data, not new code;
* :class:`ResultCache` — a persistent, content-addressed store of
  :class:`repro.sim.stats.SimStats` / :class:`repro.power.mcpat.EnergyReport`
  JSON under ``.repro-cache/``.  The key hashes the configuration fields,
  the *compiled program* fingerprint, the timing parameters, the policy
  knobs and :data:`DATA_SEED` — any change to any of them is a miss;
* :class:`CellExecutor` — runs cells inline or streamed over one
  persistent :class:`concurrent.futures.ProcessPoolExecutor` that lives
  for the executor's lifetime.  Results are keyed by their position in
  the request, never by completion order, so the output is byte-identical
  regardless of scheduling and of ``jobs``.  Each result is written to
  the cache the moment it lands, a raising cell becomes a
  :class:`CellError` instead of discarding the rest of the batch, and an
  interrupted grid resumes by rerunning — finished cells replay as hits.

The figure/table regenerators, the CLI, the benchmarks and the examples
all route through here, so ``figure3 all``, ``figure4`` and ``claims``
share cells instead of recomputing them.
"""

from __future__ import annotations

import contextlib
import gc
import hashlib
import json
import random
import sys
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import (Callable, Dict, List, Optional, Sequence, TextIO,
                    Tuple, Union)

import numpy as np

from repro import faults
from repro.cachefs import AtomicJsonStore
from repro.compiler.signature import CompileSignature
from repro.compiler.store import TraceStore
from repro.core.config import MachineConfig
from repro.experiments.backends import (  # noqa: F401 — re-exported names
    _RETRYABLE, CellDeadlineExceeded, ExecutionBackend, InlineBackend,
    ProcessPoolBackend, default_jobs, make_backend)
from repro.isa.instructions import fingerprint_line
from repro.isa.program import Program
from repro.memory.hierarchy import MemorySystemConfig
from repro.power.mcpat import EnergyReport, McPatModel
from repro.sim.scenario import CellPolicy, Scenario
from repro.sim.simulator import Simulator
from repro.sim.stats import SimStats
from repro.vpu.params import DEFAULT_TIMING, TimingParams
from repro.workloads.base import CompiledWorkload, Workload
from repro.workloads.registry import get_workload

#: Seed used by every experiment so figures are reproducible.  Part of the
#: cache key: changing it invalidates every cached cell.
DATA_SEED = 42

#: Bump when the payload layout or the simulator's observable behaviour
#: changes in a way the content hash cannot see.
#: Schema 2: ``stats`` payloads carry the event-driven scheduler's
#: ``events_processed`` / ``cycles_skipped`` counters.
#: Schema 3: keys hash the cell's full :class:`~repro.sim.scenario.Scenario`
#: (machine + timing + memory system + policy) — entries can never collide
#: across memory or timing presets.
#: Schema 4: ``stats`` payloads carry the span-charging scheduler's
#: ``spans_charged`` / ``span_cycles`` counters.
CACHE_SCHEMA = 4

#: Default on-disk location of the persistent result cache.
DEFAULT_CACHE_DIR = ".repro-cache"


# ---------------------------------------------------------------------------
# cell description
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Cell:
    """One (workload, scenario) simulation, fully described by data.

    ``workload`` is normally a Table-IV registry name; passing a
    :class:`~repro.workloads.base.Workload` instance is allowed for
    out-of-registry kernels (the cache key hashes the compiled program, so
    the name is never trusted on its own).  ``params``/``memsys`` left at
    ``None`` mean the paper's defaults — :meth:`scenario` folds all four
    machine-side axes into one frozen bundle.
    """

    workload: Union[str, Workload]
    config: MachineConfig
    params: Optional[TimingParams] = None
    policy: CellPolicy = CellPolicy()
    memsys: Optional[MemorySystemConfig] = None
    functional: bool = False
    warm: bool = True
    check: bool = False
    # Run under the microarchitectural sanitizer.  Part of the cache key:
    # a sanitized run must prove the invariants held for *this* cell, not
    # inherit a result computed without them.
    sanitize: bool = False

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name

    def label(self) -> str:
        return f"{self.workload_name}@{self.config.name}"

    def resolve_workload(self) -> Workload:
        if isinstance(self.workload, str):
            return get_workload(self.workload)
        return self.workload

    def scenario(self) -> Scenario:
        """The cell's machine-side axes as one frozen scenario."""
        return Scenario(
            machine=self.config,
            timing=self.params if self.params is not None else DEFAULT_TIMING,
            memory=(self.memsys if self.memsys is not None
                    else MemorySystemConfig()),
            policy=self.policy)

    @classmethod
    def from_scenario(cls, workload: Union[str, Workload],
                      scenario: Scenario, *, functional: bool = False,
                      warm: bool = True, check: bool = False) -> "Cell":
        """Build a cell from a scenario bundle (inverse of :meth:`scenario`)."""
        return cls(workload=workload, config=scenario.machine,
                   params=scenario.timing, policy=scenario.policy,
                   memsys=scenario.memory, functional=functional,
                   warm=warm, check=check)


@dataclass
class SweepSpec:
    """A declarative (workload × config × params × memsys × policy) grid.

    :meth:`cells` enumerates the full cartesian product in a fixed nested
    order — workload outermost, policy innermost — so a spec always expands
    to the same cell list regardless of who runs it.
    """

    workloads: Sequence[Union[str, Workload]]
    configs: Sequence[MachineConfig]
    params: Sequence[Optional[TimingParams]] = (None,)
    memsys: Sequence[Optional[MemorySystemConfig]] = (None,)
    policies: Sequence[CellPolicy] = (CellPolicy(),)
    functional: bool = False
    warm: bool = True
    check: bool = False

    def cells(self) -> List[Cell]:
        return [Cell(workload=w, config=cfg, params=p, memsys=mem,
                     policy=pol, functional=self.functional, warm=self.warm,
                     check=self.check)
                for w in self.workloads
                for cfg in self.configs
                for p in self.params
                for mem in self.memsys
                for pol in self.policies]

    def __len__(self) -> int:
        return (len(self.workloads) * len(self.configs) * len(self.params)
                * len(self.memsys) * len(self.policies))

    def chunk_by_workload(self, results: Sequence["CellResult"]
                          ) -> List[Tuple[str, List["CellResult"]]]:
        """Split a :meth:`cells`-ordered result list per workload.

        Owns the stride arithmetic (configs × params × memsys × policies),
        so consumers stay correct if a spec grows extra axes.
        """
        stride = (len(self.configs) * len(self.params) * len(self.memsys)
                  * len(self.policies))
        if len(results) != stride * len(self.workloads):
            raise ValueError(
                f"expected {stride * len(self.workloads)} results for this "
                f"spec, got {len(results)}")
        return [(w if isinstance(w, str) else w.name,
                 list(results[i * stride:(i + 1) * stride]))
                for i, w in enumerate(self.workloads)]


@dataclass
class CellResult:
    """Statistics, energy and (with ``check=True``) the correctness verdict."""

    cell: Cell
    stats: SimStats
    energy: EnergyReport
    correct: Optional[bool] = None
    key: str = ""
    from_cache: bool = False


@dataclass
class RunRecord:
    """One rendered cell: statistics decorated with a relative speedup.

    Historically the result type of the long-removed
    ``repro.experiments.runner`` module; the figure renderers consume it,
    so it lives with the engine.
    """

    config: MachineConfig
    stats: SimStats
    energy: EnergyReport
    correct: Optional[bool] = None
    speedup: float = field(default=1.0)

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def record_from_result(result: CellResult) -> RunRecord:
    """Adapt an engine result to the renderers' record type."""
    return RunRecord(config=result.cell.config, stats=result.stats,
                     energy=result.energy, correct=result.correct)


def fill_speedups(records: List[RunRecord],
                  baseline_index: int = 0) -> List[RunRecord]:
    """Decorate records with speedups vs the baseline entry, in place."""
    base_cycles = records[baseline_index].cycles
    for record in records:
        record.speedup = base_cycles / record.cycles if record.cycles else 0.0
    return records


def average_speedups(per_workload: Dict[str, List[RunRecord]]) -> List[float]:
    """Geometric-mean-free average speedup per series position (Fig. 4).

    Every workload must report the same series; ragged inputs mean a
    renderer lost (or duplicated) a configuration somewhere upstream, so
    they raise instead of silently averaging a truncated prefix.
    """
    lengths = {name: len(records) for name, records in per_workload.items()}
    if len(set(lengths.values())) > 1:
        raise ValueError(
            f"ragged per-workload series: {lengths} — every workload must "
            f"cover the same configurations")
    n = next(iter(lengths.values()), 0)
    return [float(np.mean([records[i].speedup
                           for records in per_workload.values()]))
            for i in range(n)]


# ---------------------------------------------------------------------------
# content hashing
# ---------------------------------------------------------------------------
_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file, computed once per process.

    Part of the cache key: simulator/model behaviour lives in code, not in
    the cell inputs, so ANY edit to the package must invalidate cached
    results — a reproduction repo must never replay pre-change numbers as
    freshly measured.  Conservative by design (editing a rendering helper
    also invalidates), which errs on the side of re-simulating.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro
        root = Path(repro.__file__).parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
        _CODE_FINGERPRINT = h.hexdigest()
    return _CODE_FINGERPRINT


def program_fingerprint(program: Program) -> str:
    """Content hash of a compiled program (instruction trace + shape).

    Instruction uids are excluded — two compilations of the same kernel for
    the same configuration fingerprint identically.  Scalar operands are
    hashed via ``float.hex()`` (exact), not the 6-significant-digit display
    form, so kernels differing only in a constant never collide.
    """
    parts = [f"{program.name}|mvl={program.mvl}"
             f"|spill_slots={program.spill_slots}\n"]
    for name in sorted(program.buffers):
        parts.append(f"buf {name}:{program.buffers[name]}\n")
    parts.extend(fingerprint_line(inst) for inst in program.insts)
    # One hash update over the joined trace: identical digest to updating
    # line by line, at a fraction of the call overhead.
    return hashlib.sha256("".join(parts).encode()).hexdigest()


# Memo for the reflection-heavy scenario key dicts; Scenario is frozen and
# hashable, so equal scenarios (however many cells reference them) share
# one entry and the cache stays as small as the set of distinct scenarios
# ever keyed.
_KEY_CACHE: Dict[Scenario, dict] = {}


def _scenario_key(scenario: Scenario) -> dict:
    key = _KEY_CACHE.get(scenario)
    if key is None:
        key = scenario.to_dict()
        _KEY_CACHE[scenario] = key
    return key


def cell_key(cell: Cell, program: Program) -> str:
    """The cache key: every input that can change the cell's results.

    The machine-side inputs are hashed as the cell's *full scenario* —
    machine config, timing params, memory-system config and policy — so
    entries can never collide across memory or timing presets (before the
    scenario layer, the memory system was invisible to the key).
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "code": code_fingerprint(),
        "data_seed": DATA_SEED,
        "workload": cell.workload_name,
        "scenario": _scenario_key(cell.scenario()),
        "functional": cell.functional or cell.check,
        "warm": cell.warm,
        "check": cell.check,
        # Sanitized runs re-simulate even when a plain result is cached:
        # the point of --sanitize is the invariant evidence, and a cache
        # hit computed without the sanitizer proves nothing.
        "sanitize": cell.sanitize,
        "program": program_fingerprint(program),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


# ---------------------------------------------------------------------------
# persistent result cache
# ---------------------------------------------------------------------------
class ResultCache(AtomicJsonStore):
    """Content-addressed JSON store for cell results.

    One file per cell under ``root``.  The crash-safe write discipline —
    atomic tempfile + ``os.replace``, orphan reaping, umask-honouring
    permissions — is :class:`~repro.cachefs.AtomicJsonStore`'s, shared
    with the compiler's :class:`~repro.compiler.store.TraceStore`; this
    class adds only the result payload's schema gate.
    """

    FAULT_SITE = "results"

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR,
                 max_bytes: Optional[int] = None) -> None:
        super().__init__(root, max_bytes=max_bytes)

    def _validate(self, payload: dict) -> bool:
        """Valid JSON that lost its ``stats``/``energy`` sections (or
        carries another schema) must re-simulate, not crash the render."""
        return (payload.get("schema") == CACHE_SCHEMA
                and isinstance(payload.get("stats"), dict)
                and isinstance(payload.get("energy"), dict))


# ---------------------------------------------------------------------------
# cell execution
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TraceRef:
    """A pool worker's pointer into a :class:`TraceStore` entry.

    When the executor runs with a trace store, workers receive this tiny
    (root, key) pair and load the program from disk themselves instead of
    unpickling a multi-thousand-instruction :class:`Program` over the
    pipe — the store is the shared transport, the pipe carries ~100 bytes.
    """

    root: str
    key: str


#: True only in pool worker processes (set by the pool initializer) — an
#: injected worker crash hard-exits a worker but must merely *raise* when
#: the cell executes inline, or it would take the CLI down with it.
_IN_POOL_WORKER = False


def _pool_worker_init() -> None:
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


@contextlib.contextmanager
def _gc_paused():
    """Pause the cyclic collector over one cell's compile / simulate.

    A cell run churns hundreds of thousands of short-lived acyclic
    objects (micro-ops, renamed instructions, numpy views) that reference
    counting reclaims on its own; the collector's generation scans over
    that churn cost ~15% of cell throughput and free nothing.  Collection
    is re-enabled (not forced) on exit, so cyclic garbage from elsewhere
    is still collected at the next natural threshold, and a collector the
    caller already disabled is left alone.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def _execute_cell(job: Union[Tuple[Cell, Union[Program, TraceRef]],
                             Tuple[Cell, Union[Program, TraceRef], int]]
                  ) -> dict:
    """Simulate and measure one pre-compiled cell; returns the cache payload.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; must stay
    deterministic — everything it consumes is in the cell (plus
    :data:`DATA_SEED`).  The program was already compiled by the executor
    for key computation, so it is never recompiled here: it arrives either
    in-memory (inline execution) or as a :class:`TraceRef` into the trace
    store (pool execution).  A ref whose entry vanished or was damaged
    between dispatch and execution falls back to an in-worker recompile —
    a pruned store costs time, never a failed cell.

    The optional third element is the cell's retry attempt number; an
    active :class:`~repro.faults.FaultPlan` (chaos testing) gates injected
    crashes/hangs on it, which is how "fails on attempt 0, succeeds on
    attempt 1" scenarios stay deterministic.
    """
    with _gc_paused():
        return _run_cell(job)


def _run_cell(job: Union[Tuple[Cell, Union[Program, TraceRef]],
                         Tuple[Cell, Union[Program, TraceRef], int]]
              ) -> dict:
    cell, source = job[0], job[1]
    attempt = job[2] if len(job) > 2 else 0
    plan = faults.active_plan()
    if plan is not None:
        plan.fire_cell(cell.label(), attempt, in_worker=_IN_POOL_WORKER)
    workload = cell.resolve_workload()
    functional = cell.functional or cell.check
    sim: Optional[Simulator] = None
    if isinstance(source, TraceRef):
        payload = TraceStore(source.root).get(source.key)
        if payload is not None:
            try:
                sim = Simulator.from_trace(cell.scenario(), payload,
                                           functional=functional,
                                           sanitize=cell.sanitize)
            except Exception:  # noqa: BLE001 — damaged entry reads as miss
                sim = None
        if sim is None:
            source = workload.compile(cell.config).program
    if sim is None:
        sim = Simulator(cell.scenario(), source, functional=functional,
                        sanitize=cell.sanitize)
    rng = np.random.default_rng(DATA_SEED)
    data = workload.init_data(rng)
    if functional:
        for name, values in data.items():
            sim.set_data(name, values)
    if cell.warm:
        sim.warm_caches()
    result = sim.run()

    correct: Optional[bool] = None
    if cell.check:
        reference = workload.reference(data)
        correct = all(
            bool(np.allclose(result.buffer(name), expected,
                             rtol=1e-9, atol=1e-12))
            for name, expected in reference.items())

    energy = McPatModel().energy(cell.config, result.stats)
    return {
        "schema": CACHE_SCHEMA,
        "label": cell.label(),
        "stats": result.stats.to_dict(),
        "energy": energy.to_dict(),
        "correct": correct,
    }


def _compile_cell(cell: Cell) -> "CompiledWorkload":
    """Compile one cell's kernel (module-level so the pool can pickle it).

    Compilation is pure — everything it reads is in the cell — so a
    parallel executor fans the distinct (workload, signature) compiles out
    over the same worker pool that runs the simulations, instead of
    serializing them in the parent while the workers sit idle.  The full
    :class:`CompiledWorkload` comes back (not just the program) so the
    parent can persist it to the trace store.
    """
    with _gc_paused():
        return cell.resolve_workload().compile(cell.config)


@dataclass
class CellError:
    """One cell that raised (or whose worker died) instead of producing
    statistics.

    Captured per cell so a single bad point cannot poison a streaming
    batch: every other cell still completes and is cached.  ``error`` is
    the one-line ``Type: message`` form; ``tb`` carries the worker-side
    traceback when one was recoverable (a SIGKILL-ed worker leaves none).
    """

    cell: Cell
    key: str
    error: str
    tb: str = ""

    def label(self) -> str:
        return self.cell.label()


class CellExecutionError(RuntimeError):
    """Raised after a streaming batch drains with at least one failed cell.

    By the time this surfaces, every *completed* cell has already been
    written to the cache — rerunning the same grid replays them as hits
    and re-executes only the failures (the crash-safe-resume contract).
    ``errors`` holds one :class:`CellError` per distinct failure; the
    counts in the message are per requested cell, so they always add up
    to the batch size even when a failing cell was deduplicated.
    """

    def __init__(self, errors: Sequence[CellError], completed: int,
                 total: int) -> None:
        self.errors = list(errors)
        self.completed = completed
        self.total = total
        first = self.errors[0]
        super().__init__(
            f"{total - completed} of {total} cells failed "
            f"({completed} completed and cached; rerun to resume); "
            f"first failure {first.label()}: {first.error}")


@dataclass
class Progress:
    """A live snapshot of one streaming batch, handed to the progress
    callback after the cache scan and again as every cell lands.

    ``done`` only counts cells whose result (or failure) is final — for a
    miss that is *after* its payload hit the cache, so a consumer watching
    ``done`` never over-reports what a crash would preserve.
    """

    total: int
    label: str = ""
    done: int = 0
    hits: int = 0
    misses: int = 0
    failed: int = 0
    #: Charged retry attempts so far.  A retried cell stays ONE miss —
    #: ``misses`` counts cells whose result had to be computed, not how
    #: many tries the infrastructure needed to compute it.
    retries: int = 0
    #: Cells whose attempt ran past the per-cell deadline (each such
    #: attempt also charges one retry, until the budget runs out).
    timeouts: int = 0
    _started: float = field(default_factory=time.perf_counter, repr=False)

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    @property
    def rate(self) -> float:
        """Cells finalised per second since the batch started."""
        elapsed = self.elapsed
        return self.done / elapsed if elapsed > 0 else 0.0


#: A progress consumer; called with the same mutating snapshot each time.
ProgressCallback = Callable[[Progress], None]


class ProgressRenderer:
    """Renders progress as one self-overwriting stderr line.

    Writes exclusively to ``stream`` (stderr by default) so the stdout
    artifacts stay byte-identical; redraws are rate-limited so multi-
    hundred-cell grids do not spend their time painting the terminal.
    :meth:`close` finishes the line with a newline — callers own that so
    an executor can run many batches over one renderer.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 min_interval_s: float = 0.1) -> None:
        self._stream = stream
        self._min_interval_s = min_interval_s
        self._last_draw = 0.0
        self._width = 0
        self._dirty = False

    def _line(self, progress: Progress) -> str:
        label = f"{progress.label}: " if progress.label else ""
        line = (f"{label}{progress.done}/{progress.total} cells | "
                f"{progress.hits} hits | {progress.misses} misses")
        if progress.retries:
            line += f" | {progress.retries} retries"
        if progress.timeouts:
            line += f" | {progress.timeouts} timeouts"
        if progress.failed:
            line += f" | {progress.failed} FAILED"
        return line + f" | {progress.rate:.1f} cells/s"

    def __call__(self, progress: Progress) -> None:
        now = time.perf_counter()
        finished = progress.done >= progress.total
        if not finished and now - self._last_draw < self._min_interval_s:
            return
        self._last_draw = now
        stream = self._stream if self._stream is not None else sys.stderr
        line = self._line(progress)
        stream.write("\r" + line + " " * max(0, self._width - len(line)))
        if finished:
            # One terminated line per completed batch; later stderr output
            # (cache stats, the next batch) starts clean.
            stream.write("\n")
            self._width = 0
            self._dirty = False
        else:
            self._width = len(line)
            self._dirty = True
        stream.flush()

    def close(self) -> None:
        """Terminate an unfinished in-place line (no-op after a batch that
        ran to completion — those self-terminate)."""
        if self._dirty:
            stream = self._stream if self._stream is not None else sys.stderr
            stream.write("\n")
            stream.flush()
            self._dirty = False
            self._width = 0


@dataclass
class ExecutorStats:
    """Observable engine counters (the warm-cache acceptance check).

    ``cache_misses`` counts every cell whose result was not replayed from
    a cache — including every cell of a cache-less executor, so
    ``cache_misses`` always equals ``cells_requested - cache_hits``.
    ``compiles`` counts actual kernel compilations; the per-(workload,
    :class:`CompileSignature`) memo keeps it at the number of *distinct*
    pairs keyed — configurations differing only in simulation-side axes
    share one compile — however many cells request them and whether or
    not they hit the cache (key computation needs the program
    fingerprint, so one compile per pair is the floor).  Named cells
    memoize for the executor's lifetime; instance-backed cells only
    within one batch, because the caller owns the instance and may mutate
    it between batches.  With a trace store attached, ``trace_hits``
    counts pairs replayed from disk instead of compiled and
    ``trace_misses`` counts pairs that had to compile (and were then
    stored) — so ``trace_misses == compiles`` on store-backed executors,
    and a fully warm store reports ``0 kernel compiles``.  ``sim_*``
    counters aggregate the event-driven scheduler's
    efficiency over the simulations this executor actually ran (cache hits
    replay stored results and schedule nothing).
    """

    cells_requested: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cells_failed: int = 0
    sims_executed: int = 0
    compiles: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    sim_cycles: int = 0
    sim_events_processed: int = 0
    sim_cycles_skipped: int = 0
    sim_spans_charged: int = 0
    sim_span_cycles: int = 0
    #: Resilience counters: charged retry attempts, deadline-exceeded
    #: attempts, cache entries quarantined on integrity failure and
    #: entries evicted by the size bound.  ``cache_misses`` stays one per
    #: cell however many attempts its result took (retry accounting never
    #: inflates the hit-rate denominators the acceptance greps key on).
    retries: int = 0
    timeouts: int = 0
    cache_quarantined: int = 0
    cache_evicted: int = 0

    def to_dict(self) -> Dict[str, int]:
        """Counters as plain JSON (the ``--stats-json`` payload body)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, int]) -> "ExecutorStats":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so a
        newer writer's counter file still merges on an older reader."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in payload.items() if k in known})

    def summary(self) -> str:
        text = (f"engine: {self.cells_requested} cells requested, "
                f"{self.cache_hits} cache hits, "
                f"{self.cache_misses} misses, "
                f"{self.sims_executed} simulations executed, "
                f"{self.compiles} kernel compiles, "
                f"{self.trace_hits} trace hits, "
                f"{self.trace_misses} trace misses")
        if (self.retries or self.timeouts or self.cache_quarantined
                or self.cache_evicted):
            # On its own line, only when something resilience-related
            # actually happened: the first line's wording is an interface
            # (CI greps it) and a fault-free run's output must not change.
            text += (f"\nresilience: {self.retries} retries, "
                     f"{self.timeouts} timeouts, "
                     f"{self.cache_quarantined} quarantined cache entries, "
                     f"{self.cache_evicted} evicted")
        if self.cells_failed:
            text += f"\nfailures: {self.cells_failed} cells failed"
        if self.sim_cycles:
            skipped = 100.0 * self.sim_cycles_skipped / self.sim_cycles
            text += (f"\nscheduler: {self.sim_cycles} cycles simulated, "
                     f"{self.sim_events_processed} events processed, "
                     f"{self.sim_cycles_skipped} cycles skipped "
                     f"({skipped:.0f}%)")
            if self.sim_spans_charged:
                covered = 100.0 * self.sim_span_cycles / self.sim_cycles
                text += (f"\nspans: {self.sim_spans_charged} charged, "
                         f"{self.sim_span_cycles} span cycles "
                         f"({covered:.0f}% of simulated)")
        return text


class CellExecutor:
    """Streams cell batches through a pluggable execution backend.

    ``jobs=1`` executes inline (no subprocess, no pickling); ``jobs>1``
    submits misses to one :class:`ProcessPoolExecutor` that is spun up on
    first use and reused across batches (``close()`` or the context-
    manager form shuts it down).  Identical cells within a batch are
    simulated once.  Results always come back in request order.

    Scheduling itself lives behind :class:`ExecutionBackend`
    (:mod:`repro.experiments.backends`): ``jobs`` resolves to an
    :class:`InlineBackend` or :class:`ProcessPoolBackend`, or pass
    ``backend=`` explicitly (e.g. a
    :class:`~repro.experiments.shard.ShardBackend`) — the semantic layer
    here (compile memo, cache scan, dedupe, position-keyed results,
    counters) is backend-independent, so rendered artifacts are
    byte-identical across backends.

    Execution is *streaming*: every payload is written to the cache the
    moment its simulation lands, so interrupting a grid — Ctrl-C, an
    OOM-killed worker, one raising cell — never discards the cells that
    already finished; rerunning replays them as cache hits and
    re-executes only what is missing.  A raising cell is captured as a
    :class:`CellError` while the rest of the batch keeps going; after the
    batch drains, failures raise :class:`CellExecutionError` (pass
    ``errors="return"`` to receive the :class:`CellError` objects in
    their result positions instead).  ``progress`` is called with a
    :class:`Progress` snapshot as every cell is finalised.

    ``traces`` attaches a persistent :class:`TraceStore`: compile-memo
    misses consult it before compiling, fresh compiles are written back,
    and parallel batches ship :class:`TraceRef` pointers to the workers
    instead of pickled programs.

    Resilience knobs: ``deadline_s`` arms a per-cell deadline — in pool
    mode a watchdog that kills the pool under a cell observed RUNNING for
    longer than the deadline (finished futures are drained first, and
    collateral in-flight cells are resubmitted with their attempt counts
    intact), inline a ``SIGALRM`` timer.  ``retries`` bounds how many
    *charged* failures a cell may accumulate before it becomes a
    :class:`CellError`; only infrastructure faults (:data:`_RETRYABLE`)
    charge the budget — deterministic cell exceptions fail fast on the
    first attempt.  Each charged retry backs off exponentially
    (``backoff_s * 2**(attempt-1)``) plus a deterministic per-cell jitter
    in ``[0, backoff_s)``, so a wave of retries against a shared cache
    never stampedes in lockstep.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 traces: Optional[TraceStore] = None,
                 progress: Optional[ProgressCallback] = None,
                 deadline_s: Optional[float] = None,
                 retries: int = 3,
                 backoff_s: float = 0.25,
                 backend: Optional[ExecutionBackend] = None,
                 sanitize: bool = False) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        self.cache = cache
        self.traces = traces
        self.progress = progress
        self.deadline_s = deadline_s
        self.retries = retries
        self.backoff_s = backoff_s
        #: Force every cell through the microarchitectural sanitizer
        #: (``repro ... --sanitize``); cells already marked stay marked.
        self.sanitize = sanitize
        self.stats = ExecutorStats()
        if backend is None:
            # The historical --jobs contract: inline at 1, a pool above.
            backend = (InlineBackend() if jobs == 1
                       else ProcessPoolBackend(jobs))
        self.backend = backend
        self.backend.bind(self)
        #: Mirrors the backend's worker width — an explicit ``backend=``
        #: wins over the ``jobs`` argument.
        self.jobs = backend.jobs
        # Compilation memo for *named* cells: the registry instantiates a
        # fresh default-shaped instance per lookup, so (name, signature) is
        # pure for the life of the executor.  Instance-backed cells are
        # memoized per batch only (see :meth:`run`): the caller owns the
        # instance and may mutate it between batches.  Values pair the
        # program with its trace-store key (None without a store), so the
        # dispatcher can hand workers a :class:`TraceRef`.
        self._programs: Dict[Tuple[Union[str, Workload], CompileSignature],
                             Tuple[Program, Optional[str]]] = {}

    # -- worker-pool lifecycle -------------------------------------------------
    @property
    def _pool(self) -> Optional[ProcessPoolExecutor]:
        """The backend's live worker pool, if it holds one (diagnostics
        and tests; inline backends always report None)."""
        return getattr(self.backend, "_pool", None)

    def close(self) -> None:
        """Release the backend's scheduling resources (idempotent; the
        executor stays usable — a later parallel batch starts a new
        pool)."""
        self.backend.close()

    def __enter__(self) -> "CellExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- public API ------------------------------------------------------------
    def run(self, cells: Sequence[Cell], label: str = "",
            errors: str = "raise"
            ) -> List[Union[CellResult, CellError]]:
        """Execute a batch; element ``i`` of the result matches ``cells[i]``.

        ``label`` names the batch in progress snapshots.  ``errors``
        selects what a failed cell does once the batch has drained:
        ``"raise"`` (the default) raises :class:`CellExecutionError`,
        ``"return"`` yields the :class:`CellError` in the failed cell's
        result position.  Either way every completed cell was already
        cached when the failure surfaced.
        """
        if errors not in ("raise", "return"):
            raise ValueError(f"errors must be 'raise' or 'return', "
                             f"got {errors!r}")
        if self.sanitize:
            cells = [cell if cell.sanitize else replace(cell, sanitize=True)
                     for cell in cells]
        self.stats.cells_requested += len(cells)
        # One compile per distinct (workload, signature) pair: the program
        # feeds both the cache key and (for misses) the simulation itself.
        batch_memo: Dict[Tuple[Union[str, Workload], CompileSignature],
                         Tuple[Program, Optional[str]]] = {}
        compiled = self._compile_programs(cells, batch_memo)

        progress = Progress(total=len(cells), label=label)
        results: Dict[int, Union[CellResult, CellError]] = {}
        failures: List[CellError] = []
        pending: List[int] = []
        keys: List[str] = []
        # One shared CellError per raising compile, however many cells
        # requested that (workload, config) pair.
        compile_errors: Dict[int, CellError] = {}
        for i, (cell, outcome) in enumerate(zip(cells, compiled)):
            if isinstance(outcome, BaseException):
                # A failed compile poisons only the cells needing that
                # program; there is no program, hence no key to cache
                # under — the cell re-executes on the next run.
                keys.append("")
                error = compile_errors.get(id(outcome))
                if error is None:
                    error = CellError(
                        cell=cell, key="",
                        error=f"{type(outcome).__name__}: {outcome}",
                        tb="".join(traceback.format_exception(
                            type(outcome), outcome,
                            outcome.__traceback__)))
                    compile_errors[id(outcome)] = error
                    failures.append(error)
                results[i] = error
                self.stats.cache_misses += 1
                self.stats.cells_failed += 1
                progress.misses += 1
                progress.done += 1
                progress.failed += 1
                continue
            key = cell_key(cell, outcome)
            keys.append(key)
            payload = self.cache.get(key) if self.cache else None
            if payload is not None:
                self.stats.cache_hits += 1
                progress.hits += 1
                progress.done += 1
                results[i] = self._materialise(cell, key, payload,
                                               from_cache=True)
            else:
                self.stats.cache_misses += 1
                progress.misses += 1
                pending.append(i)
        self._emit(progress)

        if pending:
            # Dedupe identical cells inside the batch: one simulation each.
            by_key: Dict[str, List[int]] = {}
            for i in pending:
                by_key.setdefault(keys[i], []).append(i)
            unique = [(key, indices[0]) for key, indices in by_key.items()]

            def land(pos: int, payload: dict) -> None:
                """Finalise one simulation: cache first, then materialise."""
                key, _ = unique[pos]
                self.stats.sims_executed += 1
                sim_stats = payload["stats"]
                self.stats.sim_cycles += sim_stats["cycles"]
                self.stats.sim_events_processed += (
                    sim_stats["events_processed"])
                self.stats.sim_cycles_skipped += sim_stats["cycles_skipped"]
                self.stats.sim_spans_charged += sim_stats.get(
                    "spans_charged", 0)
                self.stats.sim_span_cycles += sim_stats.get("span_cycles", 0)
                if self.cache is not None:
                    self.cache.put(key, payload)
                for i in by_key[key]:
                    results[i] = self._materialise(cells[i], key, payload,
                                                   from_cache=False)
                    progress.done += 1
                self._emit(progress)

            def fail(pos: int, exc: BaseException) -> None:
                """Capture one failed simulation without stopping the rest."""
                key, j = unique[pos]
                error = CellError(
                    cell=cells[j], key=key,
                    error=f"{type(exc).__name__}: {exc}",
                    tb="".join(traceback.format_exception(
                        type(exc), exc, exc.__traceback__)))
                failures.append(error)
                for i in by_key[key]:
                    results[i] = error
                    progress.done += 1
                    progress.failed += 1
                    self.stats.cells_failed += 1
                self._emit(progress)

            # Parallel dispatch ships TraceRef pointers when the store has
            # the program on disk; inline execution (and the single-job
            # shortcut below) uses the in-memory program directly, where a
            # round-trip through the store would only add I/O.
            use_refs = (self.traces is not None
                        and self.jobs > 1 and len(unique) > 1)
            jobs_list: List[Tuple[Cell, Union[Program, TraceRef]]] = []
            for _, i in unique:
                source: Union[Program, TraceRef] = compiled[i]
                if use_refs:
                    entry = self._memo_for(cells[i], batch_memo).get(
                        self._memo_key(cells[i]))
                    if entry is not None and entry[1] is not None:
                        source = TraceRef(root=str(self.traces.root),
                                          key=entry[1])
                jobs_list.append((cells[i], source))
            self.backend.execute(jobs_list, land, fail, progress)

        self._sync_store_counters()
        if failures and errors == "raise":
            raise CellExecutionError(
                failures, completed=len(cells) - progress.failed,
                total=len(cells))
        return [results[i] for i in range(len(cells))]

    def run_spec(self, spec: SweepSpec, label: str = "",
                 errors: str = "raise"
                 ) -> List[Union[CellResult, CellError]]:
        """Expand a sweep spec and execute its grid."""
        return self.run(spec.cells(), label=label, errors=errors)

    def run_one(self, cell: Cell, errors: str = "raise"
                ) -> Union[CellResult, CellError]:
        return self.run([cell], errors=errors)[0]

    # -- internals -------------------------------------------------------------
    def _emit(self, progress: Progress) -> None:
        if self.progress is not None:
            self.progress(progress)

    def _sync_store_counters(self) -> None:
        """Mirror the stores' quarantine/eviction counters into the
        executor's stats, so ``--cache-stats`` reports them."""
        quarantined = evicted = 0
        for store in (self.cache, self.traces):
            if store is not None:
                quarantined += store.quarantined
                evicted += store.evicted
        self.stats.cache_quarantined = quarantined
        self.stats.cache_evicted = evicted

    def _backoff_delay(self, label: str, pos: int, attempt: int) -> float:
        """Exponential backoff plus deterministic per-(cell, attempt)
        jitter — concurrent retries de-synchronise without consulting a
        global RNG, so runs stay reproducible."""
        base = self.backoff_s * (2 ** (attempt - 1))
        jitter = random.Random(f"{label}:{pos}:{attempt}").uniform(
            0.0, self.backoff_s)
        return base + jitter

    @staticmethod
    def _memo_key(cell: Cell) -> Tuple[Union[str, Workload],
                                       CompileSignature]:
        """The narrowed compile key: workload identity plus the
        (mvl, n_logical) signature — never the full machine config."""
        return (cell.workload, CompileSignature.from_config(cell.config))

    def _memo_for(self, cell: Cell,
                  batch_memo: Dict[Tuple[Union[str, Workload],
                                         CompileSignature],
                                   Tuple[Program, Optional[str]]]
                  ) -> Dict[Tuple[Union[str, Workload], CompileSignature],
                            Tuple[Program, Optional[str]]]:
        return (self._programs if isinstance(cell.workload, str)
                else batch_memo)

    def _compile_programs(self, cells: Sequence[Cell],
                          batch_memo: Dict[Tuple[Union[str, Workload],
                                                 CompileSignature],
                                           Tuple[Program, Optional[str]]]
                          ) -> List[Union[Program, BaseException]]:
        """Every cell's compiled program — or the exception its compile
        raised — memoized per (workload, :class:`CompileSignature`).

        The signature is the narrowed compile key: configurations that
        differ only in simulation-side axes (NATIVE/AVA mode, physical
        VRF, VVR count, lanes, timing) share one compile, so a machine-
        axis grid compiles each workload once per distinct
        (mvl, n_logical), not once per machine config.

        With a trace store attached, memo misses consult it first —
        signatures compiled by any previous run or process replay from
        disk (``stats.trace_hits``) and only true misses compile.  Those
        compile over the worker pool when the executor is parallel — key
        computation needs every program before the cache scan, and there
        is no reason the parent should compile them one by one while the
        workers sit idle — and are written back to the store.  Failure
        isolation starts here, before any simulation: a raising compile is
        captured per pair (one bad kernel must not abort the grid), only
        successful compiles count toward ``stats.compiles``, and failed
        pairs are never memoized, so the next batch retries them.
        """
        pending: List[Tuple[Cell, Tuple[Union[str, Workload],
                                        CompileSignature]]] = []
        seen = set()
        for cell in cells:
            memo_key = self._memo_key(cell)
            if (memo_key not in self._memo_for(cell, batch_memo)
                    and memo_key not in seen):
                seen.add(memo_key)
                pending.append((cell, memo_key))

        todo: List[Tuple[Cell, Tuple[Union[str, Workload], CompileSignature],
                         Optional[str]]] = []
        if self.traces is not None:
            for cell, memo_key in pending:
                key = self.traces.key(cell.resolve_workload(), memo_key[1])
                stored = self.traces.load(key)
                if stored is not None:
                    self.stats.trace_hits += 1
                    self._memo_for(cell, batch_memo)[memo_key] = (
                        stored.program, key)
                else:
                    todo.append((cell, memo_key, key))
        else:
            todo = [(cell, memo_key, None) for cell, memo_key in pending]

        failed: Dict[Tuple[Union[str, Workload], CompileSignature],
                     BaseException] = {}

        def record(cell: Cell, memo_key, trace_key: Optional[str],
                   outcome: Union[CompiledWorkload, BaseException]) -> None:
            if isinstance(outcome, BaseException):
                failed[memo_key] = outcome
            else:
                self.stats.compiles += 1
                if trace_key is not None:
                    self.stats.trace_misses += 1
                    self.traces.put_trace(trace_key, outcome)
                self._memo_for(cell, batch_memo)[memo_key] = (
                    outcome.program, trace_key)

        if todo:
            pool = self.backend.compile_pool() if len(todo) > 1 else None
            if pool is not None:
                futures = [(pool.submit(_compile_cell, cell), cell, memo_key,
                            trace_key)
                           for cell, memo_key, trace_key in todo]
                broken = False
                try:
                    for future, cell, memo_key, trace_key in futures:
                        try:
                            compiled = future.result()
                        except Exception as exc:  # noqa: BLE001 — per pair
                            broken = broken or isinstance(exc, BrokenExecutor)
                            record(cell, memo_key, trace_key, exc)
                        else:
                            record(cell, memo_key, trace_key, compiled)
                except BaseException:
                    self.backend.discard_pool()
                    raise
                if broken:
                    self.backend.discard_pool()
            else:
                for cell, memo_key, trace_key in todo:
                    try:
                        compiled = _compile_cell(cell)
                    except Exception as exc:  # noqa: BLE001 — per pair
                        record(cell, memo_key, trace_key, exc)
                    else:
                        record(cell, memo_key, trace_key, compiled)

        def outcome_for(cell: Cell) -> Union[Program, BaseException]:
            memo_key = self._memo_key(cell)
            entry = self._memo_for(cell, batch_memo).get(memo_key)
            return entry[0] if entry is not None else failed[memo_key]

        return [outcome_for(cell) for cell in cells]

    @staticmethod
    def _materialise(cell: Cell, key: str, payload: dict,
                     from_cache: bool) -> CellResult:
        return CellResult(
            cell=cell,
            stats=SimStats.from_dict(payload["stats"]),
            energy=EnergyReport.from_dict(payload["energy"]),
            correct=payload.get("correct"),
            key=key,
            from_cache=from_cache,
        )


def figure3_spec(workloads: Sequence[Union[str, Workload]],
                 params: Optional[TimingParams] = None,
                 check: bool = False) -> SweepSpec:
    """The Figure-3 grid — all 14 chart configurations — over ``workloads``.

    The shared declarative spec behind ``figure3``, ``claims`` and the
    extended-suite CLI selections, so every consumer enumerates the same
    cells in the same order (and therefore shares them through the cache).
    """
    from repro.experiments.configs import figure3_series
    return SweepSpec(workloads=list(workloads), configs=figure3_series(),
                     params=(params,), check=check)


def make_executor(jobs: int = 1, cache: bool = False,
                  cache_dir: Union[str, Path] = DEFAULT_CACHE_DIR,
                  progress: Optional[ProgressCallback] = None,
                  deadline_s: Optional[float] = None,
                  retries: int = 3,
                  backoff_s: float = 0.25,
                  cache_max_bytes: Optional[int] = None,
                  backend: Union[str, ExecutionBackend, None] = None,
                  shards: int = 4,
                  sanitize: bool = False
                  ) -> CellExecutor:
    """Build an executor from the CLI-style knobs (--jobs / --no-cache /
    --cache-dir / --progress / --deadline / --retries / --cache-max-bytes
    / --backend / --shards).

    ``cache=True`` wires both persistent stores: cell results at
    ``cache_dir`` (size-bounded when ``cache_max_bytes`` is set) and
    compiled traces under ``cache_dir/traces``.  ``--no-cache``
    (``cache=False``) disables both — no disk is touched.

    ``backend`` is a flag value (``"auto"`` / ``"inline"`` / ``"pool"`` /
    ``"shard"``, resolved by :func:`make_backend` together with ``jobs``
    and ``shards``) or a pre-built :class:`ExecutionBackend` instance.
    """
    from repro.compiler.store import TRACE_SUBDIR
    root = Path(cache_dir)
    if not isinstance(backend, ExecutionBackend):
        backend = make_backend(backend or "auto", jobs=jobs, shards=shards)
    return CellExecutor(jobs=jobs,
                        cache=(ResultCache(root, max_bytes=cache_max_bytes)
                               if cache else None),
                        traces=TraceStore(root / TRACE_SUBDIR) if cache
                        else None,
                        progress=progress, deadline_s=deadline_s,
                        retries=retries, backoff_s=backoff_s,
                        backend=backend, sanitize=sanitize)
