"""Machine-axis sensitivity study: how robust is AVA's adaptability?

The paper evaluates one platform (Table II).  This study asks the natural
follow-up the scenario layer makes cheap: does the NATIVE-vs-AVA
comparison survive a worse memory system or a tighter swap pipeline?
Three one-factor-at-a-time sweeps over a spill-prone application
(blackscholes, the paper's §V stress case), each against AVA X4/X8 and
their NATIVE equivalents:

1. **L2 latency** — the VMU sits directly on the L2 bus, so every vector
   beat pays it;
2. **DRAM penalty** — swap traffic misses in the L2 land here, and only
   the two-level AVA organisations generate swap traffic;
3. **pre-issue swap budget** — how many swap operations the pre-issue
   stage may insert per cycle (`preissue_swap_budget`).

The headline observation: slowing the DRAM widens the NATIVE-vs-AVA gap
*monotonically* — AVA pays for its smaller P-VRF exactly where the paper
says it should (swap traffic through the memory hierarchy), and nowhere
else.  The gap is reported as AVA cycles / NATIVE cycles (1.0 = free
adaptability).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig, ava_config, native_config
from repro.experiments.engine import CellExecutor, CellResult, SweepSpec
from repro.experiments.rendering import render_bars, render_table
from repro.memory.dram import DramConfig
from repro.memory.hierarchy import MemorySystemConfig
from repro.vpu.params import DEFAULT_TIMING, TimingParams

#: The spill-prone application the study sweeps (§V's stress case).
SENSITIVITY_WORKLOAD = "blackscholes"

#: Axis points; the paper's platform value sits in each list.
L2_LATENCIES = (6, 12, 24)
DRAM_LATENCIES = (40, 80, 160, 320)
SWAP_BUDGETS = (1, 2, 4)

#: The machines compared at every axis point.
_SCALES = (4, 8)


def _machines() -> List[MachineConfig]:
    configs: List[MachineConfig] = []
    for scale in _SCALES:
        configs.append(native_config(scale))
        configs.append(ava_config(scale))
    return configs


@dataclass(frozen=True)
class SensitivityRow:
    """One axis point: cycles and NATIVE-vs-AVA gaps at each scale."""

    axis_value: int
    native_x4: int
    ava_x4: int
    native_x8: int
    ava_x8: int

    @property
    def gap_x4(self) -> float:
        return self.ava_x4 / self.native_x4

    @property
    def gap_x8(self) -> float:
        return self.ava_x8 / self.native_x8


def _rows(axis_values: Sequence[int],
          results: Sequence[CellResult]) -> List[SensitivityRow]:
    """Fold a (machine × axis)-ordered result list into per-axis rows."""
    n_axis = len(axis_values)
    cycles = [r.stats.cycles for r in results]

    def at(machine_idx: int, axis_idx: int) -> int:
        return cycles[machine_idx * n_axis + axis_idx]

    return [SensitivityRow(axis_value=value,
                           native_x4=at(0, j), ava_x4=at(1, j),
                           native_x8=at(2, j), ava_x8=at(3, j))
            for j, value in enumerate(axis_values)]


@dataclass
class SensitivityStudy:
    """The three sweeps, rendered like a Figure-3 panel."""

    workload: str
    l2_rows: List[SensitivityRow]
    dram_rows: List[SensitivityRow]
    swap_rows: List[SensitivityRow]

    def dram_gap_is_monotone(self) -> bool:
        """Does a slower DRAM widen the X8 NATIVE-vs-AVA gap monotonically?"""
        gaps = [row.gap_x8 for row in self.dram_rows]
        return all(a <= b for a, b in zip(gaps, gaps[1:]))

    @staticmethod
    def _table(axis_name: str, rows: List[SensitivityRow]) -> str:
        return render_table(
            [axis_name, "NATIVE X4", "AVA X4", "gap X4",
             "NATIVE X8", "AVA X8", "gap X8"],
            [[row.axis_value, row.native_x4, row.ava_x4,
              f"{row.gap_x4:.3f}", row.native_x8, row.ava_x8,
              f"{row.gap_x8:.3f}"]
             for row in rows])

    def render(self) -> str:
        parts = [f"=== Sensitivity study: {self.workload} "
                 f"(AVA vs NATIVE, gap = AVA cycles / NATIVE cycles) ==="]
        parts.append("-- (s1) L2 hit latency (cycles) --")
        parts.append(self._table("L2 latency", self.l2_rows))
        parts.append("-- (s2) DRAM access latency (cycles) --")
        parts.append(self._table("DRAM latency", self.dram_rows))
        parts.append(render_bars(
            [(f"DRAM {row.axis_value}", row.gap_x8)
             for row in self.dram_rows], fmt="{:.3f}", unit="x"))
        parts.append("-- (s3) pre-issue swap budget (ops/cycle) --")
        parts.append(self._table("swap budget", self.swap_rows))
        verdict = "yes" if self.dram_gap_is_monotone() else "NO"
        parts.append(f"slower DRAM widens the NATIVE-vs-AVA gap "
                     f"monotonically at X8: {verdict}")
        return "\n".join(parts)


def _memory_with_l2_latency(latency: int) -> MemorySystemConfig:
    base = MemorySystemConfig()
    return replace(base, l2=replace(base.l2, latency=latency))


def _memory_with_dram_latency(latency: int) -> MemorySystemConfig:
    base = MemorySystemConfig()
    return replace(base, dram=DramConfig(latency=latency))


def _timing_with_swap_budget(budget: int) -> TimingParams:
    return replace(DEFAULT_TIMING, preissue_swap_budget=budget)


def build_sensitivity(executor: Optional[CellExecutor] = None,
                      workload: str = SENSITIVITY_WORKLOAD
                      ) -> SensitivityStudy:
    """Run the three sweeps as engine grids (cache-shared, ``--jobs``-able)."""
    executor = executor or CellExecutor()
    machines = _machines()

    def sweep(axis: str,
              memsys: Sequence[Optional[MemorySystemConfig]] = (None,),
              params: Sequence[Optional[TimingParams]] = (None,)
              ) -> List[CellResult]:
        return executor.run_spec(SweepSpec(
            workloads=[workload], configs=machines,
            params=params, memsys=memsys),
            label=f"sensitivity[{axis}]")

    l2 = sweep("l2", memsys=[_memory_with_l2_latency(v)
                             for v in L2_LATENCIES])
    dram = sweep("dram", memsys=[_memory_with_dram_latency(v)
                                 for v in DRAM_LATENCIES])
    swap = sweep("swap", params=[_timing_with_swap_budget(v)
                                 for v in SWAP_BUDGETS])

    return SensitivityStudy(
        workload=workload,
        l2_rows=_rows(L2_LATENCIES, l2),
        dram_rows=_rows(DRAM_LATENCIES, dram),
        swap_rows=_rows(SWAP_BUDGETS, swap))
