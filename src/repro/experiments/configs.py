"""The Tables II/III configuration matrix, in the paper's chart order."""

from __future__ import annotations

from typing import List

from repro.core.config import (
    LMUL_VALUES,
    SCALE_FACTORS,
    MachineConfig,
    ava_config,
    native_config,
    rg_config,
)


def native_series() -> List[MachineConfig]:
    """NATIVE X1..X8 (Table II's five columns)."""
    return [native_config(s) for s in SCALE_FACTORS]


def ava_series() -> List[MachineConfig]:
    """AVA X1..X8 (Table III's first row)."""
    return [ava_config(s) for s in SCALE_FACTORS]


def rg_series() -> List[MachineConfig]:
    """RG-LMUL1..8 (Table III's second row; no LMUL maps to X3)."""
    return [rg_config(l) for l in LMUL_VALUES]


def figure3_series() -> List[MachineConfig]:
    """All bars of one Fig. 3 panel, grouped by scale as in the paper.

    Within each scale group the order is NATIVE, RG (when an LMUL exists —
    X3 has no RG equivalent, Table III marks it NA), then AVA.
    """
    series: List[MachineConfig] = []
    for scale in SCALE_FACTORS:
        series.append(native_config(scale))
        if scale in LMUL_VALUES:
            series.append(rg_config(scale))
        series.append(ava_config(scale))
    return series


def equivalence_rows() -> List[tuple[str, str, str]]:
    """Table III: NATIVE / AVA / RG equivalence by column."""
    rows = []
    for scale in SCALE_FACTORS:
        ava = ava_config(scale)
        rg = f"RG-LMUL{scale}" if scale in LMUL_VALUES else "NA"
        rows.append((f"NATIVE X{scale}",
                     f"{ava.name} ({ava.n_physical}-PREG)", rg))
    return rows


def table2_rows() -> List[tuple[str, str]]:
    """Table II's per-configuration parameters."""
    rows = []
    for cfg in native_series():
        rows.append((cfg.name,
                     f"MVL {cfg.vector_bits}-bit ({cfg.mvl} elem x 64-bit), "
                     f"{cfg.n_physical} renamed regs, "
                     f"4R/2W VRF: {cfg.vrf_bytes // 1024}KB"))
    return rows
