"""Compatibility shim over :mod:`repro.experiments.engine`.

The original harness ran each (workload × configuration) cell through a
hand-rolled serial loop here.  Execution now lives in the engine — this
module keeps the historical API (:func:`run_cell`, :func:`run_series`,
:class:`RunRecord`) as thin wrappers so callers and tests keep working,
and gains an optional ``executor`` argument for parallel/cached runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import MachineConfig
from repro.experiments.engine import DATA_SEED  # noqa: F401  (re-export)
from repro.experiments.engine import Cell, CellExecutor, CellResult
from repro.power.mcpat import EnergyReport, McPatModel
from repro.sim.stats import SimStats
from repro.vpu.params import TimingParams
from repro.workloads.base import Workload


@dataclass
class RunRecord:
    """One cell of a Fig. 3 panel."""

    config: MachineConfig
    stats: SimStats
    energy: EnergyReport
    correct: Optional[bool] = None
    speedup: float = field(default=1.0)

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def record_from_result(result: CellResult) -> RunRecord:
    """Adapt an engine result to the historical record type."""
    return RunRecord(config=result.cell.config, stats=result.stats,
                     energy=result.energy, correct=result.correct)


def fill_speedups(records: List[RunRecord],
                  baseline_index: int = 0) -> List[RunRecord]:
    """Decorate records with speedups vs the baseline entry, in place."""
    base_cycles = records[baseline_index].cycles
    for record in records:
        record.speedup = base_cycles / record.cycles if record.cycles else 0.0
    return records


def run_cell(workload: Workload, config: MachineConfig,
             params: Optional[TimingParams] = None,
             functional: bool = False,
             warm: bool = True,
             check: bool = False,
             mcpat: Optional[McPatModel] = None,
             executor: Optional[CellExecutor] = None) -> RunRecord:
    """Simulate one workload on one configuration.

    ``check=True`` forces functional mode and verifies the output buffers
    against the workload's numpy oracle.
    """
    executor = executor or CellExecutor()
    result = executor.run_one(Cell(
        workload=workload, config=config, params=params,
        functional=functional, warm=warm, check=check))
    record = record_from_result(result)
    if mcpat is not None:
        # Honour a caller-supplied energy model (the engine used the
        # default); deterministic models produce identical reports.
        record.energy = mcpat.energy(config, record.stats)
    return record


def run_series(workload: Workload, configs: List[MachineConfig],
               baseline_index: int = 0,
               params: Optional[TimingParams] = None,
               check: bool = False,
               executor: Optional[CellExecutor] = None) -> List[RunRecord]:
    """Run a configuration series and fill in speedups vs the baseline."""
    executor = executor or CellExecutor()
    results = executor.run([Cell(workload=workload, config=cfg,
                                 params=params, check=check)
                            for cfg in configs])
    return fill_speedups([record_from_result(r) for r in results],
                         baseline_index)


def average_speedups(per_workload: Dict[str, List[RunRecord]]) -> List[float]:
    """Geometric-mean-free average speedup per series position (Fig. 4)."""
    n = min(len(records) for records in per_workload.values())
    return [float(np.mean([records[i].speedup
                           for records in per_workload.values()]))
            for i in range(n)]
