"""DEPRECATED compatibility stub over :mod:`repro.experiments.engine`.

The hand-rolled serial harness that once lived here was replaced by the
experiment-execution engine in PR 1, and the record helpers
(:class:`RunRecord`, :func:`record_from_result`, :func:`fill_speedups`,
:func:`average_speedups`) moved into the engine itself when the scenario
layer landed.  Import everything from ``repro.experiments.engine`` instead;
this module survives for exactly one release and emits a
``DeprecationWarning`` on import.
"""

from __future__ import annotations

import warnings
from typing import List, Optional

from repro.core.config import MachineConfig
from repro.experiments.engine import DATA_SEED  # noqa: F401  (re-export)
from repro.experiments.engine import (
    Cell,
    CellExecutor,
    RunRecord,
    average_speedups,
    fill_speedups,
    record_from_result,
)
from repro.power.mcpat import McPatModel
from repro.vpu.params import TimingParams
from repro.workloads.base import Workload

__all__ = [
    "DATA_SEED",
    "RunRecord",
    "record_from_result",
    "fill_speedups",
    "average_speedups",
    "run_cell",
    "run_series",
]

warnings.warn(
    "repro.experiments.runner is deprecated and will be removed in the "
    "next release; import from repro.experiments.engine instead",
    DeprecationWarning, stacklevel=2)


def run_cell(workload: Workload, config: MachineConfig,
             params: Optional[TimingParams] = None,
             functional: bool = False,
             warm: bool = True,
             check: bool = False,
             mcpat: Optional[McPatModel] = None,
             executor: Optional[CellExecutor] = None) -> RunRecord:
    """Deprecated: build a :class:`Cell` and use a :class:`CellExecutor`."""
    executor = executor or CellExecutor()
    result = executor.run_one(Cell(
        workload=workload, config=config, params=params,
        functional=functional, warm=warm, check=check))
    record = record_from_result(result)
    if mcpat is not None:
        # Honour a caller-supplied energy model (the engine used the
        # default); deterministic models produce identical reports.
        record.energy = mcpat.energy(config, record.stats)
    return record


def run_series(workload: Workload, configs: List[MachineConfig],
               baseline_index: int = 0,
               params: Optional[TimingParams] = None,
               check: bool = False,
               executor: Optional[CellExecutor] = None) -> List[RunRecord]:
    """Deprecated: expand a :class:`~repro.experiments.engine.SweepSpec`."""
    executor = executor or CellExecutor()
    results = executor.run([Cell(workload=workload, config=cfg,
                                 params=params, check=check)
                            for cfg in configs])
    return fill_speedups([record_from_result(r) for r in results],
                         baseline_index)
