"""Run (workload × configuration) cells and decorate the results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import MachineConfig
from repro.power.mcpat import EnergyReport, McPatModel
from repro.sim.simulator import Simulator
from repro.sim.stats import SimStats
from repro.vpu.params import TimingParams
from repro.workloads.base import Workload

#: Seed used by every experiment so figures are reproducible.
DATA_SEED = 42


@dataclass
class RunRecord:
    """One cell of a Fig. 3 panel."""

    config: MachineConfig
    stats: SimStats
    energy: EnergyReport
    correct: Optional[bool] = None
    speedup: float = field(default=1.0)

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def run_cell(workload: Workload, config: MachineConfig,
             params: Optional[TimingParams] = None,
             functional: bool = False,
             warm: bool = True,
             check: bool = False,
             mcpat: Optional[McPatModel] = None) -> RunRecord:
    """Simulate one workload on one configuration.

    ``check=True`` forces functional mode and verifies the output buffers
    against the workload's numpy oracle.
    """
    functional = functional or check
    compiled = workload.compile(config)
    sim = Simulator(config, compiled.program, params=params,
                    functional=functional)
    rng = np.random.default_rng(DATA_SEED)
    data = workload.init_data(rng)
    if functional:
        for name, values in data.items():
            sim.set_data(name, values)
    if warm:
        sim.warm_caches()
    result = sim.run()

    correct: Optional[bool] = None
    if check:
        reference = workload.reference(data)
        correct = all(
            bool(np.allclose(result.buffer(name), expected,
                             rtol=1e-9, atol=1e-12))
            for name, expected in reference.items())

    model = mcpat or McPatModel()
    energy = model.energy(config, result.stats)
    return RunRecord(config=config, stats=result.stats, energy=energy,
                     correct=correct)


def run_series(workload: Workload, configs: List[MachineConfig],
               baseline_index: int = 0,
               params: Optional[TimingParams] = None,
               check: bool = False) -> List[RunRecord]:
    """Run a configuration series and fill in speedups vs the baseline."""
    mcpat = McPatModel()
    records = [run_cell(workload, cfg, params=params, check=check,
                        mcpat=mcpat)
               for cfg in configs]
    base_cycles = records[baseline_index].cycles
    for record in records:
        record.speedup = base_cycles / record.cycles if record.cycles else 0.0
    return records


def average_speedups(per_workload: Dict[str, List[RunRecord]]) -> List[float]:
    """Geometric-mean-free average speedup per series position (Fig. 4)."""
    n = min(len(records) for records in per_workload.values())
    return [float(np.mean([records[i].speedup
                           for records in per_workload.values()]))
            for i in range(n)]
