"""JSON sweep-spec files: declarative multi-axis grids for ``repro sweep``.

A spec file names presets (or inline overrides) for every scenario axis and
expands into one labelled grid of engine
:class:`~repro.experiments.engine.Cell`\\ s::

    {
      "name": "l2-sensitivity",
      "workloads": ["axpy", "blackscholes"],
      "machines": ["native-x8", "ava-x8"],
      "memory": ["table2", "slow-dram", {"l2": {"latency": 24}}],
      "timing": ["default", {"preissue_swap_budget": 1}],
      "policies": [{"victim_policy": "fifo"}]
    }

Axis entries are either registry names (machine / memory / timing presets)
or inline-override objects.  An override object may carry a ``"base"`` key
naming the preset to start from (default: the paper's platform); every
other key is a field override — nested per section for the memory axis
(``l1i`` / ``l1d`` / ``l2`` / ``dram`` / ``vector_interface_bytes``), flat
:class:`~repro.vpu.params.TimingParams` fields for the timing axis, flat
:class:`~repro.core.config.MachineConfig` fields for the machine axis.
Policies take ``victim_policy`` (name) and ``aggressive_reclamation``.

Everything validates at parse time — an unknown preset, field or section
raises before any cell simulates — and every parsed entry keeps a stable
display label so the rendered grid stays readable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import get_machine
from repro.core.swap import VictimPolicy
from repro.experiments.engine import (Cell, CellExecutor, CellPolicy,
                                      CellResult)
from repro.experiments.rendering import render_table
from repro.memory.presets import get_memory_system
from repro.vpu.params import TimingParams, get_timing
from repro.workloads.registry import registered_names

#: Sections of a memory-axis override object (everything else is a scalar
#: field of MemorySystemConfig).
_MEMORY_SECTIONS = ("l1i", "l1d", "l2", "dram")


@dataclass(frozen=True)
class AxisEntry:
    """One parsed point of one axis: a display label plus the resolved value."""

    label: str
    value: object


def _override_label(base: str, overrides: Dict[str, object]) -> str:
    if not overrides:
        return base
    flat = []
    for key, value in sorted(overrides.items()):
        if isinstance(value, dict):
            flat.extend(f"{key}.{k}={v}" for k, v in sorted(value.items()))
        else:
            flat.append(f"{key}={value}")
    return f"{base}[{','.join(flat)}]"


def _parse_machine(entry: Union[str, dict]) -> AxisEntry:
    if isinstance(entry, str):
        return AxisEntry(entry, get_machine(entry))
    if not isinstance(entry, dict):
        raise ValueError(f"machine entry must be a name or an object, "
                         f"got {entry!r}")
    spec = dict(entry)
    base = spec.pop("base", "baseline")
    config = get_machine(base)
    if spec:
        try:
            config = replace(config, **spec)
        except TypeError as exc:
            raise ValueError(f"bad machine override {spec!r}: {exc}") from exc
    return AxisEntry(_override_label(base, spec), config)


def _parse_memory(entry: Union[str, dict]) -> AxisEntry:
    if isinstance(entry, str):
        return AxisEntry(entry, get_memory_system(entry))
    if not isinstance(entry, dict):
        raise ValueError(f"memory entry must be a name or an object, "
                         f"got {entry!r}")
    spec = dict(entry)
    base = spec.pop("base", "table2")
    config = get_memory_system(base)
    overrides: Dict[str, object] = {}
    for section, fields in spec.items():
        if section in _MEMORY_SECTIONS:
            if not isinstance(fields, dict):
                raise ValueError(
                    f"memory section {section!r} must be an object of "
                    f"field overrides, got {fields!r}")
            try:
                overrides[section] = replace(getattr(config, section),
                                             **fields)
            except TypeError as exc:
                raise ValueError(
                    f"bad {section} override {fields!r}: {exc}") from exc
        elif section == "vector_interface_bytes":
            overrides[section] = fields
        else:
            raise ValueError(
                f"unknown memory section {section!r}; known: "
                f"{_MEMORY_SECTIONS + ('vector_interface_bytes',)}")
    if overrides:
        # MemorySystemConfig validates on construction; a wrong-typed
        # scalar surfaces as TypeError, which must still read as a spec
        # problem, not a traceback.
        try:
            config = replace(config, **overrides)
        except TypeError as exc:
            raise ValueError(
                f"bad memory override {spec!r}: {exc}") from exc
    return AxisEntry(_override_label(base, spec), config)


def _parse_timing(entry: Union[str, dict]) -> AxisEntry:
    if isinstance(entry, str):
        return AxisEntry(entry, get_timing(entry))
    if not isinstance(entry, dict):
        raise ValueError(f"timing entry must be a name or an object, "
                         f"got {entry!r}")
    spec = dict(entry)
    base = spec.pop("base", "default")
    params = get_timing(base)
    if spec:
        try:
            params = replace(params, **spec)
        except TypeError as exc:
            raise ValueError(f"bad timing override {spec!r}: {exc}") from exc
    return AxisEntry(_override_label(base, spec), params)


def _parse_policy(entry: Union[str, dict]) -> AxisEntry:
    if isinstance(entry, str):
        return AxisEntry(entry, CellPolicy(victim_policy=VictimPolicy(entry)))
    if not isinstance(entry, dict):
        raise ValueError(f"policy entry must be a victim-policy name or an "
                         f"object, got {entry!r}")
    spec = dict(entry)
    victim = VictimPolicy(spec.pop("victim_policy", "rac-min"))
    aggressive = spec.pop("aggressive_reclamation", True)
    if spec:
        raise ValueError(f"unknown policy fields {sorted(spec)}")
    policy = CellPolicy(victim_policy=victim,
                        aggressive_reclamation=aggressive)
    label = victim.value + ("" if aggressive else "[no-reclaim]")
    return AxisEntry(label, policy)


@dataclass
class ParsedSweep:
    """A validated spec file: labelled axes plus the engine grid."""

    name: str
    workloads: List[str]
    machines: List[AxisEntry]
    memory: List[AxisEntry]
    timing: List[AxisEntry]
    policies: List[AxisEntry]
    warm: bool = True
    check: bool = False

    def labelled_cells(self) -> List[Tuple[Tuple[str, str, str, str, str],
                                           Cell]]:
        """Per-cell ((workload, machine, timing, memory, policy) labels,
        cell) pairs, produced by ONE loop nest so a label can never drift
        from the cell it describes (the render path runs these cells
        directly rather than relying on the engine's enumeration order)."""
        return [((w, m.label, t.label, mem.label, p.label),
                 Cell(workload=w, config=m.value, params=t.value,
                      memsys=mem.value, policy=p.value,
                      warm=self.warm, check=self.check))
                for w in self.workloads
                for m in self.machines
                for t in self.timing
                for mem in self.memory
                for p in self.policies]

    def __len__(self) -> int:
        return (len(self.workloads) * len(self.machines) * len(self.timing)
                * len(self.memory) * len(self.policies))


def parse_sweep(data: Union[dict, str, Path]) -> ParsedSweep:
    """Parse and validate a sweep spec (a dict, or a path to a JSON file).

    Every preset name, override field and workload name resolves here, so
    a bad spec fails before any cell simulates.
    """
    name = "sweep"
    if not isinstance(data, dict):
        path = Path(data)
        name = path.stem
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise ValueError(f"cannot read sweep spec {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError("a sweep spec must be a JSON object")

    spec = dict(data)
    name = spec.pop("name", name)
    workloads = spec.pop("workloads", None)
    machines = spec.pop("machines", None)
    memory = spec.pop("memory", ["table2"])
    timing = spec.pop("timing", ["default"])
    policies = spec.pop("policies", [{}])
    warm = spec.pop("warm", True)
    check = spec.pop("check", False)
    if spec:
        raise ValueError(f"unknown sweep-spec keys {sorted(spec)}")
    # A bare string would iterate per character below and report a baffling
    # "unknown workload 'a'" — demand actual lists up front.
    if not isinstance(workloads, list) or not workloads \
            or not all(isinstance(w, str) for w in workloads):
        raise ValueError(
            "a sweep spec needs a non-empty 'workloads' list of names")
    if not isinstance(machines, list) or not machines:
        raise ValueError("a sweep spec needs a non-empty 'machines' list")
    for axis_name, axis in (("memory", memory), ("timing", timing),
                            ("policies", policies)):
        if not isinstance(axis, list) or not axis:
            raise ValueError(
                f"the {axis_name!r} axis must be a non-empty list")

    known = set(registered_names())
    unknown = [w for w in workloads if w not in known]
    if unknown:
        raise ValueError(
            f"unknown workload {unknown[0]!r}; known: {sorted(known)}")

    try:
        parsed = ParsedSweep(
            name=str(name),
            workloads=list(workloads),
            machines=[_parse_machine(e) for e in machines],
            memory=[_parse_memory(e) for e in memory],
            timing=[_parse_timing(e) for e in timing],
            policies=[_parse_policy(e) for e in policies],
            warm=bool(warm), check=bool(check))
    except KeyError as exc:
        # str() on a KeyError is the repr of its argument (extra quotes);
        # the argument already is the human-readable message.
        raise ValueError(exc.args[0]) from exc
    return parsed


def render_sweep(parsed: ParsedSweep,
                 results: Sequence[CellResult]) -> str:
    """The grid as one fixed-width table, in :meth:`labelled_cells` order."""
    return _render(parsed, [label for label, _ in parsed.labelled_cells()],
                   results)


def render_rows(parsed: ParsedSweep,
                labels: Sequence[Tuple[str, str, str, str, str]],
                results: Sequence[CellResult]) -> str:
    """The result table alone (no sweep header) for any subset of the
    grid's ``(labels, results)`` pairs — shared by the full-sweep render
    and the per-shard render, so shard outputs keep the full sweep's
    column layout."""
    if len(labels) != len(results):
        raise ValueError(
            f"expected {len(labels)} results for this spec, "
            f"got {len(results)}")
    show_timing = len(parsed.timing) > 1
    show_memory = len(parsed.memory) > 1
    show_policy = len(parsed.policies) > 1
    headers = ["workload", "machine"]
    headers += ["timing"] if show_timing else []
    headers += ["memory"] if show_memory else []
    headers += ["policy"] if show_policy else []
    headers += ["cycles", "mem insts", "swaps", "energy (nJ)"]
    if parsed.check:
        headers.append("correct")

    rows: List[List[object]] = []
    for (workload, machine, timing, memory, policy), result in zip(
            labels, results):
        row: List[object] = [workload, machine]
        row += [timing] if show_timing else []
        row += [memory] if show_memory else []
        row += [policy] if show_policy else []
        row += [result.stats.cycles, result.stats.memory_insts,
                result.stats.swap_insts, f"{result.energy.total:.0f}"]
        if parsed.check:
            row.append("yes" if result.correct else "NO")
        rows.append(row)

    return render_table(headers, rows)


def _render(parsed: ParsedSweep,
            labels: Sequence[Tuple[str, str, str, str, str]],
            results: Sequence[CellResult]) -> str:
    header = (f"=== sweep: {parsed.name} === "
              f"({len(parsed.workloads)} workloads x "
              f"{len(parsed.machines)} machines x "
              f"{len(parsed.timing)} timing x "
              f"{len(parsed.memory)} memory x "
              f"{len(parsed.policies)} policies = {len(parsed)} cells)")
    return header + "\n" + render_rows(parsed, labels, results)


def run_sweep(spec: Union[str, Path, dict, ParsedSweep],
              executor: Optional[CellExecutor] = None) -> str:
    """Parse (unless given a :class:`ParsedSweep`), execute and render a
    sweep spec — the single body behind both the CLI and library use."""
    parsed = spec if isinstance(spec, ParsedSweep) else parse_sweep(spec)
    pairs = parsed.labelled_cells()
    executor = executor or CellExecutor()
    results = executor.run([cell for _, cell in pairs], label=parsed.name)
    return _render(parsed, [label for label, _ in pairs], results)
