"""Jacobi2D: 5-point stencil relaxation (HPC / Structured Grids).

One Jacobi sweep over a row-major 2-D grid, vectorised along the flattened
element index exactly like the hand-vectorised RiVEC stencils: the north and
south neighbours are unit-stride loads at element offsets ±row_len, east and
west at ±1.  Out-of-range neighbour loads clamp at the array ends (the
vector unit's boundary behaviour, see :mod:`repro.sim.layout`), and the
numpy oracle mirrors that clamp element by element, so the kernel is
vector-length-agnostic: outputs are identical on every MVL.

Five loads and one store against five adds/multiplies make this the most
memory-bound kernel of the suite after axpy — a direct stressor for the
swap machinery's load/store port contention.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import KernelBody, KernelBuilder
from repro.workloads.base import Workload
from repro.workloads.registry import register_workload

#: Jacobi relaxation weight: the plain 5-point average.
WEIGHT = 0.2


@register_workload
class Jacobi2D(Workload):
    name = "jacobi2d"
    domain = "HPC"
    model = "Structured Grids"
    n_elements = 4096  # a 64 x 64 grid, flattened row-major
    #: Row length of the flattened grid (north/south neighbour stride).
    row_len = 64
    loop_alu_insts = 6  # two address bumps, row bookkeeping, trip count

    def build_kernel(self) -> KernelBody:
        kb = KernelBuilder()
        north = kb.load("grid", offset=-self.row_len)
        west = kb.load("grid", offset=-1)
        centre = kb.load("grid")
        east = kb.load("grid", offset=1)
        south = kb.load("grid", offset=self.row_len)
        total = north + west + centre + east + south
        kb.store(total * WEIGHT, "out")
        return kb.build()

    def init_data(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {
            "grid": rng.uniform(0.0, 100.0, self.n_elements),
            "out": np.zeros(self.n_elements),
        }

    def reference(self, data: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        grid = data["grid"]
        idx = np.arange(len(grid))

        def neighbour(offset: int) -> np.ndarray:
            # Vector loads clamp at the array ends; mirror that exactly.
            return grid[np.clip(idx + offset, 0, len(grid) - 1)]

        total = (neighbour(-self.row_len) + neighbour(-1) + grid
                 + neighbour(1) + neighbour(self.row_len))
        return {"out": total * WEIGHT}
