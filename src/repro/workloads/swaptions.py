"""Swaptions: HJM-framework swaption pricing (Financial Analysis).

The paper's widest-footprint application: 24 logical vector registers, so
Register Grouping spills from LMUL=2 and AVA starts swapping at X3 (21
physical registers).  Memory operations are only ~12% of the baseline mix.

Each strip prices one batch of paths: the forward rate is evolved through
four inline HJM timesteps (drift + vol·shock per step, with per-step hoisted
coefficients), then the payoff is discounted and max'd against zero.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import KernelBody, KernelBuilder
from repro.workloads.base import Workload
from repro.workloads.registry import register_workload
from repro.workloads.mathlib import BuilderMath, NumpyMath, poly_exp_small

#: Per-timestep drift and volatility-scale coefficients (hoisted).
DRIFTS = (0.0012, 0.0010, 0.0009)
VOL_SCALES = (0.11, 0.10, 0.09)
#: Sqrt of the timestep, strike rate, discount exponent scale.
SQRT_DT = 0.5
STRIKE = 0.045
DISCOUNT_SCALE = -0.25
#: Shock decorrelation factor between timesteps.
DECORR = 0.7071


def _simulate(m, f0, vol, shock, dfactor, c):
    """Evolve the forward rate and return (payoff, discounted price).

    ``c`` maps coefficient names to hoisted registers (kernel) or floats
    (oracle).
    """
    f = f0
    for k in range(len(DRIFTS)):
        sigma = vol * c[f"vol{k}"]
        dw = shock * c["sqrt_dt"]
        # df = drift·dt + sigma·dW − ½σ²·dt (convexity correction).
        df = c[f"drift{k}"] + sigma * dw - sigma * sigma * 0.5 * (SQRT_DT ** 2)
        f = f + df
        shock = shock * c["decorr"]
    disc = poly_exp_small(m, f * c["dscale"])  # e^{-f·scale}
    payoff = m.vmax(f - c["strike"], 0.0)
    return payoff, payoff * disc * dfactor


#: Invariant coefficient table (hoisted in the kernel).
def invariant_table() -> dict:
    table = {"sqrt_dt": SQRT_DT, "strike": STRIKE, "dscale": DISCOUNT_SCALE,
             "decorr": DECORR}
    for k in range(len(DRIFTS)):
        table[f"drift{k}"] = DRIFTS[k]
        table[f"vol{k}"] = VOL_SCALES[k]
    return table


@register_workload
class Swaptions(Workload):
    name = "swaptions"
    domain = "Financial Analysis"
    model = "MapReduce"
    n_elements = 2048
    loop_alu_insts = 6

    def build_kernel(self) -> KernelBody:
        kb = KernelBuilder()
        m = BuilderMath(kb)
        c = {name: kb.const(value)
             for name, value in invariant_table().items()}
        f0 = kb.load("fwd")
        vol = kb.load("vol")
        shock = kb.load("shock")
        dfactor = kb.load("dfactor")
        payoff, price = _simulate(m, f0, vol, shock, dfactor, c)
        kb.store(payoff, "payoff")
        kb.store(price, "price")
        return kb.build()

    def init_data(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        n = self.n_elements
        return {
            "fwd": rng.uniform(0.02, 0.08, n),
            "vol": rng.uniform(0.5, 1.5, n),
            "shock": rng.standard_normal(n),
            "dfactor": rng.uniform(0.95, 1.0, n),
            "payoff": np.zeros(n),
            "price": np.zeros(n),
        }

    def reference(self, data: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        m = NumpyMath()
        payoff, price = _simulate(m, data["fwd"], data["vol"], data["shock"],
                                  data["dfactor"], invariant_table())
        return {"payoff": payoff, "price": price}
