"""Somier: spring-mass physics simulation (Physics Simulation / DLA).

The paper's memory-bound application (~46% of vector instructions are
memory operations; the L2's leakage dominates its energy, Fig. 3-e4).  The
register footprint is small, so spill/swap traffic only appears at the
extreme configurations (RG-LMUL8 / AVA X8).

Each strip advances one Jacobi step of a 1-D spring-mass chain: the force on
node i comes from its two neighbours (unit-stride loads at element offsets
±1), damped by the velocity; new velocity and position are written to
separate output arrays to keep strips independent.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import KernelBody, KernelBuilder
from repro.workloads.base import Workload
from repro.workloads.registry import register_workload

#: Spring stiffness, damping, node mass reciprocal, timestep.
STIFFNESS = 4.0
DAMPING = 0.2
INV_MASS = 0.8
DT = 0.01


@register_workload
class Somier(Workload):
    name = "somier"
    domain = "Physics Simulation"
    model = "Dense Linear Algebra"
    n_elements = 4096
    loop_alu_insts = 8  # four streamed arrays, three stores, trip count

    def build_kernel(self) -> KernelBody:
        kb = KernelBuilder()
        left = kb.load("pos", offset=-1)
        centre = kb.load("pos")
        right = kb.load("pos", offset=1)
        vel = kb.load("vel")
        # Hooke's law over both neighbours, then damping.
        stretch = left + right - (centre * 2.0)
        force = stretch * STIFFNESS - vel * DAMPING
        acc = force * INV_MASS
        new_vel = kb.fmadd_vf(DT, acc, vel)
        new_pos = kb.fmadd_vf(DT, new_vel, centre)
        kb.store(force, "force")
        kb.store(new_vel, "outv")
        kb.store(new_pos, "outp")
        return kb.build()

    def init_data(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        n = self.n_elements
        return {
            "pos": rng.uniform(-0.1, 0.1, n) + np.arange(n) * 0.0,
            "vel": rng.uniform(-0.05, 0.05, n),
            "force": np.zeros(n),
            "outv": np.zeros(n),
            "outp": np.zeros(n),
        }

    def reference(self, data: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        pos = data["pos"]
        vel = data["vel"]
        # The vector loads clamp at the array ends (the kernel's boundary
        # handling), so mirror that here.
        idx = np.arange(len(pos))
        left = pos[np.clip(idx - 1, 0, len(pos) - 1)]
        right = pos[np.clip(idx + 1, 0, len(pos) - 1)]
        stretch = left + right - 2.0 * pos
        force = stretch * STIFFNESS - vel * DAMPING
        acc = force * INV_MASS
        new_vel = DT * acc + vel
        new_pos = DT * new_vel + pos
        return {"force": force, "outv": new_vel, "outp": new_pos}
