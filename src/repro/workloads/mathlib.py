"""Shared math kernels: polynomial ln / exp / CND usable on two backends.

The RiVEC kernels are hand-vectorised RISC-V code, so transcendental
functions are open-coded as polynomial / rational approximations over basic
vector ops.  To keep the functional tests exact, every approximation here is
written once against a generic operand type and evaluated on **both**
backends:

* :class:`BuilderMath` — operands are :class:`repro.isa.builder.VirtualReg`;
  every operation emits a vector instruction;
* :class:`NumpyMath` — operands are numpy arrays; the reference oracle runs
  the *same approximation*, so kernel-vs-oracle comparison is exact to
  floating-point associativity (``allclose`` with tight tolerances).
"""

from __future__ import annotations

import numpy as np

from repro.isa.builder import KernelBuilder


class BuilderMath:
    """Vector-instruction backend for the shared formulas."""

    def __init__(self, kb: KernelBuilder) -> None:
        self.kb = kb

    def sqrt(self, a):
        return self.kb.sqrt(a)

    def recip(self, a):
        return self.kb.recip(a)

    def const(self, value: float):
        """Hoist a broadcast constant (occupies a register for the loop)."""
        return self.kb.const(value)

    def vmax(self, a, scalar: float):
        return self.kb.vmax(a, scalar)


class NumpyMath:
    """Numpy backend; mirrors the vector semantics exactly."""

    def sqrt(self, a):
        return np.sqrt(np.abs(a))

    def recip(self, a):
        out = np.zeros_like(a)
        nz = a != 0
        out[nz] = 1.0 / a[nz]
        return out

    def const(self, value: float):
        return value

    def vmax(self, a, scalar: float):
        return np.maximum(a, scalar)


def poly_ln(m, q, c7=1.0 / 7.0, c5=1.0 / 5.0, c3=1.0 / 3.0):
    """ln(q) via the artanh series, accurate for q in roughly [0.5, 2].

    ln(q) = 2 artanh(z) with z = (q-1)/(q+1); four series terms.  The series
    coefficients may be passed as hoisted registers.
    """
    z = (q - 1.0) * m.recip(q + 1.0)
    z2 = z * z
    # 2*(z + z^3/3 + z^5/5 + z^7/7), Horner in z^2.
    acc = z2 * c7 + c5
    acc = acc * z2 + c3
    acc = acc * z2 + 1.0
    return 2.0 * z * acc


def poly_exp_small(m, x, c24=1.0 / 24.0, c6=1.0 / 6.0):
    """exp(x) for small |x| (≤ ~0.5): four-term Taylor polynomial."""
    acc = x * c24 + c6
    acc = acc * x + 0.5
    acc = acc * x + 1.0
    return acc * x + 1.0


def poly_exp(m, x, c24=1.0 / 24.0, c6=1.0 / 6.0):
    """exp(x) for |x| up to ~6: scale by 1/8, polynomial, cube-square back."""
    u = x * 0.125
    e = poly_exp_small(m, u, c24, c6)
    e = e * e
    e = e * e
    return e * e


def rational_tanh(m, y, c27=27.0, c9=9.0):
    """tanh(y) ≈ y(27 + y²) / (27 + 9y²), the classic Padé(3,2) form."""
    y2 = y * y
    num = y * (y2 + c27)
    den = y2 * c9 + c27
    return num * m.recip(den)


def cnd(m, d, c_a, c_b, c27=27.0, c9=9.0):
    """Cumulative normal distribution via a tanh sigmoid approximation.

    CND(d) ≈ 0.5 (1 + tanh(a·d(1 + b·d²))) with a=0.7988, b=0.044715 —
    the Page approximation the hand-vectorised kernels favour.  The
    coefficients may be hoisted loop-invariant registers.
    """
    d2 = d * d
    y = (d2 * c_b + 1.0) * d * c_a
    t = rational_tanh(m, y, c27, c9)
    return (t + 1.0) * 0.5


#: The CND coefficients (hoisted by callers).
CND_A = 0.7988
CND_B = 0.044715
