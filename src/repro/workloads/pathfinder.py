"""Pathfinder: dynamic-programming row sweep (Grid Traversal).

One row of Rodinia/RiVEC pathfinder's bottom-up dynamic program: the cost of
reaching each cell is its own weight plus the cheapest of the three
neighbouring cells in the previously solved row,

    dst[i] = wall[i] + min(src[i-1], src[i], src[i+1]).

The neighbour loads are unit-stride at element offsets ±1 and clamp at the
row ends (the vector unit's boundary behaviour), which is also how the real
kernel handles the first and last column.  Reading from ``src`` and writing
to ``out`` keeps every strip independent, so the kernel is
vector-length-agnostic and the numpy oracle is exact on every MVL.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import KernelBody, KernelBuilder
from repro.workloads.base import Workload
from repro.workloads.registry import register_workload


@register_workload
class Pathfinder(Workload):
    name = "pathfinder"
    domain = "Grid Traversal"
    model = "Dynamic Programming"
    n_elements = 4096
    loop_alu_insts = 5  # two address bumps, trip count, vsetvl input

    def build_kernel(self) -> KernelBody:
        kb = KernelBuilder()
        left = kb.load("src", offset=-1)
        mid = kb.load("src")
        right = kb.load("src", offset=1)
        wall = kb.load("wall")
        best = kb.vmin(kb.vmin(left, mid), right)
        kb.store(best + wall, "out")
        return kb.build()

    def init_data(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        n = self.n_elements
        return {
            "src": rng.uniform(0.0, 50.0, n),
            "wall": rng.uniform(1.0, 10.0, n),
            "out": np.zeros(n),
        }

    def reference(self, data: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        src = data["src"]
        idx = np.arange(len(src))
        left = src[np.clip(idx - 1, 0, len(src) - 1)]
        right = src[np.clip(idx + 1, 0, len(src) - 1)]
        best = np.minimum(np.minimum(left, src), right)
        return {"out": best + data["wall"]}
