"""Workload registry: an open, pluggable suite with a frozen Table-IV view.

The suite is no longer a hard-coded tuple.  Workload classes register
themselves with the :func:`register_workload` decorator::

    from repro.workloads import Workload, register_workload

    @register_workload
    class MyKernel(Workload):
        name = "mykernel"
        ...

and immediately flow through :func:`get_workload`, the experiment engine's
``SweepSpec`` grids, the result cache (keys hash the compiled program, so a
third-party kernel can never collide with a builtin one) and the CLI's
``--workloads`` selector.

Third-party packages can also advertise workloads without importing this
package first, via the ``repro.workloads`` entry-point group::

    [project.entry-points."repro.workloads"]
    mykernel = "mypkg.kernels:MyKernel"

Entry points are loaded lazily by :func:`discover_workloads` the first time
a name lookup misses the in-process registry.

Two views of the suite are exported:

* :data:`WORKLOAD_NAMES` — the paper's Table IV, in paper order.  This list
  is frozen: every figure regenerated over it stays byte-identical no matter
  how many extra kernels are registered.
* :data:`ALL_WORKLOAD_NAMES` — Table IV plus the extended RiVEC-style
  kernels (:data:`EXTENDED_WORKLOAD_NAMES`), the ``--extended`` grid.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Type, Union, overload

from repro.workloads.base import Workload

#: Entry-point group third-party packages use to advertise workloads.
ENTRY_POINT_GROUP = "repro.workloads"

_REGISTRY: Dict[str, Type[Workload]] = {}
_DISCOVERED = False


@overload
def register_workload(cls: Type[Workload]) -> Type[Workload]: ...


@overload
def register_workload(cls: None = ..., *, name: Optional[str] = ...
                      ) -> Callable[[Type[Workload]], Type[Workload]]: ...


def register_workload(cls: Optional[Type[Workload]] = None, *,
                      name: Optional[str] = None
                      ) -> Union[Type[Workload],
                                 Callable[[Type[Workload]], Type[Workload]]]:
    """Class decorator adding a :class:`Workload` subclass to the registry.

    Usable bare (``@register_workload``, the class's ``name`` attribute is
    the registry key) or with an explicit key
    (``@register_workload(name="alias")``).  Re-registering the *same* class
    is a no-op; claiming a name another class already holds raises
    ``ValueError`` so plugins cannot silently shadow the paper's suite.
    """
    def wrap(klass: Type[Workload]) -> Type[Workload]:
        if not (isinstance(klass, type) and issubclass(klass, Workload)):
            raise TypeError(
                f"register_workload expects a Workload subclass, got "
                f"{klass!r}")
        key = name or klass.name
        if not key:
            raise ValueError(
                f"{klass.__qualname__} has no 'name' attribute and no "
                f"explicit name was given")
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not klass:
            raise ValueError(
                f"workload name {key!r} is already registered by "
                f"{existing.__module__}.{existing.__qualname__}")
        _REGISTRY[key] = klass
        return klass

    return wrap(cls) if cls is not None else wrap


def unregister_workload(name: str) -> bool:
    """Remove ``name`` from the registry (plugin/test cleanup hook)."""
    return _REGISTRY.pop(name, None) is not None


def discover_workloads(group: str = ENTRY_POINT_GROUP, *,
                       force: bool = False) -> List[str]:
    """Load workloads advertised through entry points; returns new names.

    Runs at most once per process (``force=True`` re-scans).  Broken or
    colliding entry points are skipped rather than allowed to break the
    builtin suite.
    """
    global _DISCOVERED
    if _DISCOVERED and not force:
        return []
    _DISCOVERED = True
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        return []
    try:
        entry_points = metadata.entry_points()
        if hasattr(entry_points, "select"):  # Python 3.10+
            selected = entry_points.select(group=group)
        else:  # pragma: no cover - legacy dict API
            selected = entry_points.get(group, ())
    except Exception as exc:  # noqa: BLE001 — malformed dist metadata raises arbitrarily; discovery is best-effort
        warnings.warn(
            f"workload entry-point discovery failed "
            f"({type(exc).__name__}: {exc}); third-party workloads "
            f"unavailable this process", RuntimeWarning, stacklevel=2)
        return []
    loaded: List[str] = []
    for entry in selected:
        try:
            obj = entry.load()
            register_workload(obj, name=entry.name)
        except Exception as exc:  # noqa: BLE001 — entry.load() runs arbitrary plugin import code; one broken plugin must not sink the suite
            warnings.warn(
                f"skipping workload entry point {entry.name!r} "
                f"({getattr(entry, 'value', '?')}): "
                f"{type(exc).__name__}: {exc}",
                RuntimeWarning, stacklevel=2)
            continue
        loaded.append(entry.name)
    return loaded


#: Paper order (Table IV).  Frozen: figures rendered over this view are
#: byte-identical regardless of what else gets registered.
WORKLOAD_NAMES: List[str] = [
    "axpy", "blackscholes", "lavamd", "particlefilter", "somier", "swaptions",
]

#: The extended RiVEC-style kernels grown on top of Table IV, in the order
#: they joined the suite.
EXTENDED_WORKLOAD_NAMES: List[str] = [
    "jacobi2d", "pathfinder", "spmv", "streamcluster",
]

#: The full builtin suite: Table IV first, extended kernels after.
ALL_WORKLOAD_NAMES: List[str] = WORKLOAD_NAMES + EXTENDED_WORKLOAD_NAMES


def registered_names() -> List[str]:
    """Every name the registry currently resolves, sorted."""
    discover_workloads()
    return sorted(_REGISTRY)


def get_workload(name: str) -> Workload:
    """Instantiate a workload by its registered name."""
    cls = _REGISTRY.get(name)
    if cls is None:
        discover_workloads()
        cls = _REGISTRY.get(name)
    if cls is None:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}")
    return cls()


def all_workloads() -> List[Workload]:
    """The six Table-IV applications, in the paper's order."""
    return [get_workload(name) for name in WORKLOAD_NAMES]


def select_workloads(selector: Optional[str] = None, *,
                     extended: bool = False) -> List[str]:
    """Resolve a CLI-style workload selection to a list of names.

    ``None``/``""``/``"all"`` mean the Table-IV six (the ten-kernel builtin
    suite with ``extended=True``); ``"extended"`` always means the ten;
    anything else is a comma-separated list of registered names (a single
    name is the one-element list).  Unknown names raise ``KeyError``.
    """
    if selector in (None, "", "all"):
        return list(ALL_WORKLOAD_NAMES if extended else WORKLOAD_NAMES)
    if selector == "extended":
        return list(ALL_WORKLOAD_NAMES)
    assert selector is not None
    names = [part.strip() for part in selector.split(",") if part.strip()]
    if not names:
        raise KeyError("empty workload selection")
    known = set(registered_names())
    unknown = [n for n in names if n not in known]
    if unknown:
        raise KeyError(
            f"unknown workload {unknown[0]!r}; known: {sorted(known)}")
    return names
