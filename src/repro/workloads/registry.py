"""Workload registry: Table IV by name."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.workloads.axpy import Axpy
from repro.workloads.base import Workload
from repro.workloads.blackscholes import Blackscholes
from repro.workloads.lavamd import LavaMD
from repro.workloads.particlefilter import ParticleFilter
from repro.workloads.somier import Somier
from repro.workloads.swaptions import Swaptions

_REGISTRY: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (Axpy, Blackscholes, LavaMD, ParticleFilter, Somier,
                Swaptions)
}

#: Paper order (Table IV).
WORKLOAD_NAMES: List[str] = [
    "axpy", "blackscholes", "lavamd", "particlefilter", "somier", "swaptions",
]


def get_workload(name: str) -> Workload:
    """Instantiate a workload by its Table-IV name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}") from None


def all_workloads() -> List[Workload]:
    """All six applications, in the paper's order."""
    return [get_workload(name) for name in WORKLOAD_NAMES]
