"""Blackscholes: European option pricing (Financial Analysis / DLA).

The paper's high-pressure application: the hand-vectorised kernel uses 23
logical vector registers, so Register Grouping spills from LMUL=2 onward
while AVA X2 (32 physical registers) stays swap-free — the paper's key
scheduling argument ("AVA performs the scheduling based on the available
physical registers, which are always double compared to LMUL", §V).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import KernelBody, KernelBuilder
from repro.workloads.base import Workload
from repro.workloads.registry import register_workload
from repro.workloads.mathlib import (
    CND_A,
    CND_B,
    BuilderMath,
    NumpyMath,
    cnd,
    poly_exp,
    poly_ln,
)

#: Risk-free rate (constant in the RiVEC kernel too).
RISK_FREE = 0.02


def _price(m, S, K, T, v, c):
    """Shared pricing formula; returns (call, put).

    ``c`` is the invariant-coefficient table (hoisted registers in the
    kernel, plain floats in the oracle).  Every operand combination uses
    only DSL-expressible operations so the same code runs on vector
    instructions and on the numpy oracle.
    """
    ln_sk = poly_ln(m, S * m.recip(K), c["ln7"], c["ln5"], c["ln3"])
    sqrt_t = m.sqrt(T)
    v_sqrt_t = v * sqrt_t
    v2_half = v * v * c["half"]
    drift = (v2_half + RISK_FREE) * T
    d1 = (ln_sk + drift) * m.recip(v_sqrt_t)
    d2 = d1 - v_sqrt_t
    n1 = cnd(m, d1, c["cnd_a"], c["cnd_b"], c["t27"], c["t9"])
    n2 = cnd(m, d2, c["cnd_a"], c["cnd_b"], c["t27"], c["t9"])
    disc = poly_exp(m, T * c["neg_r"], c["e24"], c["e6"])  # e^{-rT}
    k_disc = K * disc
    call = S * n1 - k_disc * n2
    put = k_disc * (1.0 - n2) - S * (1.0 - n1)
    return call, put


#: Invariant coefficients the hand-vectorised kernel hoists out of the loop.
INVARIANTS = {
    "cnd_a": CND_A,
    "cnd_b": CND_B,
    "neg_r": -RISK_FREE,
    "half": 0.5,
    "ln7": 1.0 / 7.0,
    "ln5": 1.0 / 5.0,
    "ln3": 1.0 / 3.0,
    "t27": 27.0,
    "t9": 9.0,
    "e24": 1.0 / 24.0,
    "e6": 1.0 / 6.0,
}


@register_workload
class Blackscholes(Workload):
    name = "blackscholes"
    domain = "Financial Analysis"
    model = "Dense Linear Algebra"
    n_elements = 2048
    loop_alu_insts = 6  # five streamed buffers plus trip count

    def build_kernel(self) -> KernelBody:
        kb = KernelBuilder()
        m = BuilderMath(kb)
        # Hoisted loop invariants, as the hand-vectorised kernel does: the
        # eleven coefficients plus four streamed inputs are what drive this
        # application's 20+ register footprint.
        c = {name: kb.const(value) for name, value in INVARIANTS.items()}
        S = kb.load("spot")
        K = kb.load("strike")
        T = kb.load("expiry")
        v = kb.load("vol")
        call, put = _price(m, S, K, T, v, c)
        kb.store(call, "call")
        kb.store(put, "put")
        return kb.build()

    def init_data(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        n = self.n_elements
        return {
            "spot": rng.uniform(80.0, 120.0, n),
            "strike": rng.uniform(75.0, 125.0, n),
            "expiry": rng.uniform(0.25, 2.0, n),
            "vol": rng.uniform(0.10, 0.40, n),
            "call": np.zeros(n),
            "put": np.zeros(n),
        }

    def reference(self, data: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        m = NumpyMath()
        call, put = _price(m, data["spot"], data["strike"], data["expiry"],
                           data["vol"], dict(INVARIANTS))
        return {"call": call, "put": put}
