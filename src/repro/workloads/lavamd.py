"""LavaMD2: N-body particle interactions within boxes (Molecular Dynamics).

The paper's medium-vector application: the box size fixes the Application
Vector Length at **48 elements**, so configurations with MVL > 48 leave part
of every register unused, MVL-wide spill/swap code becomes disproportionally
expensive (the RG-LMUL8 collapse, Fig. 3-c), and the best configuration is
AVA X3 — MVL=48 with 21 physical registers — which the paper highlights as
AVA selecting the optimal point.

Each strip computes the interaction of one home particle (a test charge at
the home-box centre) with the 48 particles of one neighbour box, using the
LavaMD potential ``v = exp(-a2·r²)`` and accumulating force components.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import KernelBody, KernelBuilder
from repro.workloads.base import Workload
from repro.workloads.registry import register_workload
from repro.workloads.mathlib import BuilderMath, NumpyMath, poly_exp

#: Particles per box: the fixed Application Vector Length (§V).
BOX_SIZE = 48
#: Number of (home particle, neighbour box) interactions simulated.
N_INTERACTIONS = 48
#: Potential stiffness (the paper's alpha² analogue).
A2 = 0.5
#: Home test-particle position and charge.
HOME = (0.5, 0.5, 0.5)
HOME_CHARGE = 1.2


def _interaction(m, xj, yj, zj, qj, c_a2, c_hx, c_hy, c_hz, c_qh):
    """Force of the neighbour particles on the home test charge.

    The LavaMD potential: an attractive Gaussian shell plus a short-range
    repulsive shell at twice the stiffness, evaluated with open-coded
    exponentials like the hand-vectorised kernel.
    """
    dx = c_hx - xj
    dy = c_hy - yj
    dz = c_hz - zj
    r2 = dx * dx + dy * dy + dz * dz
    u2 = r2 * c_a2
    vij = poly_exp(m, 0.0 - u2)
    # Repulsive shell: exp(-2 a2 r²), sharing the distance computation.
    wij = poly_exp(m, u2 * -2.0)
    shell = vij - wij * 0.5
    fs = shell * 2.0 * c_qh * qj
    fx = fs * dx
    fy = fs * dy
    fz = fs * dz
    # Potential energy contribution alongside the force components.
    e = shell * qj
    fxy = fx * fx + fy * fy
    fmag2 = fxy + fz * fz
    ftot = fmag2 * 0.5 + (fx + fy + fz)
    return ftot + e * 0.1


@register_workload
class LavaMD(Workload):
    name = "lavamd"
    domain = "Molecular Dynamics"
    model = "N-Body"
    n_elements = BOX_SIZE * N_INTERACTIONS
    fixed_avl = BOX_SIZE
    loop_alu_insts = 6  # box pointers, neighbour index, trip count

    def build_kernel(self) -> KernelBody:
        kb = KernelBuilder()
        m = BuilderMath(kb)
        c_a2 = kb.const(A2)
        c_hx = kb.const(HOME[0])
        c_hy = kb.const(HOME[1])
        c_hz = kb.const(HOME[2])
        c_qh = kb.const(HOME_CHARGE)
        xj = kb.load("px")
        yj = kb.load("py")
        zj = kb.load("pz")
        qj = kb.load("charge")
        f = _interaction(m, xj, yj, zj, qj, c_a2, c_hx, c_hy, c_hz, c_qh)
        kb.store(f, "force")
        return kb.build()

    def init_data(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        n = self.n_elements
        return {
            "px": rng.uniform(0.0, 1.0, n),
            "py": rng.uniform(0.0, 1.0, n),
            "pz": rng.uniform(0.0, 1.0, n),
            "charge": rng.uniform(0.5, 1.5, n),
            "force": np.zeros(n),
        }

    def reference(self, data: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        m = NumpyMath()
        f = _interaction(m, data["px"], data["py"], data["pz"],
                         data["charge"], A2, HOME[0], HOME[1], HOME[2],
                         HOME_CHARGE)
        return {"force": f}
