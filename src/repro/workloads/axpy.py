"""Axpy: y = a*x + y (HPC / BLAS).

The paper's ideal case: two logical vector registers, no spills or swaps in
any configuration, 75% vector memory instructions, and the headline 2X
speedup when reconfiguring AVA X1 to AVA X8 (Fig. 3-a).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import KernelBody, KernelBuilder
from repro.workloads.base import Workload
from repro.workloads.registry import register_workload

#: The BLAS alpha used throughout (arbitrary, nonzero).
ALPHA = 2.5


@register_workload
class Axpy(Workload):
    name = "axpy"
    domain = "HPC"
    model = "BLAS"
    n_elements = 4096
    loop_alu_insts = 4  # two address bumps, trip count, vsetvl input

    def build_kernel(self) -> KernelBody:
        kb = KernelBuilder()
        x = kb.load("x")
        y = kb.load("y")
        kb.store(kb.fmadd_vf(ALPHA, x, y), "y")
        return kb.build()

    def init_data(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {
            "x": rng.standard_normal(self.n_elements),
            "y": rng.standard_normal(self.n_elements),
        }

    def reference(self, data: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"y": ALPHA * data["x"] + data["y"]}
