"""StreamCluster: nearest-centre distance kernel (Data Mining).

The inner loop of PARSEC/RiVEC streamcluster's gain computation: every point
measures its squared Euclidean distance to each of the K candidate centres
(hoisted as loop-invariant broadcast registers, like the hand-vectorised
kernel keeps the centre coordinates resident), reduces to the nearest one
with an element-wise min tree, and conditionally re-assigns when that beats
the point's current assignment cost:

    d_k    = (px - cx_k)^2 + (py - cy_k)^2        for k in 0..K-1
    dmin   = min_k d_k
    assign = dmin < cost
    cost'  = assign ? dmin : cost

A per-strip ``vredsum`` over ``dmin`` additionally exercises the reduction
unit and its renaming path on every strip.  Its broadcast result re-enters
the dataflow through a self-cancelling term (``t - t``, exactly 0.0 for the
finite distances this kernel produces), so the stored outputs stay
independent of how the machine strips the loop — the kernel remains
vector-length-agnostic and the numpy oracle is exact on every MVL, while
the reduction still occupies the pipeline, the scoreboard and a renamed
destination register each iteration.

The 2·K hoisted centre coordinates push the live pressure into the range
where small Register-Grouping configurations spill, making this a second
high-pressure application next to Blackscholes/Swaptions.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import KernelBody, KernelBuilder
from repro.workloads.base import Workload
from repro.workloads.registry import register_workload

#: The K candidate centres (fixed across the sweep, like one streamcluster
#: speedy() round evaluates a fixed candidate set).
CENTRES = (
    (-0.75, -0.50),
    (0.25, 0.90),
    (0.80, -0.35),
    (-0.10, 0.40),
)


@register_workload
class StreamCluster(Workload):
    name = "streamcluster"
    domain = "Data Mining"
    model = "Dense Linear Algebra"
    n_elements = 4096
    loop_alu_insts = 6

    def build_kernel(self) -> KernelBody:
        kb = KernelBuilder()
        centres = [(kb.const(cx), kb.const(cy)) for cx, cy in CENTRES]
        px = kb.load("px")
        py = kb.load("py")
        cost = kb.load("cost")
        dmin = None
        for cx, cy in centres:
            dx = px - cx
            dy = py - cy
            d = kb.fmadd(dx, dx, dy * dy)
            dmin = d if dmin is None else kb.vmin(dmin, d)
        assert dmin is not None
        # Reduction-unit stressor whose stored effect cancels exactly (see
        # module docstring): t - t == 0.0 for finite t.
        total = kb.redsum(dmin)
        dmin = dmin + (total - total)
        assign = kb.lt(dmin, cost)
        new_cost = kb.merge(assign, dmin, cost)
        kb.store(dmin, "dist")
        kb.store(assign, "assign")
        kb.store(new_cost, "outc")
        return kb.build()

    def init_data(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        n = self.n_elements
        return {
            "px": rng.uniform(-1.0, 1.0, n),
            "py": rng.uniform(-1.0, 1.0, n),
            "cost": rng.uniform(0.05, 2.0, n),
            "dist": np.zeros(n),
            "assign": np.zeros(n),
            "outc": np.zeros(n),
        }

    def reference(self, data: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        px = data["px"]
        py = data["py"]
        cost = data["cost"]
        dmin = None
        for cx, cy in CENTRES:
            dx = px - cx
            dy = py - cy
            d = dx * dx + dy * dy
            dmin = d if dmin is None else np.minimum(dmin, d)
        assert dmin is not None
        assign = (dmin < cost).astype(np.float64)
        new_cost = np.where(assign != 0.0, dmin, cost)
        return {"dist": dmin, "assign": assign, "outc": new_cost}
