"""Workload abstraction: kernel + data + oracle, compiled per configuration.

A :class:`Workload` owns

* a kernel body (built once, in virtual registers),
* its strip-mining shape — total elements, optional fixed Application
  Vector Length (LavaMD2 uses 48 regardless of MVL, §V), scalar loop cost,
* data initialisation and a pure-numpy reference oracle used by the
  functional tests.

:meth:`Workload.compile` lowers the kernel for one machine configuration:
strips of ``min(MVL, fixed_avl)`` elements, register allocation onto the
configuration's architectural register count (32/LMUL under Register
Grouping — where the compiler inserts MVL-wide spill code), producing an
immutable :class:`repro.isa.program.Program`.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.compiler.allocator import AllocationResult, allocate
from repro.compiler.signature import CompileSignature
from repro.compiler.trace import StripSchedule, unroll_kernel
from repro.core.config import MachineConfig
from repro.isa.builder import KernelBody
from repro.isa.instructions import fingerprint_line
from repro.isa.program import Program
from repro.scalar.core import loop_scalar_cycles


@dataclass
class CompiledWorkload:
    """A program plus its compilation record.

    ``signature`` rather than a full machine config: compilation reads only
    the (mvl, n_logical) pair, so one compiled workload serves every config
    sharing that signature (NATIVE X4 and AVA X4 replay the same object).
    """

    program: Program
    allocation: AllocationResult
    signature: CompileSignature


class Workload(ABC):
    """One RiVEC application."""

    #: Table IV fields.
    name: str = ""
    domain: str = ""
    model: str = ""

    #: Scaled problem size in elements (strip-mined over the MVL).
    n_elements: int = 4096
    #: Fixed Application Vector Length, or None for vector-length-agnostic.
    fixed_avl: Optional[int] = None
    #: Scalar ALU instructions in the loop control (fed to the scalar model).
    loop_alu_insts: int = 4

    def __init__(self) -> None:
        self._body: Optional[KernelBody] = None
        #: (n_elements, shape dict) pair backing :attr:`buffers`; keyed on
        #: ``n_elements`` so tests that shrink an instance recompute it.
        self._buffer_shapes: Optional[Tuple[int, Dict[str, int]]] = None

    # -- kernel ---------------------------------------------------------------
    @abstractmethod
    def build_kernel(self) -> KernelBody:
        """Construct the kernel body (called once, cached)."""

    @property
    def body(self) -> KernelBody:
        if self._body is None:
            self._body = self.build_kernel()
        return self._body

    # -- data / oracle -----------------------------------------------------------
    @abstractmethod
    def init_data(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Input (and output placeholder) arrays, keyed by buffer name."""

    @abstractmethod
    def reference(self, data: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Pure-numpy oracle: expected contents of the output buffers."""

    @property
    def buffers(self) -> Dict[str, int]:
        """Buffer name -> element count (most buffers hold ``n_elements``).

        The shapes come from one throwaway :meth:`init_data` call, cached
        per instance: compiling the same workload for every configuration of
        a sweep must not re-allocate every data array just to read lengths.
        """
        cached = self._buffer_shapes
        if cached is not None and cached[0] == self.n_elements:
            return cached[1]
        rng = np.random.default_rng(0)
        shapes = {name: len(arr) for name, arr in self.init_data(rng).items()}
        self._buffer_shapes = (self.n_elements, shapes)
        return shapes

    # -- strip mining -----------------------------------------------------------
    def effective_vl(self, mvl: int) -> int:
        """The vector length one strip executes with on a given machine."""
        if self.fixed_avl is None:
            return mvl
        return min(mvl, self.fixed_avl)

    def schedule(self, config: Union[MachineConfig, CompileSignature]
                 ) -> StripSchedule:
        vl = self.effective_vl(config.mvl)
        return StripSchedule.for_elements(
            self.n_elements, vl,
            scalar_cycles=loop_scalar_cycles(self.loop_alu_insts))

    # -- compilation ------------------------------------------------------------
    def compile_fingerprint(self) -> str:
        """Content hash of everything :meth:`compile` reads from *this side*.

        Kernel body (exact, uids excluded), strip-mining shape and buffer
        layout; together with a :class:`CompileSignature` this pins the
        compiled program completely, so it is the workload half of the
        trace store's content address.  Two instances producing the same
        fingerprint compile byte-identical programs.
        """
        body = self.body
        parts = [f"{self.name}|n={self.n_elements}|avl={self.fixed_avl}"
                 f"|alu={self.loop_alu_insts}|pre={body.n_preamble}"
                 f"|vregs={body.n_vregs}\n"]
        for name in sorted(self.buffers):
            parts.append(f"buf {name}:{self.buffers[name]}\n")
        parts.extend(fingerprint_line(inst) for inst in body.insts)
        return hashlib.sha256("".join(parts).encode()).hexdigest()

    def compile(self, target: Union[MachineConfig, CompileSignature]
                ) -> CompiledWorkload:
        """Lower the kernel for a machine config or its compile signature.

        Only the signature — (mvl, n_logical) — shapes the output; passing
        a full config is a convenience that extracts it first.  Under
        Register Grouping the reduced ``n_logical`` is what makes the
        allocator spill.
        """
        signature = (target if isinstance(target, CompileSignature)
                     else CompileSignature.from_config(target))
        schedule = self.schedule(signature)
        trace = unroll_kernel(self.body, schedule, signature.mvl)
        allocation = allocate(trace, signature.n_logical, signature.mvl)
        program = Program(
            name=f"{self.name}@{signature.label}",
            insts=allocation.insts,
            buffers=dict(self.buffers),
            spill_slots=allocation.spill_slots,
            mvl=signature.mvl,
            logical_regs=allocation.registers_used,
            meta={
                "workload": self.name,
                "iterations": schedule.n_iterations,
                "effective_vl": self.effective_vl(signature.mvl),
                "max_pressure": allocation.max_pressure,
            },
        )
        program.validate(signature.n_logical)
        return CompiledWorkload(program=program, allocation=allocation,
                                signature=signature)

    def describe(self) -> str:
        return (f"{self.name} ({self.domain}, {self.model}): "
                f"{self.n_elements} elements"
                + (f", fixed AVL={self.fixed_avl}" if self.fixed_avl else ""))
