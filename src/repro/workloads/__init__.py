"""RiVEC benchmark suite reimplementation — an open, pluggable registry.

The six Table-IV applications are rebuilt in the kernel DSL with the
register usage, live pressure, instruction mix and application vector length
the paper reports for each (see DESIGN.md §3); four extended RiVEC-style
kernels (:data:`EXTENDED_WORKLOAD_NAMES`) grow the suite to ten.  Problem
sizes are scaled to simulator scale; figures report shapes, not absolute
gem5 counts.

New kernels join the suite with the :func:`register_workload` decorator (or
the ``repro.workloads`` entry-point group) — see the README's "Adding a
workload" section.
"""

from repro.workloads.base import CompiledWorkload, Workload
from repro.workloads.registry import (
    ALL_WORKLOAD_NAMES,
    EXTENDED_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    all_workloads,
    discover_workloads,
    get_workload,
    register_workload,
    registered_names,
    select_workloads,
    unregister_workload,
)

# Importing the kernel modules registers the builtin suite.
from repro.workloads import axpy  # noqa: F401  (registration side effect)
from repro.workloads import blackscholes  # noqa: F401
from repro.workloads import jacobi2d  # noqa: F401
from repro.workloads import lavamd  # noqa: F401
from repro.workloads import particlefilter  # noqa: F401
from repro.workloads import pathfinder  # noqa: F401
from repro.workloads import somier  # noqa: F401
from repro.workloads import spmv  # noqa: F401
from repro.workloads import streamcluster  # noqa: F401
from repro.workloads import swaptions  # noqa: F401

__all__ = [
    "Workload",
    "CompiledWorkload",
    "all_workloads",
    "discover_workloads",
    "get_workload",
    "register_workload",
    "registered_names",
    "select_workloads",
    "unregister_workload",
    "WORKLOAD_NAMES",
    "EXTENDED_WORKLOAD_NAMES",
    "ALL_WORKLOAD_NAMES",
]
