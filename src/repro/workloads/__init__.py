"""RiVEC benchmark suite reimplementation (Table IV).

Six hand-vectorised applications, rebuilt in the kernel DSL with the
register usage, live pressure, instruction mix and application vector length
the paper reports for each (see DESIGN.md §3).  Problem sizes are scaled to
simulator scale; figures report shapes, not absolute gem5 counts.
"""

from repro.workloads.base import CompiledWorkload, Workload
from repro.workloads.registry import all_workloads, get_workload, WORKLOAD_NAMES

__all__ = [
    "Workload",
    "CompiledWorkload",
    "all_workloads",
    "get_workload",
    "WORKLOAD_NAMES",
]
