"""ParticleFilter: sequential Monte Carlo tracking (Medical Imaging).

Structured-grids model with a moderate register footprint (the paper reports
13 logical registers; spill/swap traffic appears only at LMUL≥4 / AVA X4 and
is negligible — 0.15% of memory operations for the largest configuration).

Each strip advances one generation of particles: an embedded integer LCG
(exercising the bitwise vector ops) produces the motion noise, a polynomial
Gaussian evaluates the measurement likelihood, weights are updated, and a
gather (indexed load) models the resampling table lookup.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import KernelBody, KernelBuilder
from repro.workloads.base import Workload
from repro.workloads.registry import register_workload
from repro.workloads.mathlib import BuilderMath, NumpyMath, poly_exp

#: ZX81-style LCG constants: products stay exact in float64.
LCG_A = 75
LCG_C = 74
LCG_MASK = 0xFFFF
#: Observation the likelihood is evaluated against.
OBSERVED = 0.0
#: Gaussian likelihood width.
INV_2SIGMA2 = 0.125


@register_workload
class ParticleFilter(Workload):
    name = "particlefilter"
    domain = "Medical Imaging"
    model = "Structured Grids"
    n_elements = 4096
    loop_alu_insts = 6

    def build_kernel(self) -> KernelBody:
        kb = KernelBuilder()
        m = BuilderMath(kb)
        c_s = kb.const(INV_2SIGMA2)
        c_e24 = kb.const(1.0 / 24.0)
        c_e6 = kb.const(1.0 / 6.0)
        c_u = kb.const(1.0 / (LCG_MASK + 1))
        x = kb.load("posx")
        w = kb.load("weight")
        seed = kb.load("seed")
        # LCG step -> uniform noise in [0, 1).
        s1 = kb.band(kb.add(kb.mul(seed, float(LCG_A)), float(LCG_C)),
                     LCG_MASK)
        u = s1 * c_u
        # Motion model: x' = x + 1 + 2(u - 0.5).
        x1 = x + (u * 2.0 - 1.0 + 1.0)
        # Likelihood: N(x' - observed; sigma).
        err = x1 - OBSERVED
        like = poly_exp(m, 0.0 - err * err * c_s, c_e24, c_e6)
        w1 = w * like
        # Resampling table lookup: gather the ancestor position.
        idx = kb.band(s1, self.n_elements - 1)
        ancestor = kb.gather("posx", idx)
        x2 = (x1 + ancestor) * 0.5
        kb.store(x2, "outx")
        kb.store(w1, "outw")
        kb.store(s1, "seed")
        return kb.build()

    def init_data(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        n = self.n_elements
        return {
            "posx": rng.uniform(-1.0, 1.0, n),
            "weight": np.full(n, 1.0 / n),
            "seed": rng.integers(0, LCG_MASK, n).astype(np.float64),
            "outx": np.zeros(n),
            "outw": np.zeros(n),
        }

    def reference(self, data: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        m = NumpyMath()
        x = data["posx"]
        w = data["weight"]
        seed = data["seed"].astype(np.int64)
        s1 = (seed * LCG_A + LCG_C) & LCG_MASK
        u = s1.astype(np.float64) * (1.0 / (LCG_MASK + 1))
        x1 = x + (u * 2.0 - 1.0 + 1.0)
        err = x1 - OBSERVED
        like = poly_exp(m, 0.0 - err * err * INV_2SIGMA2)
        w1 = w * like
        idx = (s1 & (self.n_elements - 1)).astype(np.int64)
        ancestor = x[idx]
        x2 = (x1 + ancestor) * 0.5
        return {"outx": x2, "outw": w1,
                "seed": s1.astype(np.float64)}
