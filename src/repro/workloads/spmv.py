"""SpMV: sparse matrix-vector product in ELLPACK form (Sparse Algebra).

The RiVEC sparse kernel: every row holds exactly ``NNZ_PER_ROW`` nonzeros,
stored column-major as (column-index, value) streams, so one strip computes

    y[i] = sum_k  val_k[i] * x[col_k[i]]

with a unit-stride load per stream and an **indexed gather** per term — the
memory path the Table-IV suite barely touches (ParticleFilter issues one
gather per strip; SpMV issues four, fed by loaded rather than computed
indices).  Over three quarters of the vector instructions are memory
operations, most of them indexed, which makes this the suite's dedicated
stressor for the VMU's element-granular address path.

Column indices are materialised as float64 (the register file's element
type); the gather truncates them back to integers, exactly as the oracle
does.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import KernelBody, KernelBuilder
from repro.workloads.base import Workload
from repro.workloads.registry import register_workload

#: Nonzeros per matrix row (the ELL width).
NNZ_PER_ROW = 4


@register_workload
class SpMV(Workload):
    name = "spmv"
    domain = "Sparse Algebra"
    model = "Sparse Linear Algebra"
    n_elements = 4096
    loop_alu_insts = 7  # per-stream address bumps, trip count, vsetvl input

    def build_kernel(self) -> KernelBody:
        kb = KernelBuilder()
        acc = None
        for k in range(NNZ_PER_ROW):
            col = kb.load(f"col{k}")
            val = kb.load(f"val{k}")
            term_x = kb.gather("x", col)
            acc = val * term_x if acc is None else kb.fmadd(val, term_x, acc)
        assert acc is not None
        kb.store(acc, "y")
        return kb.build()

    def init_data(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        n = self.n_elements
        data: Dict[str, np.ndarray] = {
            "x": rng.standard_normal(n),
            "y": np.zeros(n),
        }
        for k in range(NNZ_PER_ROW):
            data[f"col{k}"] = rng.integers(0, n, n).astype(np.float64)
            data[f"val{k}"] = rng.standard_normal(n)
        return data

    def reference(self, data: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        x = data["x"]
        y = None
        for k in range(NNZ_PER_ROW):
            idx = data[f"col{k}"].astype(np.int64)
            term = data[f"val{k}"] * x[idx]
            y = term if y is None else y + term
        assert y is not None
        return {"y": y}
