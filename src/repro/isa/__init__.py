"""RISC-V-style vector ISA subset used by the AVA reproduction.

This package defines the instruction vocabulary shared by every layer of the
stack: the kernel-builder DSL emits *virtual-register* instructions, the
compiler (:mod:`repro.compiler`) rewrites them onto architectural registers
(inserting spill code), and the simulator (:mod:`repro.sim`) renames them onto
Virtual Vector Registers (VVRs) and physical registers.

The subset mirrors what the RiVEC benchmark kernels need: single-width 64-bit
element arithmetic (add/sub/mul/div/sqrt/fma/min/max), compares and merges for
mask-style control, reductions, and unit-stride / strided / indexed memory
operations, plus an abstract scalar-overhead instruction that models the
scalar core's loop control (`vsetvl`, address bumps, branch).
"""

from repro.isa.registers import NUM_LOGICAL_VREGS, VectorRegister, vreg_name
from repro.isa.opcodes import Op, OpKind, OPCODE_INFO, OpInfo
from repro.isa.operands import MemOperand, AddressSpace
from repro.isa.instructions import Instruction, Tag, scalar_block
from repro.isa.program import Program, ProgramStats
from repro.isa.builder import KernelBuilder, VirtualReg

__all__ = [
    "NUM_LOGICAL_VREGS",
    "VectorRegister",
    "vreg_name",
    "Op",
    "OpKind",
    "OpInfo",
    "OPCODE_INFO",
    "MemOperand",
    "AddressSpace",
    "Instruction",
    "Tag",
    "scalar_block",
    "Program",
    "ProgramStats",
    "KernelBuilder",
    "VirtualReg",
]
