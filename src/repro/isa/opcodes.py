"""Vector opcodes, their timing classes and functional semantics.

Each opcode carries an :class:`OpInfo` record describing

* its kind (arithmetic, memory load/store, scalar overhead),
* the number of vector source operands it reads,
* whether it consumes a scalar operand (``.vf`` forms, immediates),
* its pipeline latency in VPU cycles (cycles until the first result element
  is available for chaining), and
* its throughput cost as ``beats_per_element`` — 1.0 for fully pipelined
  units, >1 for iterative units such as divide and square root,
* an optional numpy evaluator used by the functional execution mode.

Integer/bitwise opcodes operate on the 64-bit integer reinterpretation of the
register contents, which is how the ParticleFilter kernel implements its
linear congruential generator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np


class OpKind(enum.Enum):
    """Coarse instruction class, used for queue steering and statistics."""

    ARITH = "arith"
    MEM_LOAD = "load"
    MEM_STORE = "store"
    SCALAR = "scalar"


class Op(enum.Enum):
    """The vector instruction subset used by the RiVEC-style kernels."""

    # Arithmetic (.vv forms unless noted).
    VADD = "vadd"
    VSUB = "vsub"
    VMUL = "vmul"
    VDIV = "vdiv"
    VSQRT = "vsqrt"
    VFMADD = "vfmadd"  # dst = s0 * s1 + s2
    VFMADD_VF = "vfmadd.vf"  # dst = scalar * s0 + s1  (axpy's vfmacc)
    VADD_VF = "vadd.vf"  # dst = s0 + scalar
    VSUB_VF = "vsub.vf"  # dst = s0 - scalar
    VRSUB_VF = "vrsub.vf"  # dst = scalar - s0
    VMUL_VF = "vmul.vf"  # dst = s0 * scalar
    VDIV_VF = "vdiv.vf"  # dst = s0 / scalar
    VMAX = "vmax"
    VMIN = "vmin"
    VMAX_VF = "vmax.vf"
    VMIN_VF = "vmin.vf"
    VABS = "vabs"
    VNEG = "vneg"
    VRECIP = "vrecip"  # fast reciprocal estimate (exact here)
    VRSQRT = "vrsqrt"  # fast reciprocal square root (exact here)
    VAND = "vand"
    VOR = "vor"
    VXOR = "vxor"
    VAND_VI = "vand.vi"  # bitwise and with integer immediate
    VSLL_VI = "vsll.vi"
    VSRL_VI = "vsrl.vi"
    VMFLT = "vmflt"  # mask: s0 < s1
    VMFLE = "vmfle"
    VMFEQ = "vmfeq"
    VMERGE = "vmerge"  # dst = s0 ? s1 : s2 (mask in s0)
    VREDSUM = "vredsum"  # reduction, result broadcast to all elements
    VREDMAX = "vredmax"
    VREDMIN = "vredmin"
    VMV = "vmv"  # register copy
    VFMV_VF = "vfmv.vf"  # broadcast scalar
    VID = "vid"  # dst[i] = i

    # Memory.
    VLE = "vle"  # unit-stride load
    VSE = "vse"  # unit-stride store
    VLSE = "vlse"  # strided load
    VSSE = "vsse"  # strided store
    VLXE = "vlxe"  # indexed (gather) load, index vector in s0
    VSXE = "vsxe"  # indexed (scatter) store, data s0, index vector in s1

    # Scalar-core overhead marker (loop control, vsetvl, address bumps).
    SCALAR_BLOCK = "scalar"


Evaluator = Callable[[Sequence[np.ndarray], Optional[float]], np.ndarray]


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode.

    ``is_memory`` / ``is_arith`` are plain attributes precomputed at
    construction (one OpInfo exists per opcode, but the flags are read for
    every instruction the compiler builds and the simulator probes).
    """

    kind: OpKind
    n_srcs: int
    uses_scalar: bool
    latency: int
    beats_per_element: float
    evaluate: Optional[Evaluator]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "is_memory",
            self.kind in (OpKind.MEM_LOAD, OpKind.MEM_STORE))
        object.__setattr__(self, "is_arith", self.kind is OpKind.ARITH)


def _as_int(a: np.ndarray) -> np.ndarray:
    return a.astype(np.int64)


def _as_f64(a: np.ndarray) -> np.ndarray:
    return a.astype(np.float64)


def _safe_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.empty_like(a)
    nz = b != 0
    out[nz] = a[nz] / b[nz]
    out[~nz] = 0.0
    return out


def _arith(n_srcs: int, latency: int, fn: Evaluator, *, scalar: bool = False,
           beats: float = 1.0) -> OpInfo:
    return OpInfo(OpKind.ARITH, n_srcs, scalar, latency, beats, fn)


#: Pipeline latency of the simple FP ops (add-class) in VPU cycles.
LAT_SIMPLE = 4
#: Pipeline latency of the FP multiplier.
LAT_MUL = 5
#: Pipeline latency of the fused multiply-add pipeline.
LAT_FMA = 6
#: Latency / per-element throughput of the iterative divide / sqrt unit.
LAT_DIV = 12
BEATS_DIV = 4.0
#: Latency of the reciprocal-estimate fast path.
LAT_RECIP = 8
BEATS_RECIP = 2.0
#: Latency of tree reductions.
LAT_RED = 8


OPCODE_INFO: dict[Op, OpInfo] = {
    Op.VADD: _arith(2, LAT_SIMPLE, lambda s, f: s[0] + s[1]),
    Op.VSUB: _arith(2, LAT_SIMPLE, lambda s, f: s[0] - s[1]),
    Op.VMUL: _arith(2, LAT_MUL, lambda s, f: s[0] * s[1]),
    Op.VDIV: _arith(2, LAT_DIV, lambda s, f: _safe_div(s[0], s[1]),
                    beats=BEATS_DIV),
    Op.VSQRT: _arith(1, LAT_DIV, lambda s, f: np.sqrt(np.abs(s[0])),
                     beats=BEATS_DIV),
    Op.VFMADD: _arith(3, LAT_FMA, lambda s, f: s[0] * s[1] + s[2]),
    Op.VFMADD_VF: _arith(2, LAT_FMA, lambda s, f: f * s[0] + s[1],
                         scalar=True),
    Op.VADD_VF: _arith(1, LAT_SIMPLE, lambda s, f: s[0] + f, scalar=True),
    Op.VSUB_VF: _arith(1, LAT_SIMPLE, lambda s, f: s[0] - f, scalar=True),
    Op.VRSUB_VF: _arith(1, LAT_SIMPLE, lambda s, f: f - s[0], scalar=True),
    Op.VMUL_VF: _arith(1, LAT_MUL, lambda s, f: s[0] * f, scalar=True),
    Op.VDIV_VF: _arith(1, LAT_DIV,
                       lambda s, f: s[0] / f if f else np.zeros_like(s[0]),
                       scalar=True, beats=BEATS_DIV),
    Op.VMAX: _arith(2, LAT_SIMPLE, lambda s, f: np.maximum(s[0], s[1])),
    Op.VMIN: _arith(2, LAT_SIMPLE, lambda s, f: np.minimum(s[0], s[1])),
    Op.VMAX_VF: _arith(1, LAT_SIMPLE, lambda s, f: np.maximum(s[0], f),
                       scalar=True),
    Op.VMIN_VF: _arith(1, LAT_SIMPLE, lambda s, f: np.minimum(s[0], f),
                       scalar=True),
    Op.VABS: _arith(1, LAT_SIMPLE, lambda s, f: np.abs(s[0])),
    Op.VNEG: _arith(1, LAT_SIMPLE, lambda s, f: -s[0]),
    Op.VRECIP: _arith(1, LAT_RECIP, lambda s, f: _safe_div(
        np.ones_like(s[0]), s[0]), beats=BEATS_RECIP),
    Op.VRSQRT: _arith(1, LAT_RECIP, lambda s, f: _safe_div(
        np.ones_like(s[0]), np.sqrt(np.abs(s[0]))), beats=BEATS_RECIP),
    Op.VAND: _arith(2, LAT_SIMPLE,
                    lambda s, f: _as_f64(_as_int(s[0]) & _as_int(s[1]))),
    Op.VOR: _arith(2, LAT_SIMPLE,
                   lambda s, f: _as_f64(_as_int(s[0]) | _as_int(s[1]))),
    Op.VXOR: _arith(2, LAT_SIMPLE,
                    lambda s, f: _as_f64(_as_int(s[0]) ^ _as_int(s[1]))),
    Op.VAND_VI: _arith(1, LAT_SIMPLE,
                       lambda s, f: _as_f64(_as_int(s[0]) & int(f)),
                       scalar=True),
    Op.VSLL_VI: _arith(1, LAT_SIMPLE,
                       lambda s, f: _as_f64(_as_int(s[0]) << int(f)),
                       scalar=True),
    Op.VSRL_VI: _arith(1, LAT_SIMPLE,
                       lambda s, f: _as_f64(_as_int(s[0]) >> int(f)),
                       scalar=True),
    Op.VMFLT: _arith(2, LAT_SIMPLE,
                     lambda s, f: (s[0] < s[1]).astype(np.float64)),
    Op.VMFLE: _arith(2, LAT_SIMPLE,
                     lambda s, f: (s[0] <= s[1]).astype(np.float64)),
    Op.VMFEQ: _arith(2, LAT_SIMPLE,
                     lambda s, f: (s[0] == s[1]).astype(np.float64)),
    Op.VMERGE: _arith(3, LAT_SIMPLE,
                      lambda s, f: np.where(s[0] != 0.0, s[1], s[2])),
    Op.VREDSUM: _arith(1, LAT_RED,
                       lambda s, f: np.full_like(s[0], s[0].sum())),
    Op.VREDMAX: _arith(1, LAT_RED,
                       lambda s, f: np.full_like(s[0], s[0].max())),
    Op.VREDMIN: _arith(1, LAT_RED,
                       lambda s, f: np.full_like(s[0], s[0].min())),
    Op.VMV: _arith(1, LAT_SIMPLE, lambda s, f: s[0].copy()),
    Op.VFMV_VF: _arith(0, LAT_SIMPLE, None, scalar=True),
    Op.VID: _arith(0, LAT_SIMPLE, None),
    # Memory latency is supplied by the memory hierarchy at simulation time;
    # the `latency` recorded here is only the address-generation overhead.
    Op.VLE: OpInfo(OpKind.MEM_LOAD, 0, False, 0, 1.0, None),
    Op.VSE: OpInfo(OpKind.MEM_STORE, 1, False, 0, 1.0, None),
    Op.VLSE: OpInfo(OpKind.MEM_LOAD, 0, False, 0, 1.0, None),
    Op.VSSE: OpInfo(OpKind.MEM_STORE, 1, False, 0, 1.0, None),
    Op.VLXE: OpInfo(OpKind.MEM_LOAD, 1, False, 0, 1.0, None),
    Op.VSXE: OpInfo(OpKind.MEM_STORE, 2, False, 0, 1.0, None),
    Op.SCALAR_BLOCK: OpInfo(OpKind.SCALAR, 0, True, 0, 0.0, None),
}


def op_info(op: Op) -> OpInfo:
    """Look up the :class:`OpInfo` for ``op`` (raises ``KeyError`` if absent)."""
    return OPCODE_INFO[op]


def evaluate_arith(op: Op, srcs: Sequence[np.ndarray],
                   scalar: Optional[float], vl: int) -> np.ndarray:
    """Functionally evaluate an arithmetic opcode over ``vl`` elements.

    The zero-source generator opcodes (``vfmv``, ``vid``) are handled here
    because their result depends only on ``vl`` and the scalar operand.
    """
    info = OPCODE_INFO[op]
    if not info.is_arith:
        raise ValueError(f"{op} is not an arithmetic opcode")
    if op is Op.VFMV_VF:
        return np.full(vl, float(scalar), dtype=np.float64)
    if op is Op.VID:
        return np.arange(vl, dtype=np.float64)
    assert info.evaluate is not None
    clipped = [np.asarray(s[:vl], dtype=np.float64) for s in srcs]
    return info.evaluate(clipped, scalar)
