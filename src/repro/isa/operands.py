"""Memory operands: where a vector load/store touches memory.

Addresses are expressed symbolically as (address space, element offset,
element stride) so that programs can be generated before the simulator
assigns concrete base addresses.  The simulator's memory layout
(:class:`repro.sim.layout.MemoryLayout`) resolves spaces to byte addresses;
the cache models then see real addresses.

Three address spaces matter to the paper's statistics:

* ``DATA`` — the application's arrays (VLoad / VStore in Fig. 3),
* ``SPILL`` — compiler spill slots (Spill-Load / Spill-Store), always
  accessed with VL = MVL,
* ``MVRF`` — the Memory Vector Register File backing store used by AVA's
  Swap Mechanism (Swap-Load / Swap-Store), also VL = MVL wide.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class AddressSpace(enum.Enum):
    """Logical region of memory a vector memory operation targets."""

    DATA = "data"
    SPILL = "spill"
    MVRF = "mvrf"


@dataclass(frozen=True)
class MemOperand:
    """Symbolic description of a vector memory access.

    Attributes:
        space: which logical region is accessed.
        buffer: name of the array within the region (``"x"``, ``"y"``,
            spill slot names like ``"slot3"``, or ``"mvrf"``).
        base_elem: element offset of element 0 of the access.
        stride: element stride between consecutive vector elements
            (1 = unit-stride). Ignored for indexed accesses.
        indexed: True for gather/scatter; element addresses come from an
            index register at simulation time.
    """

    space: AddressSpace
    buffer: str
    base_elem: int = 0
    stride: int = 1
    indexed: bool = False

    def with_base(self, base_elem: int) -> "MemOperand":
        """Return a copy shifted to a new element offset (strip-mining)."""
        return MemOperand(self.space, self.buffer, base_elem, self.stride,
                          self.indexed)

    def to_dict(self) -> dict:
        """Exact JSON form (every field is an int/str/bool — lossless)."""
        return {"space": self.space.value, "buffer": self.buffer,
                "base_elem": self.base_elem, "stride": self.stride,
                "indexed": self.indexed}

    @classmethod
    def from_dict(cls, data: dict) -> "MemOperand":
        # Direct member-map lookup: trace replay rebuilds one operand per
        # memory instruction and the enum's __call__ protocol was a
        # measurable slice of warm-trace load time.  Unknown names still
        # raise (KeyError) exactly like the constructor form.
        return cls(space=AddressSpace._value2member_map_[data["space"]],
                   buffer=data["buffer"],
                   base_elem=data["base_elem"], stride=data["stride"],
                   indexed=data["indexed"])

    @property
    def unit_stride(self) -> bool:
        return self.stride == 1 and not self.indexed

    def describe(self) -> str:
        kind = "indexed" if self.indexed else (
            "unit" if self.stride == 1 else f"stride={self.stride}")
        return f"{self.space.value}:{self.buffer}[{self.base_elem}] ({kind})"


def data_ref(buffer: str, base_elem: int = 0, stride: int = 1,
             indexed: bool = False) -> MemOperand:
    """Convenience constructor for application-data operands."""
    return MemOperand(AddressSpace.DATA, buffer, base_elem, stride, indexed)


def spill_ref(slot: int) -> MemOperand:
    """Memory operand for compiler spill slot ``slot`` (always MVL-wide)."""
    return MemOperand(AddressSpace.SPILL, f"slot{slot}")


def mvrf_ref(vvr: int) -> Optional[MemOperand]:
    """Memory operand for VVR ``vvr``'s home location in the M-VRF."""
    return MemOperand(AddressSpace.MVRF, "mvrf", base_elem=0)
