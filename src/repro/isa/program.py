"""Program container: an ordered vector-instruction trace plus its data.

A :class:`Program` is what a workload hands the simulator: the strip-mined,
register-allocated instruction sequence (including any compiler spill code),
the set of application data buffers it touches, and the number of spill slots
the compiler reserved.  Programs are configuration-specific — the same kernel
compiled for MVL=16/LMUL=1 and for MVL=128/LMUL=8 yields different programs —
but they are immutable and reusable across simulator instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.isa.instructions import Instruction, Tag
from repro.isa.opcodes import Op


@dataclass(frozen=True)
class ProgramStats:
    """Static instruction-mix statistics (Fig. 3, columns 1 and 2)."""

    vector_arith: int = 0
    vector_load: int = 0
    vector_store: int = 0
    spill_load: int = 0
    spill_store: int = 0
    scalar_blocks: int = 0

    @property
    def vector_memory(self) -> int:
        return (self.vector_load + self.vector_store
                + self.spill_load + self.spill_store)

    @property
    def vector_total(self) -> int:
        return self.vector_arith + self.vector_memory

    @property
    def memory_fraction(self) -> float:
        total = self.vector_total
        return self.vector_memory / total if total else 0.0


@dataclass
class Program:
    """An executable vector program.

    Attributes:
        name: human-readable identifier (workload + configuration).
        insts: the full instruction trace, in program order.
        buffers: application data arrays, name -> element count.
        spill_slots: number of MVL-wide compiler spill slots reserved.
        mvl: the Maximum Vector Length the program was compiled for.
        logical_regs: how many architectural registers the binary uses
            (the paper reports this per application, e.g. 23 for
            Blackscholes).
        meta: free-form annotations (iteration count, kernel parameters).
    """

    name: str
    insts: List[Instruction] = field(default_factory=list)
    buffers: Dict[str, int] = field(default_factory=dict)
    spill_slots: int = 0
    mvl: int = 16
    logical_regs: int = 0
    meta: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.insts)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.insts)

    def append(self, inst: Instruction) -> None:
        self.insts.append(inst)

    def extend(self, insts: List[Instruction]) -> None:
        self.insts.extend(insts)

    @property
    def vector_insts(self) -> List[Instruction]:
        return [i for i in self.insts if not i.is_scalar]

    def stats(self) -> ProgramStats:
        """Count the static instruction mix by category."""
        arith = load = store = spill_l = spill_s = scalar = 0
        for inst in self.insts:
            if inst.is_scalar:
                scalar += 1
            elif inst.is_arith:
                arith += 1
            elif inst.is_load:
                if inst.tag is Tag.SPILL:
                    spill_l += 1
                else:
                    load += 1
            elif inst.is_store:
                if inst.tag is Tag.SPILL:
                    spill_s += 1
                else:
                    store += 1
        return ProgramStats(arith, load, store, spill_l, spill_s, scalar)

    def registers_used(self) -> set[int]:
        """The set of architectural registers the trace references."""
        used: set[int] = set()
        for inst in self.insts:
            if inst.is_scalar:
                continue
            used.update(inst.registers)
        return used

    def validate(self, n_logical: int) -> None:
        """Check every register id is a legal architectural register."""
        used = self.registers_used()
        bad = [r for r in used if not 0 <= r < n_logical]
        if bad:
            raise ValueError(
                f"program {self.name!r} uses registers outside "
                f"[0, {n_logical}): {sorted(bad)[:8]}")

    def to_dict(self) -> dict:
        """Exact JSON form for the trace store (buffers/meta hold only
        JSON-native scalars, instructions serialize losslessly)."""
        return {
            "name": self.name,
            "insts": [inst.to_dict() for inst in self.insts],
            "buffers": dict(self.buffers),
            "spill_slots": self.spill_slots,
            "mvl": self.mvl,
            "logical_regs": self.logical_regs,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Program":
        """Rebuild from :meth:`to_dict` output, trusted.

        Deliberately does NOT re-run :meth:`validate`: traces only reach
        here through the store's schema gate and content-addressed key, and
        replaying a stored trace must stay much cheaper than recompiling.
        """
        return cls(
            name=data["name"],
            insts=[Instruction.from_dict(d) for d in data["insts"]],
            buffers=dict(data["buffers"]),
            spill_slots=data["spill_slots"],
            mvl=data["mvl"],
            logical_regs=data["logical_regs"],
            meta=dict(data["meta"]),
        )

    def describe(self, limit: int = 20) -> str:
        """Human-readable dump of the first ``limit`` instructions."""
        lines = [f"program {self.name}: {len(self.insts)} instructions, "
                 f"mvl={self.mvl}, spill_slots={self.spill_slots}"]
        for inst in self.insts[:limit]:
            lines.append("  " + inst.describe())
        if len(self.insts) > limit:
            lines.append(f"  ... {len(self.insts) - limit} more")
        return "\n".join(lines)
