"""Instruction objects shared by the compiler and the simulator.

An :class:`Instruction` is immutable once built; pipeline state (rename
mappings, issue/commit timestamps) lives in the simulator's per-instruction
micro-op wrapper, never here, so the same program object can be replayed
across many configurations.

The ``dst``/``srcs`` register fields are plain integers whose namespace
depends on the processing stage:

* straight out of :class:`repro.isa.builder.KernelBuilder` they are *virtual*
  registers (unbounded),
* after :func:`repro.compiler.allocate` they are *architectural* registers
  (0..31, or 0..32/LMUL-1 under Register Grouping),
* the simulator renames them again onto VVRs and physical registers.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opcodes import Op, OpInfo, OpKind, op_info
from repro.isa.operands import MemOperand


class Tag(enum.Enum):
    """Provenance of a memory instruction, for Figure-3's breakdown."""

    NORMAL = "normal"
    SPILL = "spill"  # compiler-inserted (Register Grouping)
    SWAP = "swap"  # hardware-inserted by AVA's Swap Mechanism


_seq_counter = itertools.count()


@dataclass(frozen=True)
class Instruction:
    """One vector (or scalar-overhead) instruction.

    Attributes:
        op: opcode.
        dst: destination register, or ``None`` for stores / scalar blocks.
        srcs: source vector registers, in opcode order.
        scalar: scalar operand (``.vf`` forms, immediates); for
            ``SCALAR_BLOCK`` it holds the scalar-core cycle cost of the block.
        vl: vector length this instruction executes with.
        mem: memory operand for loads/stores.
        tag: NORMAL / SPILL / SWAP provenance.
        uid: globally unique id, assigned at construction.
    """

    op: Op
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    scalar: Optional[float] = None
    vl: int = 0
    mem: Optional[MemOperand] = None
    tag: Tag = Tag.NORMAL
    uid: int = field(default_factory=lambda: next(_seq_counter))

    # ``info`` and the ``is_*`` kind flags are plain instance attributes
    # precomputed in ``__post_init__`` (not dataclass fields, so they stay
    # out of repr/eq/hash).  The simulator probes them on every evaluated
    # cycle; deriving them from the opcode table each time dominated the
    # per-cycle cost before they were cached here.

    _DERIVED = ("info", "is_memory", "is_load", "is_store", "is_arith",
                "is_scalar")

    def _fill_derived(self) -> OpInfo:
        info = op_info(self.op)
        kind = info.kind
        # Direct __dict__ fill: these are not dataclass fields, and the
        # frozen-dataclass __setattr__ guard must be bypassed anyway.
        self.__dict__.update(
            info=info,
            is_memory=info.is_memory,
            is_load=kind is OpKind.MEM_LOAD,
            is_store=kind is OpKind.MEM_STORE,
            is_arith=info.is_arith,
            is_scalar=kind is OpKind.SCALAR,
        )
        return info

    def __getstate__(self) -> dict:
        """Exclude the derived attributes: ``OpInfo`` carries evaluator
        lambdas (unpicklable), and the attributes are pure functions of
        ``op`` anyway."""
        return {k: v for k, v in self.__dict__.items()
                if k not in self._DERIVED}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._fill_derived()

    def __post_init__(self) -> None:
        info = self._fill_derived()
        kind = info.kind
        if kind is OpKind.SCALAR:
            return
        if len(self.srcs) != info.n_srcs:
            raise ValueError(
                f"{self.op.value} expects {info.n_srcs} vector sources, "
                f"got {len(self.srcs)}")
        if info.uses_scalar and self.scalar is None:
            raise ValueError(f"{self.op.value} requires a scalar operand")
        if info.is_memory and self.mem is None:
            raise ValueError(f"{self.op.value} requires a memory operand")
        if info.kind is OpKind.MEM_STORE and self.dst is not None:
            raise ValueError("stores have no destination register")
        if (info.kind in (OpKind.ARITH, OpKind.MEM_LOAD)
                and self.dst is None):
            raise ValueError(f"{self.op.value} requires a destination")
        if self.vl <= 0:
            raise ValueError("vector instructions need vl >= 1")

    @property
    def registers(self) -> Tuple[int, ...]:
        """All register operands (sources plus destination if present)."""
        if self.dst is None:
            return self.srcs
        return self.srcs + (self.dst,)

    def remap(self, mapping: dict[int, int],
              mem: Optional[MemOperand] = None,
              vl: Optional[int] = None) -> "Instruction":
        """Return a copy with registers rewritten through ``mapping``.

        Used by the register allocator (virtual -> architectural) and by the
        strip-mining trace emitter (rebasing memory operands per iteration).
        Remapping cannot change the instruction's shape (operand counts,
        opcode kind, dst presence), so the copy is built directly instead of
        re-running ``__init__`` validation — this is the compiler's hottest
        loop (one copy per instruction per strip-mine iteration).
        """
        new_vl = self.vl if vl is None else vl
        if new_vl <= 0:
            raise ValueError("vector instructions need vl >= 1")
        clone = object.__new__(Instruction)
        d = dict(self.__dict__)
        d.update(
            dst=None if self.dst is None else mapping[self.dst],
            srcs=tuple(mapping[s] for s in self.srcs),
            vl=new_vl,
            mem=self.mem if mem is None else mem,
            uid=next(_seq_counter),
        )
        clone.__dict__.update(d)
        return clone

    def describe(self) -> str:
        parts = [self.op.value]
        if self.dst is not None:
            parts.append(f"d{self.dst}")
        parts.extend(f"s{s}" for s in self.srcs)
        if self.scalar is not None:
            parts.append(f"f={self.scalar:g}")
        if self.mem is not None:
            parts.append(self.mem.describe())
        parts.append(f"vl={self.vl}")
        if self.tag is not Tag.NORMAL:
            parts.append(self.tag.value.upper())
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def scalar_block(cycles: float) -> Instruction:
    """Build a scalar-overhead marker costing ``cycles`` scalar-core cycles.

    The paper's scalar core runs at 2 GHz while the VPU runs at 1 GHz, so the
    simulator halves this cost when converting to VPU cycles.
    """
    if cycles < 0:
        raise ValueError("scalar block cost must be non-negative")
    return Instruction(op=Op.SCALAR_BLOCK, scalar=float(cycles))
