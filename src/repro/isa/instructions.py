"""Instruction objects shared by the compiler and the simulator.

An :class:`Instruction` is immutable once built; pipeline state (rename
mappings, issue/commit timestamps) lives in the simulator's per-instruction
micro-op wrapper, never here, so the same program object can be replayed
across many configurations.

The ``dst``/``srcs`` register fields are plain integers whose namespace
depends on the processing stage:

* straight out of :class:`repro.isa.builder.KernelBuilder` they are *virtual*
  registers (unbounded),
* after :func:`repro.compiler.allocate` they are *architectural* registers
  (0..31, or 0..32/LMUL-1 under Register Grouping),
* the simulator renames them again onto VVRs and physical registers.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opcodes import Op, OpInfo, OpKind, op_info
from repro.isa.operands import MemOperand


class Tag(enum.Enum):
    """Provenance of a memory instruction, for Figure-3's breakdown."""

    NORMAL = "normal"
    SPILL = "spill"  # compiler-inserted (Register Grouping)
    SWAP = "swap"  # hardware-inserted by AVA's Swap Mechanism


_seq_counter = itertools.count()

#: Shared per-opcode derived-attribute dicts (see ``_fill_derived``).
_DERIVED_BY_OP: dict = {}


@dataclass(frozen=True)
class Instruction:  # lint: slots-exempt(derived-attribute cache installs via __dict__.update)
    """One vector (or scalar-overhead) instruction.

    Attributes:
        op: opcode.
        dst: destination register, or ``None`` for stores / scalar blocks.
        srcs: source vector registers, in opcode order.
        scalar: scalar operand (``.vf`` forms, immediates); for
            ``SCALAR_BLOCK`` it holds the scalar-core cycle cost of the block.
        vl: vector length this instruction executes with.
        mem: memory operand for loads/stores.
        tag: NORMAL / SPILL / SWAP provenance.
        uid: globally unique id, assigned at construction.
    """

    op: Op
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    scalar: Optional[float] = None
    vl: int = 0
    mem: Optional[MemOperand] = None
    tag: Tag = Tag.NORMAL
    uid: int = field(default_factory=lambda: next(_seq_counter))

    # ``info`` and the ``is_*`` kind flags are plain instance attributes
    # precomputed in ``__post_init__`` (not dataclass fields, so they stay
    # out of repr/eq/hash).  The simulator probes them on every evaluated
    # cycle; deriving them from the opcode table each time dominated the
    # per-cycle cost before they were cached here.

    _DERIVED = ("info", "is_memory", "is_load", "is_store", "is_arith",
                "is_scalar")

    def _fill_derived(self) -> OpInfo:
        # Direct __dict__ fill: these are not dataclass fields, and the
        # frozen-dataclass __setattr__ guard must be bypassed anyway.  The
        # per-opcode dict is built once and shared — instruction
        # construction (compile *and* trace replay) is hot enough that
        # re-deriving six flags per instance showed up in profiles.
        derived = _DERIVED_BY_OP.get(self.op)
        if derived is None:
            info = op_info(self.op)
            kind = info.kind
            derived = _DERIVED_BY_OP[self.op] = dict(
                info=info,
                is_memory=info.is_memory,
                is_load=kind is OpKind.MEM_LOAD,
                is_store=kind is OpKind.MEM_STORE,
                is_arith=info.is_arith,
                is_scalar=kind is OpKind.SCALAR,
            )
        self.__dict__.update(derived)
        return derived["info"]

    def __getstate__(self) -> dict:
        """Exclude the derived attributes: ``OpInfo`` carries evaluator
        lambdas (unpicklable), and the attributes are pure functions of
        ``op`` anyway."""
        return {k: v for k, v in self.__dict__.items()
                if k not in self._DERIVED}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._fill_derived()

    def __post_init__(self) -> None:
        info = self._fill_derived()
        kind = info.kind
        if kind is OpKind.SCALAR:
            return
        if len(self.srcs) != info.n_srcs:
            raise ValueError(
                f"{self.op.value} expects {info.n_srcs} vector sources, "
                f"got {len(self.srcs)}")
        if info.uses_scalar and self.scalar is None:
            raise ValueError(f"{self.op.value} requires a scalar operand")
        if info.is_memory and self.mem is None:
            raise ValueError(f"{self.op.value} requires a memory operand")
        if info.kind is OpKind.MEM_STORE and self.dst is not None:
            raise ValueError("stores have no destination register")
        if (info.kind in (OpKind.ARITH, OpKind.MEM_LOAD)
                and self.dst is None):
            raise ValueError(f"{self.op.value} requires a destination")
        if self.vl <= 0:
            raise ValueError("vector instructions need vl >= 1")

    @property
    def registers(self) -> Tuple[int, ...]:
        """All register operands (sources plus destination if present)."""
        if self.dst is None:
            return self.srcs
        return self.srcs + (self.dst,)

    def with_operands(self, dst: Optional[int], srcs: Tuple[int, ...],
                      vl: int, mem: Optional[MemOperand]) -> "Instruction":
        """Low-level copy with pre-mapped operands.

        Rewriting operands cannot change the instruction's shape (operand
        counts, opcode kind, dst presence), so the copy is built directly
        instead of re-running ``__init__`` validation — this is the
        compiler's hottest loop (one copy per instruction per strip-mine
        iteration).  :meth:`remap` layers the mapping-dict form on top.
        """
        if vl <= 0:
            raise ValueError("vector instructions need vl >= 1")
        clone = object.__new__(Instruction)
        d = dict(self.__dict__)
        d.update(dst=dst, srcs=srcs, vl=vl, mem=mem, uid=next(_seq_counter))
        clone.__dict__.update(d)
        return clone

    def remap(self, mapping: dict[int, int],
              mem: Optional[MemOperand] = None,
              vl: Optional[int] = None) -> "Instruction":
        """Return a copy with registers rewritten through ``mapping``.

        Used by the register allocator (virtual -> architectural) and by the
        strip-mining trace emitter (rebasing memory operands per iteration).
        """
        return self.with_operands(
            dst=None if self.dst is None else mapping[self.dst],
            srcs=tuple(mapping[s] for s in self.srcs),
            vl=self.vl if vl is None else vl,
            mem=self.mem if mem is None else mem)

    def to_dict(self) -> dict:
        """Exact JSON form for the trace store.

        Defaulted fields are elided (keeps axpy-class traces a third the
        size); ``uid`` is deliberately dropped — it is an in-process
        construction counter, and a loaded trace gets fresh ones.  Scalars
        survive JSON exactly: ``json.dump`` emits the shortest round-trip
        repr of a double.
        """
        d: dict = {"op": self.op.value, "vl": self.vl}
        if self.dst is not None:
            d["dst"] = self.dst
        if self.srcs:
            d["srcs"] = list(self.srcs)
        if self.scalar is not None:
            d["scalar"] = self.scalar
        if self.mem is not None:
            d["mem"] = self.mem.to_dict()
        if self.tag is not Tag.NORMAL:
            d["tag"] = self.tag.value
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "Instruction":
        """Rebuild from :meth:`to_dict` output, trusted (no re-validation).

        Traces only reach here through the store's schema gate and
        content-addressed key, so the shape checks ``__post_init__`` runs
        on freshly built instructions are skipped — loading a stored trace
        must stay much cheaper than recompiling it.  Genuinely mangled
        payloads still fail loudly here (bad opcode/tag names raise) and
        the store turns that into a miss.
        """
        mem = data.get("mem")
        tag = data.get("tag")
        inst = object.__new__(cls)
        # Member-map lookups instead of enum __call__: this runs once per
        # instruction per trace replay; bad names still raise (KeyError).
        inst.__dict__.update(
            op=Op._value2member_map_[data["op"]],
            dst=data.get("dst"),
            srcs=tuple(data.get("srcs", ())),
            scalar=data.get("scalar"),
            vl=data["vl"],
            mem=None if mem is None else MemOperand.from_dict(mem),
            tag=Tag.NORMAL if tag is None else Tag._value2member_map_[tag],
            uid=next(_seq_counter),
        )
        inst._fill_derived()
        return inst

    def describe(self) -> str:
        parts = [self.op.value]
        if self.dst is not None:
            parts.append(f"d{self.dst}")
        parts.extend(f"s{s}" for s in self.srcs)
        if self.scalar is not None:
            parts.append(f"f={self.scalar:g}")
        if self.mem is not None:
            parts.append(self.mem.describe())
        parts.append(f"vl={self.vl}")
        if self.tag is not Tag.NORMAL:
            parts.append(self.tag.value.upper())
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def fingerprint_line(inst: Instruction) -> str:
    """One canonical line per instruction for content hashing.

    Shared by the result cache's program fingerprint and the trace store's
    kernel-body fingerprint.  Uids are excluded — two builds of the same
    kernel fingerprint identically.  Scalar operands go through
    ``float.hex()`` (exact), not the 6-significant-digit display form, so
    kernels differing only in a constant never collide.
    """
    scalar = None if inst.scalar is None else float(inst.scalar).hex()
    mem = inst.mem and (inst.mem.space.value, inst.mem.buffer,
                        inst.mem.base_elem, inst.mem.stride,
                        inst.mem.indexed)
    return (f"{inst.op.value}|d={inst.dst}|s={inst.srcs}|f={scalar}"
            f"|vl={inst.vl}|mem={mem}|tag={inst.tag.value}\n")


def scalar_block(cycles: float) -> Instruction:
    """Build a scalar-overhead marker costing ``cycles`` scalar-core cycles.

    The paper's scalar core runs at 2 GHz while the VPU runs at 1 GHz, so the
    simulator halves this cost when converting to VPU cycles.
    """
    if cycles < 0:
        raise ValueError("scalar block cost must be non-negative")
    return Instruction(op=Op.SCALAR_BLOCK, scalar=float(cycles))
