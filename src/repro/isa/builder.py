"""Kernel-builder DSL: hand-vectorised kernels in virtual registers.

The RiVEC applications are hand-vectorised with RISC-V intrinsics; this
builder plays the same role for the reproduction.  A kernel *body* describes
one strip-mine iteration in SSA-style **virtual registers** (unbounded ids).
The compiler package later allocates these onto the architectural registers
available to a configuration (32 for NATIVE/AVA, 32/LMUL for Register
Grouping), inserting MVL-wide spill code where pressure exceeds supply.

:class:`VirtualReg` supports arithmetic operators so kernels read like the
maths they implement::

    kb = KernelBuilder()
    x = kb.load("x")
    y = kb.load("y")
    kb.store(kb.fmadd_vf(a, x, y), "y")     # y = a*x + y
    body = kb.build()

Instructions are emitted with placeholder ``vl=1``; the workload emitter
(:mod:`repro.workloads.base`) stamps the real per-strip vector length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.operands import MemOperand, data_ref

Number = Union[int, float]


@dataclass(frozen=True)
class VirtualReg:
    """A virtual vector register produced by :class:`KernelBuilder`."""

    vid: int
    builder: "KernelBuilder" = field(repr=False, compare=False, hash=False)

    # -- operator sugar -----------------------------------------------------
    def __add__(self, other: "VirtualReg | Number") -> "VirtualReg":
        return self.builder.add(self, other)

    def __radd__(self, other: Number) -> "VirtualReg":
        return self.builder.add(self, other)

    def __sub__(self, other: "VirtualReg | Number") -> "VirtualReg":
        return self.builder.sub(self, other)

    def __rsub__(self, other: Number) -> "VirtualReg":
        return self.builder.rsub(other, self)

    def __mul__(self, other: "VirtualReg | Number") -> "VirtualReg":
        return self.builder.mul(self, other)

    def __rmul__(self, other: Number) -> "VirtualReg":
        return self.builder.mul(self, other)

    def __truediv__(self, other: "VirtualReg | Number") -> "VirtualReg":
        return self.builder.div(self, other)

    def __neg__(self) -> "VirtualReg":
        return self.builder.neg(self)


@dataclass
class KernelBody:
    """One strip-mine iteration of a kernel, in virtual registers.

    Attributes:
        insts: the body instructions in program order (``vl`` placeholder 1).
        n_vregs: number of distinct virtual registers defined.
        invariants: loop-invariant virtual registers (broadcast constants)
            defined by the preamble prefix of ``insts``; they stay live across
            every iteration and therefore contribute register pressure for
            the whole program, exactly like hoisted constants in the real
            hand-vectorised kernels.
        n_preamble: how many leading instructions of ``insts`` are preamble.
    """

    insts: List[Instruction]
    n_vregs: int
    invariants: List[int]
    n_preamble: int

    @property
    def loop_insts(self) -> List[Instruction]:
        return self.insts[self.n_preamble:]


class KernelBuilder:
    """Incrementally builds a :class:`KernelBody`."""

    def __init__(self) -> None:
        self._insts: List[Instruction] = []
        self._next_vid = 0
        self._invariants: List[int] = []
        self._preamble_done = False

    # -- register management ------------------------------------------------
    def _fresh(self) -> VirtualReg:
        reg = VirtualReg(self._next_vid, self)
        self._next_vid += 1
        return reg

    def _vid(self, value: "VirtualReg") -> int:
        if not isinstance(value, VirtualReg):
            raise TypeError(f"expected VirtualReg, got {type(value).__name__}")
        if value.builder is not self:
            raise ValueError("virtual register belongs to another builder")
        return value.vid

    def _emit(self, op: Op, srcs: tuple, scalar: Optional[float] = None,
              mem: Optional[MemOperand] = None,
              has_dst: bool = True) -> Optional[VirtualReg]:
        dst = self._fresh() if has_dst else None
        self._insts.append(Instruction(
            op=op,
            dst=None if dst is None else dst.vid,
            srcs=tuple(self._vid(s) for s in srcs),
            scalar=scalar,
            vl=1,
            mem=mem,
        ))
        return dst

    # -- preamble (loop-invariant constants) ---------------------------------
    def const(self, value: float) -> VirtualReg:
        """Broadcast a scalar constant into a loop-invariant register.

        Must be called before any loop-body instruction; hoisted constants
        occupy an architectural register for the entire kernel, which is how
        high-pressure kernels such as Blackscholes reach 20+ live registers.
        """
        if self._preamble_done:
            raise RuntimeError("const() must precede loop-body instructions")
        reg = self._emit(Op.VFMV_VF, (), scalar=float(value))
        assert reg is not None
        self._invariants.append(reg.vid)
        return reg

    def _body(self) -> None:
        self._preamble_done = True

    # -- memory ---------------------------------------------------------------
    def load(self, buffer: str, offset: int = 0, stride: int = 1) -> VirtualReg:
        """Unit-stride (or strided) vector load from an application buffer."""
        self._body()
        op = Op.VLE if stride == 1 else Op.VLSE
        reg = self._emit(op, (), mem=data_ref(buffer, offset, stride))
        assert reg is not None
        return reg

    def store(self, value: VirtualReg, buffer: str, offset: int = 0,
              stride: int = 1) -> None:
        self._body()
        op = Op.VSE if stride == 1 else Op.VSSE
        self._emit(op, (value,), mem=data_ref(buffer, offset, stride),
                   has_dst=False)

    def gather(self, buffer: str, index: VirtualReg) -> VirtualReg:
        """Indexed (gather) load; element addresses come from ``index``."""
        self._body()
        reg = self._emit(Op.VLXE, (index,),
                         mem=data_ref(buffer, 0, 1, indexed=True))
        assert reg is not None
        return reg

    def scatter(self, value: VirtualReg, buffer: str,
                index: VirtualReg) -> None:
        self._body()
        self._emit(Op.VSXE, (value, index),
                   mem=data_ref(buffer, 0, 1, indexed=True), has_dst=False)

    # -- arithmetic -----------------------------------------------------------
    def add(self, a: VirtualReg, b: "VirtualReg | Number") -> VirtualReg:
        self._body()
        if isinstance(b, VirtualReg):
            return self._emit(Op.VADD, (a, b))  # type: ignore[return-value]
        return self._emit(Op.VADD_VF, (a,), scalar=float(b))  # type: ignore

    def sub(self, a: VirtualReg, b: "VirtualReg | Number") -> VirtualReg:
        self._body()
        if isinstance(b, VirtualReg):
            return self._emit(Op.VSUB, (a, b))  # type: ignore[return-value]
        return self._emit(Op.VSUB_VF, (a,), scalar=float(b))  # type: ignore

    def rsub(self, a: Number, b: VirtualReg) -> VirtualReg:
        """scalar - vector."""
        self._body()
        return self._emit(Op.VRSUB_VF, (b,), scalar=float(a))  # type: ignore

    def mul(self, a: VirtualReg, b: "VirtualReg | Number") -> VirtualReg:
        self._body()
        if isinstance(b, VirtualReg):
            return self._emit(Op.VMUL, (a, b))  # type: ignore[return-value]
        return self._emit(Op.VMUL_VF, (a,), scalar=float(b))  # type: ignore

    def div(self, a: VirtualReg, b: "VirtualReg | Number") -> VirtualReg:
        self._body()
        if isinstance(b, VirtualReg):
            return self._emit(Op.VDIV, (a, b))  # type: ignore[return-value]
        return self._emit(Op.VDIV_VF, (a,), scalar=float(b))  # type: ignore

    def fmadd(self, a: VirtualReg, b: VirtualReg,
              c: VirtualReg) -> VirtualReg:
        """dst = a*b + c."""
        self._body()
        return self._emit(Op.VFMADD, (a, b, c))  # type: ignore[return-value]

    def fmadd_vf(self, scalar: Number, a: VirtualReg,
                 b: VirtualReg) -> VirtualReg:
        """dst = scalar*a + b (the classic axpy ``vfmacc.vf``)."""
        self._body()
        return self._emit(Op.VFMADD_VF, (a, b),
                          scalar=float(scalar))  # type: ignore[return-value]

    def sqrt(self, a: VirtualReg) -> VirtualReg:
        self._body()
        return self._emit(Op.VSQRT, (a,))  # type: ignore[return-value]

    def recip(self, a: VirtualReg) -> VirtualReg:
        self._body()
        return self._emit(Op.VRECIP, (a,))  # type: ignore[return-value]

    def rsqrt(self, a: VirtualReg) -> VirtualReg:
        self._body()
        return self._emit(Op.VRSQRT, (a,))  # type: ignore[return-value]

    def neg(self, a: VirtualReg) -> VirtualReg:
        self._body()
        return self._emit(Op.VNEG, (a,))  # type: ignore[return-value]

    def abs(self, a: VirtualReg) -> VirtualReg:
        self._body()
        return self._emit(Op.VABS, (a,))  # type: ignore[return-value]

    def vmax(self, a: VirtualReg, b: "VirtualReg | Number") -> VirtualReg:
        self._body()
        if isinstance(b, VirtualReg):
            return self._emit(Op.VMAX, (a, b))  # type: ignore[return-value]
        return self._emit(Op.VMAX_VF, (a,), scalar=float(b))  # type: ignore

    def vmin(self, a: VirtualReg, b: "VirtualReg | Number") -> VirtualReg:
        self._body()
        if isinstance(b, VirtualReg):
            return self._emit(Op.VMIN, (a, b))  # type: ignore[return-value]
        return self._emit(Op.VMIN_VF, (a,), scalar=float(b))  # type: ignore

    def band(self, a: VirtualReg, b: "VirtualReg | int") -> VirtualReg:
        self._body()
        if isinstance(b, VirtualReg):
            return self._emit(Op.VAND, (a, b))  # type: ignore[return-value]
        return self._emit(Op.VAND_VI, (a,), scalar=float(b))  # type: ignore

    def bxor(self, a: VirtualReg, b: VirtualReg) -> VirtualReg:
        self._body()
        return self._emit(Op.VXOR, (a, b))  # type: ignore[return-value]

    def srl(self, a: VirtualReg, shift: int) -> VirtualReg:
        self._body()
        return self._emit(Op.VSRL_VI, (a,), scalar=float(shift))  # type: ignore

    def sll(self, a: VirtualReg, shift: int) -> VirtualReg:
        self._body()
        return self._emit(Op.VSLL_VI, (a,), scalar=float(shift))  # type: ignore

    def lt(self, a: VirtualReg, b: VirtualReg) -> VirtualReg:
        self._body()
        return self._emit(Op.VMFLT, (a, b))  # type: ignore[return-value]

    def le(self, a: VirtualReg, b: VirtualReg) -> VirtualReg:
        self._body()
        return self._emit(Op.VMFLE, (a, b))  # type: ignore[return-value]

    def merge(self, mask: VirtualReg, if_true: VirtualReg,
              if_false: VirtualReg) -> VirtualReg:
        self._body()
        return self._emit(Op.VMERGE, (mask, if_true, if_false))  # type: ignore

    def redsum(self, a: VirtualReg) -> VirtualReg:
        self._body()
        return self._emit(Op.VREDSUM, (a,))  # type: ignore[return-value]

    def broadcast(self, value: Number) -> VirtualReg:
        """Broadcast inside the loop body (not hoisted, unlike :meth:`const`)."""
        self._body()
        return self._emit(Op.VFMV_VF, (), scalar=float(value))  # type: ignore

    def iota(self) -> VirtualReg:
        """dst[i] = i."""
        self._body()
        return self._emit(Op.VID, ())  # type: ignore[return-value]

    def copy(self, a: VirtualReg) -> VirtualReg:
        self._body()
        return self._emit(Op.VMV, (a,))  # type: ignore[return-value]

    # -- finalisation ---------------------------------------------------------
    def build(self) -> KernelBody:
        if not self._insts:
            raise ValueError("cannot build an empty kernel body")
        n_preamble = len(self._invariants)
        return KernelBody(
            insts=list(self._insts),
            n_vregs=self._next_vid,
            invariants=list(self._invariants),
            n_preamble=n_preamble,
        )
