"""Architectural (logical) vector registers.

The RISC-V vector extension defines 32 architectural vector registers
``v0``–``v31``; AVA keeps all 32 visible regardless of the MVL configuration
(§II of the paper), which is one of its key differences from Register
Grouping, where LMUL divides the architectural register count.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of architectural vector registers defined by the vector ISA.
NUM_LOGICAL_VREGS = 32

#: Default element width in bytes (the paper uses 64-bit elements throughout).
ELEMENT_BYTES = 8


def vreg_name(index: int) -> str:
    """Return the assembly name (``v7``) for a logical register index."""
    if not 0 <= index < NUM_LOGICAL_VREGS:
        raise ValueError(f"logical vector register index out of range: {index}")
    return f"v{index}"


@dataclass(frozen=True)
class VectorRegister:
    """A named architectural vector register.

    Thin value object used where an explicit type reads better than a bare
    ``int`` (e.g. the public API of :class:`repro.isa.builder.KernelBuilder`).
    """

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_LOGICAL_VREGS:
            raise ValueError(
                f"vector register index must be in [0, {NUM_LOGICAL_VREGS}), "
                f"got {self.index}"
            )

    @property
    def name(self) -> str:
        return vreg_name(self.index)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name
