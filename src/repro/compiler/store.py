"""Persistent, content-addressed store of compiled instruction traces.

The trace-based-model decoupling: a compiled :class:`~repro.isa.program.
Program` depends only on the workload's kernel side and a
:class:`~repro.compiler.signature.CompileSignature`, never on the
machine-side scenario axes a sweep actually varies — so the trace is an
*input artifact* of simulation, compiled once per signature per repo and
replayed by every run, process and pool worker that needs it.

Layout mirrors the engine's ``ResultCache`` (same crash-safe tempfile-
rename and umask discipline, via :class:`~repro.cachefs.AtomicJsonStore`):
one JSON file per key under ``.repro-cache/traces/``, keyed by a hash of

* :data:`TRACE_SCHEMA` and the repro version,
* a fingerprint of the compiler-side sources (``compiler``/``isa``/
  ``scalar`` trees) — any change to the lowering pipeline invalidates
  every stored trace, the same conservatism ``ResultCache`` applies,
* the workload's :meth:`~repro.workloads.base.Workload.
  compile_fingerprint` (kernel body, strip shape, buffers),
* the compile signature.

Corrupt, truncated or stale-schema entries read as misses: the caller
recompiles and overwrites, never crashes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.cachefs import AtomicJsonStore
from repro.compiler.allocator import AllocationResult
from repro.compiler.signature import CompileSignature
from repro.isa.program import Program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.workloads.base import CompiledWorkload, Workload

#: Trace payload layout version, bumped on any serialization change —
#: versioned alongside the engine's ``CACHE_SCHEMA`` but independent of it:
#: results and traces invalidate on different schedules.
TRACE_SCHEMA = 1

#: Subdirectory of the result-cache root holding the trace store.
TRACE_SUBDIR = "traces"

DEFAULT_TRACE_DIR = Path(".repro-cache") / TRACE_SUBDIR

_COMPILE_CODE_FINGERPRINT: Optional[str] = None


def compile_code_fingerprint() -> str:
    """Hash of the compile-pipeline sources, computed once per process.

    Narrower than the engine's whole-package ``code_fingerprint`` on
    purpose: a trace is produced by the ``compiler``/``isa`` trees plus the
    ``scalar`` loop-cost model, so only edits there can change it.  Editing
    the simulator must invalidate cached *results* but may keep replaying
    stored traces — that asymmetry is what makes the store survive
    sim-side development.
    """
    global _COMPILE_CODE_FINGERPRINT
    if _COMPILE_CODE_FINGERPRINT is None:
        import repro
        root = Path(repro.__file__).parent
        h = hashlib.sha256()
        for tree in ("compiler", "isa", "scalar"):
            for path in sorted((root / tree).rglob("*.py")):
                h.update(str(path.relative_to(root)).encode())
                h.update(b"\0")
                h.update(path.read_bytes())
        _COMPILE_CODE_FINGERPRINT = h.hexdigest()
    return _COMPILE_CODE_FINGERPRINT


def trace_key(workload: "Workload", signature: CompileSignature) -> str:
    """Content address of one compiled trace."""
    from repro import __version__

    payload = {
        "schema": TRACE_SCHEMA,
        "repro": __version__,
        "compile_code": compile_code_fingerprint(),
        "workload": workload.compile_fingerprint(),
        "signature": signature.to_dict(),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


class TraceStore(AtomicJsonStore):
    """Compiled traces on disk, one JSON file per content-addressed key."""

    #: Fault-injection site name (:mod:`repro.faults` cache specs match
    #: on it): trace writes are ``site="traces"``, cell results
    #: ``site="results"``.
    FAULT_SITE = "traces"

    def __init__(self, root: Union[str, Path] = DEFAULT_TRACE_DIR,
                 max_bytes: Optional[int] = None) -> None:
        super().__init__(root, max_bytes=max_bytes)

    def _validate(self, payload: dict) -> bool:
        return (payload.get("schema") == TRACE_SCHEMA
                and isinstance(payload.get("program"), dict)
                and isinstance(payload.get("allocation"), dict))

    def key(self, workload: "Workload",
            signature: CompileSignature) -> str:
        return trace_key(workload, signature)

    def put_trace(self, key: str, compiled: "CompiledWorkload") -> None:
        self.put(key, {
            "schema": TRACE_SCHEMA,
            "signature": compiled.signature.to_dict(),
            "program": compiled.program.to_dict(),
            "allocation": compiled.allocation.to_dict(),
        })

    def load(self, key: str) -> Optional["CompiledWorkload"]:
        """The stored compilation, or None — any defect reads as a miss.

        The schema gate lives in :meth:`_validate`; payloads that pass it
        but are deeply mangled (bad opcode names, missing fields) raise
        during reconstruction and are treated the same way, so a damaged
        store can only cost a recompile, never an error.
        """
        payload = self.get(key)
        if payload is None:
            return None
        from repro.workloads.base import CompiledWorkload
        try:
            program = Program.from_dict(payload["program"])
            allocation = AllocationResult.from_dict(payload["allocation"],
                                                    insts=program.insts)
            signature = CompileSignature.from_dict(payload["signature"])
        except (KeyError, TypeError, ValueError):
            return None
        return CompiledWorkload(program=program, allocation=allocation,
                                signature=signature)
