"""The compile signature: the machine-side inputs compilation actually reads.

:meth:`repro.workloads.base.Workload.compile` lowers a kernel through the
strip-mine unroller and the register allocator reading exactly two fields
of the target :class:`~repro.core.config.MachineConfig`:

* ``mvl`` — strip width, spill-code vector length, preamble VL,
* ``n_logical`` — the architectural register supply the allocator packs
  onto (32, or 32/LMUL under Register Grouping).

Everything else on a machine config — physical VRF size, VVR count, lane
count, timing, the NATIVE/AVA mode flag — is simulation-side: it shapes how
a program *executes*, never the program itself.  NATIVE X4 and AVA X4
therefore compile the identical program, and a timing × memory × policy
sensitivity grid over them needs exactly one compile per (mvl, n_logical).

:class:`CompileSignature` makes that contract explicit.  It is the memo key
of the executor's in-process compile cache and one input of the persistent
:class:`~repro.compiler.store.TraceStore` content address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.config import MachineConfig


@dataclass(frozen=True)
class CompileSignature:
    """The (mvl, n_logical) pair that fully determines a compiled program."""

    mvl: int
    n_logical: int

    def __post_init__(self) -> None:
        if self.mvl <= 0:
            raise ValueError("mvl must be positive")
        if self.n_logical < 2:
            raise ValueError("the allocator needs at least 2 registers")

    @classmethod
    def from_config(cls, config: "MachineConfig") -> "CompileSignature":
        return cls(mvl=config.mvl, n_logical=config.n_logical)

    @property
    def label(self) -> str:
        """Stable human-readable form, used in program names: ``mvl64r32``."""
        return f"mvl{self.mvl}r{self.n_logical}"

    def to_dict(self) -> Dict[str, int]:
        return {"mvl": self.mvl, "n_logical": self.n_logical}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CompileSignature":
        return cls(mvl=int(data["mvl"]), n_logical=int(data["n_logical"]))
