"""The vectorising-compiler model.

The paper compiles each RiVEC application four times (LMUL = 1, 2, 4, 8);
higher LMUL halves/quarters/eighths the architectural register count, and the
compiler inserts MVL-wide spill code when live pressure exceeds the supply.
This package reproduces that tool-chain stage:

* :mod:`repro.compiler.liveness` — next-use analysis and live-pressure
  measurement over straight-line (unrolled) vector traces,
* :mod:`repro.compiler.allocator` — a furthest-next-use (Belady / MIN)
  register allocator that inserts ``Spill-Load`` / ``Spill-Store``
  instructions tagged for Figure 3's memory-instruction breakdown,
* :mod:`repro.compiler.trace` — strip-mine unrolling of kernel bodies into
  SSA traces with per-iteration vector lengths and memory rebasing,
* :mod:`repro.compiler.signature` — the (mvl, n_logical) compile signature
  that fully determines a compiled program,
* :mod:`repro.compiler.store` — the persistent content-addressed trace
  store (compile once per signature per repo, replay everywhere).

AVA and NATIVE configurations always execute the LMUL=1 binary (32
architectural registers); Register Grouping configurations execute binaries
allocated with 32/LMUL registers.
"""

from repro.compiler.liveness import NextUse, live_pressure
from repro.compiler.allocator import AllocationResult, allocate
from repro.compiler.signature import CompileSignature
from repro.compiler.store import TRACE_SCHEMA, TraceStore
from repro.compiler.trace import StripSchedule, unroll_kernel

__all__ = [
    "NextUse",
    "live_pressure",
    "AllocationResult",
    "allocate",
    "CompileSignature",
    "TRACE_SCHEMA",
    "TraceStore",
    "StripSchedule",
    "unroll_kernel",
]
