"""Liveness and next-use analysis over straight-line vector traces.

Traces arriving here are SSA: every virtual register has exactly one
definition (the strip-mine unroller renames loop-body temporaries per
iteration).  That keeps both the analysis and the allocator simple — a
register's live range is [definition, last use] and never has holes we need
to care about.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.isa.instructions import Instruction

#: Sentinel "never used again" position (beyond any trace index).
INFINITY = 1 << 60


@dataclass
class NextUse:
    """Per-register next-use positions, consumable in trace order.

    ``peek(reg, pos)`` returns the first use of ``reg`` at or after trace
    index ``pos`` (or :data:`INFINITY`).  Positions for each register are
    precomputed and consumed monotonically, so a full allocation pass is
    O(trace length × operands).
    """

    _positions: Dict[int, List[int]]
    _cursor: Dict[int, int]

    @classmethod
    def analyse(cls, trace: Sequence[Instruction]) -> "NextUse":
        positions: Dict[int, List[int]] = defaultdict(list)
        for idx, inst in enumerate(trace):
            if inst.is_scalar:
                continue
            for src in inst.srcs:
                positions[src].append(idx)
        return cls(dict(positions), defaultdict(int))

    def peek(self, reg: int, pos: int) -> int:
        """First use of ``reg`` at trace index >= ``pos``."""
        uses = self._positions.get(reg)
        if not uses:
            return INFINITY
        cur = self._cursor[reg]
        while cur < len(uses) and uses[cur] < pos:
            cur += 1
        self._cursor[reg] = cur
        return uses[cur] if cur < len(uses) else INFINITY

    def use_count(self, reg: int) -> int:
        uses = self._positions.get(reg)
        return len(uses) if uses else 0


def live_pressure(trace: Sequence[Instruction]) -> List[int]:
    """Number of simultaneously-live registers before each instruction.

    A register is live from its definition until its last use.  The returned
    list has one entry per trace position; ``max(live_pressure(t))`` is the
    MAXLIVE bound that decides whether a configuration with K architectural
    registers can run the trace spill-free.
    """
    last_use: Dict[int, int] = {}
    defined_at: Dict[int, int] = {}
    for idx, inst in enumerate(trace):
        if inst.is_scalar:
            continue
        for src in inst.srcs:
            last_use[src] = idx
        if inst.dst is not None:
            defined_at[inst.dst] = idx
            # A value that is never read still occupies its register for the
            # defining instruction itself.
            last_use.setdefault(inst.dst, idx)

    events: Dict[int, int] = defaultdict(int)
    for reg, def_idx in defined_at.items():
        events[def_idx] += 1
        events[last_use[reg] + 1] -= 1
    # Sources defined before the trace (none, in SSA traces from the
    # unroller) would be handled here; assert instead so bugs surface.
    for reg in last_use:
        if reg not in defined_at:
            raise ValueError(
                f"register {reg} is used but never defined in this trace")

    pressure: List[int] = []
    live = 0
    for idx in range(len(trace)):
        live += events.get(idx, 0)
        pressure.append(live)
    return pressure


def max_pressure(trace: Sequence[Instruction]) -> int:
    """Convenience wrapper: the MAXLIVE of a trace (0 for empty traces)."""
    if not trace:
        return 0
    return max(live_pressure(trace))
