"""Strip-mine unrolling: kernel bodies -> SSA instruction traces.

Vector-length-agnostic kernels process ``n_elements`` in strips of at most
the effective MVL (Application Vector Length for fixed-VL kernels such as
LavaMD2).  The unroller:

* emits the preamble (hoisted broadcast constants) once, MVL-wide,
* replays the loop body once per strip with fresh SSA ids for body
  temporaries (invariants keep their ids, staying live program-wide),
* rebases data-memory operands to each strip's starting element,
* stamps each instruction with the strip's vector length,
* inserts a scalar-overhead block per iteration modelling ``vsetvl``,
  address bumps and the loop branch on the 2 GHz dual-issue scalar core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.isa.builder import KernelBody
from repro.isa.instructions import Instruction, scalar_block
from repro.isa.operands import AddressSpace


@dataclass(frozen=True)
class Strip:
    """One strip-mine iteration: ``vl`` elements starting at ``start``."""

    start: int
    vl: int


@dataclass
class StripSchedule:
    """The sequence of strips a kernel executes.

    ``scalar_cycles`` is the scalar-core cycle cost charged once per strip
    (loop control); the paper's scalar core is dual-issue at 2 GHz, twice the
    VPU clock, so the simulator halves this figure in VPU cycles.
    """

    strips: List[Strip]
    scalar_cycles: float = 6.0

    @classmethod
    def for_elements(cls, n_elements: int, vl_max: int,
                     scalar_cycles: float = 6.0) -> "StripSchedule":
        """Cover ``n_elements`` in strips of at most ``vl_max`` elements."""
        if n_elements <= 0:
            raise ValueError("n_elements must be positive")
        if vl_max <= 0:
            raise ValueError("vl_max must be positive")
        strips = []
        start = 0
        while start < n_elements:
            vl = min(vl_max, n_elements - start)
            strips.append(Strip(start, vl))
            start += vl
        return cls(strips, scalar_cycles)

    @property
    def n_iterations(self) -> int:
        return len(self.strips)

    @property
    def total_elements(self) -> int:
        return sum(s.vl for s in self.strips)


def unroll_kernel(body: KernelBody, schedule: StripSchedule,
                  mvl: int) -> List[Instruction]:
    """Unroll ``body`` over ``schedule`` into a straight-line SSA trace."""
    preamble = body.insts[:body.n_preamble]
    loop = body.insts[body.n_preamble:]
    n_body_regs = body.n_vregs - body.n_preamble
    out: List[Instruction] = []

    identity = {vid: vid for vid in range(body.n_vregs)}
    for inst in preamble:
        out.append(inst.remap(identity, vl=mvl))

    n_pre = body.n_preamble
    # Which operands shift is a property of the instruction, not the strip:
    # loop-body temporaries (id >= n_preamble) move by the per-iteration
    # offset, preamble registers (loop invariants) keep their ids.  Decide
    # once per loop instruction here instead of rebuilding a remap dict for
    # every strip — only the additive offset varies across iterations.
    templates = [(inst,
                  inst.dst is not None and inst.dst >= n_pre,
                  tuple(s >= n_pre for s in inst.srcs),
                  inst.mem is not None and inst.mem.space is AddressSpace.DATA)
                 for inst in loop]
    for it, strip in enumerate(schedule.strips):
        out.append(scalar_block(schedule.scalar_cycles))
        offset = it * n_body_regs
        start = strip.start
        vl = strip.vl
        for inst, dst_shifts, src_shifts, data_mem in templates:
            mem = inst.mem
            if data_mem:
                mem = mem.with_base(start * mem.stride + mem.base_elem)
            dst = inst.dst + offset if dst_shifts else inst.dst
            srcs = tuple(s + offset if shifts else s
                         for s, shifts in zip(inst.srcs, src_shifts))
            out.append(inst.with_operands(dst, srcs, vl, mem))
    return out


def body_pressure(body: KernelBody, mvl: int = 16) -> int:
    """MAXLIVE of a kernel body over a two-iteration steady state.

    Two iterations expose cross-iteration pressure from loop invariants; the
    result is what decides which LMUL / AVA configurations spill or swap.
    """
    from repro.compiler.liveness import max_pressure

    schedule = StripSchedule.for_elements(2 * mvl, mvl)
    return max_pressure(unroll_kernel(body, schedule, mvl))
