"""Furthest-next-use (Belady/MIN) register allocation with spill insertion.

Models the compiler stage the paper leans on for its Register Grouping
comparison: given K architectural registers, values whose live ranges exceed
supply are spilled to memory and reloaded before use.  Two properties of the
paper's toolchain are preserved faithfully:

* **Spill code is MVL-wide.**  "At compilation time, the compiler is not
  aware of the Application Vector Length... the spill code includes
  load/store of vector registers with the MVL" (§II.A).  Spill loads/stores
  are emitted with ``vl = MVL`` regardless of the strip's actual VL — this is
  exactly what makes RG-LMUL8 collapse on LavaMD2 (Fig. 3-c).
* **Spill instructions are tagged** (:class:`repro.isa.instructions.Tag`)
  so Figure 3's memory-instruction breakdown can separate Spill-Load /
  Spill-Store from application VLoad / VStore.

The eviction policy is furthest-next-use, which is optimal for straight-line
code and deterministic, making test expectations stable.  SSA input (one
definition per virtual register) means a spilled value never needs re-storing
once its slot holds it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.compiler.liveness import INFINITY, NextUse, max_pressure
from repro.isa.instructions import Instruction, Tag
from repro.isa.opcodes import Op
from repro.isa.operands import spill_ref


@dataclass
class AllocationResult:
    """Output of :func:`allocate`.

    Attributes:
        insts: the rewritten trace (architectural registers + spill code).
        n_regs: register supply the trace was allocated for.
        spill_loads: number of Spill-Load instructions inserted.
        spill_stores: number of Spill-Store instructions inserted.
        spill_slots: distinct spill slots reserved (each MVL elements).
        max_pressure: MAXLIVE of the input trace (diagnostic).
        registers_used: how many architectural registers were actually
            touched — the paper reports this per application (e.g. 23 for
            Blackscholes).
    """

    insts: List[Instruction]
    n_regs: int
    spill_loads: int = 0
    spill_stores: int = 0
    spill_slots: int = 0
    max_pressure: int = 0
    registers_used: int = 0

    @property
    def spill_free(self) -> bool:
        return self.spill_loads == 0 and self.spill_stores == 0

    def to_dict(self) -> dict:
        """Scalar fields only: ``insts`` is the program's trace, stored
        once by :class:`repro.compiler.store.TraceStore`, not duplicated."""
        return {"n_regs": self.n_regs, "spill_loads": self.spill_loads,
                "spill_stores": self.spill_stores,
                "spill_slots": self.spill_slots,
                "max_pressure": self.max_pressure,
                "registers_used": self.registers_used}

    @classmethod
    def from_dict(cls, data: dict,
                  insts: List[Instruction]) -> "AllocationResult":
        return cls(insts=insts, n_regs=data["n_regs"],
                   spill_loads=data["spill_loads"],
                   spill_stores=data["spill_stores"],
                   spill_slots=data["spill_slots"],
                   max_pressure=data["max_pressure"],
                   registers_used=data["registers_used"])


@dataclass
class _AllocState:
    """Mutable allocator state."""

    free: List[int]
    reg_of: Dict[int, int] = field(default_factory=dict)  # vreg -> arch reg
    slot_of: Dict[int, int] = field(default_factory=dict)  # vreg -> spill slot
    stored: Set[int] = field(default_factory=set)  # vregs with a valid slot copy
    next_slot: int = 0


def allocate(trace: Sequence[Instruction], n_regs: int, mvl: int,
             spill_vl: Optional[int] = None) -> AllocationResult:
    """Allocate an SSA virtual-register trace onto ``n_regs`` registers.

    Args:
        trace: straight-line SSA trace from the strip-mine unroller.
        n_regs: architectural register supply (32 for LMUL=1, 32/LMUL
            under Register Grouping).
        mvl: the configuration's maximum vector length; spill code is
            emitted with this VL unless ``spill_vl`` overrides it.
        spill_vl: optional override for spill-instruction VL (test hook).

    Returns:
        An :class:`AllocationResult` whose ``insts`` never reference a
        register id >= ``n_regs``.
    """
    if n_regs < 2:
        raise ValueError("allocator needs at least 2 architectural registers")
    svl = mvl if spill_vl is None else spill_vl

    next_use = NextUse.analyse(trace)
    state = _AllocState(free=list(range(n_regs - 1, -1, -1)))
    out: List[Instruction] = []
    spill_loads = spill_stores = 0
    used_regs: Set[int] = set()

    def slot_for(vreg: int) -> int:
        if vreg not in state.slot_of:
            state.slot_of[vreg] = state.next_slot
            state.next_slot += 1
        return state.slot_of[vreg]

    def evict_one(pos: int, pinned: Set[int]) -> int:
        """Free one register by spilling the furthest-next-use value."""
        nonlocal spill_stores
        best_vreg = -1
        best_dist = -1
        for vreg in state.reg_of:
            if vreg in pinned:
                continue
            dist = next_use.peek(vreg, pos)
            if dist > best_dist:
                best_dist = dist
                best_vreg = vreg
        if best_vreg < 0:
            raise RuntimeError(
                f"cannot evict: all {n_regs} registers pinned by one "
                f"instruction (register supply too small for the ISA)")
        reg = state.reg_of.pop(best_vreg)
        if best_dist != INFINITY and best_vreg not in state.stored:
            # Value is still needed and has no slot copy: store it.
            out.append(Instruction(
                op=Op.VSE, srcs=(reg,), vl=svl,
                mem=spill_ref(slot_for(best_vreg)), tag=Tag.SPILL))
            state.stored.add(best_vreg)
            spill_stores += 1
        return reg

    def take_reg(pos: int, pinned: Set[int]) -> int:
        if state.free:
            return state.free.pop()
        return evict_one(pos, pinned)

    def release_if_dead(vreg: int, pos: int) -> None:
        """Free a register whose value will never be read again."""
        if vreg in state.reg_of and next_use.peek(vreg, pos) == INFINITY:
            state.free.append(state.reg_of.pop(vreg))

    for pos, inst in enumerate(trace):
        if inst.is_scalar:
            out.append(inst)
            continue

        pinned: Set[int] = set(inst.srcs)
        # Reload any source currently living only in its spill slot.
        for src in inst.srcs:
            if src in state.reg_of:
                continue
            if src not in state.stored:
                raise ValueError(
                    f"use of register {src} before definition at trace "
                    f"position {pos}")
            reg = take_reg(pos, pinned)
            out.append(Instruction(
                op=Op.VLE, dst=reg, vl=svl,
                mem=spill_ref(state.slot_of[src]), tag=Tag.SPILL))
            spill_loads += 1
            state.reg_of[src] = reg

        mapping = {src: state.reg_of[src] for src in inst.srcs}
        if inst.dst is not None:
            if inst.dst in state.reg_of or inst.dst in state.stored:
                raise ValueError(
                    f"trace is not SSA: register {inst.dst} redefined at "
                    f"position {pos}")
            dst_reg = take_reg(pos + 1, pinned)
            mapping[inst.dst] = dst_reg
            state.reg_of[inst.dst] = dst_reg

        out.append(inst.remap(mapping))
        used_regs.update(mapping.values())

        # Sources (and write-once dead destinations) past their last use
        # release their registers immediately, like a compiler's live-range
        # end — pressure tracks MAXLIVE exactly.
        # sorted, not bare set iteration: dedupe then release in register
        # order, so the free-list order downstream is a property of the
        # program, not of the interpreter's set layout.
        for src in sorted(set(inst.srcs)):
            release_if_dead(src, pos + 1)
        if inst.dst is not None:
            release_if_dead(inst.dst, pos + 1)

    return AllocationResult(
        insts=out,
        n_regs=n_regs,
        spill_loads=spill_loads,
        spill_stores=spill_stores,
        spill_slots=state.next_slot,
        max_pressure=max_pressure(trace),
        registers_used=len(used_regs),
    )
