"""repro — a behavioural reproduction of AVA, the Adaptable Vector
Architecture from "Adaptable Register File Organization for Vector
Processors" (HPCA 2022).

Public API quick reference::

    from repro import (
        KernelBuilder, StripSchedule, unroll_kernel, allocate,   # build code
        ava_config, native_config, rg_config,                     # machines
        Simulator,                                                # run
    )

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core.config import (
    MachineConfig,
    MachineMode,
    ava_config,
    baseline_config,
    native_config,
    pvrf_registers,
    rg_config,
    table1_rows,
)
from repro.compiler import AllocationResult, StripSchedule, allocate, unroll_kernel
from repro.isa import Instruction, KernelBuilder, Program
from repro.sim import SimResult, Simulator, SimStats
from repro.vpu import TimingParams

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "MachineMode",
    "ava_config",
    "baseline_config",
    "native_config",
    "rg_config",
    "pvrf_registers",
    "table1_rows",
    "AllocationResult",
    "StripSchedule",
    "allocate",
    "unroll_kernel",
    "Instruction",
    "KernelBuilder",
    "Program",
    "SimResult",
    "Simulator",
    "SimStats",
    "TimingParams",
    "__version__",
]
