"""repro — a behavioural reproduction of AVA, the Adaptable Vector
Architecture from "Adaptable Register File Organization for Vector
Processors" (HPCA 2022).

Public API quick reference::

    from repro import (
        KernelBuilder, StripSchedule, unroll_kernel, allocate,   # build code
        ava_config, native_config, rg_config,                     # machines
        Simulator,                                                # run
    )

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core.config import (
    MachineConfig,
    MachineMode,
    ava_config,
    baseline_config,
    get_machine,
    machine_names,
    native_config,
    pvrf_registers,
    register_machine,
    rg_config,
    table1_rows,
)
from repro.compiler import AllocationResult, StripSchedule, allocate, unroll_kernel
from repro.isa import Instruction, KernelBuilder, Program
from repro.sim import CellPolicy, Scenario, SimResult, Simulator, SimStats, build_scenario
from repro.vpu import TimingParams
from repro._version import __version__

__all__ = [
    "MachineConfig",
    "MachineMode",
    "ava_config",
    "baseline_config",
    "native_config",
    "rg_config",
    "get_machine",
    "machine_names",
    "register_machine",
    "pvrf_registers",
    "table1_rows",
    "CellPolicy",
    "Scenario",
    "build_scenario",
    "AllocationResult",
    "StripSchedule",
    "allocate",
    "unroll_kernel",
    "Instruction",
    "KernelBuilder",
    "Program",
    "SimResult",
    "Simulator",
    "SimStats",
    "TimingParams",
    "__version__",
]
