"""Vector Memory Unit: 512-bit interface onto the L2 bus (Table II).

For each vector memory instruction the VMU produces a
:class:`MemoryAccessPlan`: how many interface beats the access occupies and
how many extra stall cycles its L2 misses contribute.  Planning performs the
actual cache-state accesses, so calling it is a timing side effect.

Beat accounting:

* unit-stride — the access streams whole 512-bit lines: one beat per line
  the element span covers (8 × 64-bit elements per beat when aligned);
* strided — one beat per element (each beat carries one element; every
  element address is looked up in the L2);
* indexed — like strided, with addresses approximated as one distinct line
  per element (the deterministic worst case; real gathers in the evaluated
  kernels are cache-resident so the approximation only affects beat count,
  which is already per-element).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.instructions import Instruction
from repro.isa.registers import ELEMENT_BYTES
from repro.memory.hierarchy import MemorySystem
from repro.sim.layout import MemoryLayout

_LINE = 64


@dataclass(frozen=True)
class MemoryAccessPlan:
    """Timing consequences of one vector memory instruction.

    Miss handling separates *bandwidth* from *latency*, modelling the
    memory-level parallelism of a streaming VMU: every missing line costs its
    DRAM transfer slots on the interface (``fill_beats``, serialised — the
    bandwidth bound), while the DRAM access latency is paid once per
    instruction and overlaps with other work (``miss_latency``, added to the
    instruction's completion, not to unit occupancy).
    """

    beats: int
    misses: int
    fill_beats: int
    miss_latency: int
    lines_touched: int

    @property
    def occupancy(self) -> int:
        """Memory-unit busy cycles contributed by data movement."""
        return self.beats + self.fill_beats


class VectorMemoryUnit:
    """Plans vector memory accesses against the shared L2."""

    def __init__(self, memsys: MemorySystem, layout: MemoryLayout) -> None:
        self.memsys = memsys
        self.layout = layout
        self.beats_total = 0
        self.lines_total = 0

    @property
    def first_element_latency(self) -> int:
        """Pipeline latency from issue to the first element (L2 hit path)."""
        return self.memsys.vector_first_latency

    def plan(self, inst: Instruction) -> MemoryAccessPlan:
        """Compute the access plan for ``inst`` (mutates cache state).

        Beat and unique-line counts come from line-index span arithmetic
        (indexed and unit-stride accesses are arithmetic progressions of
        line indices; arbitrary strides fall back to a vectorised
        ``np.unique`` over the line indices) — no per-element Python lists.
        The per-address L2 probes themselves are inherently sequential (each
        one advances LRU state and the hit/miss counters the figures
        report), so they keep the exact per-element access order of the
        original implementation.
        """
        mem = inst.mem
        assert mem is not None, "memory instruction without operand"
        write = inst.is_store
        base = self.layout.base_addr(mem)
        vl = inst.vl

        if mem.indexed:
            # Deterministic worst case: one distinct line per element, so
            # the line-address sequence is an arithmetic progression and
            # every element touches its own line.
            addrs = range(base, base + vl * _LINE, _LINE)
            beats = vl
            lines = vl
        elif mem.stride == 1:
            first = base // _LINE
            last = (base + vl * ELEMENT_BYTES - 1) // _LINE
            beats = last - first + 1
            addrs = range(first * _LINE, (last + 1) * _LINE, _LINE)
            lines = beats
        else:
            step = mem.stride * ELEMENT_BYTES
            beats = vl
            if step:
                addrs = range(base, base + vl * step, step)
                lines = int(np.unique(
                    (base + np.arange(vl, dtype=np.int64) * step)
                    // _LINE).size)
            else:  # degenerate stride: every element hits the same address
                addrs = (base,) * vl
                lines = 1

        access = self.memsys.vector_line_access
        misses = 0
        for addr in addrs:
            if access(addr, write):
                misses += 1

        self.beats_total += beats
        self.lines_total += lines
        dram = self.memsys.dram.config
        return MemoryAccessPlan(
            beats=beats,
            misses=misses,
            fill_beats=misses * dram.line_transfer,
            miss_latency=dram.latency if misses else 0,
            lines_touched=lines)
