"""VPU execution model: 8 lanes, decoupled queues, chaining, the VMU.

The paper's base platform is a decoupled vector architecture (Espasa &
Valero) with eight lanes, one pipelined arithmetic unit per lane, a Vector
Memory Unit on the L2 bus with a 512-bit interface, and 32-entry arithmetic
and memory queues.  :class:`repro.vpu.pipeline.VectorPipeline` composes the
:mod:`repro.core` structures into that machine and advances it cycle by
cycle.
"""

from repro.vpu.params import TimingParams
from repro.vpu.vmu import VectorMemoryUnit, MemoryAccessPlan
from repro.vpu.pipeline import VectorPipeline, DeadlockError

__all__ = [
    "TimingParams",
    "VectorMemoryUnit",
    "MemoryAccessPlan",
    "VectorPipeline",
    "DeadlockError",
]
