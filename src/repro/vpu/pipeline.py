"""The AVA vector pipeline, driven by an event-driven scheduler.

The pipeline stages are the paper's Figure 1 (commit, complete, the two
decoupled issue queues, pre-issue, rename, scalar dispatch — evaluated in
reverse-pipeline order so resources freed early in a cycle are visible to
later stages).  What changed relative to the original implementation (kept
verbatim in :mod:`repro.vpu.reference`) is *when* stages are evaluated:

* every stage contributes wake-up timestamps to one unified event set —
  the completion heap, unit ``busy_until`` marks, queue-head readiness
  (producer/guard ``issued_at`` + the chaining delay), in-queue swap-op
  readiness, and the scalar core's next hand-off time;
* a cycle is *evaluated* only while at least one stage can act; stage
  entry is gated on O(1) preconditions (ROB head completed, completion
  due, unit free and queue non-empty, …) that exactly mirror each stage's
  no-progress early-return, so a gated-off stage is observationally
  indistinguishable from a polled one;
* when no stage can act, the clock jumps straight to the earliest future
  event instead of re-probing idle stages cycle by cycle — the original
  all-stalled-only ``_fast_forward`` generalised into the normal execution
  mode;
* queue-head operand resolution is memoized against the second-level
  mapping's version counter: while no VVR changes residency, a stalled
  head's re-probe collapses to pruning completed producers (exactly what
  the full re-resolution would compute) instead of re-walking the mapping
  and reader bookkeeping every cycle.

The scheduler is required to be **observationally invisible**: identical
:class:`~repro.sim.stats.SimStats` (including per-evaluated-cycle stall
counters and the ``fast_forward_cycles`` accounting, now rebased onto
skipped-event cycles), identical functional-mode buffers, and identical
result-cache payloads versus the reference stepper.  ``events_processed``
counts evaluated cycles and ``cycles_skipped`` counts jumped ones (a
no-progress probe is evaluated and then jumped over, so
``events <= cycles <= events + skipped``).  The golden-equivalence suite
(``tests/vpu/test_pipeline_equivalence.py``) enforces all of this across
every registered workload and a grid of machine configurations.

When no future event exists while instructions remain, the pipeline raises
:class:`DeadlockError` with a diagnostic dump (the dependency-ordering
invariant in :mod:`repro.core.uop` makes this unreachable for well-formed
programs, and the property tests lean on that).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.rac import RAC_MAX, RegisterAccessCounters
from repro.core.rat import RenameTable
from repro.core.rob import ReorderBuffer
from repro.core.swap import SwapLogic, VictimPolicy
from repro.core.uop import MicroOp, UopState
from repro.core.vrf import TwoLevelVRF
from repro.core.vrf_mapping import VRFMapping
from repro.isa.instructions import Instruction, Tag
from repro.isa.opcodes import Op, evaluate_arith
from repro.isa.program import Program
from repro.memory.hierarchy import MemorySystem
from repro.sim.layout import MemoryLayout
from repro.sim.stats import SimStats
from repro.vpu.params import TimingParams
from repro.vpu.vmu import VectorMemoryUnit


class DeadlockError(RuntimeError):
    """The pipeline can make no further progress (diagnostic dump attached)."""


# Pre-issue action outcomes.
_OK = "ok"
_CREATED = "created-swap"
_STALL_VICTIM = "stall-victim"
_STALL_QUEUE = "stall-queue"

# Fused issue-probe outcomes (_resolve_head): operand resolution and
# chaining readiness answered in one pass over the head's dependencies.
_R_READY = 0
_R_WAIT = 1
_R_CREATED = 2
_R_VICTIM = 3

#: Sentinel wake-up time for "nothing to do until another stage acts".
_NEVER = float("inf")


class VectorPipeline:
    """One VPU instance executing one program on one configuration."""

    def __init__(self, config, program: Program,
                 params: Optional[TimingParams] = None,
                 memsys: Optional[MemorySystem] = None,
                 functional: bool = False,
                 victim_policy: VictimPolicy = VictimPolicy.RAC_MIN,
                 aggressive_reclamation: bool = True,
                 sanitize: bool = False) -> None:
        """``config`` is a :class:`MachineConfig` or a full
        :class:`~repro.sim.scenario.Scenario` (which pins every other
        machine-side argument)."""
        # Imported lazily: repro.sim.scenario pulls repro.vpu.params in
        # through the vpu package, so a module-level import here would be
        # circular.
        from repro.sim.scenario import Scenario
        if isinstance(config, Scenario):
            # A scenario pins every machine-side axis; mixing it with the
            # loose per-axis keywords would make two sources of truth.
            if (params is not None or memsys is not None
                    or victim_policy is not VictimPolicy.RAC_MIN
                    or aggressive_reclamation is not True):
                raise ValueError(
                    "pass either a Scenario or loose params/memsys/"
                    "victim_policy/aggressive_reclamation, not both")
            scenario = config
            config = scenario.machine
            params = scenario.timing
            memsys = MemorySystem(scenario.memory)
            victim_policy = scenario.policy.victim_policy
            aggressive_reclamation = scenario.policy.aggressive_reclamation
        program.validate(config.n_logical)
        self.config = config
        self.program = program
        self.params = params or TimingParams()
        self.functional = functional
        self.aggressive_reclamation = aggressive_reclamation

        self.memsys = memsys or MemorySystem()
        self.layout = MemoryLayout(program, config, functional=functional)
        self.vmu = VectorMemoryUnit(self.memsys, self.layout)

        self.rat = RenameTable(config.n_logical, config.n_vvr)
        self.rac = RegisterAccessCounters(config.n_vvr)
        # The initial identity RAT mappings behave as if each VVR had been
        # renamed as a destination once: they carry the +1 that the old-dest
        # decrement releases when the logical register is first overwritten.
        for vvr in self.rat.live_vvrs():
            self.rac.increment(vvr)
        self.mapping = VRFMapping(config.n_vvr, config.n_physical)
        self.vrf = TwoLevelVRF(config.n_vvr, config.n_physical, config.mvl,
                               functional=functional)
        self.swap_logic = SwapLogic(self.mapping, self.rac, self.vrf,
                                    policy=victim_policy)
        self.rob = ReorderBuffer(self.params.rob_entries,
                                 self.params.commit_width)

        self.dispatch_q: Deque[Instruction] = deque()
        self.pre_issue_q: Deque[MicroOp] = deque()
        self.arith_q: Deque[MicroOp] = deque()
        self.mem_q: Deque[MicroOp] = deque()

        # vvr -> in-flight producer micro-op (value not yet written back).
        self._pending_writer: Dict[int, MicroOp] = {}
        # vvr -> number of queued (pre-issued, not yet issued) readers; the
        # Swap Logic deprioritises these as victims (evicting one forces an
        # immediate Swap-Load back).
        self._vvr_queued_readers: Dict[int, int] = {}
        # preg -> outstanding reader micro-ops (pruned lazily once DONE).
        self._preg_readers: Dict[int, List[MicroOp]] = {}
        # preg -> the Swap-Store that freed it (issue rule 1).
        self._pending_store_guard: Dict[int, MicroOp] = {}
        # vvr -> in-flight Swap-Store filling its M-VRF home slot; a
        # Swap-Load of the same VVR depends on it through memory.
        self._pending_mvrf_store: Dict[int, MicroOp] = {}

        self._completions: List[Tuple[int, int, MicroOp]] = []
        self._seq = 0
        self._arith_busy_until = 0
        self._mem_busy_until = 0
        self._fetch_idx = 0
        self._scalar_time = 0.0
        self._inflight_mem = 0  # uncommitted vector memory instructions
        self._to_commit = sum(1 for i in program.insts if not i.is_scalar)
        self._n_insts = len(program.insts)
        self._pre_issue_depth = self.params.pre_issue_depth
        self._chain_delay = self.params.chain_issue_delay
        self._fifo_policy = victim_policy is VictimPolicy.FIFO
        # Single-level configurations (every VVR has a physical register)
        # can never evict, so no Swap Mechanism bookkeeping is reachable:
        # sources are always resident at pre-issue, every physical register
        # returns to the free list only after all its readers committed, and
        # victim selection is never consulted.  The reader-tracking side
        # tables stay empty and their maintenance is skipped.
        self._track_swap_state = config.n_physical < config.n_vvr
        # Scalar dispatch wake-up: the earliest cycle _dispatch could make
        # progress again; _NEVER while blocked on a full dispatch queue
        # (rename resets it when it pops).
        self._dispatch_wake = 0.0

        # -- span-charging scheduler state --------------------------------
        # Issue stamp: bumped on every _finish_issue.  A wake-up memo that
        # observed an unissued dependency stays "unknown" only while no
        # issue happened anywhere (an issue is the only event that can
        # give an unissued dependency a timestamp).
        self._issue_stamp = 0
        # The swap operations currently sitting in the memory queue, kept
        # as a side list so neither the jump computation nor the blocked
        # -gate wake has to rescan the whole queue per probe.
        self._queued_swaps: List[MicroOp] = []
        # Memoized blocked-issue gates.  While the memo proves the gate
        # must still report "no progress, no counters", the stage is not
        # entered at all.  Validity: same head object, (mem only) same
        # queue length, wake not yet reached (or, when some dependency was
        # unissued, no issue since), and either no mapping transition since
        # (stamp) or the head's source-residency version sum unchanged.
        self._mg_head: Optional[MicroOp] = None  # memory gate
        self._mg_len = -1
        self._mg_wake = -1.0
        self._mg_istamp = -1
        self._mg_mstamp = -1
        self._mg_vsum = -1
        self._ag_head: Optional[MicroOp] = None  # arithmetic gate
        self._ag_wake = -1.0
        self._ag_istamp = -1
        self._ag_mstamp = -1
        self._ag_vsum = -1
        # Pre-issue memo revalidation shortcut: while the mapping stamp is
        # unchanged since the head's stall memo last validated, the source
        # version sum cannot have changed and the re-sum is skipped.
        self._pi_head: Optional[MicroOp] = None
        self._pi_mstamp = -1

        self.now = 0
        self.stats = SimStats(config_name=config.name,
                              program_name=program.name)

        # Microarchitectural sanitizer (None in normal runs: every hook
        # site is a single attribute test).
        self._san = None
        if sanitize:
            self._install_sanitizer()

    def _install_sanitizer(self) -> None:
        # Imported lazily: the sanitizer is debug tooling, not a simulation
        # dependency.
        from repro.analysis.sanitizer import PipelineSanitizer
        san = PipelineSanitizer(label=f"{self.config.name}/"
                                      f"{self.program.name}")
        san.bind(lambda: self.now, rat=self.rat, mapping=self.mapping)
        self.mapping.sanitizer = san
        self.vrf.sanitizer = san
        self.rob.sanitizer = san
        self.rat.sanitizer = san
        self._san = san

    # ------------------------------------------------------------------ utils
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _is_done(self, uop: MicroOp) -> bool:
        if uop.state in (UopState.DONE, UopState.COMMITTED):
            return True
        return uop.state is UopState.ISSUED and uop.done_at <= self.now

    @property
    def finished(self) -> bool:
        return self.rob.total_committed >= self._to_commit

    # ------------------------------------------------------------------ run
    def run(self, max_cycles: int = 200_000_000) -> SimStats:
        """Execute to completion; returns the accumulated statistics.

        One loop iteration evaluates one cycle; each stage is entered only
        when its O(1) gate holds (the gate mirrors the stage's no-progress
        early return, so skipping a stage is observationally identical to
        polling it).  Blocked issue gates and stalled pre-issue / rename
        heads are additionally *memoized*: while the memo proves the stage
        would report the same outcome again, only the stall counter the
        interval accrues is charged — the span-charging replay — and the
        stage body is never entered.  When no gate holds or every entered
        stage reports a stall, the clock jumps straight to the next event.
        """
        stats = self.stats
        rob = self.rob
        rob_entries = rob._entries  # deque identity is stable
        rob_capacity = rob.capacity
        rat_frl = self.rat._frl
        completions = self._completions
        mem_q = self.mem_q
        arith_q = self.arith_q
        pre_issue_q = self.pre_issue_q
        dispatch_q = self.dispatch_q
        pre_issue_depth = self._pre_issue_depth
        mem_depth = self.params.mem_queue_depth
        arith_depth = self.params.arith_queue_depth
        n_insts = self._n_insts
        to_commit = self._to_commit
        mapping = self.mapping
        vvr_version = mapping.vvr_version
        done_state = UopState.DONE
        events = 0
        writer_stalls = 0
        queue_stalls = 0
        rob_stalls = 0
        frl_stalls = 0
        while rob.total_committed < to_commit:
            now = self.now
            if now > max_cycles:
                stats.events_processed += events
                stats.preissue_writer_stalls += writer_stalls
                stats.preissue_queue_stalls += queue_stalls
                stats.rename_rob_stalls += rob_stalls
                stats.rename_frl_stalls += frl_stalls
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"(now={now}, {rob.total_committed}/"
                    f"{to_commit} committed)")
            events += 1
            progress = False
            if rob_entries and rob_entries[0].state is done_state:
                progress = self._commit()
            if completions and completions[0][0] <= now:
                self._complete()
                progress = True
            if mem_q and self._mem_busy_until <= now:
                # Memoized blocked gate: while the queue composition is
                # unchanged, the head's wake has not arrived (or no issue
                # happened since an unissued dependency was observed), and
                # no source changed residency, the gate must still report
                # "blocked, nothing to count" — skip the stage body.
                head = mem_q[0]
                blocked = False
                if head is self._mg_head and len(mem_q) == self._mg_len:
                    wake = self._mg_wake
                    if (now < wake if wake >= 0.0
                            else self._issue_stamp == self._mg_istamp):
                        if mapping.stamp == self._mg_mstamp:
                            blocked = True
                        else:
                            vsum = self._mg_vsum
                            if vsum < 0:  # swap head: mapping-independent
                                blocked = True
                            else:
                                s = 0
                                for v in head.src_vvrs:
                                    s += vvr_version[v]
                                blocked = s == vsum
                            if blocked:
                                self._mg_mstamp = mapping.stamp
                if not blocked:
                    progress |= self._issue_memory()
            if arith_q and self._arith_busy_until <= now:
                head = arith_q[0]
                blocked = False
                if head is self._ag_head:
                    wake = self._ag_wake
                    if (now < wake if wake >= 0.0
                            else self._issue_stamp == self._ag_istamp):
                        if mapping.stamp == self._ag_mstamp:
                            blocked = True
                        else:
                            s = 0
                            for v in head.src_vvrs:
                                s += vvr_version[v]
                            blocked = s == self._ag_vsum
                            if blocked:
                                self._ag_mstamp = mapping.stamp
                if not blocked:
                    progress |= self._issue_arith()
            if pre_issue_q:
                # Inlined pre-issue stall memo (both kinds): re-count the
                # stall while no source of the head changed residency,
                # without entering the stage.  The mapping stamp shortcut
                # skips even the version re-sum on quiet cycles.
                head = pre_issue_q[0]
                pk = head.preissue_stall_version
                if pk >= 0:
                    if (head is self._pi_head
                            and mapping.stamp == self._pi_mstamp):
                        same = True
                    else:
                        s = 0
                        for v in head.src_vvrs:
                            s += vvr_version[v]
                        same = s == pk
                        if same:
                            self._pi_head = head
                            self._pi_mstamp = mapping.stamp
                    if same:
                        if head.preissue_stall_kind == 0:
                            writer_stalls += 1
                        elif (len(mem_q) >= mem_depth
                              if head.inst.is_memory
                              else len(arith_q) >= arith_depth):
                            queue_stalls += 1
                        else:
                            head.preissue_stall_version = -1
                            progress |= self._pre_issue()
                    else:
                        head.preissue_stall_version = -1
                        progress |= self._pre_issue()
                else:
                    progress |= self._pre_issue()
            if dispatch_q and len(pre_issue_q) < pre_issue_depth:
                # Inlined rename stall charging (the stage's two
                # no-progress early returns, re-checked in O(1)).
                if len(rob_entries) >= rob_capacity:
                    rob_stalls += 1
                elif dispatch_q[0].dst is not None and not rat_frl:
                    frl_stalls += 1
                else:
                    progress |= self._rename()
            if self._fetch_idx < n_insts and now >= self._dispatch_wake:
                progress |= self._dispatch()
            if progress:
                self.now = now + 1
            else:
                # No stage can act: jump straight to the next event.  The
                # budget is re-checked at the loop top — one jump can leap
                # far past max_cycles and must not execute a cycle there.
                self._fast_forward()
        stats.events_processed += events
        stats.preissue_writer_stalls += writer_stalls
        stats.preissue_queue_stalls += queue_stalls
        stats.rename_rob_stalls += rob_stalls
        stats.rename_frl_stalls += frl_stalls
        self._harvest()
        if self._san is not None:
            self._san.on_run_end(self.stats)
        return self.stats

    def _fast_forward(self) -> None:
        """Jump ``now`` to the earliest future event in the unified set.

        Every queue-head / queued-swap candidate comes from the memoized
        per-uop wake timestamps (:meth:`_ready_wake`), and the swap
        candidates come from the maintained side list instead of a rescan
        of the whole memory queue — one jump is O(queued swaps) with O(1)
        per candidate, and O(1) when the memos hold.
        """
        now = self.now
        best = _NEVER
        if self._completions:
            c = self._completions[0][0]
            if now < c < best:
                best = c
        if self.mem_q:
            c = self._mem_busy_until
            if now < c < best:
                best = c
            wait = self._ready_wake(self.mem_q[0])
            if wait is not None and now < wait < best:
                best = wait
            # Swap ops can issue out of order past a blocked head.  (A
            # swap head contributes twice; the min is unaffected.)
            for queued in self._queued_swaps:
                wait = self._ready_wake(queued)
                if wait is not None and now < wait < best:
                    best = wait
        if self.arith_q:
            c = self._arith_busy_until
            if now < c < best:
                best = c
            wait = self._ready_wake(self.arith_q[0])
            if wait is not None and now < wait < best:
                best = wait
        if self._fetch_idx < self._n_insts:
            c = math.ceil(self._scalar_time)
            if now < c < best:
                best = c
        if best is _NEVER:
            raise DeadlockError(self._dump())
        target = int(best)
        stats = self.stats
        stats.fast_forward_cycles += target - now
        stats.cycles_skipped += target - now
        # Span accounting: one stalled interval disposed of in one step.
        # The covered span is the evaluated probe cycle plus the jump.
        stats.spans_charged += 1
        stats.span_cycles += target - now + 1
        self.now = target
        if self._san is not None:
            self._san.on_span(stats)

    def _ready_wake(self, uop: MicroOp) -> Optional[float]:
        """Memoized :meth:`_head_wait_time`: earliest readiness timestamp.

        Once every dependency has issued the value is final (``issued_at``
        never changes after issue and the dependency set resets the memo
        when mutated); while some dependency is unissued, "unknown" stays
        valid until the next issue anywhere (the only event that can stamp
        it).
        """
        w = uop.wake_at
        if w >= 0.0:
            return w
        if w == -1.0 and uop.wake_stamp == self._issue_stamp:
            return None
        delay = self._chain_delay
        t = 0.0
        for p in uop.producers:
            if p is None:
                continue
            issued = p.issued_at
            if issued < 0:
                uop.wake_at = -1.0
                uop.wake_stamp = self._issue_stamp
                return None  # producer not issued yet; no timestamp exists
            if issued + delay > t:
                t = issued + delay
        for g in uop.reader_guards:
            issued = g.issued_at
            if issued < 0:
                uop.wake_at = -1.0
                uop.wake_stamp = self._issue_stamp
                return None
            if issued + delay > t:
                t = issued + delay
        g = uop.store_guard
        if g is not None:
            issued = g.issued_at
            if issued < 0:
                uop.wake_at = -1.0
                uop.wake_stamp = self._issue_stamp
                return None
            if issued + delay > t:
                t = issued + delay
        uop.wake_at = t
        return t

    def _head_wait_time(self, uop: MicroOp) -> Optional[float]:
        """Earliest cycle the queue head could become ready, if timestamped.

        Unmemoized form, kept for diagnostic use; the scheduler itself
        goes through :meth:`_ready_wake`.
        """
        delay = self._chain_delay
        t = 0.0
        for p in uop.producers:
            if p is None:
                continue
            issued = p.issued_at
            if issued < 0:
                return None  # producer not issued yet; no timestamp exists
            if issued + delay > t:
                t = issued + delay
        for g in uop.reader_guards:
            issued = g.issued_at
            if issued < 0:
                return None
            if issued + delay > t:
                t = issued + delay
        g = uop.store_guard
        if g is not None:
            issued = g.issued_at
            if issued < 0:
                return None
            if issued + delay > t:
                t = issued + delay
        return t

    def _gate_wake(self, uop: MicroOp) -> Optional[float]:
        """Earliest cycle a blocked issue-gate *probe* could see this head
        ready.

        Differs from :meth:`_ready_wake` on one point: the resolve fast
        path prunes producers the moment they are DONE, so for a non-swap
        head each producer's constraint expires at
        ``min(issued_at + delay, done_at)`` — the probe stops seeing the
        producer at its ``done_at`` even when the chain delay would reach
        further.  Guards are never pruned and constrain until
        ``issued_at + delay`` exactly, as do a swap head's producers
        (swap resolution has no pruning pass).
        """
        delay = self._chain_delay
        t = 0.0
        if uop.inst.tag is not Tag.SWAP:
            for p in uop.producers:
                if p is None:
                    continue
                issued = p.issued_at
                if issued < 0:
                    return None
                w = issued + delay
                done = p.done_at
                if done < w:
                    w = done
                if w > t:
                    t = w
        else:
            for p in uop.producers:
                if p is None:
                    continue
                issued = p.issued_at
                if issued < 0:
                    return None
                if issued + delay > t:
                    t = issued + delay
        for g in uop.reader_guards:
            issued = g.issued_at
            if issued < 0:
                return None
            if issued + delay > t:
                t = issued + delay
        g = uop.store_guard
        if g is not None:
            issued = g.issued_at
            if issued < 0:
                return None
            if issued + delay > t:
                t = issued + delay
        return t

    # ------------------------------------------------------------------ commit
    def _commit(self) -> bool:
        """Retire up to ``commit_width`` completed ROB heads (gate: head is
        DONE)."""
        now = self.now
        rob = self.rob
        entries = rob._entries
        retired = 0
        width = rob.commit_width
        done_state = UopState.DONE
        while retired < width and entries:
            head = entries[0]
            if head.state is not done_state or head.done_at > now:
                break
            # Inlined ReorderBuffer.retire (the popped entry is the head
            # just examined, so the out-of-order check cannot fire).
            if self._san is not None:
                self._san.on_commit(head)
            entries.popleft()
            head.state = UopState.COMMITTED
            head.committed_at = now
            rob.total_committed += 1
            self._retire(head)
            retired += 1
        return retired > 0

    def _retire(self, uop: MicroOp) -> None:
        # Inlined RAC decrement + reclamation test (saturating-counter
        # semantics exactly as RegisterAccessCounters.decrement /
        # is_reclaimable), and inlined VRF/RAT commit bookkeeping
        # (drop_mvrf / reset / mark_valid / commit_valid / RAT.commit):
        # this runs once per committed instruction and dominated commit
        # cost as method calls.
        vrf = self.vrf
        counts = self.rac._counts
        saturated = self.rac._saturated
        vrlt = self.mapping._vrlt
        valid = vrf._valid
        generation = vrf._generation
        mvrf_valid = vrf._mvrf_valid
        mvrf = vrf._mvrf
        fifo = self._fifo_policy
        aggressive = self.aggressive_reclamation
        for vvr in uop.src_vvrs:
            if saturated[vvr]:
                continue  # saturated: no decrement, never reclaimable
            count = counts[vvr]
            if count == 0:
                raise RuntimeError(
                    f"RAC underflow on VVR {vvr}: update protocol violated")
            counts[vvr] = count = count - 1
            if count == 0 and aggressive and vrlt[vvr] and valid[vvr]:
                self.mapping.release(vvr)
                if fifo:
                    self.swap_logic.note_release(vvr)
                # drop_mvrf: the generation is dead.
                mvrf.pop(vvr, None)
                mvrf_valid.discard(vvr)
                generation[vvr] += 1
        if uop.dst_vvr is not None:
            assert uop.old_dst_vvr is not None
            old = uop.old_dst_vvr
            dst = uop.dst_vvr
            self.mapping.release(old)
            if fifo:
                self.swap_logic.note_release(old)
            mvrf.pop(old, None)  # drop_mvrf
            mvrf_valid.discard(old)
            generation[old] += 1
            counts[old] = 0  # RAC reset
            saturated[old] = False
            valid[old] = True  # mark_valid
            retired_valid = vrf._retired_valid  # commit_valid x2
            retired_valid[old] = True
            retired_valid[dst] = valid[dst]
            # RAT.commit: retirement checkpoint + FRL release.
            rat = self.rat
            rat._retirement_rat[uop.inst.dst] = dst
            rat._frl.append(old)
        if uop.inst.is_memory:
            self._inflight_mem -= 1
        self.stats.committed += 1

    # ------------------------------------------------------------------ complete
    def _complete(self) -> None:
        """Flip due micro-ops to DONE (gate: completion heap top is due)."""
        completions = self._completions
        now = self.now
        heappop = heapq.heappop
        valid = self.vrf._valid
        pending_writer = self._pending_writer
        done_state = UopState.DONE
        while completions and completions[0][0] <= now:
            uop = heappop(completions)[2]
            uop.state = done_state
            dst_vvr = uop.dst_vvr
            if dst_vvr is not None:
                valid[dst_vvr] = True  # mark_valid
                if pending_writer.get(dst_vvr) is uop:
                    del pending_writer[dst_vvr]
            inst = uop.inst
            if inst.tag is Tag.SWAP and inst.is_store:
                victim = uop.src_vvrs[0]
                if self._pending_mvrf_store.get(victim) is uop:
                    del self._pending_mvrf_store[victim]

    # ------------------------------------------------------------------ issue
    def _ready(self, uop: MicroOp) -> bool:
        """Chaining readiness: producers and guards issued.

        Producers: elements will stream in as this op consumes them.
        Guards (swap rules 1 and 2): the old value's Swap-Store / readers
        drain the register at stream rate one beat ahead of the new owner's
        writes, so issue may chain behind them too; the completion clamp in
        :meth:`_finish_issue` keeps the new owner's write-back behind their
        reads in time.
        """
        delay = self._chain_delay
        now = self.now
        for p in uop.producers:
            if p is not None and (p.issued_at < 0 or p.issued_at + delay > now):
                return False
        for g in uop.reader_guards:
            if g.issued_at < 0 or g.issued_at + delay > now:
                return False
        g = uop.store_guard
        if g is not None and (g.issued_at < 0 or g.issued_at + delay > now):
            return False
        return True

    def _issue_memory(self) -> bool:
        """Issue the memory-queue head (gate: queue non-empty, unit free)."""
        uop = self.mem_q[0]
        code = self._resolve_head(uop)
        if code == _R_READY:
            self.mem_q.popleft()
            self._issue_memory_uop(uop)
            return True
        if code == _R_CREATED:
            return True  # a priority swap op now heads the memory queue
        if code == _R_VICTIM:
            # Victim-stall outcomes depend on RAC state that can change
            # without a mapping transition, so they are never memoized:
            # the stall is re-counted by a real probe every cycle.
            self.stats.issue_victim_stalls += 1
            return self._issue_swap_bypass()
        if self._issue_swap_bypass():
            return True
        # Head waits on timestamps only (_R_WAIT) and no queued swap is
        # ready: memoize the closed gate so re-probes charge nothing in
        # O(1) until something observable changes.
        self._memoize_mem_gate(uop)
        return False

    def _memoize_mem_gate(self, head: MicroOp) -> None:
        wake = self._gate_wake(head)
        if wake is not None:
            for cand in self._queued_swaps:
                if cand is head:
                    continue
                w = self._ready_wake(cand)
                if w is None:
                    wake = None
                    break
                if w < wake:
                    wake = w
        if wake is None:
            self._mg_wake = -1.0
            self._mg_istamp = self._issue_stamp
        else:
            self._mg_wake = wake
        self._mg_head = head
        self._mg_len = len(self.mem_q)
        if head.inst.tag is Tag.SWAP:
            self._mg_vsum = -1
        else:
            vvr_version = self.mapping.vvr_version
            s = 0
            for v in head.src_vvrs:
                s += vvr_version[v]
            self._mg_vsum = s
        self._mg_mstamp = self.mapping.stamp

    def _issue_memory_uop(self, uop: MicroOp) -> None:
        plan = self.vmu.plan(uop.inst)
        dead = self.params.mem_dead_time
        latency = self.vmu.first_element_latency + plan.miss_latency
        occupancy = dead + plan.occupancy
        self._finish_issue(uop, occupancy, dead, latency)
        self._mem_busy_until = self.now + occupancy
        self.stats.mem_busy_cycles += occupancy
        self.stats.mem_beats += plan.beats
        uop.dram_stall = plan.fill_beats + plan.miss_latency
        self._count_issue(uop)
        if uop.inst.tag is Tag.SWAP:
            self._queued_swaps.remove(uop)
            self._execute_swap(uop)
        else:
            self._execute_memory(uop)

    def _issue_swap_bypass(self) -> bool:
        """Issue a ready swap op from behind a blocked memory-queue head.

        Swap operations move data between the P-VRF and the M-VRF only —
        they can never alias application memory — so when the in-order head
        is stalled, the memory unit may service a younger ready swap op
        instead.  This both resolves head-waits-on-queued-swap chains (the
        head's own source may be coming back via a Swap-Load sitting behind
        it) and overlaps swap traffic with dependency stalls.
        """
        if not self._queued_swaps:
            return False
        mem_q = self.mem_q
        now = self.now
        for idx in range(1, len(mem_q)):
            cand = mem_q[idx]
            if cand.inst.tag is not Tag.SWAP:
                continue
            # Memoized readiness: ready iff every dependency issued and the
            # latest wake timestamp has arrived (exactly _ready()).
            wake = self._ready_wake(cand)
            if wake is None or wake > now:
                continue
            del mem_q[idx]
            self._issue_memory_uop(cand)
            return True
        return False

    def _issue_arith(self) -> bool:
        """Issue the arithmetic-queue head (gate: queue non-empty, unit
        free)."""
        uop = self.arith_q[0]
        code = self._resolve_head(uop)
        if code != _R_READY:
            if code == _R_CREATED:
                return True
            if code == _R_VICTIM:
                self.stats.issue_victim_stalls += 1
                return False
            # _R_WAIT: pure timestamp wait — memoize the closed gate.
            wake = self._gate_wake(uop)
            if wake is None:
                self._ag_wake = -1.0
                self._ag_istamp = self._issue_stamp
            else:
                self._ag_wake = wake
            self._ag_head = uop
            vvr_version = self.mapping.vvr_version
            s = 0
            for v in uop.src_vvrs:
                s += vvr_version[v]
            self._ag_vsum = s
            self._ag_mstamp = self.mapping.stamp
            return False
        self.arith_q.popleft()
        info = uop.inst.info
        beats = self.params.arith_beats(uop.inst.vl, info.beats_per_element)
        dead = self.params.arith_dead_time
        occupancy = dead + beats
        self._finish_issue(uop, occupancy, dead, info.latency)
        self._arith_busy_until = self.now + occupancy
        self.stats.arith_busy_cycles += occupancy
        self._count_issue(uop)
        self._execute_arith(uop)
        return True

    def _resolve_head(self, uop: MicroOp) -> int:
        """Fused issue probe: operand resolution + chaining readiness.

        Returns ``_R_READY`` / ``_R_WAIT`` / ``_R_CREATED`` (a priority swap
        op was generated) / ``_R_VICTIM`` (no legal swap victim).  Producer
        readiness is computed during the same pass that prunes completed
        producers, and guard readiness is checked after destination
        allocation (which is what attaches guards), preserving the exact
        evaluation order of the original resolve-then-ready sequence.

        Issue-time operand resolution (§VIII: registers "at issue time").

        Sources were resolved optimistically at pre-issue, but a mapping can
        have gone stale if the Swap Logic evicted the VVR while this
        instruction waited in its queue; such sources are re-resolved here,
        generating a **priority Swap-Load** at the memory-queue front.  The
        destination physical register is assigned here (not at queue entry),
        so queued instructions hold no registers and P-VRF pressure tracks
        live architectural values, not window depth.  When the PFRL is empty
        the Swap Mechanism first reclaims an RAC==0 register, then evicts a
        clean victim for free, and only then creates a **priority
        Swap-Store** (Swap-1; issue rule 1 makes the new owner trail it).

        Source re-resolution is memoized against the sources' per-VVR
        residency versions, seeded when pre-issue mapped the sources: while
        none of this uop's sources changes residency, the sources cannot go
        stale, the reader bookkeeping cannot change, and the pre-issue
        producer links stay correct — the only effect a full re-resolution
        could have is replacing now-completed producers with ``None``, which
        the fast path performs directly.  Destination allocation may evict
        *other* VVRs (sources are excluded), so it never invalidates the
        uop's own memo.
        """
        mapping = self.mapping
        now = self.now
        delay = self._chain_delay
        ready = True
        if uop.inst.tag is not Tag.SWAP:
            vvr_version = mapping.vvr_version
            vsum = 0
            for v in uop.src_vvrs:
                vsum += vvr_version[v]
            if uop.resolved_version == vsum:
                producers = uop.producers
                for i in range(len(producers)):
                    p = producers[i]
                    if p is not None:
                        state = p.state
                        if (state is UopState.DONE
                                or state is UopState.COMMITTED
                                or (state is UopState.ISSUED
                                    and p.done_at <= now)):
                            producers[i] = None
                            uop.wake_at = -2.0  # dependency set changed
                        elif p.issued_at < 0 or p.issued_at + delay > now:
                            ready = False
            else:
                refreshed = []
                for vvr in uop.src_vvrs:
                    if not mapping.in_pvrf(vvr):
                        if not mapping.in_mvrf(vvr):
                            raise AssertionError(
                                f"source VVR {vvr} of {uop.describe()} has "
                                f"neither a physical register nor an M-VRF "
                                f"home")
                        excluded = list(uop.src_vvrs)
                        if uop.dst_vvr is not None:
                            excluded.append(uop.dst_vvr)
                        outcome = self._free_one_preg(excluded, front=True)
                        if outcome == _STALL_VICTIM:
                            return _R_VICTIM
                        if outcome != _OK:
                            return _R_CREATED
                        self._emit_swap_load(vvr, front=True)
                        return _R_CREATED
                    refreshed.append(mapping.preg_of(vvr))
                new_pregs = tuple(refreshed)
                # Rebuild the producer links: a source was evicted and
                # Swap-Loaded back (possibly into the same physical
                # register) while this instruction waited, and its value now
                # comes from that in-flight Swap-Load.
                uop.producers = []
                for vvr in uop.src_vvrs:
                    producer = self._pending_writer.get(vvr)
                    uop.attach_producer(
                        producer if producer is not None
                        and not self._is_done(producer) else None)
                if new_pregs != uop.src_pregs:
                    uop.src_pregs = new_pregs
                    for preg in new_pregs:
                        readers = self._preg_readers.setdefault(preg, [])
                        if uop not in readers:
                            readers.append(uop)
                # The rebuild itself performs no mapping transition, so the
                # entry sum still describes the sources.
                uop.resolved_version = vsum
                for p in uop.producers:
                    if p is not None and (p.issued_at < 0
                                          or p.issued_at + delay > now):
                        ready = False
                        break
        else:
            for p in uop.producers:
                if p is not None and (p.issued_at < 0
                                      or p.issued_at + delay > now):
                    ready = False
                    break

        if uop.dst_vvr is not None and uop.dst_preg is None:
            created = False
            excluded = list(uop.src_vvrs) + [uop.dst_vvr]
            if mapping.free_count == 0:
                outcome = self._free_one_preg(excluded, front=True)
                if outcome == _CREATED:
                    created = True
                elif outcome != _OK:
                    return _R_VICTIM
            preg = mapping.allocate(uop.dst_vvr)
            if self._track_swap_state:
                self._attach_write_guards(uop, preg)
            uop.dst_preg = preg
            if created:
                return _R_CREATED
        if not ready:
            return _R_WAIT
        # Guard readiness last: destination allocation (just above) is what
        # attaches guards, matching the resolve-then-ready original order.
        for g in uop.reader_guards:
            if g.issued_at < 0 or g.issued_at + delay > now:
                return _R_WAIT
        g = uop.store_guard
        if g is not None and (g.issued_at < 0 or g.issued_at + delay > now):
            return _R_WAIT
        return _R_READY

    def _src_version_sum(self, uop: MicroOp) -> int:
        vvr_version = self.mapping.vvr_version
        vsum = 0
        for v in uop.src_vvrs:
            vsum += vvr_version[v]
        return vsum

    def _free_one_preg(self, excluded: List[int], front: bool) -> str:
        """Make the PFRL non-empty: reclaim, clean-evict, or Swap-Store."""
        if self.mapping.free_count > 0:
            return _OK
        reclaim = (self.swap_logic.reclaimable_vvr(excluded)
                   if self.aggressive_reclamation else None)
        if reclaim is not None:
            self.mapping.release(reclaim)
            self.swap_logic.note_release(reclaim)
            self.vrf.drop_mvrf(reclaim)
            return _OK
        victim = self._select_victim(excluded)
        if victim is None:
            return _STALL_VICTIM
        if self.vrf.has_mvrf_copy(victim):
            self._clean_evict(victim)
            return _OK
        if not front and len(self.mem_q) >= self.params.mem_queue_depth:
            return _STALL_QUEUE
        self._emit_swap_store(victim, front=front)
        return _CREATED

    def _finish_issue(self, uop: MicroOp, occupancy: int, dead: int,
                      latency: int) -> None:
        """Stamp issue/first-ready/done under the streaming-chaining model.

        The consumer's first element trails both its own pipeline
        (``dead + latency``) and its producers' first elements by its own
        latency; its last element trails its own stream and its producers'
        last elements likewise.  Occupancy is charged to the unit by the
        caller.
        """
        uop.state = UopState.ISSUED
        uop.issued_at = self.now
        self._issue_stamp += 1
        prod_first = 0
        prod_done = 0
        for p in uop.producers:
            if p is not None:
                if p.first_ready > prod_first:
                    prod_first = p.first_ready
                if p.done_at > prod_done:
                    prod_done = p.done_at
        # Swap rules in streaming form: this op's writes trail the old
        # value's store/readers, so its completion cannot precede theirs.
        guard_done = 0
        for g in uop.reader_guards:
            if g.done_at > guard_done:
                guard_done = g.done_at
        if uop.store_guard is not None and uop.store_guard.done_at > guard_done:
            guard_done = uop.store_guard.done_at
        first = max(self.now + dead + latency, prod_first + latency)
        done = max(self.now + occupancy + latency,
                   prod_done + latency,
                   guard_done + 1,
                   first + max(0, occupancy - dead))
        uop.first_ready = first
        uop.done_at = done
        heapq.heappush(self._completions, (done, uop.seq, uop))

    def _count_issue(self, uop: MicroOp) -> None:
        inst = uop.inst
        stats = self.stats
        if self._track_swap_state and inst.tag is not Tag.SWAP:
            # Swap ops never pass through pre-issue step C, so only regular
            # uops carry queued-reader pins.
            queued_readers = self._vvr_queued_readers
            for vvr in uop.src_vvrs:
                remaining = queued_readers.get(vvr, 0) - 1
                if remaining > 0:
                    queued_readers[vvr] = remaining
                else:
                    queued_readers.pop(vvr, None)
        if inst.is_arith:
            stats.arith_insts += 1
            stats.fpu_element_ops += inst.vl
        elif inst.is_load:
            if inst.tag is Tag.SPILL:
                stats.spill_loads += 1
            elif inst.tag is Tag.SWAP:
                stats.swap_loads += 1
            else:
                stats.vloads += 1
        else:
            if inst.tag is Tag.SPILL:
                stats.spill_stores += 1
            elif inst.tag is Tag.SWAP:
                stats.swap_stores += 1
            else:
                stats.vstores += 1

    # ------------------------------------------------------------------ execute
    def _execute_arith(self, uop: MicroOp) -> None:
        inst = uop.inst
        assert uop.dst_preg is not None
        if self._san is not None:
            self._san.on_execute(uop)
        if not self.functional:
            # Counters only (identical to read_preg per source plus one
            # write_preg, without the per-call overhead).
            vrf = self.vrf
            vl = inst.vl
            vrf.pvrf_reads += vl * len(uop.src_pregs)
            vrf.pvrf_writes += vl
            return
        # Zero-copy source views: every evaluator builds a fresh output
        # array, and write_preg copies, so no view outlives this call.
        vrf = self.vrf
        values = [vrf.read_preg_view(p, inst.vl) for p in uop.src_pregs]
        result = evaluate_arith(inst.op, values, inst.scalar, inst.vl)
        vrf.write_preg(uop.dst_preg, result, inst.vl)

    def _execute_swap(self, uop: MicroOp) -> None:
        if uop.inst.is_store:
            victim = uop.src_vvrs[0]
            if self.vrf.generation(victim) != uop.swap_gen:
                # The generation this store was saving died while the store
                # waited in the queue (its readers all committed and the
                # register was reclaimed); the slot now belongs to a newer
                # generation and must not be overwritten.
                if self._san is not None:
                    self._san.on_swap_squashed(uop.src_pregs[0])
                return
            self.vrf.swap_out(victim, uop.src_pregs[0])
        else:
            assert uop.dst_vvr is not None and uop.dst_preg is not None
            if self.vrf.generation(uop.dst_vvr) != uop.swap_gen:
                raise AssertionError(
                    "swap-load executing for a dead VVR generation")
            self.vrf.swap_in(uop.dst_vvr, uop.dst_preg)

    def _execute_memory(self, uop: MicroOp) -> None:
        inst = uop.inst
        mem = inst.mem
        assert mem is not None
        if self._san is not None:
            self._san.on_execute(uop)
        if not self.functional:
            # Counters only, mirroring the functional path's VRF traffic.
            vrf = self.vrf
            vl = inst.vl
            if inst.is_load:
                assert uop.dst_preg is not None
                if mem.indexed:
                    vrf.pvrf_reads += vl
                vrf.pvrf_writes += vl
            else:
                vrf.pvrf_reads += vl * (2 if mem.indexed else 1)
            return
        # Functional path on zero-copy views: layout.store / write_preg copy
        # on write, so the views are consumed before any buffer mutates.
        vrf = self.vrf
        if inst.is_load:
            assert uop.dst_preg is not None
            if mem.indexed:
                index = vrf.read_preg_view(uop.src_pregs[0], inst.vl)
                data = self.layout.load(mem, inst.vl, index)
            else:
                data = self.layout.load_view(mem, inst.vl)
            vrf.write_preg(uop.dst_preg, data, inst.vl)
            return
        # Store: data always comes from srcs[0]; gather index from srcs[1].
        data = vrf.read_preg_view(uop.src_pregs[0], inst.vl)
        index = None
        if mem.indexed:
            index = vrf.read_preg_view(uop.src_pregs[1], inst.vl)
        assert data is not None
        self.layout.store(mem, inst.vl, data, index)

    # ------------------------------------------------------------------ pre-issue
    def _pre_issue(self) -> bool:
        """Advance the second-level mapping (gate: pre-issue queue
        non-empty).

        Stalled heads are memoized against their sources' residency
        versions: a head waiting on an unissued producer cannot unblock
        until that source is allocated a physical register (which bumps its
        version), and a head stalled on a full issue queue re-checks only
        the queue depth.  While the memo holds, the stall is re-counted —
        exactly what a full re-evaluation would do — without re-walking the
        mapping.
        """
        uop = self.pre_issue_q[0]
        mapping = self.mapping
        if uop.preissue_stall_version >= 0:
            vvr_version = mapping.vvr_version
            vsum = 0
            for v in uop.src_vvrs:
                vsum += vvr_version[v]
            if vsum == uop.preissue_stall_version:
                if uop.preissue_stall_kind == 0:
                    self.stats.preissue_writer_stalls += 1
                    return False
                # Queue-full stall: sources are fully mapped (step A falls
                # through unchanged); only the target depth can vary.
                target = (self.mem_q if uop.inst.is_memory else self.arith_q)
                depth = (self.params.mem_queue_depth if uop.inst.is_memory
                         else self.params.arith_queue_depth)
                if len(target) >= depth:
                    self.stats.preissue_queue_stalls += 1
                    return False
            uop.preissue_stall_version = -1
        excluded: Optional[List[int]] = None  # built lazily; contents fixed

        # Step A: map sources; evicted sources need a Swap-Load each.  Swap
        # generation is combinational with the mapping update, so mapping can
        # complete in the same cycle as dispatch, but the memory queue
        # accepts at most `preissue_swap_budget` inserted swap ops per cycle.
        budget = self.params.preissue_swap_budget
        vrlt = mapping._vrlt
        for vvr in uop.src_vvrs:
            if vrlt[vvr]:
                continue
            if excluded is None:
                excluded = list(uop.src_vvrs)
                if uop.dst_vvr is not None:
                    excluded.append(uop.dst_vvr)
            if mapping._in_mvrf[vvr]:
                if budget <= 0:
                    return True  # resume next cycle
                outcome = self._acquire_preg(excluded)
                if outcome == _CREATED:
                    budget -= 1
                    if budget <= 0:
                        return True
                    outcome = self._acquire_preg(excluded)
                if outcome != _OK:
                    self._count_preissue_stall(outcome)
                    return False
                self._emit_swap_load(vvr)
                budget -= 1
                continue
            if vvr in self._pending_writer:
                # The producer has not issued yet, so the VVR has no physical
                # register (destinations are assigned at issue time).  Wait
                # in order; the producer sits ahead in an issue queue.
                self.stats.preissue_writer_stalls += 1
                uop.preissue_stall_version = self._src_version_sum(uop)
                uop.preissue_stall_kind = 0
                return False
            # Never-defined source: allocate and read the SRAM reset state.
            outcome = self._acquire_preg(excluded)
            if outcome == _CREATED:
                return True
            if outcome != _OK:
                self._count_preissue_stall(outcome)
                return False
            preg = mapping.allocate(vvr)
            if self._san is not None:
                # Reading the reset state of a never-defined source is
                # legal, not a read-before-write.
                self._san.on_reset_alloc(preg)
            self._attach_write_guards(None, preg)  # drop stale guards
            self.swap_logic.note_allocation(vvr)

        # Step B (destination mapping) happens at issue time — see
        # _ensure_operands.  Step C: dispatch into the issue queue.
        target = self.mem_q if uop.inst.is_memory else self.arith_q
        depth = (self.params.mem_queue_depth if uop.inst.is_memory
                 else self.params.arith_queue_depth)
        if len(target) >= depth:
            self.stats.preissue_queue_stalls += 1
            uop.preissue_stall_version = self._src_version_sum(uop)
            uop.preissue_stall_kind = 1
            return False

        prmt = mapping._prmt
        uop.src_pregs = tuple([prmt[v] for v in uop.src_vvrs])
        now = self.now
        pending_writer = self._pending_writer
        for vvr in uop.src_vvrs:
            producer = pending_writer.get(vvr)
            if producer is not None:
                state = producer.state
                if (state is UopState.DONE or state is UopState.COMMITTED
                        or (state is UopState.ISSUED
                            and producer.done_at <= now)):
                    producer = None
            uop.producers.append(producer)
        if self._track_swap_state:
            for preg in uop.src_pregs:
                self._preg_readers.setdefault(preg, []).append(uop)
            queued_readers = self._vvr_queued_readers
            for vvr in uop.src_vvrs:
                queued_readers[vvr] = queued_readers.get(vvr, 0) + 1
        # Seed the issue-time resolution memo: the producer links and pregs
        # just recorded stay correct until a source changes residency.
        uop.resolved_version = self._src_version_sum(uop)
        # The destination physical register is assigned at issue time
        # (_ensure_operands); uop.dst_preg stays None until then.
        uop.state = UopState.PRE_ISSUED
        uop.pre_issued_at = self.now
        uop.seq = self._next_seq()
        uop.validate_ordering()
        self.pre_issue_q.popleft()
        target.append(uop)
        return True

    def _count_preissue_stall(self, outcome: str) -> None:
        if outcome == _STALL_VICTIM:
            self.stats.preissue_victim_stalls += 1
        else:
            self.stats.preissue_queue_stalls += 1

    def _select_victim(self, excluded: List[int]) -> Optional[int]:
        """Swap Logic victim choice with the pipeline's reload context."""
        return self.swap_logic.select_victim(
            excluded,
            has_queued_reader=lambda v: self._vvr_queued_readers.get(v, 0) > 0,
            rat_live=self.rat.live_vvrs(),
            is_clean=self.vrf.has_mvrf_copy)

    def _clean_evict(self, victim: int) -> None:
        """Evict a VVR whose M-VRF copy is still valid: a pure remap."""
        self.mapping.evict(victim)
        self.swap_logic.note_release(victim)

    def _acquire_preg(self, excluded: List[int]) -> str:
        """Ensure the PFRL is non-empty (§III.C Swap-1, pre-issue path)."""
        return self._free_one_preg(excluded, front=False)

    def _emit_swap_store(self, victim: int, front: bool = False) -> None:
        preg = self.mapping.preg_of(victim)
        inst = Instruction(op=Op.VSE, srcs=(0,), vl=self.config.mvl,
                           mem=self.layout.mvrf_operand(victim), tag=Tag.SWAP)
        uop = MicroOp(inst, seq=self._next_seq(), state=UopState.PRE_ISSUED,
                      src_vvrs=(victim,), src_pregs=(preg,),
                      renamed_at=self.now, pre_issued_at=self.now,
                      priority=front, swap_gen=self.vrf.generation(victim))
        if self._san is not None:
            self._san.on_swap_store_emitted(preg)
        self.mapping.evict(victim)
        self.swap_logic.note_release(victim)
        self._pending_store_guard[preg] = uop
        self._pending_mvrf_store[victim] = uop
        self._preg_readers.setdefault(preg, []).append(uop)
        uop.validate_ordering()
        self._queued_swaps.append(uop)
        if front:
            self.mem_q.appendleft(uop)
        else:
            self.mem_q.append(uop)

    def _emit_swap_load(self, vvr: int, front: bool = False) -> None:
        preg = self.mapping.allocate(vvr)
        inst = Instruction(op=Op.VLE, dst=0, vl=self.config.mvl,
                           mem=self.layout.mvrf_operand(vvr), tag=Tag.SWAP)
        uop = MicroOp(inst, seq=self._next_seq(), state=UopState.PRE_ISSUED,
                      dst_vvr=vvr, dst_preg=preg,
                      renamed_at=self.now, pre_issued_at=self.now,
                      priority=front, swap_gen=self.vrf.generation(vvr))
        self._attach_write_guards(uop, preg)
        # The load reads the M-VRF home slot; if the Swap-Store filling that
        # slot is still in flight, it is this load's data producer.
        filler = self._pending_mvrf_store.get(vvr)
        if filler is not None and not self._is_done(filler):
            uop.attach_producer(filler)
        self._pending_writer[vvr] = uop
        self.vrf.mark_pending(vvr)
        self.swap_logic.note_allocation(vvr)
        uop.validate_ordering()
        self._queued_swaps.append(uop)
        if front:
            # Priority load: jump the queue, but never ahead of the
            # Swap-Store that freed its physical register, nor ahead of the
            # Swap-Store filling its M-VRF slot — the memory queue issues in
            # order, so landing in front of either would deadlock or read a
            # slot that has not been written yet.
            idx = 0
            for dep in (uop.store_guard, filler):
                if dep is None or dep.issued_at >= 0:
                    continue
                for pos, queued in enumerate(self.mem_q):
                    if queued is dep:
                        idx = max(idx, pos + 1)
                        break
            self.mem_q.insert(idx, uop)
        else:
            self.mem_q.append(uop)

    def _attach_write_guards(self, writer: Optional[MicroOp],
                             preg: int) -> None:
        """Guard a new owner of ``preg`` against the old value's users.

        Rule 1: the Swap-Store that freed the register must have executed
        (the new owner chains behind it).  Rule 2: readers of the previous
        value that have already **issued** clamp the new owner's write-back
        behind their streaming reads; readers still waiting in a queue are
        *not* guards — their mapping went stale and they re-resolve their
        source at issue time (_ensure_operands), reloading the value from
        the M-VRF.  Restricting guards to issued micro-ops keeps the wait
        graph acyclic by construction.

        Passing ``writer=None`` just clears stale tracking (uninitialised
        reads own the register without writing it).
        """
        guard = self._pending_store_guard.pop(preg, None)
        readers = self._preg_readers.pop(preg, [])
        if writer is None:
            return
        if guard is not None:
            writer.attach_store_guard(guard)
        for reader in readers:
            if reader.issued_at >= 0 and not self._is_done(reader):
                writer.attach_reader_guard(reader)

    # ------------------------------------------------------------------ rename
    def _rename(self) -> bool:
        """First-level rename of the dispatch-queue head (gate: queue
        non-empty and pre-issue queue not full)."""
        rob = self.rob
        if len(rob._entries) >= rob.capacity:
            self.stats.rename_rob_stalls += 1
            return False
        inst = self.dispatch_q[0]
        rat = self.rat
        if inst.dst is not None and not rat._frl:
            self.stats.rename_frl_stalls += 1
            return False
        self.dispatch_q.popleft()
        # A dispatch-queue slot opened up: let the scalar core re-evaluate
        # (it runs after rename within the same cycle, as before).
        self._dispatch_wake = 0.0

        # Inlined RAT lookups and saturating RAC increments (semantics of
        # RenameTable.rename_sources / RegisterAccessCounters.increment):
        # this is once-per-instruction work on the hot path.
        rat_map = rat._rat
        counts = self.rac._counts
        saturated = self.rac._saturated
        src_vvrs = tuple([rat_map[l] for l in inst.srcs])
        for vvr in src_vvrs:
            if not saturated[vvr]:
                if counts[vvr] >= RAC_MAX:
                    saturated[vvr] = True
                else:
                    counts[vvr] += 1
        dst_vvr = old_vvr = None
        if inst.dst is not None:
            # Inlined RenameTable.rename_destination (FRL checked above).
            old_vvr = rat_map[inst.dst]
            dst_vvr = rat._frl.popleft()
            rat_map[inst.dst] = dst_vvr
            if self._san is not None:
                self._san.on_rename()
            if not saturated[dst_vvr]:
                if counts[dst_vvr] >= RAC_MAX:
                    saturated[dst_vvr] = True
                else:
                    counts[dst_vvr] += 1
            self.rac.decrement(old_vvr)
            self.vrf._valid[dst_vvr] = False  # mark_pending
            # Aggressive reclamation case 1 at rename time, guarded by the
            # paper's condition (b): no older vector memory instruction may
            # be in flight (they are the recovery-event sources).
            if (self.aggressive_reclamation
                    and self._inflight_mem == 0
                    and not saturated[old_vvr] and counts[old_vvr] == 0
                    and self.mapping._vrlt[old_vvr]
                    and self.vrf._valid[old_vvr]):
                self.mapping.release(old_vvr)
                self.swap_logic.note_release(old_vvr)
                self.vrf.drop_mvrf(old_vvr)  # generation is dead

        uop = MicroOp(inst, src_vvrs=src_vvrs,
                      dst_vvr=dst_vvr, old_dst_vvr=old_vvr,
                      renamed_at=self.now)
        if dst_vvr is not None:
            self._pending_writer[dst_vvr] = uop
        # Inlined ReorderBuffer.allocate (capacity was checked above).
        entries = rob._entries
        uop.rob_index = rob.total_committed + len(entries)
        entries.append(uop)
        if inst.is_memory:
            self._inflight_mem += 1
        self.pre_issue_q.append(uop)
        return True

    # ------------------------------------------------------------------ dispatch
    def _dispatch(self) -> bool:
        """Scalar-core hand-off (gate: instructions remain and the wake-up
        time has arrived)."""
        progress = False
        insts = self.program.insts
        n = self._n_insts
        dispatch_q = self.dispatch_q
        depth = self.params.dispatch_queue_depth
        ratio = self.params.scalar_clock_ratio
        hand_off = self.params.dispatch_scalar_cycles / ratio
        while self._fetch_idx < n:
            inst = insts[self._fetch_idx]
            if inst.is_scalar:
                assert inst.scalar is not None
                self._scalar_time += inst.scalar / ratio
                self.stats.scalar_blocks += 1
                self._fetch_idx += 1
                progress = True
                continue
            if len(dispatch_q) >= depth:
                break
            if self._scalar_time > self.now:
                break
            dispatch_q.append(inst)
            self._fetch_idx += 1
            self._scalar_time += hand_off
            progress = True
        # Next wake-up: blocked on the queue -> woken by rename; otherwise
        # the first cycle the scalar core will have handed over the next
        # instruction.  (After the loop the head, if any, is non-scalar.)
        if self._fetch_idx >= n or len(dispatch_q) >= depth:
            self._dispatch_wake = _NEVER
        else:
            self._dispatch_wake = math.ceil(self._scalar_time)
        return progress

    # ------------------------------------------------------------------ results
    def _harvest(self) -> None:
        self.stats.cycles = self.now
        self.stats.vrf_reads = self.vrf.pvrf_reads
        self.stats.vrf_writes = self.vrf.pvrf_writes
        self.stats.mvrf_reads = self.vrf.mvrf_reads
        self.stats.mvrf_writes = self.vrf.mvrf_writes
        l2 = self.memsys.l2.stats
        self.stats.l2_reads = l2.reads
        self.stats.l2_writes = l2.writes
        self.stats.l2_misses = l2.misses
        self.stats.dram_accesses = self.memsys.dram.accesses

    def _dump(self) -> str:
        lines = [
            f"pipeline deadlock at cycle {self.now} running "
            f"{self.program.name} on {self.config.name}",
            f"committed {self.rob.total_committed}/{self._to_commit}",
            f"PFRL free={self.mapping.free_count}  "
            f"FRL free={self.rat.free_count}  ROB={self.rob.occupancy}",
        ]
        for name, queue in (("pre-issue", self.pre_issue_q),
                            ("mem", self.mem_q), ("arith", self.arith_q)):
            lines.append(f"{name} queue ({len(queue)}):")
            for uop in list(queue)[:4]:
                lines.append("  " + uop.describe())
        return "\n".join(lines)
