"""Reference stepper: the poll-every-stage-every-cycle AVA pipeline.

This is the original cycle-level implementation of
:class:`repro.vpu.pipeline.VectorPipeline`, retained **verbatim** as the
golden reference for the event-driven scheduler that replaced it.  It is
deliberately naive: every stage is re-evaluated every stepped cycle, and the
clock only fast-forwards when *no* stage makes progress.  Do not optimise
this file — its value is that it stays simple enough to audit against the
paper, while ``tests/vpu/test_pipeline_equivalence.py`` asserts the
production scheduler reproduces its statistics and functional output
byte-for-byte across every workload and configuration.

Stage order per cycle (resources freed early in the cycle are visible to
later stages, classic reverse-pipeline evaluation):

1. **commit** — up to ``commit_width`` finished ROB heads retire: RAC source
   decrements, old-destination VVRs return to the FRL, aggressive register
   reclamation frees physical registers whose counts reached zero;
2. **complete** — issued micro-ops whose last element wrote back flip to
   DONE and set their VVR valid bit;
3. **issue** — the memory and arithmetic queue heads issue in order (each
   queue in-order, the pair decoupled = the paper's "light out-of-order"),
   subject to chaining readiness and the two swap issue rules;
4. **pre-issue** — the second-level mapping (§III.C steps A/B/C): one action
   per cycle — either generating one swap operation or dispatching the head
   micro-op into its queue;
5. **rename** — first-level renaming (logical -> VVR) at one instruction per
   cycle, stalling on an empty FRL or a full ROB;
6. **dispatch** — the 2 GHz scalar core feeds the VPU's dispatch queue and
   absorbs the scalar loop-control blocks.

When a cycle makes no progress the clock fast-forwards to the next
timestamped event; if no event exists the pipeline raises
:class:`DeadlockError` with a diagnostic dump (the dependency-ordering
invariant in :mod:`repro.core.uop` makes this unreachable for well-formed
programs, and the property tests lean on that).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.config import MachineConfig
from repro.core.rac import RegisterAccessCounters
from repro.core.rat import RenameTable
from repro.core.rob import ReorderBuffer
from repro.core.swap import SwapLogic, VictimPolicy
from repro.core.uop import MicroOp, UopState
from repro.core.vrf import TwoLevelVRF
from repro.core.vrf_mapping import VRFMapping
from repro.isa.instructions import Instruction, Tag
from repro.isa.opcodes import Op, evaluate_arith
from repro.isa.program import Program
from repro.memory.hierarchy import MemorySystem
from repro.sim.layout import MemoryLayout
from repro.sim.stats import SimStats
from repro.vpu.params import TimingParams
from repro.vpu.vmu import VectorMemoryUnit


from repro.vpu.pipeline import DeadlockError


# Pre-issue action outcomes.
_OK = "ok"
_CREATED = "created-swap"
_STALL_VICTIM = "stall-victim"
_STALL_QUEUE = "stall-queue"


class ReferencePipeline:
    """One VPU instance executing one program, stepped cycle by cycle."""

    def __init__(self, config: MachineConfig, program: Program,
                 params: Optional[TimingParams] = None,
                 memsys: Optional[MemorySystem] = None,
                 functional: bool = False,
                 victim_policy: VictimPolicy = VictimPolicy.RAC_MIN,
                 aggressive_reclamation: bool = True,
                 sanitize: bool = False) -> None:
        program.validate(config.n_logical)
        self.config = config
        self.program = program
        self.params = params or TimingParams()
        self.functional = functional
        self.aggressive_reclamation = aggressive_reclamation

        self.memsys = memsys or MemorySystem()
        self.layout = MemoryLayout(program, config, functional=functional)
        self.vmu = VectorMemoryUnit(self.memsys, self.layout)

        self.rat = RenameTable(config.n_logical, config.n_vvr)
        self.rac = RegisterAccessCounters(config.n_vvr)
        # The initial identity RAT mappings behave as if each VVR had been
        # renamed as a destination once: they carry the +1 that the old-dest
        # decrement releases when the logical register is first overwritten.
        for vvr in self.rat.live_vvrs():
            self.rac.increment(vvr)
        self.mapping = VRFMapping(config.n_vvr, config.n_physical)
        self.vrf = TwoLevelVRF(config.n_vvr, config.n_physical, config.mvl,
                               functional=functional)
        self.swap_logic = SwapLogic(self.mapping, self.rac, self.vrf,
                                    policy=victim_policy)
        self.rob = ReorderBuffer(self.params.rob_entries,
                                 self.params.commit_width)

        self.dispatch_q: Deque[Instruction] = deque()
        self.pre_issue_q: Deque[MicroOp] = deque()
        self.arith_q: Deque[MicroOp] = deque()
        self.mem_q: Deque[MicroOp] = deque()

        # vvr -> in-flight producer micro-op (value not yet written back).
        self._pending_writer: Dict[int, MicroOp] = {}
        # vvr -> number of queued (pre-issued, not yet issued) readers; the
        # Swap Logic deprioritises these as victims (evicting one forces an
        # immediate Swap-Load back).
        self._vvr_queued_readers: Dict[int, int] = {}
        # preg -> outstanding reader micro-ops (pruned lazily once DONE).
        self._preg_readers: Dict[int, List[MicroOp]] = {}
        # preg -> the Swap-Store that freed it (issue rule 1).
        self._pending_store_guard: Dict[int, MicroOp] = {}
        # vvr -> in-flight Swap-Store filling its M-VRF home slot; a
        # Swap-Load of the same VVR depends on it through memory.
        self._pending_mvrf_store: Dict[int, MicroOp] = {}

        self._completions: List[Tuple[int, int, MicroOp]] = []
        self._seq = 0
        self._arith_busy_until = 0
        self._mem_busy_until = 0
        self._fetch_idx = 0
        self._scalar_time = 0.0
        self._inflight_mem = 0  # uncommitted vector memory instructions
        self._to_commit = sum(1 for i in program.insts if not i.is_scalar)

        self.now = 0
        self.stats = SimStats(config_name=config.name,
                              program_name=program.name)

        # Microarchitectural sanitizer (None in normal runs); same probe
        # protocol as the event-driven pipeline, so an invariant violation
        # reproduces identically on both implementations.
        self._san = None
        if sanitize:
            self._install_sanitizer()

    def _install_sanitizer(self) -> None:
        from repro.analysis.sanitizer import PipelineSanitizer
        san = PipelineSanitizer(label=f"{self.config.name}/"
                                      f"{self.program.name} (reference)")
        san.bind(lambda: self.now, rat=self.rat, mapping=self.mapping)
        self.mapping.sanitizer = san
        self.vrf.sanitizer = san
        self.rob.sanitizer = san
        self.rat.sanitizer = san
        self._san = san

    # ------------------------------------------------------------------ utils
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _is_done(self, uop: MicroOp) -> bool:
        if uop.state in (UopState.DONE, UopState.COMMITTED):
            return True
        return uop.state is UopState.ISSUED and uop.done_at <= self.now

    @property
    def finished(self) -> bool:
        return self.rob.total_committed >= self._to_commit

    # ------------------------------------------------------------------ run
    def run(self, max_cycles: int = 200_000_000) -> SimStats:
        """Execute to completion; returns the accumulated statistics."""
        while not self.finished:
            if self.now > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"(now={self.now}, {self.rob.total_committed}/"
                    f"{self._to_commit} committed)")
            progress = self._step()
            self.stats.events_processed += 1
            if progress:
                self.now += 1
            else:
                self._fast_forward()
        self._harvest()
        if self._san is not None:
            self._san.on_run_end(self.stats)
        return self.stats

    def _step(self) -> bool:
        progress = self._commit()
        progress |= self._complete()
        progress |= self._issue_memory()
        progress |= self._issue_arith()
        progress |= self._pre_issue()
        progress |= self._rename()
        progress |= self._dispatch()
        return progress

    def _fast_forward(self) -> None:
        candidates: List[float] = []
        if self._completions:
            candidates.append(self._completions[0][0])
        if self.mem_q:
            candidates.append(self._mem_busy_until)
            wait = self._head_wait_time(self.mem_q[0])
            if wait is not None:
                candidates.append(wait)
            # Swap ops can issue out of order past a blocked head.
            for queued in self.mem_q:
                if queued.inst.tag is Tag.SWAP:
                    wait = self._head_wait_time(queued)
                    if wait is not None:
                        candidates.append(wait)
        if self.arith_q:
            candidates.append(self._arith_busy_until)
            wait = self._head_wait_time(self.arith_q[0])
            if wait is not None:
                candidates.append(wait)
        if self._fetch_idx < len(self.program.insts):
            candidates.append(math.ceil(self._scalar_time))
        future = [c for c in candidates if c > self.now]
        if not future:
            raise DeadlockError(self._dump())
        target = int(min(future))
        self.stats.fast_forward_cycles += target - self.now
        self.stats.cycles_skipped += target - self.now
        # Span accounting: one stalled interval disposed of in one step.
        # The covered span is the evaluated probe cycle plus the jump.
        self.stats.spans_charged += 1
        self.stats.span_cycles += target - self.now + 1
        self.now = target
        if self._san is not None:
            self._san.on_span(self.stats)

    def _head_wait_time(self, uop: MicroOp) -> Optional[float]:
        """Earliest cycle the queue head could become ready, if timestamped."""
        t = 0.0
        for p in uop.producers:
            if p is None:
                continue
            if p.issued_at < 0:
                return None  # producer not issued yet; no timestamp exists
            t = max(t, p.issued_at + self.params.chain_issue_delay)
        guards = list(uop.reader_guards)
        if uop.store_guard is not None:
            guards.append(uop.store_guard)
        for g in guards:
            if g.issued_at < 0:
                return None
            t = max(t, g.issued_at + self.params.chain_issue_delay)
        return t

    # ------------------------------------------------------------------ commit
    def _commit(self) -> bool:
        ready = self.rob.committable(self.now)
        if not ready:
            return False
        for uop in ready:
            self._retire(uop)
        return True

    def _retire(self, uop: MicroOp) -> None:
        self.rob.retire(uop, self.now)
        for vvr in uop.src_vvrs:
            self.rac.decrement(vvr)
            if (self.aggressive_reclamation and self.rac.is_reclaimable(vvr)
                    and self.mapping.in_pvrf(vvr)
                    and self.vrf.is_valid(vvr)):
                self.mapping.release(vvr)
                self.swap_logic.note_release(vvr)
                self.vrf.drop_mvrf(vvr)  # generation is dead
        if uop.dst_vvr is not None:
            assert uop.old_dst_vvr is not None
            old = uop.old_dst_vvr
            self.mapping.release(old)
            self.swap_logic.note_release(old)
            self.vrf.drop_mvrf(old)
            self.rac.reset(old)
            self.vrf.mark_valid(old)
            self.vrf.commit_valid(old)
            self.vrf.commit_valid(uop.dst_vvr)
            self.rat.commit(uop.inst.dst, uop.dst_vvr, old)
        if uop.inst.is_memory:
            self._inflight_mem -= 1
        self.stats.committed += 1

    # ------------------------------------------------------------------ complete
    def _complete(self) -> bool:
        progress = False
        while self._completions and self._completions[0][0] <= self.now:
            _, _, uop = heapq.heappop(self._completions)
            uop.state = UopState.DONE
            if uop.dst_vvr is not None:
                self.vrf.mark_valid(uop.dst_vvr)
                if self._pending_writer.get(uop.dst_vvr) is uop:
                    del self._pending_writer[uop.dst_vvr]
            if uop.inst.tag is Tag.SWAP and uop.inst.is_store:
                victim = uop.src_vvrs[0]
                if self._pending_mvrf_store.get(victim) is uop:
                    del self._pending_mvrf_store[victim]
            progress = True
        return progress

    # ------------------------------------------------------------------ issue
    def _ready(self, uop: MicroOp) -> bool:
        """Chaining readiness: producers and guards issued.

        Producers: elements will stream in as this op consumes them.
        Guards (swap rules 1 and 2): the old value's Swap-Store / readers
        drain the register at stream rate one beat ahead of the new owner's
        writes, so issue may chain behind them too; the completion clamp in
        :meth:`_finish_issue` keeps the new owner's write-back behind their
        reads in time.
        """
        delay = self.params.chain_issue_delay
        deps = list(uop.producers) + list(uop.reader_guards)
        if uop.store_guard is not None:
            deps.append(uop.store_guard)
        for p in deps:
            if p is None:
                continue
            if p.issued_at < 0 or p.issued_at + delay > self.now:
                return False
        return True

    def _issue_memory(self) -> bool:
        if not self.mem_q or self._mem_busy_until > self.now:
            return False
        uop = self.mem_q[0]
        outcome = self._ensure_operands(uop)
        if outcome == _CREATED:
            return True  # a priority swap op now heads the memory queue
        if outcome == _STALL_VICTIM:
            self.stats.issue_victim_stalls += 1
            return self._issue_swap_bypass()
        if not self._ready(uop):
            return self._issue_swap_bypass()
        self.mem_q.popleft()
        self._issue_memory_uop(uop)
        return True

    def _issue_memory_uop(self, uop: MicroOp) -> None:
        plan = self.vmu.plan(uop.inst)
        dead = self.params.mem_dead_time
        latency = self.vmu.first_element_latency + plan.miss_latency
        occupancy = dead + plan.occupancy
        self._finish_issue(uop, occupancy, dead, latency)
        self._mem_busy_until = self.now + occupancy
        self.stats.mem_busy_cycles += occupancy
        self.stats.mem_beats += plan.beats
        uop.dram_stall = plan.fill_beats + plan.miss_latency
        self._count_issue(uop)
        if uop.inst.tag is Tag.SWAP:
            self._execute_swap(uop)
        else:
            self._execute_memory(uop)

    def _issue_swap_bypass(self) -> bool:
        """Issue a ready swap op from behind a blocked memory-queue head.

        Swap operations move data between the P-VRF and the M-VRF only —
        they can never alias application memory — so when the in-order head
        is stalled, the memory unit may service a younger ready swap op
        instead.  This both resolves head-waits-on-queued-swap chains (the
        head's own source may be coming back via a Swap-Load sitting behind
        it) and overlaps swap traffic with dependency stalls.
        """
        for idx in range(1, len(self.mem_q)):
            cand = self.mem_q[idx]
            if cand.inst.tag is not Tag.SWAP:
                continue
            if not self._ready(cand):
                continue
            del self.mem_q[idx]
            self._issue_memory_uop(cand)
            return True
        return False

    def _issue_arith(self) -> bool:
        if not self.arith_q or self._arith_busy_until > self.now:
            return False
        uop = self.arith_q[0]
        outcome = self._ensure_operands(uop)
        if outcome == _CREATED:
            return True
        if outcome == _STALL_VICTIM:
            self.stats.issue_victim_stalls += 1
            return False
        if not self._ready(uop):
            return False
        self.arith_q.popleft()
        info = uop.inst.info
        beats = self.params.arith_beats(uop.inst.vl, info.beats_per_element)
        dead = self.params.arith_dead_time
        occupancy = dead + beats
        self._finish_issue(uop, occupancy, dead, info.latency)
        self._arith_busy_until = self.now + occupancy
        self.stats.arith_busy_cycles += occupancy
        self._count_issue(uop)
        self._execute_arith(uop)
        return True

    def _ensure_operands(self, uop: MicroOp) -> str:
        """Issue-time operand resolution (§VIII: registers "at issue time").

        Sources were resolved optimistically at pre-issue, but a mapping can
        have gone stale if the Swap Logic evicted the VVR while this
        instruction waited in its queue; such sources are re-resolved here,
        generating a **priority Swap-Load** at the memory-queue front.  The
        destination physical register is assigned here (not at queue entry),
        so queued instructions hold no registers and P-VRF pressure tracks
        live architectural values, not window depth.  When the PFRL is empty
        the Swap Mechanism first reclaims an RAC==0 register, then evicts a
        clean victim for free, and only then creates a **priority
        Swap-Store** (Swap-1; issue rule 1 makes the new owner trail it).
        """
        created = False
        if uop.inst.tag is not Tag.SWAP:
            refreshed = []
            for vvr in uop.src_vvrs:
                if not self.mapping.in_pvrf(vvr):
                    if not self.mapping.in_mvrf(vvr):
                        raise AssertionError(
                            f"source VVR {vvr} of {uop.describe()} has "
                            f"neither a physical register nor an M-VRF home")
                    excluded = list(uop.src_vvrs)
                    if uop.dst_vvr is not None:
                        excluded.append(uop.dst_vvr)
                    outcome = self._free_one_preg(excluded, front=True)
                    if outcome == _CREATED:
                        return _CREATED
                    if outcome != _OK:
                        return outcome
                    self._emit_swap_load(vvr, front=True)
                    return _CREATED
                refreshed.append(self.mapping.preg_of(vvr))
            new_pregs = tuple(refreshed)
            # Always rebuild the producer links: a source may have been
            # evicted and Swap-Loaded back (possibly into the same physical
            # register) while this instruction waited, and its value now
            # comes from that in-flight Swap-Load.
            uop.producers = []
            for vvr in uop.src_vvrs:
                producer = self._pending_writer.get(vvr)
                uop.attach_producer(
                    producer if producer is not None
                    and not self._is_done(producer) else None)
            if new_pregs != uop.src_pregs:
                uop.src_pregs = new_pregs
                for preg in new_pregs:
                    readers = self._preg_readers.setdefault(preg, [])
                    if uop not in readers:
                        readers.append(uop)

        if uop.dst_vvr is None or uop.dst_preg is not None:
            return _OK
        excluded = list(uop.src_vvrs) + [uop.dst_vvr]
        if self.mapping.free_count == 0:
            outcome = self._free_one_preg(excluded, front=True)
            if outcome == _CREATED:
                created = True
            elif outcome != _OK:
                return outcome
        preg = self.mapping.allocate(uop.dst_vvr)
        self._attach_write_guards(uop, preg)
        uop.dst_preg = preg
        return _CREATED if created else _OK

    def _free_one_preg(self, excluded: List[int], front: bool) -> str:
        """Make the PFRL non-empty: reclaim, clean-evict, or Swap-Store."""
        if self.mapping.free_count > 0:
            return _OK
        reclaim = (self.swap_logic.reclaimable_vvr(excluded)
                   if self.aggressive_reclamation else None)
        if reclaim is not None:
            self.mapping.release(reclaim)
            self.swap_logic.note_release(reclaim)
            self.vrf.drop_mvrf(reclaim)
            return _OK
        victim = self._select_victim(excluded)
        if victim is None:
            return _STALL_VICTIM
        if self.vrf.has_mvrf_copy(victim):
            self._clean_evict(victim)
            return _OK
        if not front and len(self.mem_q) >= self.params.mem_queue_depth:
            return _STALL_QUEUE
        self._emit_swap_store(victim, front=front)
        return _CREATED

    def _finish_issue(self, uop: MicroOp, occupancy: int, dead: int,
                      latency: int) -> None:
        """Stamp issue/first-ready/done under the streaming-chaining model.

        The consumer's first element trails both its own pipeline
        (``dead + latency``) and its producers' first elements by its own
        latency; its last element trails its own stream and its producers'
        last elements likewise.  Occupancy is charged to the unit by the
        caller.
        """
        uop.state = UopState.ISSUED
        uop.issued_at = self.now
        prod_first = 0
        prod_done = 0
        for p in uop.producers:
            if p is not None:
                prod_first = max(prod_first, p.first_ready)
                prod_done = max(prod_done, p.done_at)
        # Swap rules in streaming form: this op's writes trail the old
        # value's store/readers, so its completion cannot precede theirs.
        guard_done = 0
        for g in uop.reader_guards:
            guard_done = max(guard_done, g.done_at)
        if uop.store_guard is not None:
            guard_done = max(guard_done, uop.store_guard.done_at)
        first = max(self.now + dead + latency, prod_first + latency)
        done = max(self.now + occupancy + latency,
                   prod_done + latency,
                   guard_done + 1,
                   first + max(0, occupancy - dead))
        uop.first_ready = first
        uop.done_at = done
        heapq.heappush(self._completions, (done, uop.seq, uop))

    def _count_issue(self, uop: MicroOp) -> None:
        inst = uop.inst
        if inst.tag is not Tag.SWAP:
            # Swap ops never pass through pre-issue step C, so only regular
            # uops carry queued-reader pins.
            for vvr in uop.src_vvrs:
                remaining = self._vvr_queued_readers.get(vvr, 0) - 1
                if remaining > 0:
                    self._vvr_queued_readers[vvr] = remaining
                else:
                    self._vvr_queued_readers.pop(vvr, None)
        if inst.is_arith:
            self.stats.arith_insts += 1
            self.stats.fpu_element_ops += inst.vl
        elif inst.is_load:
            if inst.tag is Tag.SPILL:
                self.stats.spill_loads += 1
            elif inst.tag is Tag.SWAP:
                self.stats.swap_loads += 1
            else:
                self.stats.vloads += 1
        else:
            if inst.tag is Tag.SPILL:
                self.stats.spill_stores += 1
            elif inst.tag is Tag.SWAP:
                self.stats.swap_stores += 1
            else:
                self.stats.vstores += 1

    # ------------------------------------------------------------------ execute
    def _execute_arith(self, uop: MicroOp) -> None:
        inst = uop.inst
        if self._san is not None:
            self._san.on_execute(uop)
        values = [self.vrf.read_preg(p, inst.vl) for p in uop.src_pregs]
        assert uop.dst_preg is not None
        if self.functional:
            result = evaluate_arith(inst.op, values, inst.scalar, inst.vl)
            self.vrf.write_preg(uop.dst_preg, result, inst.vl)
        else:
            self.vrf.write_preg(uop.dst_preg, None, inst.vl)  # counters only

    def _execute_swap(self, uop: MicroOp) -> None:
        if uop.inst.is_store:
            victim = uop.src_vvrs[0]
            if self.vrf.generation(victim) != uop.swap_gen:
                # The generation this store was saving died while the store
                # waited in the queue (its readers all committed and the
                # register was reclaimed); the slot now belongs to a newer
                # generation and must not be overwritten.
                if self._san is not None:
                    self._san.on_swap_squashed(uop.src_pregs[0])
                return
            self.vrf.swap_out(victim, uop.src_pregs[0])
        else:
            assert uop.dst_vvr is not None and uop.dst_preg is not None
            if self.vrf.generation(uop.dst_vvr) != uop.swap_gen:
                raise AssertionError(
                    "swap-load executing for a dead VVR generation")
            self.vrf.swap_in(uop.dst_vvr, uop.dst_preg)

    def _execute_memory(self, uop: MicroOp) -> None:
        inst = uop.inst
        mem = inst.mem
        assert mem is not None
        if self._san is not None:
            self._san.on_execute(uop)
        if inst.is_load:
            assert uop.dst_preg is not None
            if self.functional:
                index = None
                if mem.indexed:
                    index = self.vrf.read_preg(uop.src_pregs[0], inst.vl)
                data = self.layout.load(mem, inst.vl, index)
                self.vrf.write_preg(uop.dst_preg, data, inst.vl)
            else:
                if mem.indexed:
                    self.vrf.read_preg(uop.src_pregs[0], inst.vl)
                self.vrf.write_preg(uop.dst_preg, None, inst.vl)
            return
        # Store: data always comes from srcs[0]; gather index from srcs[1].
        data = self.vrf.read_preg(uop.src_pregs[0], inst.vl)
        index = None
        if mem.indexed:
            index = self.vrf.read_preg(uop.src_pregs[1], inst.vl)
        if self.functional:
            assert data is not None
            self.layout.store(mem, inst.vl, data, index)

    # ------------------------------------------------------------------ pre-issue
    def _pre_issue(self) -> bool:
        if not self.pre_issue_q:
            return False
        uop = self.pre_issue_q[0]
        excluded = list(uop.src_vvrs)
        if uop.dst_vvr is not None:
            excluded.append(uop.dst_vvr)

        # Step A: map sources; evicted sources need a Swap-Load each.  Swap
        # generation is combinational with the mapping update, so mapping can
        # complete in the same cycle as dispatch, but the memory queue
        # accepts at most `preissue_swap_budget` inserted swap ops per cycle.
        budget = self.params.preissue_swap_budget
        for vvr in uop.src_vvrs:
            if self.mapping.in_pvrf(vvr):
                continue
            if self.mapping.in_mvrf(vvr):
                if budget <= 0:
                    return True  # resume next cycle
                outcome = self._acquire_preg(excluded)
                if outcome == _CREATED:
                    budget -= 1
                    if budget <= 0:
                        return True
                    outcome = self._acquire_preg(excluded)
                if outcome != _OK:
                    self._count_preissue_stall(outcome)
                    return False
                self._emit_swap_load(vvr)
                budget -= 1
                continue
            if vvr in self._pending_writer:
                # The producer has not issued yet, so the VVR has no physical
                # register (destinations are assigned at issue time).  Wait
                # in order; the producer sits ahead in an issue queue.
                self.stats.preissue_writer_stalls += 1
                return False
            # Never-defined source: allocate and read the SRAM reset state.
            outcome = self._acquire_preg(excluded)
            if outcome == _CREATED:
                return True
            if outcome != _OK:
                self._count_preissue_stall(outcome)
                return False
            preg = self.mapping.allocate(vvr)
            if self._san is not None:
                # Reading the reset state of a never-defined source is
                # legal, not a read-before-write.
                self._san.on_reset_alloc(preg)
            self._attach_write_guards(None, preg)  # drop stale guards
            self.swap_logic.note_allocation(vvr)

        # Step B (destination mapping) happens at issue time — see
        # _ensure_dst_preg.  Step C: dispatch into the issue queue.
        target = self.mem_q if uop.inst.is_memory else self.arith_q
        depth = (self.params.mem_queue_depth if uop.inst.is_memory
                 else self.params.arith_queue_depth)
        if len(target) >= depth:
            self.stats.preissue_queue_stalls += 1
            return False

        uop.src_pregs = tuple(self.mapping.preg_of(v) for v in uop.src_vvrs)
        for vvr in uop.src_vvrs:
            producer = self._pending_writer.get(vvr)
            uop.attach_producer(
                producer if producer is not None
                and not self._is_done(producer) else None)
        for preg in uop.src_pregs:
            self._preg_readers.setdefault(preg, []).append(uop)
        for vvr in uop.src_vvrs:
            self._vvr_queued_readers[vvr] = (
                self._vvr_queued_readers.get(vvr, 0) + 1)
        # The destination physical register is assigned at issue time
        # (_ensure_dst_preg); uop.dst_preg stays None until then.
        uop.state = UopState.PRE_ISSUED
        uop.pre_issued_at = self.now
        uop.seq = self._next_seq()
        uop.validate_ordering()
        self.pre_issue_q.popleft()
        target.append(uop)
        return True

    def _count_preissue_stall(self, outcome: str) -> None:
        if outcome == _STALL_VICTIM:
            self.stats.preissue_victim_stalls += 1
        else:
            self.stats.preissue_queue_stalls += 1

    def _select_victim(self, excluded: List[int]) -> Optional[int]:
        """Swap Logic victim choice with the pipeline's reload context."""
        return self.swap_logic.select_victim(
            excluded,
            has_queued_reader=lambda v: self._vvr_queued_readers.get(v, 0) > 0,
            rat_live=self.rat.live_vvrs(),
            is_clean=self.vrf.has_mvrf_copy)

    def _clean_evict(self, victim: int) -> None:
        """Evict a VVR whose M-VRF copy is still valid: a pure remap."""
        self.mapping.evict(victim)
        self.swap_logic.note_release(victim)

    def _acquire_preg(self, excluded: List[int]) -> str:
        """Ensure the PFRL is non-empty (§III.C Swap-1, pre-issue path)."""
        return self._free_one_preg(excluded, front=False)

    def _emit_swap_store(self, victim: int, front: bool = False) -> None:
        preg = self.mapping.preg_of(victim)
        inst = Instruction(op=Op.VSE, srcs=(0,), vl=self.config.mvl,
                           mem=self.layout.mvrf_operand(victim), tag=Tag.SWAP)
        uop = MicroOp(inst, seq=self._next_seq(), state=UopState.PRE_ISSUED,
                      src_vvrs=(victim,), src_pregs=(preg,),
                      renamed_at=self.now, pre_issued_at=self.now,
                      priority=front, swap_gen=self.vrf.generation(victim))
        if self._san is not None:
            self._san.on_swap_store_emitted(preg)
        self.mapping.evict(victim)
        self.swap_logic.note_release(victim)
        self._pending_store_guard[preg] = uop
        self._pending_mvrf_store[victim] = uop
        self._preg_readers.setdefault(preg, []).append(uop)
        uop.validate_ordering()
        if front:
            self.mem_q.appendleft(uop)
        else:
            self.mem_q.append(uop)

    def _emit_swap_load(self, vvr: int, front: bool = False) -> None:
        preg = self.mapping.allocate(vvr)
        inst = Instruction(op=Op.VLE, dst=0, vl=self.config.mvl,
                           mem=self.layout.mvrf_operand(vvr), tag=Tag.SWAP)
        uop = MicroOp(inst, seq=self._next_seq(), state=UopState.PRE_ISSUED,
                      dst_vvr=vvr, dst_preg=preg,
                      renamed_at=self.now, pre_issued_at=self.now,
                      priority=front, swap_gen=self.vrf.generation(vvr))
        self._attach_write_guards(uop, preg)
        # The load reads the M-VRF home slot; if the Swap-Store filling that
        # slot is still in flight, it is this load's data producer.
        filler = self._pending_mvrf_store.get(vvr)
        if filler is not None and not self._is_done(filler):
            uop.attach_producer(filler)
        self._pending_writer[vvr] = uop
        self.vrf.mark_pending(vvr)
        self.swap_logic.note_allocation(vvr)
        uop.validate_ordering()
        if front:
            # Priority load: jump the queue, but never ahead of the
            # Swap-Store that freed its physical register, nor ahead of the
            # Swap-Store filling its M-VRF slot — the memory queue issues in
            # order, so landing in front of either would deadlock or read a
            # slot that has not been written yet.
            idx = 0
            for dep in (uop.store_guard, filler):
                if dep is None or dep.issued_at >= 0:
                    continue
                for pos, queued in enumerate(self.mem_q):
                    if queued is dep:
                        idx = max(idx, pos + 1)
                        break
            self.mem_q.insert(idx, uop)
        else:
            self.mem_q.append(uop)

    def _attach_write_guards(self, writer: Optional[MicroOp],
                             preg: int) -> None:
        """Guard a new owner of ``preg`` against the old value's users.

        Rule 1: the Swap-Store that freed the register must have executed
        (the new owner chains behind it).  Rule 2: readers of the previous
        value that have already **issued** clamp the new owner's write-back
        behind their streaming reads; readers still waiting in a queue are
        *not* guards — their mapping went stale and they re-resolve their
        source at issue time (_ensure_operands), reloading the value from
        the M-VRF.  Restricting guards to issued micro-ops keeps the wait
        graph acyclic by construction.

        Passing ``writer=None`` just clears stale tracking (uninitialised
        reads own the register without writing it).
        """
        guard = self._pending_store_guard.pop(preg, None)
        readers = self._preg_readers.pop(preg, [])
        if writer is None:
            return
        if guard is not None:
            writer.attach_store_guard(guard)
        for reader in readers:
            if reader.issued_at >= 0 and not self._is_done(reader):
                writer.attach_reader_guard(reader)

    # ------------------------------------------------------------------ rename
    def _rename(self) -> bool:
        if not self.dispatch_q:
            return False
        if len(self.pre_issue_q) >= self.params.pre_issue_depth:
            return False
        if self.rob.full:
            self.stats.rename_rob_stalls += 1
            return False
        inst = self.dispatch_q[0]
        if inst.dst is not None and not self.rat.can_rename_dst():
            self.stats.rename_frl_stalls += 1
            return False
        self.dispatch_q.popleft()

        src_vvrs = self.rat.rename_sources(inst.srcs)
        for vvr in src_vvrs:
            self.rac.increment(vvr)
        dst_vvr = old_vvr = None
        if inst.dst is not None:
            dst_vvr, old_vvr = self.rat.rename_destination(inst.dst)
            self.rac.increment(dst_vvr)
            self.rac.decrement(old_vvr)
            self.vrf.mark_pending(dst_vvr)
            # Aggressive reclamation case 1 at rename time, guarded by the
            # paper's condition (b): no older vector memory instruction may
            # be in flight (they are the recovery-event sources).
            if (self.aggressive_reclamation
                    and self.rac.is_reclaimable(old_vvr)
                    and self.mapping.in_pvrf(old_vvr)
                    and self.vrf.is_valid(old_vvr)
                    and self._inflight_mem == 0):
                self.mapping.release(old_vvr)
                self.swap_logic.note_release(old_vvr)
                self.vrf.drop_mvrf(old_vvr)  # generation is dead

        uop = MicroOp(inst, src_vvrs=src_vvrs,
                      dst_vvr=dst_vvr, old_dst_vvr=old_vvr,
                      renamed_at=self.now)
        if dst_vvr is not None:
            self._pending_writer[dst_vvr] = uop
        self.rob.allocate(uop)
        if inst.is_memory:
            self._inflight_mem += 1
        self.pre_issue_q.append(uop)
        return True

    # ------------------------------------------------------------------ dispatch
    def _dispatch(self) -> bool:
        progress = False
        insts = self.program.insts
        while self._fetch_idx < len(insts):
            inst = insts[self._fetch_idx]
            if inst.is_scalar:
                assert inst.scalar is not None
                self._scalar_time += self.params.scalar_to_vpu(inst.scalar)
                self.stats.scalar_blocks += 1
                self._fetch_idx += 1
                progress = True
                continue
            if len(self.dispatch_q) >= self.params.dispatch_queue_depth:
                break
            if self._scalar_time > self.now:
                break
            self.dispatch_q.append(inst)
            self._fetch_idx += 1
            self._scalar_time += self.params.scalar_to_vpu(
                self.params.dispatch_scalar_cycles)
            progress = True
        return progress

    # ------------------------------------------------------------------ results
    def _harvest(self) -> None:
        self.stats.cycles = self.now
        self.stats.vrf_reads = self.vrf.pvrf_reads
        self.stats.vrf_writes = self.vrf.pvrf_writes
        self.stats.mvrf_reads = self.vrf.mvrf_reads
        self.stats.mvrf_writes = self.vrf.mvrf_writes
        l2 = self.memsys.l2.stats
        self.stats.l2_reads = l2.reads
        self.stats.l2_writes = l2.writes
        self.stats.l2_misses = l2.misses
        self.stats.dram_accesses = self.memsys.dram.accesses

    def _dump(self) -> str:
        lines = [
            f"pipeline deadlock at cycle {self.now} running "
            f"{self.program.name} on {self.config.name}",
            f"committed {self.rob.total_committed}/{self._to_commit}",
            f"PFRL free={self.mapping.free_count}  "
            f"FRL free={self.rat.free_count}  ROB={self.rob.occupancy}",
        ]
        for name, queue in (("pre-issue", self.pre_issue_q),
                            ("mem", self.mem_q), ("arith", self.arith_q)):
            lines.append(f"{name} queue ({len(queue)}):")
            for uop in list(queue)[:4]:
                lines.append("  " + uop.describe())
        return "\n".join(lines)
