"""Timing parameters of the behavioural VPU model.

Structural parameters (lane count, queue depths) come straight from
Table II.  The two *dead-time* constants are the *calibrated* behavioural
knobs: they lump together the per-instruction overheads a cycle-accurate
pipeline exposes implicitly (issue handshake, VRF address setup, pipeline
drain between dependent groups).  They were tuned once so the baseline
anchor reproduces the paper's headline — axpy at AVA X8 speeds up ~2× over
NATIVE X1 (paper: 2.03×) — and are frozen; every experiment uses the same
values for every machine family, so comparisons stay honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, List

from repro.registry import PresetRegistry


@dataclass(frozen=True)
class TimingParams:
    """Knobs of the VPU timing model (cycles are 1 GHz VPU cycles)."""

    #: Vector lanes; each contributes one 64-bit element per beat (Table II).
    lanes: int = 8
    #: Per-instruction startup overhead of the arithmetic pipeline.
    arith_dead_time: int = 3
    #: Per-instruction startup overhead of the memory unit (address setup).
    mem_dead_time: int = 3
    #: Scalar-core -> VPU dispatch queue depth.
    dispatch_queue_depth: int = 8
    #: Pre-issue queue depth (first stage of the two-stage issue unit).
    pre_issue_depth: int = 4
    #: Arithmetic issue queue depth (Table II: 32 entries).
    arith_queue_depth: int = 32
    #: Memory issue queue depth (Table II: 32 entries).
    mem_queue_depth: int = 32
    #: Reorder-buffer entries.
    rob_entries: int = 64
    #: Instructions committed per cycle.
    commit_width: int = 2
    #: Scalar-core clock / VPU clock (2 GHz / 1 GHz, Table II).
    scalar_clock_ratio: float = 2.0
    #: Scalar-core cycles to hand one vector instruction to the VPU.
    dispatch_scalar_cycles: float = 1.0
    #: Chaining: a consumer may issue this many cycles after its producer
    #: issued (element streams overlap; latencies propagate through the
    #: first-ready / done timestamps instead of blocking issue).
    chain_issue_delay: int = 1
    #: Swap operations the pre-issue stage can insert into the memory queue
    #: per cycle (swap generation is combinational with source mapping).
    preissue_swap_budget: int = 2

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError("need at least one lane")
        if self.scalar_clock_ratio <= 0:
            raise ValueError("scalar clock ratio must be positive")
        for knob in ("dispatch_queue_depth", "pre_issue_depth",
                     "arith_queue_depth", "mem_queue_depth", "rob_entries",
                     "commit_width", "preissue_swap_budget"):
            if getattr(self, knob) < 1:
                raise ValueError(f"{knob} must be at least 1")
        if self.arith_dead_time < 0 or self.mem_dead_time < 0:
            raise ValueError("dead times cannot be negative")

    def arith_beats(self, vl: int, beats_per_element: float) -> int:
        """Cycles the arithmetic unit is occupied by a ``vl``-element op."""
        return max(1, math.ceil(vl / self.lanes * beats_per_element))

    def scalar_to_vpu(self, scalar_cycles: float) -> float:
        """Convert 2 GHz scalar-core cycles into 1 GHz VPU cycles."""
        return scalar_cycles / self.scalar_clock_ratio


#: Default parameter set shared by every experiment.
DEFAULT_TIMING = TimingParams()


# ---------------------------------------------------------------------------
# timing registry: named presets for the scenario layer's timing axis
# ---------------------------------------------------------------------------
_TIMING_REGISTRY: PresetRegistry[TimingParams] = \
    PresetRegistry("timing preset")


def register_timing(name: str, factory: Callable[[], TimingParams]) -> None:
    """Add a named timing preset (the ``register_workload`` pattern).

    Re-registering the same factory is a no-op; claiming a name another
    factory already holds raises ``ValueError``.
    """
    _TIMING_REGISTRY.register(name, factory)


def unregister_timing(name: str) -> bool:
    """Remove ``name`` from the registry (plugin/test cleanup hook)."""
    return _TIMING_REGISTRY.unregister(name)


def get_timing(name: str) -> TimingParams:
    """Instantiate a timing preset by its registered name."""
    return _TIMING_REGISTRY.get(name)


def timing_names() -> List[str]:
    """Every registered timing-preset name, sorted."""
    return _TIMING_REGISTRY.names()


#: Builtin presets: the calibrated default plus the swap-budget and
#: queue-depth departures the sensitivity study sweeps.
register_timing("default", TimingParams)
register_timing("single-swap",
                lambda: replace(DEFAULT_TIMING, preissue_swap_budget=1))
register_timing("wide-swap",
                lambda: replace(DEFAULT_TIMING, preissue_swap_budget=4))
register_timing("deep-queues",
                lambda: replace(DEFAULT_TIMING, arith_queue_depth=64,
                                mem_queue_depth=64, pre_issue_depth=8))
register_timing("shallow-queues",
                lambda: replace(DEFAULT_TIMING, arith_queue_depth=8,
                                mem_queue_depth=8, pre_issue_depth=2))
