"""Integration: the paper's key result shapes on reduced problem sizes.

These are the fast cross-checks of the claims the full benchmark harness
regenerates; each uses a handful of simulations rather than the full
14-configuration panels.
"""

import pytest

from repro import Simulator, ava_config, native_config, rg_config
from repro.workloads import get_workload


def run(name, config):
    workload = get_workload(name)
    sim = Simulator(config, workload.compile(config).program)
    sim.warm_caches()
    return sim.run().stats


def test_axpy_2x_headline():
    base = run("axpy", native_config(1))
    ava8 = run("axpy", ava_config(8))
    speedup = base.cycles / ava8.cycles
    assert 1.8 <= speedup <= 2.4  # paper: 2.03X
    assert ava8.swap_insts == 0


def test_ava_equals_native_when_pressure_fits():
    """AVA X2's 32 physical registers cover every app's live set."""
    for name in ("axpy", "blackscholes", "somier"):
        native = run(name, native_config(2))
        ava = run(name, ava_config(2))
        assert ava.cycles == native.cycles, name
        assert ava.swap_insts == 0


def test_rg_lmul8_frl_pressure():
    """§II: LMUL=8 leaves 4 free register groups -> rename stalls."""
    rg = run("axpy", rg_config(8))
    native = run("axpy", native_config(8))
    assert rg.rename_frl_stalls >= native.rename_frl_stalls


def test_lavamd_rg_collapse_vs_ava():
    rg = run("lavamd", rg_config(8))
    ava = run("lavamd", ava_config(8))
    base = run("lavamd", native_config(1))
    assert base.cycles / rg.cycles < 0.7  # paper: 0.48X slowdown
    assert ava.cycles < rg.cycles  # AVA degrades far less


def test_spill_code_runs_at_mvl_lavamd():
    """The RG-LMUL8 pathology: spills at VL=128 vs arithmetic at VL=48."""
    stats = run("lavamd", rg_config(8))
    assert stats.spill_insts > 0
    assert stats.memory_fraction > 0.3  # paper: 43%


def test_blackscholes_ava_swaps_track_rg_spills():
    ava = run("blackscholes", ava_config(8))
    rg = run("blackscholes", rg_config(8))
    assert 0 < ava.swap_insts <= 1.2 * rg.spill_insts
    assert ava.cycles < rg.cycles


def test_somier_memory_bound_character():
    stats = run("somier", native_config(1))
    assert stats.memory_fraction == pytest.approx(0.44, abs=0.06)
    # The memory unit carries a comparable load to the arithmetic unit —
    # "memory bound" in the paper shows up as the ~46% memory mix and the
    # L2-leakage-dominated energy, which the energy test below covers.
    assert stats.mem_busy_cycles > 0.6 * stats.arith_busy_cycles


def test_somier_l2_leakage_dominates_energy():
    from repro.power.mcpat import McPatModel

    cfg = native_config(1)
    report = McPatModel().energy(cfg, run("somier", cfg))
    assert report.l2_leakage > 0.4 * report.total


def test_energy_shape_axpy_saving():
    from repro.power.mcpat import McPatModel

    model = McPatModel()
    base_cfg, ava_cfg = native_config(1), ava_config(8)
    base = model.energy(base_cfg, run("axpy", base_cfg)).total
    ava = model.energy(ava_cfg, run("axpy", ava_cfg)).total
    saving = 1 - ava / base
    assert 0.25 <= saving <= 0.50  # paper: 37%
