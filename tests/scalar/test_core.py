"""Scalar-core loop-overhead model."""

from repro.scalar.core import (
    DEFAULT_SCALAR_MODEL,
    LoopOverhead,
    ScalarCoreModel,
    loop_scalar_cycles,
)


def test_dual_issue_halves_alu_work():
    model = ScalarCoreModel()
    four = model.loop_cycles(LoopOverhead(alu_insts=4, has_vsetvl=False,
                                          taken_branch=False))
    eight = model.loop_cycles(LoopOverhead(alu_insts=8, has_vsetvl=False,
                                           taken_branch=False))
    assert four == 2.0
    assert eight == 4.0


def test_vsetvl_and_branch_serialize():
    model = ScalarCoreModel()
    bare = model.loop_cycles(LoopOverhead(alu_insts=2, has_vsetvl=False,
                                          taken_branch=False))
    full = model.loop_cycles(LoopOverhead(alu_insts=2))
    assert full == bare + model.vsetvl_cycles + model.branch_cycles


def test_loads_add_partial_latency():
    model = ScalarCoreModel()
    without = model.loop_cycles(LoopOverhead(alu_insts=4))
    with_load = model.loop_cycles(LoopOverhead(alu_insts=4, loads=1))
    assert with_load > without


def test_instruction_count():
    o = LoopOverhead(alu_insts=4, loads=1)
    assert o.instruction_count == 4 + 1 + 1 + 1


def test_convenience_wrapper_matches_model():
    assert loop_scalar_cycles(6) == DEFAULT_SCALAR_MODEL.loop_cycles(
        LoopOverhead(alu_insts=6))
