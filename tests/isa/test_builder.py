"""Kernel-builder DSL."""

import pytest

from repro.isa.builder import KernelBuilder
from repro.isa.opcodes import Op


def test_operator_sugar_emits_expected_opcodes():
    kb = KernelBuilder()
    a = kb.load("x")
    b = kb.load("y")
    _ = a + b
    _ = a - 2.0
    _ = 3.0 * a
    _ = a / b
    _ = 1.0 - a
    _ = -a
    ops = [i.op for i in kb.build().insts]
    assert ops == [Op.VLE, Op.VLE, Op.VADD, Op.VSUB_VF, Op.VMUL_VF,
                   Op.VDIV, Op.VRSUB_VF, Op.VNEG]


def test_ssa_fresh_destinations():
    kb = KernelBuilder()
    a = kb.load("x")
    b = a + a
    c = b + a
    kb.store(c, "x")
    body = kb.build()
    dsts = [i.dst for i in body.insts if i.dst is not None]
    assert len(dsts) == len(set(dsts))
    assert body.n_vregs == 3


def test_const_must_precede_body():
    kb = KernelBuilder()
    kb.load("x")
    with pytest.raises(RuntimeError):
        kb.const(1.0)


def test_preamble_tracked_as_invariants():
    kb = KernelBuilder()
    c0 = kb.const(1.0)
    c1 = kb.const(2.0)
    x = kb.load("x")
    kb.store(x + c0, "y")
    kb.store(x + c1, "z")
    body = kb.build()
    assert body.n_preamble == 2
    assert body.invariants == [c0.vid, c1.vid]
    assert len(body.loop_insts) == len(body.insts) - 2


def test_cross_builder_registers_rejected():
    kb1, kb2 = KernelBuilder(), KernelBuilder()
    a = kb1.load("x")
    with pytest.raises(ValueError):
        kb2.store(a, "y")


def test_empty_body_rejected():
    with pytest.raises(ValueError):
        KernelBuilder().build()


def test_gather_scatter():
    kb = KernelBuilder()
    idx = kb.iota()
    val = kb.gather("table", idx)
    kb.scatter(val, "out", idx)
    insts = kb.build().insts
    assert insts[1].op is Op.VLXE and insts[1].mem.indexed
    assert insts[2].op is Op.VSXE and len(insts[2].srcs) == 2


def test_strided_memory_ops():
    kb = KernelBuilder()
    v = kb.load("m", offset=2, stride=4)
    kb.store(v, "m", stride=4)
    insts = kb.build().insts
    assert insts[0].op is Op.VLSE and insts[0].mem.stride == 4
    assert insts[0].mem.base_elem == 2
    assert insts[1].op is Op.VSSE


def test_comparison_and_merge():
    kb = KernelBuilder()
    a, b = kb.load("a"), kb.load("b")
    m = kb.lt(a, b)
    kb.store(kb.merge(m, a, b), "out")
    ops = [i.op for i in kb.build().insts]
    assert Op.VMFLT in ops and Op.VMERGE in ops
