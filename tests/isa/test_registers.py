"""Architectural register definitions."""

import pytest

from repro.isa.registers import NUM_LOGICAL_VREGS, VectorRegister, vreg_name


def test_riscv_defines_32_vector_registers():
    assert NUM_LOGICAL_VREGS == 32


def test_vreg_names():
    assert vreg_name(0) == "v0"
    assert vreg_name(31) == "v31"


@pytest.mark.parametrize("bad", [-1, 32, 100])
def test_vreg_name_rejects_out_of_range(bad):
    with pytest.raises(ValueError):
        vreg_name(bad)


def test_vector_register_value_object():
    reg = VectorRegister(7)
    assert reg.name == "v7"
    assert str(reg) == "v7"
    assert reg == VectorRegister(7)
    assert reg != VectorRegister(8)


def test_vector_register_rejects_out_of_range():
    with pytest.raises(ValueError):
        VectorRegister(32)
