"""Program container and static statistics."""

import pytest

from repro.isa.instructions import Instruction, Tag, scalar_block
from repro.isa.opcodes import Op
from repro.isa.operands import data_ref, spill_ref
from repro.isa.program import Program


def make_program() -> Program:
    prog = Program(name="p", buffers={"x": 64}, mvl=16)
    prog.append(scalar_block(4.0))
    prog.append(Instruction(op=Op.VLE, dst=0, vl=16, mem=data_ref("x")))
    prog.append(Instruction(op=Op.VADD, dst=1, srcs=(0, 0), vl=16))
    prog.append(Instruction(op=Op.VSE, srcs=(1,), vl=16, mem=data_ref("x")))
    prog.append(Instruction(op=Op.VLE, dst=2, vl=16, mem=spill_ref(0),
                            tag=Tag.SPILL))
    prog.append(Instruction(op=Op.VSE, srcs=(2,), vl=16, mem=spill_ref(0),
                            tag=Tag.SPILL))
    return prog


def test_stats_classify_by_kind_and_tag():
    stats = make_program().stats()
    assert stats.vector_arith == 1
    assert stats.vector_load == 1
    assert stats.vector_store == 1
    assert stats.spill_load == 1
    assert stats.spill_store == 1
    assert stats.scalar_blocks == 1
    assert stats.vector_memory == 4
    assert stats.vector_total == 5
    assert stats.memory_fraction == pytest.approx(0.8)


def test_registers_used_excludes_scalar_blocks():
    assert make_program().registers_used() == {0, 1, 2}


def test_validate_accepts_legal_registers():
    make_program().validate(32)


def test_validate_rejects_out_of_range():
    prog = make_program()
    prog.append(Instruction(op=Op.VADD, dst=40, srcs=(0, 1), vl=16))
    with pytest.raises(ValueError):
        prog.validate(32)


def test_iteration_and_len():
    prog = make_program()
    assert len(prog) == 6
    assert len(list(prog)) == 6
    assert len(prog.vector_insts) == 5


def test_describe_truncates():
    text = make_program().describe(limit=2)
    assert "more" in text
