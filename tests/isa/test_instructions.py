"""Instruction construction and validation."""

import pytest

from repro.isa.instructions import Instruction, Tag, scalar_block
from repro.isa.opcodes import Op
from repro.isa.operands import data_ref, spill_ref


def test_basic_arith_instruction():
    inst = Instruction(op=Op.VADD, dst=3, srcs=(1, 2), vl=16)
    assert inst.is_arith and not inst.is_memory
    assert inst.registers == (1, 2, 3)


def test_load_requires_memory_operand():
    with pytest.raises(ValueError):
        Instruction(op=Op.VLE, dst=1, vl=16)


def test_store_has_no_destination():
    with pytest.raises(ValueError):
        Instruction(op=Op.VSE, dst=1, srcs=(2,), vl=16, mem=data_ref("x"))


def test_arith_requires_destination():
    with pytest.raises(ValueError):
        Instruction(op=Op.VADD, srcs=(1, 2), vl=16)


def test_source_arity_enforced():
    with pytest.raises(ValueError):
        Instruction(op=Op.VADD, dst=0, srcs=(1,), vl=16)


def test_scalar_forms_require_scalar():
    with pytest.raises(ValueError):
        Instruction(op=Op.VMUL_VF, dst=0, srcs=(1,), vl=16)


def test_vl_must_be_positive():
    with pytest.raises(ValueError):
        Instruction(op=Op.VADD, dst=0, srcs=(1, 2), vl=0)


def test_uids_are_unique():
    a = Instruction(op=Op.VADD, dst=0, srcs=(1, 2), vl=4)
    b = Instruction(op=Op.VADD, dst=0, srcs=(1, 2), vl=4)
    assert a.uid != b.uid


def test_remap_rewrites_registers():
    inst = Instruction(op=Op.VFMADD, dst=2, srcs=(0, 1, 2), vl=8, scalar=None)
    out = inst.remap({0: 10, 1: 11, 2: 12})
    assert out.dst == 12
    assert out.srcs == (10, 11, 12)
    assert out.vl == 8


def test_remap_overrides_vl_and_mem():
    inst = Instruction(op=Op.VLE, dst=1, vl=1, mem=data_ref("x", 0))
    out = inst.remap({1: 5}, mem=data_ref("x", 64), vl=16)
    assert out.vl == 16
    assert out.mem is not None and out.mem.base_elem == 64


def test_spill_tag_survives_remap():
    inst = Instruction(op=Op.VSE, srcs=(1,), vl=16, mem=spill_ref(0),
                       tag=Tag.SPILL)
    assert inst.remap({1: 2}).tag is Tag.SPILL


def test_scalar_block():
    block = scalar_block(6.0)
    assert block.is_scalar
    assert block.scalar == 6.0
    with pytest.raises(ValueError):
        scalar_block(-1.0)


def test_describe_is_informative():
    inst = Instruction(op=Op.VLE, dst=4, vl=16, mem=data_ref("x", 32),
                       tag=Tag.SWAP)
    text = inst.describe()
    assert "vle" in text and "x[32]" in text and "SWAP" in text
