"""Memory operand value objects."""

from repro.isa.operands import (
    AddressSpace,
    MemOperand,
    data_ref,
    spill_ref,
)


def test_data_ref_defaults():
    op = data_ref("x")
    assert op.space is AddressSpace.DATA
    assert op.base_elem == 0 and op.stride == 1
    assert op.unit_stride


def test_strided_is_not_unit():
    assert not data_ref("x", stride=4).unit_stride
    assert not data_ref("x", indexed=True).unit_stride


def test_with_base_preserves_everything_else():
    op = data_ref("x", 10, stride=3)
    moved = op.with_base(40)
    assert moved.base_elem == 40
    assert moved.stride == 3 and moved.buffer == "x"
    assert moved.space is AddressSpace.DATA


def test_spill_ref_names_slots():
    assert spill_ref(3).buffer == "slot3"
    assert spill_ref(3).space is AddressSpace.SPILL


def test_describe_distinguishes_kinds():
    assert "unit" in data_ref("x").describe()
    assert "stride=4" in data_ref("x", stride=4).describe()
    assert "indexed" in data_ref("x", indexed=True).describe()


def test_operands_are_hashable_value_objects():
    assert data_ref("x", 8) == MemOperand(AddressSpace.DATA, "x", 8)
    assert len({data_ref("x"), data_ref("x"), data_ref("y")}) == 2
