"""Opcode metadata and functional semantics."""

import numpy as np
import pytest

from repro.isa.opcodes import (
    OPCODE_INFO,
    Op,
    OpKind,
    evaluate_arith,
    op_info,
)


def test_every_opcode_has_info():
    for op in Op:
        info = op_info(op)
        assert info.latency >= 0
        assert info.beats_per_element >= 0


def test_memory_classification():
    assert op_info(Op.VLE).kind is OpKind.MEM_LOAD
    assert op_info(Op.VSE).kind is OpKind.MEM_STORE
    assert op_info(Op.VLXE).kind is OpKind.MEM_LOAD
    assert op_info(Op.VSXE).kind is OpKind.MEM_STORE
    assert op_info(Op.VADD).is_arith
    assert not op_info(Op.VADD).is_memory


def test_iterative_units_cost_more_beats():
    assert op_info(Op.VDIV).beats_per_element > op_info(Op.VMUL).beats_per_element
    assert op_info(Op.VSQRT).beats_per_element > 1.0


def test_fma_has_higher_latency_than_add():
    assert op_info(Op.VFMADD).latency > op_info(Op.VADD).latency


@pytest.mark.parametrize("op,srcs,scalar,expected", [
    (Op.VADD, ([1.0, 2.0], [3.0, 4.0]), None, [4.0, 6.0]),
    (Op.VSUB, ([5.0, 5.0], [3.0, 1.0]), None, [2.0, 4.0]),
    (Op.VMUL, ([2.0, 3.0], [4.0, 5.0]), None, [8.0, 15.0]),
    (Op.VFMADD, ([2.0, 3.0], [4.0, 5.0], [1.0, 1.0]), None, [9.0, 16.0]),
    (Op.VFMADD_VF, ([2.0, 3.0], [1.0, 1.0]), 10.0, [21.0, 31.0]),
    (Op.VRSUB_VF, ([1.0, 2.0],), 10.0, [9.0, 8.0]),
    (Op.VMAX, ([1.0, 9.0], [5.0, 2.0]), None, [5.0, 9.0]),
    (Op.VMIN_VF, ([1.0, 9.0],), 4.0, [1.0, 4.0]),
    (Op.VMERGE, ([1.0, 0.0], [7.0, 7.0], [9.0, 9.0]), None, [7.0, 9.0]),
    (Op.VMFLT, ([1.0, 5.0], [3.0, 2.0]), None, [1.0, 0.0]),
])
def test_arith_semantics(op, srcs, scalar, expected):
    arrays = [np.array(s) for s in srcs]
    result = evaluate_arith(op, arrays, scalar, len(expected))
    assert np.allclose(result, expected)


def test_division_by_zero_yields_zero():
    result = evaluate_arith(Op.VDIV, [np.array([4.0, 4.0]),
                                      np.array([2.0, 0.0])], None, 2)
    assert np.allclose(result, [2.0, 0.0])


def test_reduction_broadcasts_result():
    result = evaluate_arith(Op.VREDSUM, [np.array([1.0, 2.0, 3.0])], None, 3)
    assert np.allclose(result, [6.0, 6.0, 6.0])


def test_generator_opcodes():
    assert np.allclose(evaluate_arith(Op.VFMV_VF, [], 3.5, 4), [3.5] * 4)
    assert np.allclose(evaluate_arith(Op.VID, [], None, 4), [0, 1, 2, 3])


def test_integer_bitwise_semantics():
    a = np.array([6.0, 12.0])
    assert np.allclose(evaluate_arith(Op.VAND_VI, [a], 4.0, 2), [4.0, 4.0])
    assert np.allclose(evaluate_arith(Op.VSLL_VI, [a], 1.0, 2), [12.0, 24.0])
    assert np.allclose(evaluate_arith(Op.VSRL_VI, [a], 1.0, 2), [3.0, 6.0])


def test_evaluate_rejects_memory_opcode():
    with pytest.raises(ValueError):
        evaluate_arith(Op.VLE, [], None, 4)


def test_vl_clips_source_arrays():
    long = np.arange(16, dtype=float)
    result = evaluate_arith(Op.VADD, [long, long], None, 4)
    assert len(result) == 4
    assert np.allclose(result, [0, 2, 4, 6])
