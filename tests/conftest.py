"""Shared fixtures: small kernels, programs and machine configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    KernelBuilder,
    Program,
    StripSchedule,
    allocate,
    ava_config,
    native_config,
    unroll_kernel,
)
from repro.core.config import MachineConfig


def compile_kernel(body, config: MachineConfig, n_elements: int,
                   buffers: dict, name: str = "test") -> Program:
    """Strip-mine + allocate a kernel body for a configuration."""
    schedule = StripSchedule.for_elements(n_elements, config.mvl)
    trace = unroll_kernel(body, schedule, config.mvl)
    allocation = allocate(trace, config.n_logical, config.mvl)
    return Program(name=name, insts=allocation.insts, buffers=dict(buffers),
                   spill_slots=allocation.spill_slots, mvl=config.mvl)


def axpy_body(alpha: float = 2.0):
    kb = KernelBuilder()
    x = kb.load("x")
    y = kb.load("y")
    kb.store(kb.fmadd_vf(alpha, x, y), "y")
    return kb.build()


def high_pressure_body(n_consts: int = 18):
    """A kernel whose hoisted constants exceed small P-VRF configurations."""
    kb = KernelBuilder()
    consts = [kb.const(1.0 + 0.1 * i) for i in range(n_consts)]
    x = kb.load("x")
    acc = kb.fmadd_vf(1.0, x, consts[0])
    for c in consts[1:]:
        acc = kb.fmadd(acc, c, x)
    kb.store(acc, "out")
    return kb.build()


@pytest.fixture
def baseline():
    return native_config(1)


@pytest.fixture
def ava_x8():
    return ava_config(8)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
