"""McPAT-lite area and energy reports."""

import pytest

from repro import ava_config, native_config, rg_config
from repro.power.mcpat import McPatModel
from repro.sim.stats import SimStats


@pytest.fixture
def model():
    return McPatModel()


def test_native_vrf_areas_track_fig4(model):
    areas = [model.area(native_config(s)).vrf for s in (1, 2, 3, 4, 8)]
    assert areas == pytest.approx([0.176, 0.352, 0.528, 0.704, 1.408],
                                  abs=0.01)


def test_ava_area_is_constant_and_small(model):
    reports = [model.area(ava_config(s)) for s in (1, 2, 4, 8)]
    vpus = {round(r.vpu, 4) for r in reports}
    assert len(vpus) == 1  # the paper: 1.126 mm² for every reconfiguration
    assert reports[0].vpu == pytest.approx(1.126, abs=0.01)


def test_rg_builds_the_baseline_vrf(model):
    assert model.area(rg_config(8)).vrf == model.area(native_config(1)).vrf


def test_ava_structs_overhead_055_percent(model):
    report = model.area(ava_config(8))
    assert report.ava_structs / report.vpu == pytest.approx(0.0055, abs=0.001)
    assert model.area(native_config(8)).ava_structs == 0.0


def test_vpu_reduction_53_percent(model):
    ava = model.area(ava_config(8)).vpu
    native = model.area(native_config(8)).vpu
    assert 1 - ava / native == pytest.approx(0.52, abs=0.03)


def test_performance_per_mm2(model):
    # Same average speedup, smaller VPU -> higher density for AVA.
    native = model.performance_per_mm2(native_config(8), 2.0)
    ava = model.performance_per_mm2(ava_config(8), 2.0)
    assert ava > native


def _stats(cycles=10_000, **kw):
    base = dict(fpu_element_ops=4096, vrf_reads=8192, vrf_writes=4096,
                l2_reads=512, l2_writes=256, dram_accesses=16)
    base.update(kw)
    return SimStats(cycles=cycles, **base)


def test_energy_report_components(model):
    report = model.energy(native_config(1), _stats())
    assert report.l2_dynamic > 0
    assert report.fpu_dynamic > 0
    assert report.vrf_dynamic > 0
    assert report.total == pytest.approx(report.dynamic + report.leakage)


def test_leakage_scales_with_runtime(model):
    short = model.energy(native_config(1), _stats(cycles=1_000))
    long = model.energy(native_config(1), _stats(cycles=10_000))
    assert long.l2_leakage == pytest.approx(10 * short.l2_leakage)
    assert long.l2_dynamic == short.l2_dynamic  # same event counts


def test_native_vrf_leakage_doubles_per_step(model):
    """§VI: 'NATIVE X2..X8 doubles the leakage in each configuration'."""
    stats = _stats()
    leak = [model.energy(native_config(s), stats).vrf_leakage
            for s in (1, 2, 4, 8)]
    assert leak[1] == pytest.approx(2 * leak[0], rel=0.01)
    assert leak[2] == pytest.approx(2 * leak[1], rel=0.01)
    assert leak[3] == pytest.approx(2 * leak[2], rel=0.01)


def test_ava_vrf_energy_stays_at_8kb_level(model):
    stats = _stats()
    ava = model.energy(ava_config(8), stats).vrf_leakage
    native = model.energy(native_config(8), stats).vrf_leakage
    assert ava < 0.3 * native


def test_swap_traffic_charged_to_vrf_and_l2(model):
    quiet = model.energy(ava_config(8), _stats())
    swappy = model.energy(ava_config(8), _stats(
        mvrf_reads=4096, mvrf_writes=4096, l2_reads=2048))
    assert swappy.vrf_dynamic > quiet.vrf_dynamic
    assert swappy.l2_dynamic > quiet.l2_dynamic
