"""CACTI-lite SRAM model."""

import math

import pytest

from repro.power.sram import (
    SramMacro,
    sram_access_energy_pj,
    sram_area_mm2,
    sram_leakage_mw,
)


def test_fig4_anchor_points():
    """8 KB 4R/2W = 0.18 mm²; 64 KB = 1.41 mm² (Fig. 4)."""
    assert sram_area_mm2(8 * 1024, ports=6) == pytest.approx(0.176, abs=0.01)
    assert sram_area_mm2(64 * 1024, ports=6) == pytest.approx(1.41, abs=0.02)


def test_area_linear_in_capacity():
    a = sram_area_mm2(8 * 1024)
    assert sram_area_mm2(16 * 1024) == pytest.approx(2 * a)


def test_ports_cost_area():
    assert sram_area_mm2(8 * 1024, ports=6) > sram_area_mm2(8 * 1024, ports=2)


def test_leakage_proportional_to_area():
    ratio_area = sram_area_mm2(32 * 1024) / sram_area_mm2(8 * 1024)
    ratio_leak = sram_leakage_mw(32 * 1024) / sram_leakage_mw(8 * 1024)
    assert ratio_leak == pytest.approx(ratio_area)


def test_access_energy_sqrt_scaling():
    e8 = sram_access_energy_pj(8 * 1024)
    e32 = sram_access_energy_pj(32 * 1024)
    assert e32 == pytest.approx(e8 * math.sqrt(4))


def test_macro_wrapper():
    macro = SramMacro("P-VRF", 8 * 1024)
    assert macro.area_mm2 > 0
    assert "8 KB" in macro.describe()


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        sram_area_mm2(-1)
