"""Figure-5 floorplanner."""

from repro import ava_config, native_config
from repro.power.floorplan import build_floorplan


def test_blocks_fit_inside_die():
    plan = build_floorplan(ava_config(8))
    for block in plan.blocks:
        assert block.x >= -1e-6 and block.y >= -1e-6
        assert block.x + block.width <= plan.die_width_um + 1e-6
        assert block.y + block.height <= plan.die_height_um + 1e-6


def test_die_area_matches_pnr_model():
    from repro.power.physical import PhysicalDesignModel

    for config in (ava_config(8), native_config(8)):
        plan = build_floorplan(config)
        pnr = PhysicalDesignModel().evaluate(config)
        assert abs(plan.die_area_mm2 - pnr.area_mm2) < 0.01


def test_eight_lanes_and_shared_blocks_placed():
    plan = build_floorplan(native_config(8))
    names = [b.name for b in plan.blocks]
    assert sum(1 for n in names if n.startswith("lane")) == 8
    for shared in ("VMU", "ROB", "IQ", "misc"):
        assert shared in names


def test_macros_sit_at_corners():
    plan = build_floorplan(ava_config(8))
    macros = [b for b in plan.blocks if b.name.startswith("VRF macro")]
    assert len(macros) == 4
    xs = sorted(b.x for b in macros)
    assert xs[0] == 0.0  # left edge
    assert xs[-1] > plan.die_width_um / 2  # right edge


def test_wire_length_grows_with_macro_size():
    """The §VII timing mechanism the WNS surrogate assumes."""
    ava = build_floorplan(ava_config(8))
    native = build_floorplan(native_config(8))
    assert native.average_macro_lane_wire_um() > ava.average_macro_lane_wire_um()


def test_ascii_art_renders_every_label():
    plan = build_floorplan(ava_config(8))
    art = plan.ascii_art(60, 20)
    for label in "ABCDEFGH#M":
        assert label in art
    assert "lane 1" in plan.legend()
