"""PnR surrogate: Table V anchors and extrapolation behaviour."""

import pytest

from repro import ava_config, native_config, rg_config
from repro.power.physical import PhysicalDesignModel


@pytest.fixture
def model():
    return PhysicalDesignModel()


def test_native_x8_anchor(model):
    r = model.evaluate(native_config(8))
    assert r.wns_ns == pytest.approx(-0.244, abs=0.01)
    assert r.power_mw == pytest.approx(2290, abs=25)
    assert r.area_mm2 == pytest.approx(3.90, abs=0.05)
    assert r.density_pct == pytest.approx(61.0, abs=0.3)
    assert r.vrf_macro_power_mw == pytest.approx(388, abs=5)
    assert r.vrf_macro_area_mm2 == pytest.approx(1.252, abs=0.01)
    assert not r.meets_timing


def test_ava_anchor(model):
    r = model.evaluate(ava_config(8))
    assert r.wns_ns == pytest.approx(0.119, abs=0.005)
    assert r.power_mw == pytest.approx(1732, abs=25)
    assert r.area_mm2 == pytest.approx(1.98, abs=0.03)
    assert r.density_pct == pytest.approx(61.8, abs=0.2)
    assert r.ava_structs_power_mw == pytest.approx(5.266)
    assert r.ava_structs_area_mm2 == pytest.approx(0.0042)
    assert r.meets_timing


def test_chip_area_reduction_headline(model):
    reduction = model.area_reduction_vs(ava_config(8), native_config(8))
    assert reduction == pytest.approx(0.492, abs=0.03)  # paper: 50.7%


def test_extrapolated_configs_are_monotone(model):
    areas = [model.evaluate(native_config(s)).area_mm2 for s in (1, 2, 3, 4, 8)]
    wns = [model.evaluate(native_config(s)).wns_ns for s in (1, 2, 3, 4, 8)]
    assert areas == sorted(areas)
    assert wns == sorted(wns, reverse=True)  # bigger chips, worse slack


def test_rg_shares_the_baseline_physical_design(model):
    rg = model.evaluate(rg_config(8))
    native1 = model.evaluate(native_config(1))
    assert rg.vrf_macro_area_mm2 == native1.vrf_macro_area_mm2


def test_achievable_frequency(model):
    ava = model.evaluate(ava_config(8))
    native = model.evaluate(native_config(8))
    assert ava.achievable_ghz > 1.0
    assert native.achievable_ghz < 1.0


def test_rows_render(model):
    rows = model.evaluate(ava_config(8)).rows()
    assert any("WNS" in k for k, _ in rows)
