"""Instruction trace recorder."""

import numpy as np

from repro import Simulator, ava_config, native_config
from repro.sim.trace import TraceRecorder
from tests.conftest import axpy_body, compile_kernel, high_pressure_body


def traced_run(body, config, buffers, n=128):
    program = compile_kernel(body, config, n, buffers)
    sim = Simulator(config, program)
    recorder = TraceRecorder(sim.pipeline)
    sim.warm_caches()
    stats = sim.run().stats
    return recorder, stats


def test_trace_captures_every_issue():
    recorder, stats = traced_run(axpy_body(), native_config(1),
                                 {"x": 128, "y": 128})
    assert len(recorder.events) == stats.vector_insts


def test_timestamps_are_monotone_per_event():
    recorder, _ = traced_run(high_pressure_body(18), ava_config(8),
                             {"x": 128, "out": 128})
    assert recorder.issue_order_is_per_uop_monotone()


def test_swap_events_identified():
    recorder, stats = traced_run(high_pressure_body(18), ava_config(8),
                                 {"x": 128, "out": 128})
    assert len(recorder.swaps()) == stats.swap_insts > 0


def test_vvr_history_links_producer_and_consumers():
    recorder, _ = traced_run(axpy_body(), native_config(1),
                             {"x": 128, "y": 128})
    # Pick any arith event and confirm its sources have producing events.
    arith = next(e for e in recorder.events if e.opcode == "vfmadd.vf")
    for vvr in arith.src_vvrs:
        history = recorder.for_vvr(vvr)
        assert any(e.dst_vvr == vvr for e in history)


def test_render_truncates():
    recorder, _ = traced_run(axpy_body(), native_config(1),
                             {"x": 256, "y": 256})
    text = recorder.render(limit=5)
    assert "more events" in text
