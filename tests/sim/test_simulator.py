"""Simulator facade and statistics plumbing."""

import numpy as np
import pytest

from repro import Simulator, ava_config, native_config
from repro.sim.stats import SimStats
from tests.conftest import axpy_body, compile_kernel


def test_warm_caches_eliminates_cold_misses():
    config = native_config(1)
    n = 512
    program = compile_kernel(axpy_body(), config, n, {"x": n, "y": n})

    cold = Simulator(config, program)
    cold_stats = cold.run().stats

    warm = Simulator(config, program)
    touched = warm.warm_caches()
    warm_stats = warm.run().stats

    assert touched == 2 * n * 8 // 64
    assert warm_stats.dram_accesses < cold_stats.dram_accesses
    assert warm_stats.cycles < cold_stats.cycles


def test_result_buffers_only_in_functional_mode():
    config = native_config(1)
    program = compile_kernel(axpy_body(), config, 64, {"x": 64, "y": 64})
    timing = Simulator(config, program).run()
    assert timing.data == {}
    func = Simulator(config, program, functional=True)
    func.set_data("x", np.zeros(64))
    func.set_data("y", np.zeros(64))
    assert set(func.run().data) == {"x", "y"}


def test_stats_provenance():
    config = ava_config(2)
    program = compile_kernel(axpy_body(), config, 64, {"x": 64, "y": 64},
                             name="axpy-test")
    stats = Simulator(config, program).run().stats
    assert stats.config_name == "AVA X2"
    assert stats.program_name == "axpy-test"
    assert "AVA X2" in stats.summary()


def test_stats_derived_quantities():
    s = SimStats(cycles=1000, arith_insts=10, vloads=20, vstores=10,
                 swap_loads=5, swap_stores=5, spill_loads=0, spill_stores=0,
                 arith_busy_cycles=100, mem_busy_cycles=800)
    assert s.memory_insts == 40
    assert s.vector_insts == 50
    assert s.memory_fraction == pytest.approx(0.8)
    assert s.swap_insts == 10
    assert s.seconds == pytest.approx(1e-6)
    assert s.mem_utilisation == pytest.approx(0.8)


def test_l2_and_dram_stats_harvested():
    config = native_config(1)
    n = 512
    program = compile_kernel(axpy_body(), config, n, {"x": n, "y": n})
    stats = Simulator(config, program).run().stats
    assert stats.l2_reads > 0
    assert stats.l2_misses > 0  # cold run
    assert stats.dram_accesses > 0
