"""The scenario layer: axis registries, the frozen bundle, JSON round-trip."""

import json

import pytest

from repro.core.config import (
    ava_config,
    get_machine,
    machine_names,
    native_config,
    register_machine,
    rg_config,
    unregister_machine,
)
from repro.memory.hierarchy import MemorySystemConfig
from repro.memory.presets import (
    get_memory_system,
    memory_system_names,
    register_memory_system,
    unregister_memory_system,
)
from repro.sim.scenario import CellPolicy, Scenario, build_scenario
from repro.sim.simulator import Simulator
from repro.core.swap import VictimPolicy
from repro.vpu.params import (
    DEFAULT_TIMING,
    get_timing,
    register_timing,
    timing_names,
    unregister_timing,
)
from repro.vpu.pipeline import VectorPipeline
from repro.workloads import get_workload


# ---------------------------------------------------------------------------
# axis registries
# ---------------------------------------------------------------------------
def test_machine_registry_covers_the_paper_matrix():
    names = machine_names()
    for scale in (1, 2, 3, 4, 8):
        assert f"native-x{scale}" in names
        assert f"ava-x{scale}" in names
    for lmul in (1, 2, 4, 8):
        assert f"rg-lmul{lmul}" in names
    assert get_machine("native-x8") == native_config(8)
    assert get_machine("ava-x8") == ava_config(8)
    assert get_machine("rg-lmul4") == rg_config(4)
    assert get_machine("baseline") == native_config(1)


def test_machine_registry_rejects_unknown_and_collisions():
    with pytest.raises(KeyError):
        get_machine("cray-1")
    with pytest.raises(ValueError):
        register_machine("native-x8", lambda: native_config(1))
    # Plugin flow: register, resolve, clean up.
    register_machine("test-tiny", lambda: native_config(1))
    try:
        assert get_machine("test-tiny") == native_config(1)
    finally:
        assert unregister_machine("test-tiny")
    assert not unregister_machine("test-tiny")


def test_memory_presets():
    assert "table2" in memory_system_names()
    table2 = get_memory_system("table2")
    assert table2 == MemorySystemConfig()
    assert get_memory_system("slow-dram").dram.latency == \
        2 * table2.dram.latency
    assert get_memory_system("half-l2").l2.size_bytes == \
        table2.l2.size_bytes // 2
    assert get_memory_system("slow-l2").l2.latency == 2 * table2.l2.latency
    with pytest.raises(KeyError):
        get_memory_system("hbm3")
    with pytest.raises(ValueError):
        register_memory_system("table2", MemorySystemConfig)
    register_memory_system("test-mem", MemorySystemConfig)
    try:
        assert get_memory_system("test-mem") == MemorySystemConfig()
    finally:
        assert unregister_memory_system("test-mem")


def test_timing_presets():
    assert "default" in timing_names()
    assert get_timing("default") == DEFAULT_TIMING
    assert get_timing("single-swap").preissue_swap_budget == 1
    assert get_timing("wide-swap").preissue_swap_budget == 4
    assert get_timing("deep-queues").arith_queue_depth == 64
    with pytest.raises(KeyError):
        get_timing("overclocked")
    with pytest.raises(ValueError):
        register_timing("default", lambda: DEFAULT_TIMING)
    register_timing("test-timing", lambda: DEFAULT_TIMING)
    try:
        assert get_timing("test-timing") == DEFAULT_TIMING
    finally:
        assert unregister_timing("test-timing")


# ---------------------------------------------------------------------------
# the Scenario bundle
# ---------------------------------------------------------------------------
def test_default_scenario_is_the_paper_platform():
    scenario = build_scenario("ava-x8")
    assert scenario.machine == ava_config(8)
    assert scenario.timing == DEFAULT_TIMING
    assert scenario.memory == MemorySystemConfig()
    assert scenario.policy == CellPolicy()


def test_build_scenario_resolves_preset_names():
    scenario = build_scenario("ava-x4", memory="slow-dram",
                              timing="single-swap",
                              policy=CellPolicy(
                                  victim_policy=VictimPolicy.FIFO))
    assert scenario.machine.name == "AVA X4"
    assert scenario.memory.dram.latency == 160
    assert scenario.timing.preissue_swap_budget == 1
    assert scenario.policy.victim_policy is VictimPolicy.FIFO


def test_build_scenario_accepts_policy_names_and_rejects_junk():
    assert build_scenario("ava-x8", policy="fifo").policy == \
        CellPolicy(victim_policy=VictimPolicy.FIFO)
    with pytest.raises(ValueError):
        build_scenario("ava-x8", policy="mru")  # not a VictimPolicy
    with pytest.raises(TypeError):
        build_scenario("ava-x8", timing=12)  # wrong-typed axis
    with pytest.raises(TypeError):
        build_scenario("ava-x8", memory={"l2": {"latency": 6}})


def test_scenario_is_frozen_and_hashable():
    a = build_scenario("ava-x8", memory="slow-dram")
    b = build_scenario("ava-x8", memory="slow-dram")
    assert a == b and hash(a) == hash(b)
    assert a != build_scenario("ava-x8", memory="table2")
    with pytest.raises(AttributeError):
        a.machine = native_config(1)


def test_scenario_json_round_trip_is_exact():
    scenario = build_scenario("rg-lmul4", memory="half-l2",
                              timing="deep-queues",
                              policy=CellPolicy(
                                  victim_policy=VictimPolicy.ROUND_ROBIN,
                                  aggressive_reclamation=False))
    through_json = Scenario.from_dict(
        json.loads(json.dumps(scenario.to_dict())))
    assert through_json == scenario


# ---------------------------------------------------------------------------
# the stack consumes scenarios end-to-end
# ---------------------------------------------------------------------------
def test_simulator_accepts_a_scenario():
    scenario = build_scenario("ava-x8", memory="slow-dram")
    program = get_workload("axpy").compile(scenario.machine).program
    result = Simulator(scenario, program).run()
    default = Simulator(scenario.machine, program).run()
    assert result.stats.cycles > 0
    # The slow-dram axis must actually reach the timing model.
    assert result.stats.cycles != default.stats.cycles


def test_scenario_equals_equivalent_loose_arguments():
    """A default-memory scenario is byte-identical to the loose-kwargs path."""
    config = ava_config(8)
    program = get_workload("blackscholes").compile(config).program
    via_scenario = Simulator(build_scenario(config), program).run()
    via_kwargs = Simulator(config, program).run()
    assert via_scenario.stats.to_dict() == via_kwargs.stats.to_dict()


def test_pipeline_rejects_scenario_plus_loose_arguments():
    scenario = build_scenario("native-x1")
    program = get_workload("axpy").compile(scenario.machine).program
    with pytest.raises(ValueError):
        VectorPipeline(scenario, program, params=DEFAULT_TIMING)
    with pytest.raises(ValueError):
        VectorPipeline(scenario, program,
                       victim_policy=VictimPolicy.FIFO)
    with pytest.raises(ValueError):
        VectorPipeline(scenario, program, aggressive_reclamation=False)


def test_simulator_rejects_scenario_plus_loose_arguments():
    """Loose kwargs must never be silently shadowed by the scenario."""
    scenario = build_scenario("native-x1")
    program = get_workload("axpy").compile(scenario.machine).program
    with pytest.raises(ValueError):
        Simulator(scenario, program, params=DEFAULT_TIMING)
    with pytest.raises(ValueError):
        Simulator(scenario, program, victim_policy=VictimPolicy.FIFO)
    with pytest.raises(ValueError):
        Simulator(scenario, program, aggressive_reclamation=False)
