"""Memory layout: address assignment and functional backing store."""

import numpy as np
import pytest

from repro.core.config import ava_config
from repro.isa.operands import AddressSpace, MemOperand, data_ref, spill_ref
from repro.isa.program import Program
from repro.sim.layout import LAYOUT_BASE, MemoryLayout


def make_layout(functional=True, spill_slots=2):
    program = Program(name="t", buffers={"x": 100, "y": 50},
                      spill_slots=spill_slots, mvl=128)
    return MemoryLayout(program, ava_config(8), functional=functional)


def test_regions_are_disjoint_and_aligned():
    layout = make_layout()
    x = layout.base_addr(data_ref("x"))
    y = layout.base_addr(data_ref("y"))
    s0 = layout.base_addr(spill_ref(0))
    mv = layout.base_addr(layout.mvrf_operand(0))
    assert x == LAYOUT_BASE
    assert y >= x + 100 * 8
    assert s0 >= y + 50 * 8
    assert mv >= s0 + 2 * 128 * 8
    assert y % 64 == 0 and s0 % 64 == 0


def test_element_offsets():
    layout = make_layout()
    assert (layout.base_addr(data_ref("x", 5))
            == layout.base_addr(data_ref("x")) + 40)


def test_mvrf_slots_by_vvr():
    layout = make_layout()
    a = layout.base_addr(layout.mvrf_operand(0))
    b = layout.base_addr(layout.mvrf_operand(1))
    assert b - a == 128 * 8  # one MVL-wide slot per VVR


def test_unknown_buffer_rejected():
    layout = make_layout()
    with pytest.raises(KeyError):
        layout.base_addr(data_ref("nope"))


def test_functional_roundtrip_unit_stride():
    layout = make_layout()
    layout.set_data("x", np.arange(100, dtype=float))
    got = layout.load(data_ref("x", 10), 5)
    assert np.allclose(got, [10, 11, 12, 13, 14])
    layout.store(data_ref("x", 10), 3, np.array([7.0, 8.0, 9.0]))
    assert np.allclose(layout.get_data("x")[10:13], [7, 8, 9])


def test_functional_strided_access():
    layout = make_layout()
    layout.set_data("x", np.arange(100, dtype=float))
    got = layout.load(MemOperand(AddressSpace.DATA, "x", 0, stride=3), 4)
    assert np.allclose(got, [0, 3, 6, 9])


def test_functional_gather_clips_indices():
    layout = make_layout()
    layout.set_data("x", np.arange(100, dtype=float))
    idx = np.array([5.0, 99.0, 1000.0, -3.0])
    got = layout.load(data_ref("x", indexed=True), 4, index=idx)
    assert np.allclose(got, [5, 99, 99, 0])


def test_boundary_loads_clamp():
    layout = make_layout()
    layout.set_data("x", np.arange(100, dtype=float))
    got = layout.load(data_ref("x", -1), 3)
    assert np.allclose(got, [0, 0, 1])  # clamped at element 0


def test_spill_slots_roundtrip():
    layout = make_layout()
    layout.store(spill_ref(1), 4, np.array([1.0, 2.0, 3.0, 4.0]))
    assert np.allclose(layout.load(spill_ref(1), 4), [1, 2, 3, 4])
    # Slot 0 is untouched and reads zeros.
    assert np.allclose(layout.load(spill_ref(0), 4), np.zeros(4))


def test_non_functional_layout_rejects_data_access():
    layout = make_layout(functional=False)
    with pytest.raises(RuntimeError):
        layout.set_data("x", np.zeros(100))
    with pytest.raises(RuntimeError):
        layout.get_data("x")


def test_buffer_size_mismatch_rejected():
    layout = make_layout()
    with pytest.raises(ValueError):
        layout.set_data("x", np.zeros(7))
