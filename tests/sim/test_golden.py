"""Architectural golden model."""

import numpy as np

from repro import native_config
from repro.sim.golden import GoldenExecutor
from tests.conftest import axpy_body, compile_kernel


def test_golden_executes_axpy():
    config = native_config(1)
    n = 64
    program = compile_kernel(axpy_body(3.0), config, n, {"x": n, "y": n})
    g = GoldenExecutor(config, program)
    x = np.arange(n, dtype=float)
    y = np.full(n, 2.0)
    g.set_data("x", x)
    g.set_data("y", y)
    out = g.run()
    assert np.allclose(out["y"], 3.0 * x + 2.0)


def test_golden_records_destination_writes():
    config = native_config(1)
    program = compile_kernel(axpy_body(1.0), config, 16, {"x": 16, "y": 16})
    g = GoldenExecutor(config, program)
    g.set_data("x", np.ones(16))
    g.set_data("y", np.ones(16))
    g.run()
    # Every load and arith instruction recorded its result.
    vector_writers = [i for i in program.insts
                      if not i.is_scalar and i.dst is not None]
    assert set(g.writes) == {i.uid for i in vector_writers}


def test_golden_uninitialised_registers_read_zero():
    config = native_config(1)
    g = GoldenExecutor(config, compile_kernel(
        axpy_body(), config, 16, {"x": 16, "y": 16}))
    assert np.allclose(g._read(7, 8), np.zeros(8))
