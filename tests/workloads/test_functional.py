"""Functional correctness of every workload against its numpy oracle.

Covers the full ten-kernel builtin suite: the six Table-IV applications
plus the extended RiVEC-style kernels.
"""

import numpy as np
import pytest

from repro import Simulator, ava_config, native_config, rg_config
from repro.workloads import ALL_WORKLOAD_NAMES, get_workload

#: One cheap and one adversarial configuration per run keeps this fast.
CONFIGS = [native_config(1), ava_config(8), rg_config(4)]


@pytest.mark.parametrize("name", ALL_WORKLOAD_NAMES)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_workload_matches_oracle(name, config):
    workload = get_workload(name)
    compiled = workload.compile(config)
    sim = Simulator(config, compiled.program, functional=True)
    rng = np.random.default_rng(2024)
    data = workload.init_data(rng)
    for buffer, values in data.items():
        sim.set_data(buffer, values)
    sim.warm_caches()
    result = sim.run()
    for buffer, expected in workload.reference(data).items():
        assert np.allclose(result.buffer(buffer), expected,
                           rtol=1e-9, atol=1e-12), f"{name}/{buffer}"


@pytest.mark.parametrize("name", ALL_WORKLOAD_NAMES)
def test_results_identical_across_machines(name):
    """The register-file organisation must be architecturally invisible."""
    workload = get_workload(name)
    rng = np.random.default_rng(7)
    data = workload.init_data(rng)
    outputs = []
    for config in (native_config(2), ava_config(4)):
        compiled = workload.compile(config)
        sim = Simulator(config, compiled.program, functional=True)
        for buffer, values in data.items():
            sim.set_data(buffer, values)
        result = sim.run()
        outputs.append({b: result.buffer(b) for b in data})
    for buffer in outputs[0]:
        assert np.allclose(outputs[0][buffer], outputs[1][buffer],
                           rtol=1e-12, atol=1e-14)


def test_blackscholes_prices_are_sane():
    """Beyond oracle equality: the finance is approximately right."""
    workload = get_workload("blackscholes")
    rng = np.random.default_rng(5)
    data = workload.init_data(rng)
    ref = workload.reference(data)
    call, put = ref["call"], ref["put"]
    spot, strike = data["spot"], data["strike"]
    assert (call > -1e-6).all()
    # Deep in-the-money calls are worth at least intrinsic-ish value.
    itm = spot > strike * 1.2
    assert (call[itm] > 0.5 * (spot - strike)[itm]).all()
    # Put-call parity within the approximation error of the poly CND.
    parity = call - put - (spot - strike * np.exp(-0.02 * data["expiry"]))
    assert np.abs(parity).max() < 2.0
