"""The pluggable workload registry: decorator, discovery, selection."""

from typing import Dict

import numpy as np
import pytest

from repro.core.config import native_config
from repro.experiments.engine import Cell, CellExecutor, SweepSpec, cell_key
from repro.isa.builder import KernelBody, KernelBuilder
from repro.workloads import (
    ALL_WORKLOAD_NAMES,
    EXTENDED_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    Workload,
    all_workloads,
    get_workload,
    register_workload,
    registered_names,
    select_workloads,
    unregister_workload,
)
from repro.workloads import registry as registry_module
from repro.workloads.axpy import Axpy


def _tiny_workload_class(class_name: str = "Tiny",
                         workload_name: str = "tiny-test-kernel"):
    """A minimal out-of-tree workload (NOT auto-registered)."""

    class Tiny(Workload):
        name = workload_name
        domain = "Testing"
        model = "Synthetic"
        n_elements = 64
        loop_alu_insts = 2

        def build_kernel(self) -> KernelBody:
            kb = KernelBuilder()
            kb.store(kb.load("a") * 3.0, "b")
            return kb.build()

        def init_data(self, rng: np.random.Generator
                      ) -> Dict[str, np.ndarray]:
            return {"a": rng.standard_normal(self.n_elements),
                    "b": np.zeros(self.n_elements)}

        def reference(self, data: Dict[str, np.ndarray]
                      ) -> Dict[str, np.ndarray]:
            return {"b": data["a"] * 3.0}

    Tiny.__qualname__ = Tiny.__name__ = class_name
    return Tiny


# ---------------------------------------------------------------------------
# the frozen Table-IV view
# ---------------------------------------------------------------------------
def test_table_iv_view_is_frozen():
    assert WORKLOAD_NAMES == ["axpy", "blackscholes", "lavamd",
                              "particlefilter", "somier", "swaptions"]
    assert EXTENDED_WORKLOAD_NAMES == ["jacobi2d", "pathfinder", "spmv",
                                       "streamcluster"]
    assert ALL_WORKLOAD_NAMES == WORKLOAD_NAMES + EXTENDED_WORKLOAD_NAMES
    # all_workloads() is the paper view: six, in paper order, even though
    # the registry holds more.
    assert [w.name for w in all_workloads()] == WORKLOAD_NAMES
    assert set(ALL_WORKLOAD_NAMES) <= set(registered_names())


# ---------------------------------------------------------------------------
# decorator API
# ---------------------------------------------------------------------------
def test_register_workload_roundtrip():
    cls = _tiny_workload_class()
    register_workload(cls)
    try:
        instance = get_workload("tiny-test-kernel")
        assert isinstance(instance, cls)
        assert "tiny-test-kernel" in registered_names()
        assert "tiny-test-kernel" not in WORKLOAD_NAMES  # paper view frozen
    finally:
        assert unregister_workload("tiny-test-kernel")
    with pytest.raises(KeyError):
        get_workload("tiny-test-kernel")


def test_register_workload_with_explicit_name():
    cls = _tiny_workload_class()
    register_workload(name="tiny-alias")(cls)
    try:
        assert isinstance(get_workload("tiny-alias"), cls)
    finally:
        unregister_workload("tiny-alias")


def test_reregistering_the_same_class_is_idempotent():
    register_workload(Axpy)
    assert isinstance(get_workload("axpy"), Axpy)


def test_name_collision_with_builtin_raises():
    impostor = _tiny_workload_class(class_name="FakeAxpy",
                                    workload_name="axpy")
    with pytest.raises(ValueError, match="already registered"):
        register_workload(impostor)
    assert isinstance(get_workload("axpy"), Axpy)  # builtin untouched


def test_register_rejects_non_workloads():
    with pytest.raises(TypeError):
        register_workload(int)
    with pytest.raises(ValueError, match="no 'name'"):
        register_workload(type("Anon", (Workload,), {}))


# ---------------------------------------------------------------------------
# entry-point discovery
# ---------------------------------------------------------------------------
class _FakeEntryPoint:
    def __init__(self, name, obj, broken=False):
        self.name = name
        self._obj = obj
        self._broken = broken

    def load(self):
        if self._broken:
            raise ImportError("broken plugin")
        return self._obj


def test_entry_point_discovery(monkeypatch):
    cls = _tiny_workload_class(workload_name="tiny-entry-point")
    entries = [_FakeEntryPoint("tiny-entry-point", cls),
               _FakeEntryPoint("broken", None, broken=True),
               _FakeEntryPoint("axpy", _tiny_workload_class(
                   class_name="FakeAxpy", workload_name="axpy"))]

    class _FakeEntryPoints:
        def select(self, group):
            assert group == "repro.workloads"
            return entries

    from importlib import metadata
    monkeypatch.setattr(metadata, "entry_points", lambda: _FakeEntryPoints())
    try:
        loaded = registry_module.discover_workloads(force=True)
        # The well-formed plugin loads; the broken one and the
        # builtin-shadowing one are skipped without breaking the suite.
        assert loaded == ["tiny-entry-point"]
        assert isinstance(get_workload("tiny-entry-point"), cls)
        assert isinstance(get_workload("axpy"), Axpy)
    finally:
        unregister_workload("tiny-entry-point")


# ---------------------------------------------------------------------------
# plugins flow through the engine
# ---------------------------------------------------------------------------
def test_registered_kernel_flows_through_spec_and_cache_keys(tmp_path):
    cls = _tiny_workload_class()
    register_workload(cls)
    try:
        config = native_config(1)
        spec = SweepSpec(workloads=("axpy", "tiny-test-kernel"),
                         configs=(config,), check=True)
        cells = spec.cells()
        executor = CellExecutor()
        programs = executor._compile_programs(cells, {})
        keys = [cell_key(c, p) for c, p in zip(cells, programs)]
        assert len(set(keys)) == len(keys)  # no collisions across names

        results = executor.run_spec(spec)
        assert [r.cell.workload_name for r in results] == [
            "axpy", "tiny-test-kernel"]
        assert all(r.correct is True for r in results)
    finally:
        unregister_workload("tiny-test-kernel")


# ---------------------------------------------------------------------------
# CLI-style selection
# ---------------------------------------------------------------------------
def test_select_workloads_views():
    assert select_workloads() == WORKLOAD_NAMES
    assert select_workloads("all") == WORKLOAD_NAMES
    assert select_workloads("all", extended=True) == ALL_WORKLOAD_NAMES
    assert select_workloads("extended") == ALL_WORKLOAD_NAMES
    assert select_workloads("spmv") == ["spmv"]
    assert select_workloads("somier, jacobi2d") == ["somier", "jacobi2d"]


def test_select_workloads_rejects_unknown_names():
    with pytest.raises(KeyError, match="doom"):
        select_workloads("axpy,doom")
    with pytest.raises(KeyError):
        select_workloads(" , ")
