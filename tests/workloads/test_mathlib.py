"""Shared polynomial math: accuracy of the open-coded transcendentals."""

import numpy as np

from repro.workloads.mathlib import (
    CND_A,
    CND_B,
    NumpyMath,
    cnd,
    poly_exp,
    poly_exp_small,
    poly_ln,
    rational_tanh,
)

M = NumpyMath()


def test_poly_ln_accuracy_in_working_range():
    q = np.linspace(0.6, 1.6, 200)
    assert np.abs(poly_ln(M, q) - np.log(q)).max() < 2e-3


def test_poly_exp_small_accuracy():
    x = np.linspace(-0.5, 0.5, 200)
    assert np.abs(poly_exp_small(M, x) - np.exp(x)).max() < 5e-4


def test_poly_exp_wide_range_relative_error():
    x = np.linspace(-6.0, 0.5, 200)
    rel = np.abs(poly_exp(M, x) - np.exp(x)) / np.exp(x)
    assert rel.max() < 0.05


def test_rational_tanh_accuracy():
    # The Padé(3,2) form peaks at ~2.4% absolute error near |y| = 1.5, which
    # is the accuracy class the hand-vectorised kernels accept.
    y = np.linspace(-3.0, 3.0, 200)
    assert np.abs(rational_tanh(M, y) - np.tanh(y)).max() < 0.03


def test_cnd_matches_normal_cdf():
    from scipy.stats import norm

    d = np.linspace(-3.0, 3.0, 200)
    approx = cnd(M, d, CND_A, CND_B)
    assert np.abs(approx - norm.cdf(d)).max() < 0.02


def test_cnd_is_monotone_and_bounded():
    d = np.linspace(-4.0, 4.0, 400)
    values = cnd(M, d, CND_A, CND_B)
    assert (np.diff(values) >= -1e-12).all()
    assert values.min() > -0.05 and values.max() < 1.05


def test_numpy_math_recip_handles_zero():
    out = M.recip(np.array([2.0, 0.0]))
    assert np.allclose(out, [0.5, 0.0])


def test_builder_and_numpy_backends_agree():
    """The same formula on both backends yields identical values."""
    from repro import Simulator, native_config
    from repro.isa.builder import KernelBuilder
    from repro.workloads.mathlib import BuilderMath
    from tests.conftest import compile_kernel

    kb = KernelBuilder()
    bm = BuilderMath(kb)
    x = kb.load("x")
    kb.store(poly_exp(bm, x * -1.0), "out")
    config = native_config(1)
    program = compile_kernel(kb.build(), config, 64, {"x": 64, "out": 64})
    sim = Simulator(config, program, functional=True)
    xs = np.linspace(0.1, 4.0, 64)
    sim.set_data("x", xs)
    result = sim.run()
    assert np.allclose(result.buffer("out"), poly_exp(M, -xs),
                       rtol=1e-12, atol=1e-14)
