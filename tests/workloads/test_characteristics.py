"""Workload characterisation: the paper-reported properties of each app.

DESIGN.md §3 pins, for every application, the live register pressure, the
first spilling LMUL configuration, and the instruction mix; these tests keep
the kernels honest against those calibration targets.
"""

import pytest

from repro import native_config, rg_config
from repro.compiler.trace import body_pressure
from repro.workloads import (ALL_WORKLOAD_NAMES, EXTENDED_WORKLOAD_NAMES,
                             WORKLOAD_NAMES, all_workloads, get_workload)

#: (pressure band, first LMUL that spills or None, memory-fraction band)
TARGETS = {
    "axpy": ((2, 4), None, (0.70, 0.80)),
    "blackscholes": ((17, 24), 2, (0.05, 0.20)),
    "lavamd": ((9, 16), 4, (0.05, 0.15)),
    "particlefilter": ((9, 16), 4, (0.15, 0.30)),
    "somier": ((5, 8), 8, (0.38, 0.52)),
    "swaptions": ((17, 24), 2, (0.08, 0.18)),
}


def test_registry_matches_table4():
    assert WORKLOAD_NAMES == ["axpy", "blackscholes", "lavamd",
                              "particlefilter", "somier", "swaptions"]
    assert [w.name for w in all_workloads()] == WORKLOAD_NAMES


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        get_workload("doom")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_live_pressure_band(name):
    lo, hi = TARGETS[name][0]
    pressure = body_pressure(get_workload(name).body)
    assert lo <= pressure <= hi, f"{name}: pressure {pressure}"


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_spill_threshold_matches_paper(name):
    """The paper reports which LMUL configuration first spills per app."""
    first_spill = TARGETS[name][1]
    workload = get_workload(name)
    for lmul in (2, 4, 8):
        alloc = workload.compile(rg_config(lmul)).allocation
        if first_spill is None or lmul < first_spill:
            assert alloc.spill_free, f"{name} spills at LMUL{lmul}"
        else:
            assert not alloc.spill_free, f"{name} clean at LMUL{lmul}"


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_instruction_mix_band(name):
    lo, hi = TARGETS[name][2]
    stats = get_workload(name).compile(native_config(1)).program.stats()
    assert lo <= stats.memory_fraction <= hi


def test_lavamd_fixed_avl():
    """LavaMD2 always runs 48-element vectors (§V)."""
    lavamd = get_workload("lavamd")
    assert lavamd.fixed_avl == 48
    assert lavamd.effective_vl(16) == 16
    assert lavamd.effective_vl(64) == 48
    assert lavamd.effective_vl(128) == 48


def test_vla_workloads_track_mvl():
    axpy = get_workload("axpy")
    assert axpy.effective_vl(128) == 128


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_compile_produces_valid_programs(name):
    workload = get_workload(name)
    for cfg in (native_config(1), rg_config(8)):
        compiled = workload.compile(cfg)
        compiled.program.validate(cfg.n_logical)
        assert compiled.program.meta["iterations"] >= 1


def test_blackscholes_register_usage_near_paper():
    """Paper: the compiler uses 23 logical registers for Blackscholes."""
    alloc = get_workload("blackscholes").compile(native_config(1)).allocation
    assert 17 <= alloc.registers_used <= 26


# ---------------------------------------------------------------------------
# the extended RiVEC-style kernels
# ---------------------------------------------------------------------------
#: Same shape as TARGETS: (pressure band, first spilling LMUL, memory band).
#: These kernels have no paper row; the bands pin the *designed* character
#: of each (spmv is the indexed-memory stressor, streamcluster the second
#: high-pressure application) so refactors cannot silently flatten them.
EXTENDED_TARGETS = {
    "jacobi2d": ((5, 8), 8, (0.45, 0.60)),
    "pathfinder": ((4, 7), 8, (0.55, 0.70)),
    "spmv": ((3, 6), None, (0.70, 0.82)),
    "streamcluster": ((12, 18), 4, (0.12, 0.30)),
}


def test_extended_registry_order():
    assert EXTENDED_WORKLOAD_NAMES == ["jacobi2d", "pathfinder", "spmv",
                                       "streamcluster"]
    assert ALL_WORKLOAD_NAMES == WORKLOAD_NAMES + EXTENDED_WORKLOAD_NAMES


@pytest.mark.parametrize("name", EXTENDED_WORKLOAD_NAMES)
def test_extended_live_pressure_band(name):
    lo, hi = EXTENDED_TARGETS[name][0]
    pressure = body_pressure(get_workload(name).body)
    assert lo <= pressure <= hi, f"{name}: pressure {pressure}"


@pytest.mark.parametrize("name", EXTENDED_WORKLOAD_NAMES)
def test_extended_spill_threshold(name):
    first_spill = EXTENDED_TARGETS[name][1]
    workload = get_workload(name)
    for lmul in (2, 4, 8):
        alloc = workload.compile(rg_config(lmul)).allocation
        if first_spill is None or lmul < first_spill:
            assert alloc.spill_free, f"{name} spills at LMUL{lmul}"
        else:
            assert not alloc.spill_free, f"{name} clean at LMUL{lmul}"


@pytest.mark.parametrize("name", EXTENDED_WORKLOAD_NAMES)
def test_extended_instruction_mix_band(name):
    lo, hi = EXTENDED_TARGETS[name][2]
    stats = get_workload(name).compile(native_config(1)).program.stats()
    assert lo <= stats.memory_fraction <= hi


def test_spmv_exercises_the_indexed_memory_path():
    """The ELL kernel must be dominated by gathers, not unit-stride loads."""
    from repro.isa.opcodes import Op

    program = get_workload("spmv").compile(native_config(1)).program
    gathers = sum(1 for i in program.insts if i.op is Op.VLXE)
    unit_loads = sum(1 for i in program.insts if i.op is Op.VLE)
    assert gathers > 0 and gathers == unit_loads // 2


def test_extended_workloads_are_vector_length_agnostic():
    for name in EXTENDED_WORKLOAD_NAMES:
        workload = get_workload(name)
        assert workload.fixed_avl is None
        assert workload.effective_vl(128) == 128


def test_workload_buffers_are_cached_per_instance():
    """compile() must not re-allocate every data array per configuration."""
    workload = get_workload("somier")
    calls = 0
    original = workload.init_data

    def counting(rng):
        nonlocal calls
        calls += 1
        return original(rng)

    workload.init_data = counting  # type: ignore[method-assign]
    first = workload.buffers
    assert workload.buffers is first
    workload.compile(native_config(1))
    workload.compile(rg_config(4))
    assert calls == 1
    # Resizing the instance (the equivalence suite does this) recomputes.
    workload.n_elements = 128
    assert workload.buffers["pos"] == 128
    assert calls == 2
