"""End-to-end engine coverage of the extended ten-kernel suite.

Golden-oracle ``check=True`` cells for every new kernel across the MVL
grid, plus the figure builders' selection plumbing (``--extended`` /
``--workloads`` resolve through here).
"""

import pytest

from repro.core.config import ava_config, native_config
from repro.experiments.engine import Cell, CellExecutor, figure3_spec
from repro.experiments.figure3 import build_panels
from repro.experiments.figure4 import build_figure4
from repro.experiments.headline import CLAIM_WORKLOADS, check_headline_claims
from repro.workloads import EXTENDED_WORKLOAD_NAMES

#: MVL 16 / 64 / 128 — short, mid and the most swap-intensive point.
MVL_GRID = [native_config(1), ava_config(4), ava_config(8)]


@pytest.mark.parametrize("name", EXTENDED_WORKLOAD_NAMES)
def test_new_workloads_check_true_across_the_mvl_grid(name):
    executor = CellExecutor()
    cells = [Cell(workload=name, config=config, check=True)
             for config in MVL_GRID]
    results = executor.run(cells)
    for result in results:
        assert result.correct is True, result.cell.label()
        assert result.stats.cycles > 0
        assert result.energy.total > 0
    # One compile per configuration, even though check replays data.
    assert executor.stats.compiles == len(MVL_GRID)


def test_figure3_spec_covers_the_extended_grid():
    spec = figure3_spec(EXTENDED_WORKLOAD_NAMES)
    assert len(spec) == len(EXTENDED_WORKLOAD_NAMES) * 14
    names = [cell.workload_name for cell in spec.cells()]
    assert names[0] == "jacobi2d" and names[-1] == "streamcluster"


def test_figure3_panels_for_a_new_workload():
    panels = build_panels(["pathfinder"])
    panel = panels["pathfinder"]
    assert len(panel.records) == 14
    assert panel.record("NATIVE X1").speedup == pytest.approx(1.0)
    assert "Figure 3 panel: pathfinder" in panel.render()


def test_figure4_accepts_a_workload_selection():
    fig4 = build_figure4(workload_names=["jacobi2d"])
    assert fig4.avg_speedups_native[0] == pytest.approx(1.0)
    assert "Figure 4" in fig4.render()


def test_headline_claims_with_extra_workloads_share_one_batch():
    executor = CellExecutor()
    claims = check_headline_claims(executor=executor,
                                   extra_workloads=["pathfinder"])
    assert claims  # the claim set itself is unchanged by the wider batch
    expected = (len(CLAIM_WORKLOADS) + 1) * 14
    assert executor.stats.cells_requested == expected
