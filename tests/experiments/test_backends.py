"""Execution backends: selection, equivalence, and the CLI surface.

The backend layer's contract: *which* backend runs a batch (inline,
process pool, or shards) changes scheduling only — never a byte of the
rendered artifacts, never the cache contents, never the user-visible
counters a fault-free run reports.
"""

import json

import pytest

from repro.__main__ import main
from repro.core.config import ava_config, native_config
from repro.experiments.backends import (ExecutionBackend, InlineBackend,
                                        ProcessPoolBackend, default_jobs,
                                        make_backend)
from repro.experiments.engine import (Cell, CellExecutor, SweepSpec,
                                      make_executor)
from repro.experiments.shard import ShardBackend, stats_payload


@pytest.fixture
def cache_args(tmp_path):
    return ["--cache-dir", str(tmp_path / "cache")]


# ---------------------------------------------------------------------------
# backend construction and selection
# ---------------------------------------------------------------------------
def test_executor_picks_backend_from_jobs():
    assert isinstance(CellExecutor().backend, InlineBackend)
    with CellExecutor(jobs=2) as parallel:
        assert isinstance(parallel.backend, ProcessPoolBackend)
        assert parallel.backend.jobs == 2


def test_make_backend_names():
    assert isinstance(make_backend("auto", jobs=1), InlineBackend)
    assert isinstance(make_backend("auto", jobs=3), ProcessPoolBackend)
    assert isinstance(make_backend("inline", jobs=8), InlineBackend)
    pool = make_backend("pool", jobs=1)
    assert isinstance(pool, ProcessPoolBackend)
    shard = make_backend("shard", jobs=1, shards=6)
    assert isinstance(shard, ShardBackend)
    assert shard.shards == 6
    with pytest.raises(ValueError):
        make_backend("threads")


def test_make_executor_accepts_backend_instance_and_name(tmp_path):
    backend = ShardBackend(shards=2)
    executor = make_executor(cache=True, cache_dir=tmp_path / "c",
                             backend=backend)
    assert executor.backend is backend
    named = make_executor(cache=True, cache_dir=tmp_path / "c",
                          backend="shard", shards=3)
    assert isinstance(named.backend, ShardBackend)
    assert named.backend.shards == 3


def test_backend_must_be_bound_before_use():
    backend = InlineBackend()
    with pytest.raises(RuntimeError):
        _ = backend.executor
    with pytest.raises(NotImplementedError):
        ExecutionBackend().execute([], None, None, None)


def test_default_jobs_is_a_positive_count():
    assert default_jobs() >= 1


# ---------------------------------------------------------------------------
# cross-backend equivalence (the acceptance invariant)
# ---------------------------------------------------------------------------
def test_backends_agree_byte_for_byte():
    spec = SweepSpec(workloads=("axpy",),
                     configs=(native_config(1), ava_config(2), ava_config(4),
                              ava_config(8)))
    inline = CellExecutor().run_spec(spec)
    with CellExecutor(jobs=2) as pooled:
        pool = pooled.run_spec(spec)
    sharded_ex = CellExecutor(backend=ShardBackend(shards=3))
    sharded = sharded_ex.run_spec(spec)
    for a, b, c in zip(inline, pool, sharded):
        assert a.stats == b.stats == c.stats
        assert a.energy == b.energy == c.energy


def test_figure3_stdout_identical_across_backends(capsys, tmp_path):
    """The headline acceptance: figure3 renders the same bytes whether the
    grid ran inline, over a pool, or as 4 sequential shards."""
    outputs = {}
    for backend, extra in (("inline", []), ("pool", ["--jobs", "2"]),
                           ("shard", ["--shards", "4"])):
        cache = ["--cache-dir", str(tmp_path / backend)]
        assert main(["figure3", "axpy", "--backend", backend]
                    + extra + cache) == 0
        outputs[backend] = capsys.readouterr().out
    assert outputs["inline"] == outputs["pool"] == outputs["shard"]
    assert "Figure 3 panel: axpy" in outputs["inline"]


# ---------------------------------------------------------------------------
# CLI flag surface
# ---------------------------------------------------------------------------
def test_jobs_auto_is_the_default_and_spelled_form(capsys, cache_args):
    assert main(["table2"] + cache_args) == 0
    first = capsys.readouterr().out
    assert main(["table2", "--jobs", "auto"] + cache_args) == 0
    assert capsys.readouterr().out == first


def test_jobs_flag_validation():
    with pytest.raises(SystemExit):
        main(["table2", "--jobs", "many"])
    with pytest.raises(SystemExit):
        main(["table2", "--jobs", "0"])


def test_shard_flag_validation(cache_args):
    # --shard-index is sweep-only and needs --shards.
    with pytest.raises(SystemExit):
        main(["figure3", "axpy", "--shard-index", "0", "--shards", "2"]
             + cache_args)
    with pytest.raises(SystemExit):
        main(["sweep", "examples/sweep_smoke.json", "--shard-index", "0"]
             + cache_args)
    # Out of range, bad counts, and mixing with --backend shard.
    with pytest.raises(SystemExit):
        main(["sweep", "examples/sweep_smoke.json", "--shards", "2",
              "--shard-index", "2"] + cache_args)
    with pytest.raises(SystemExit):
        main(["sweep", "examples/sweep_smoke.json", "--shards", "0",
              "--shard-index", "0"] + cache_args)
    with pytest.raises(SystemExit):
        main(["sweep", "examples/sweep_smoke.json", "--backend", "shard",
              "--shards", "2", "--shard-index", "0"] + cache_args)
    # --shards without anything to shard is a contradiction.
    with pytest.raises(SystemExit):
        main(["table2", "--shards", "4"] + cache_args)


def test_bench_rejects_backend_and_stats_json():
    with pytest.raises(SystemExit):
        main(["bench", "engine", "--backend", "pool"])
    with pytest.raises(SystemExit):
        main(["bench", "engine", "--stats-json", "x.json"])


def test_stats_json_writes_a_mergeable_counter_file(capsys, tmp_path):
    stats_file = tmp_path / "run.json"
    assert main(["sweep", "examples/sweep_smoke.json",
                 "--stats-json", str(stats_file),
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    capsys.readouterr()
    payload = json.loads(stats_file.read_text())
    assert payload["schema"] == 1
    assert payload["artifact"] == "sweep"
    assert payload["name"] == "sweep_smoke"
    assert payload["stats"]["cells_requested"] == 4
    assert payload["stats"]["sims_executed"] == 4
    assert payload["shard_index"] is None


def test_merge_artifact_sums_counter_files(capsys, tmp_path):
    from repro.experiments.engine import ExecutorStats
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(stats_payload(
        ExecutorStats(cells_requested=3, cache_misses=3, sims_executed=3),
        artifact="sweep", name="demo", shards=2, shard_index=0)))
    b.write_text(json.dumps(stats_payload(
        ExecutorStats(cells_requested=1, cache_hits=1),
        artifact="sweep", name="demo", shards=2, shard_index=1)))
    assert main(["merge", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "merged 2 runs" in out
    assert "a.json (demo, shard 0/2): 3 cells, 0 hits, 3 simulations" in out
    assert ("engine: 4 cells requested, 1 cache hits, 3 misses, "
            "3 simulations executed") in out


def test_merge_rejects_missing_and_malformed_files(tmp_path):
    with pytest.raises(SystemExit):
        main(["merge"])  # nothing to merge
    with pytest.raises(SystemExit):
        main(["merge", str(tmp_path / "absent.json")])
    bad = tmp_path / "bad.json"
    bad.write_text("{\"schema\": 99}")
    with pytest.raises(SystemExit):
        main(["merge", str(bad)])


def test_merge_rejects_stray_run_flags(tmp_path):
    stats = tmp_path / "s.json"
    from repro.experiments.engine import ExecutorStats
    stats.write_text(json.dumps(stats_payload(ExecutorStats())))
    with pytest.raises(SystemExit):
        # Extra positional FILEs are merge-only.
        main(["figure3", "axpy", str(stats)])
