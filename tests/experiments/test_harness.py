"""Experiment harness: configs, rendering, tables."""

import pytest

from repro.experiments.configs import (
    ava_series,
    equivalence_rows,
    figure3_series,
    native_series,
    rg_series,
)
from repro.experiments.engine import (Cell, CellExecutor, fill_speedups,
                                      record_from_result)
from repro.experiments.rendering import render_bars, render_stacked, render_table
from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)
from repro.core.config import native_config
from repro.workloads import get_workload


def test_series_shapes():
    assert len(native_series()) == 5
    assert len(ava_series()) == 5
    assert len(rg_series()) == 4
    series = figure3_series()
    assert len(series) == 14  # 5 native + 5 ava + 4 rg
    assert series[0].name == "NATIVE X1"
    assert series[-1].name == "AVA X8"


def test_x3_has_no_rg_equivalent():
    names = [cfg.name for cfg in figure3_series()]
    assert "RG-LMUL3" not in names
    rows = equivalence_rows()
    assert ("NATIVE X3", "AVA X3 (21-PREG)", "NA") in rows


def test_engine_cell_with_check():
    result = CellExecutor().run_one(
        Cell(workload=get_workload("axpy"), config=native_config(1),
             check=True))
    record = record_from_result(result)
    assert record.correct is True
    assert record.stats.cycles > 0
    assert record.energy.total > 0


def test_fill_speedups_normalises_against_the_baseline():
    results = CellExecutor().run(
        [Cell(workload="axpy", config=cfg)
         for cfg in (native_config(1), native_config(8))])
    records = fill_speedups([record_from_result(r) for r in results])
    assert records[0].speedup == pytest.approx(1.0)
    assert records[1].speedup > 1.0


def test_runner_stub_is_gone():
    """The one-release compat stub served its release; it no longer exists."""
    import importlib
    import sys

    sys.modules.pop("repro.experiments.runner", None)
    with pytest.raises(ModuleNotFoundError):
        importlib.import_module("repro.experiments.runner")
    import repro.experiments
    assert not hasattr(repro.experiments, "run_cell")


def test_render_table_alignment():
    text = render_table(["a", "bbbb"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert len({len(l) for l in lines}) == 1  # constant width


def test_render_bars():
    text = render_bars([("one", 1.0), ("two", 2.0)])
    assert text.splitlines()[1].count("#") > text.splitlines()[0].count("#")


def test_render_stacked_has_legend():
    lines = render_stacked([("cfg", [("dyn", 1.0), ("leak", 2.0)])])
    assert any("dyn" in l for l in lines)


def test_static_tables_render():
    assert "64" in render_table1()
    assert "NATIVE X8" in render_table2()
    assert "RG-LMUL8" in render_table3()
    assert "blackscholes" in render_table4()
    assert "WNS" in render_table5()
