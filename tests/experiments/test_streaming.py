"""Streaming execution: incremental caching, failure isolation, resume.

The contract under test: every completed cell is written to the cache the
moment it lands, so interrupting a grid — a raising cell, an OOM-killed
worker, Ctrl-C — never discards finished work; rerunning the same grid
replays the completed cells as hits and re-executes only what is missing.
"""

import io
import os
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.config import ava_config, native_config
from repro.experiments.engine import (
    Cell,
    CellError,
    CellExecutionError,
    CellExecutor,
    CellResult,
    Progress,
    ProgressRenderer,
    ResultCache,
    RunRecord,
    SweepSpec,
    average_speedups,
)
from repro.power.mcpat import McPatModel
from repro.sim.stats import SimStats
from repro.vpu.params import DEFAULT_TIMING
from repro.workloads import get_workload
from repro.workloads.axpy import Axpy


# ---------------------------------------------------------------------------
# poison workloads (module-level so worker processes can unpickle them)
# ---------------------------------------------------------------------------
class RaisingAxpy(Axpy):
    """Compiles like axpy, then raises instead of simulating.

    ``armed`` starts False so the compile-time buffer-shape probe (which
    also calls ``init_data``) can run; :func:`_arm` caches the shapes and
    then flips it, so the poison only fires inside ``_execute_cell``.
    """

    name = "raising-axpy"
    armed = False

    def init_data(self, rng):
        if self.armed:
            raise RuntimeError("injected failure")
        return super().init_data(rng)


class DieWhenFlagged(Axpy):
    """Simulates a SIGKILL-ed worker (OOM killer): hard-exits the process.

    While ``flag_path`` exists the workload waits until at least one cache
    entry has landed in ``watch_dir`` (so the test deterministically has
    completed-and-cached neighbours), then dies without cleanup.  With the
    flag removed it behaves exactly like axpy — same kernel, same cache
    key — which is how the rerun proves the failed cell re-executes.
    """

    name = "dying-axpy"
    flag_path = ""
    watch_dir = ""

    def init_data(self, rng):
        if self.flag_path and os.path.exists(self.flag_path):
            deadline = time.time() + 30
            while time.time() < deadline:
                if list(Path(self.watch_dir).glob("*.json")):
                    break
                time.sleep(0.01)
            os._exit(13)
        return super().init_data(rng)


class CompileBomb(Axpy):
    """A kernel whose *compile* raises — isolation must start before any
    simulation, not just inside ``_execute_cell``."""

    name = "compile-bomb"

    def build_kernel(self):
        raise ValueError("kernel does not build")


def _arm(workload: Axpy, **attributes) -> Axpy:
    """Cache the compile-time buffer shapes, then enable the poison."""
    _ = workload.buffers
    for name, value in attributes.items():
        setattr(workload, name, value)
    return workload


def _small_axpy(n_elements: int = 256) -> Axpy:
    workload = get_workload("axpy")
    workload.n_elements = n_elements
    return workload


def _grid_40() -> SweepSpec:
    """A cheap 40-cell grid: 4 machines x 10 timing variants of tiny axpy."""
    return SweepSpec(
        workloads=(_small_axpy(),),
        configs=(native_config(1), ava_config(2), ava_config(4),
                 ava_config(8)),
        params=tuple(replace(DEFAULT_TIMING, arith_dead_time=i)
                     for i in range(10)))


# ---------------------------------------------------------------------------
# failure isolation: a raising cell becomes a CellError
# ---------------------------------------------------------------------------
def test_raising_cell_does_not_discard_the_batch(tmp_path):
    cells = [Cell(workload="axpy", config=native_config(1)),
             Cell(workload=_arm(RaisingAxpy(), armed=True),
                  config=native_config(1)),
             Cell(workload="axpy", config=ava_config(2))]
    executor = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    with pytest.raises(CellExecutionError) as err:
        executor.run(cells)
    assert "1 of 3 cells failed" in str(err.value)
    assert "RuntimeError: injected failure" in str(err.value)
    assert err.value.completed == 2
    assert [e.label() for e in err.value.errors] == ["raising-axpy@NATIVE X1"]
    # Both healthy cells were cached before the failure surfaced ...
    assert len(list((tmp_path / "cache").glob("*.json"))) == 2
    assert executor.stats.cells_failed == 1
    assert "1 cells failed" in executor.stats.summary()

    # ... so the rerun replays them and re-executes only the failure.
    warm = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    with pytest.raises(CellExecutionError):
        warm.run(cells)
    assert warm.stats.cache_hits == 2
    assert warm.stats.cache_misses == 1
    assert warm.stats.sims_executed == 0  # the raise happens mid-simulation


def test_errors_return_mode_yields_cell_errors_in_place(tmp_path):
    cells = [Cell(workload="axpy", config=native_config(1)),
             Cell(workload=_arm(RaisingAxpy(), armed=True),
                  config=native_config(1))]
    executor = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    results = executor.run(cells, errors="return")
    assert isinstance(results[0], CellResult)
    assert isinstance(results[1], CellError)
    assert results[1].error == "RuntimeError: injected failure"
    assert "injected failure" in results[1].tb  # worker traceback captured
    assert results[1].key  # the key is known, so a rerun can resume


def test_raising_cell_is_isolated_under_a_parallel_pool(tmp_path):
    cells = [Cell(workload="axpy", config=cfg)
             for cfg in (native_config(1), ava_config(2), ava_config(4))]
    cells.insert(1, Cell(workload=_arm(RaisingAxpy(), armed=True),
                         config=native_config(1)))
    with CellExecutor(jobs=2, cache=ResultCache(tmp_path / "cache")) as ex:
        results = ex.run(cells, errors="return")
        assert sum(isinstance(r, CellError) for r in results) == 1
        assert isinstance(results[1], CellError)
        assert len(list((tmp_path / "cache").glob("*.json"))) == 3
    assert ex._pool is None  # the context manager shut the pool down


def test_compile_failure_is_isolated_per_cell(tmp_path):
    """One unbuildable kernel must not abort the grid — and two cells
    sharing the failing (workload, config) pair share one CellError while
    the reported counts stay per cell."""
    bomb = CompileBomb()
    cells = [Cell(workload="axpy", config=native_config(1)),
             Cell(workload=bomb, config=native_config(1)),
             Cell(workload=bomb, config=native_config(1), warm=False)]
    executor = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    results = executor.run(cells, errors="return")
    assert isinstance(results[0], CellResult)
    assert isinstance(results[1], CellError)
    assert results[2] is results[1]  # one compile attempt, one shared error
    assert results[1].error == "ValueError: kernel does not build"
    assert results[1].key == ""  # no program, hence nothing to cache under
    assert executor.stats.compiles == 1  # only the successful axpy compile
    assert executor.stats.cells_failed == 2
    assert executor.stats.sims_executed == 1
    # The healthy cell was cached; reruns retry the failed compile.
    assert len(list((tmp_path / "cache").glob("*.json"))) == 1
    warm = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    with pytest.raises(CellExecutionError) as err:
        warm.run(cells)
    assert "2 of 3 cells failed" in str(err.value)  # per cell, not per key
    assert "1 completed and cached" in str(err.value)
    assert len(err.value.errors) == 1  # one distinct failure
    assert warm.stats.cache_hits == 1


def test_compile_failure_is_isolated_under_a_parallel_pool(tmp_path):
    cells = [Cell(workload="axpy", config=cfg)
             for cfg in (native_config(1), ava_config(2))]
    cells.append(Cell(workload=CompileBomb(), config=native_config(1)))
    with CellExecutor(jobs=2, cache=ResultCache(tmp_path / "cache")) as ex:
        results = ex.run(cells, errors="return")
        assert [isinstance(r, CellError) for r in results] == [
            False, False, True]
        assert len(list((tmp_path / "cache").glob("*.json"))) == 2


def test_run_spec_and_run_one_expose_the_errors_knob():
    spec = SweepSpec(workloads=(_arm(RaisingAxpy(), armed=True),),
                     configs=(native_config(1),))
    results = CellExecutor().run_spec(spec, errors="return")
    assert isinstance(results[0], CellError)
    one = CellExecutor().run_one(spec.cells()[0], errors="return")
    assert isinstance(one, CellError)


def test_run_rejects_unknown_errors_mode():
    with pytest.raises(ValueError):
        CellExecutor().run([], errors="bogus")


# ---------------------------------------------------------------------------
# interrupt / resume: finished cells replay as hits
# ---------------------------------------------------------------------------
def test_interrupted_40_cell_grid_resumes_from_cache(tmp_path):
    """The acceptance scenario: a --jobs 4 40-cell grid killed mid-run.

    The interrupt arrives through the progress callback (exactly what a
    Ctrl-C in the render loop looks like to the engine) after the 10th
    cell lands; because every payload is cached before ``done`` advances,
    the rerun must replay exactly those 10 cells as hits and re-execute
    the remaining 30 — ``cache_misses`` strictly below the grid size.
    """
    spec = _grid_40()

    def interrupt_after_10(progress: Progress) -> None:
        if progress.done >= 10:
            raise KeyboardInterrupt

    cold = CellExecutor(jobs=4, cache=ResultCache(tmp_path / "cache"),
                        progress=interrupt_after_10)
    with pytest.raises(KeyboardInterrupt):
        cold.run_spec(spec)
    assert cold._pool is None  # interrupted pool was discarded
    cached = len(list((tmp_path / "cache").glob("*.json")))
    assert cached == 10

    warm = CellExecutor(jobs=4, cache=ResultCache(tmp_path / "cache"))
    results = warm.run_spec(spec)
    assert len(results) == 40
    assert warm.stats.cache_hits == 10
    assert warm.stats.cache_misses == 30
    assert warm.stats.cache_misses < len(spec)
    warm.close()


def test_worker_death_preserves_completed_cells_and_resumes(tmp_path):
    """An OOM-killed worker breaks the pool, not the completed work."""
    cache_dir = tmp_path / "cache"
    flag = tmp_path / "die.flag"
    flag.write_text("armed")
    dying = _arm(DieWhenFlagged(), flag_path=str(flag),
                 watch_dir=str(cache_dir))

    goods = [Cell(workload="axpy", config=cfg)
             for cfg in (native_config(1), ava_config(2), ava_config(4),
                         ava_config(8))]
    cells = goods + [Cell(workload=dying, config=native_config(1))]

    executor = CellExecutor(jobs=2, cache=ResultCache(cache_dir))
    with pytest.raises(CellExecutionError) as err:
        executor.run(cells)
    assert any("BrokenProcessPool" in e.error for e in err.value.errors)
    assert executor._pool is None  # the broken pool was discarded
    cached = len(list(cache_dir.glob("*.json")))
    assert cached >= 1  # the dying cell waited for a neighbour to land

    # The executor survives the death: the next batch gets a fresh pool.
    # (Its two cells use a different key, so `cached` stays grid-only.)
    survivors = executor.run(
        [Cell(workload=_small_axpy(128), config=cfg)
         for cfg in (native_config(1), ava_config(2))])
    assert all(isinstance(r, CellResult) for r in survivors)
    executor.close()

    # Disarm the poison: same cells, same keys, no death.  Every cell
    # completed before the crash replays as a hit; the rest re-execute.
    flag.unlink()
    warm = CellExecutor(jobs=2, cache=ResultCache(cache_dir))
    results = warm.run(cells)
    assert all(isinstance(r, CellResult) for r in results)
    assert warm.stats.cache_hits == cached
    assert warm.stats.cache_misses == len(cells) - cached
    assert warm.stats.cache_misses < len(cells)
    warm.close()


def test_inline_interrupt_preserves_cache_without_a_pool(tmp_path):
    """jobs=1 streams too: each inline cell is cached as it completes."""
    spec = SweepSpec(workloads=(_small_axpy(),),
                     configs=(native_config(1), ava_config(2),
                              ava_config(4), ava_config(8)))

    def interrupt_after_2(progress: Progress) -> None:
        if progress.done >= 2:
            raise KeyboardInterrupt

    cold = CellExecutor(cache=ResultCache(tmp_path / "cache"),
                        progress=interrupt_after_2)
    with pytest.raises(KeyboardInterrupt):
        cold.run_spec(spec)
    assert len(list((tmp_path / "cache").glob("*.json"))) == 2

    warm = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    warm.run_spec(spec)
    assert warm.stats.cache_hits == 2
    assert warm.stats.cache_misses == 2


# ---------------------------------------------------------------------------
# persistent pool + fanned-out compiles
# ---------------------------------------------------------------------------
def test_pool_persists_across_batches_and_closes():
    executor = CellExecutor(jobs=2)
    spec = SweepSpec(workloads=(_small_axpy(),),
                     configs=(native_config(1), ava_config(2)))
    executor.run_spec(spec)
    pool = executor._pool
    assert pool is not None
    executor.run_spec(SweepSpec(workloads=(_small_axpy(),),
                                configs=(ava_config(4), ava_config(8))))
    assert executor._pool is pool  # reused, not respawned per batch
    executor.close()
    assert executor._pool is None
    executor.close()  # idempotent


def test_parallel_compiles_match_serial_results_and_counts(tmp_path):
    spec = SweepSpec(workloads=("axpy", "blackscholes"),
                     configs=(native_config(1), ava_config(8)))
    serial = CellExecutor()
    serial_results = serial.run_spec(spec)
    with CellExecutor(jobs=2) as parallel:
        parallel_results = parallel.run_spec(spec)
        # Fanning compiles over the pool must not change the accounting:
        # one compile per distinct (workload, config) pair ...
        assert parallel.stats.compiles == serial.stats.compiles == 4
    # ... or any byte of the results.
    for a, b in zip(serial_results, parallel_results):
        assert a.stats == b.stats
        assert a.energy == b.energy


# ---------------------------------------------------------------------------
# progress reporting
# ---------------------------------------------------------------------------
def test_progress_callback_sees_every_landing(tmp_path):
    spec = SweepSpec(workloads=(_small_axpy(),),
                     configs=(native_config(1), ava_config(2)))
    snapshots = []

    def record(progress: Progress) -> None:
        snapshots.append((progress.label, progress.done, progress.hits,
                          progress.misses, progress.failed))

    cold = CellExecutor(cache=ResultCache(tmp_path / "cache"),
                        progress=record)
    cold.run_spec(spec, label="demo")
    assert snapshots[0] == ("demo", 0, 0, 2, 0)  # post-scan snapshot
    assert snapshots[-1] == ("demo", 2, 0, 2, 0)
    assert [s[1] for s in snapshots] == sorted(s[1] for s in snapshots)

    snapshots.clear()
    warm = CellExecutor(cache=ResultCache(tmp_path / "cache"),
                        progress=record)
    warm.run_spec(spec, label="replay")
    # A full-hit batch is done at the scan: one final snapshot.
    assert snapshots == [("replay", 2, 2, 0, 0)]


def test_progress_rate_and_elapsed_are_sane():
    progress = Progress(total=4)
    assert progress.rate == 0.0
    progress.done = 2
    assert progress.rate > 0.0
    assert progress.elapsed >= 0.0


def test_progress_renderer_writes_in_place_lines():
    stream = io.StringIO()
    renderer = ProgressRenderer(stream=stream, min_interval_s=0.0)
    progress = Progress(total=3, label="grid")
    progress.done, progress.misses = 1, 3
    renderer(progress)
    progress.done, progress.failed = 3, 1
    renderer(progress)
    text = stream.getvalue()
    assert text.startswith("\rgrid: 1/3 cells")
    assert "| 3 misses" in text
    assert "1 FAILED" in text
    assert text.endswith("\n")  # a finished batch terminates its own line
    renderer.close()  # nothing pending: must not add another newline
    assert stream.getvalue() == text


def test_progress_renderer_close_terminates_interrupted_lines():
    stream = io.StringIO()
    renderer = ProgressRenderer(stream=stream, min_interval_s=0.0)
    progress = Progress(total=5)
    progress.done = 1
    renderer(progress)
    assert not stream.getvalue().endswith("\n")
    renderer.close()
    assert stream.getvalue().endswith("\n")
    renderer.close()
    assert stream.getvalue().count("\n") == 1


def test_bench_threads_progress_through_the_executor():
    from repro.experiments.bench import measure_engine_throughput

    spec = SweepSpec(workloads=(_small_axpy(),), configs=(native_config(1),))
    snapshots = []
    measure_engine_throughput(
        repeats=1, spec=spec,
        progress=lambda p: snapshots.append((p.label, p.done, p.total)))
    assert snapshots[-1] == ("bench cold run 1", 1, 1)


# ---------------------------------------------------------------------------
# satellite: orphaned tempfiles are reaped
# ---------------------------------------------------------------------------
def _age(path: Path, seconds: float) -> None:
    old = time.time() - seconds
    os.utime(path, (old, old))


def test_clear_reaps_orphaned_tmp_files(tmp_path):
    root = tmp_path / "cache"
    root.mkdir()
    (root / "entry.json").write_text("{}")
    orphan = root / "orphan.tmp"
    orphan.write_text("partial write")
    _age(orphan, 2 * ResultCache.CLEAR_GRACE_S)
    live = root / "live.tmp"
    live.write_text("concurrent writer mid-put")  # fresh: never raced
    assert ResultCache(root).clear() == 2
    assert list(root.iterdir()) == [live]


def test_put_reaps_stale_orphans_but_spares_live_writers(tmp_path):
    root = tmp_path / "cache"
    root.mkdir()
    stale = root / "stale.tmp"
    stale.write_text("killed writer")
    _age(stale, 2 * ResultCache.TMP_MAX_AGE_S)
    fresh = root / "fresh.tmp"
    fresh.write_text("concurrent writer, mid-put")

    cache = ResultCache(root)
    cache.put("k1", {"schema": 1})
    assert not stale.exists()  # orphan reaped opportunistically
    assert fresh.exists()  # a live writer is never raced

    # The sweep runs once per cache instance, not once per put.
    stale2 = root / "stale2.tmp"
    stale2.write_text("killed writer")
    _age(stale2, 2 * ResultCache.TMP_MAX_AGE_S)
    cache.put("k2", {"schema": 1})
    assert stale2.exists()
    assert ResultCache(root).sweep_orphans() == 1


# ---------------------------------------------------------------------------
# satellite: the umask is read once per process
# ---------------------------------------------------------------------------
def test_put_never_flips_the_umask_after_the_first_read(tmp_path,
                                                        monkeypatch):
    import repro.cachefs as cachefs

    previous = os.umask(0o022)
    try:
        monkeypatch.setattr(cachefs, "_PROCESS_UMASK", None)
        assert cachefs.process_umask() == 0o022
        flips = []
        monkeypatch.setattr(cachefs.os, "umask", flips.append)
        cache = ResultCache(tmp_path / "cache")
        cache.put("k", {"schema": 1})
        assert flips == []  # concurrent executors can never race the flip
        import stat
        mode = stat.S_IMODE((cache.root / "k.json").stat().st_mode)
        assert mode == 0o644
    finally:
        os.umask(previous)


# ---------------------------------------------------------------------------
# satellite: ragged Figure-4 series are a renderer bug, not an average
# ---------------------------------------------------------------------------
def _record(speedup: float) -> RunRecord:
    stats = SimStats(cycles=100)
    record = RunRecord(config=native_config(1), stats=stats,
                       energy=McPatModel().energy(native_config(1), stats))
    record.speedup = speedup
    return record


def test_average_speedups_rejects_ragged_series():
    ragged = {"axpy": [_record(1.0), _record(2.0)],
              "somier": [_record(1.5)]}
    with pytest.raises(ValueError, match="ragged"):
        average_speedups(ragged)


def test_average_speedups_still_averages_aligned_series():
    aligned = {"axpy": [_record(2.0)], "somier": [_record(4.0)]}
    assert average_speedups(aligned) == [3.0]


# ---------------------------------------------------------------------------
# satellite: SimStats.from_dict copies meta both ways
# ---------------------------------------------------------------------------
def test_simstats_from_dict_copies_meta():
    source = {"cycles": 7, "meta": {"shared": 1}}
    stats = SimStats.from_dict(source)
    stats.meta["shared"] = 2
    assert source["meta"]["shared"] == 1  # the caller's dict is never aliased
    assert "meta" in source  # and from_dict never mutates its argument
