"""Chaos-hardened execution: every injected fault must degrade gracefully.

Three layers under test, all driven through :mod:`repro.faults`:

* the cache (`AtomicJsonStore`): checksummed entries, quarantine-on-read,
  degraded in-memory operation when the directory is unwritable, LRU
  eviction that never exceeds its bound nor races concurrent writers,
  and a ``clear()`` that never deletes a just-committed entry;
* the executor: bounded retry-with-backoff for infrastructure faults
  (fail-fast for deterministic ones), per-cell deadlines inline and via
  the pool watchdog, and retry accounting that keeps a retried cell at
  ONE cache miss;
* the ``repro chaos`` harness: clean / faulted / warm runs of the same
  sweep must render byte-identical output with zero failed cells.
"""

import io
import json
import threading
import time
from pathlib import Path

import pytest

from repro import faults
from repro.core.config import ava_config, native_config
from repro.experiments.chaos import run_chaos
from repro.experiments.engine import (CACHE_SCHEMA, Cell,
                                      CellExecutionError, CellExecutor,
                                      CellResult, Progress, ResultCache)
from repro.faults import (CACHE_CORRUPT, CACHE_ENOSPC, CACHE_READONLY,
                          CELL_HANG, WORKER_CRASH, FaultPlan, FaultSpec)

from tests.experiments.test_streaming import _grid_40, _small_axpy


def _cell(config=None, n_elements: int = 256) -> Cell:
    return Cell(workload=_small_axpy(n_elements),
                config=config or native_config(1))


# ---------------------------------------------------------------------------
# cache integrity: checksums, quarantine, verify
# ---------------------------------------------------------------------------
def test_checksummed_entries_round_trip(tmp_path):
    store = ResultCache(tmp_path)
    payload = {"schema": CACHE_SCHEMA, "stats": {"cycles": 7}, "energy": {"total": 1.0}}
    store.put("k", payload)
    assert store.get("k") == payload
    wrapper = json.loads(store.path("k").read_text())
    assert set(wrapper) == {"sha256", "body"}


def test_bitrot_is_quarantined_and_reads_as_a_miss(tmp_path):
    store = ResultCache(tmp_path)
    payload = {"schema": CACHE_SCHEMA, "stats": {"cycles": 7}, "energy": {"total": 1.0}}
    store.put("k", payload)
    raw = store.path("k").read_text()
    rotten = raw.replace('cycles\\": 7', 'cycles\\": 9')  # body is escaped
    assert rotten != raw
    store.path("k").write_text(rotten)
    assert store.get("k") is None
    assert store.quarantined == 1
    assert not store.path("k").exists()
    assert (store.quarantine_dir() / "k.json").exists()


def test_legacy_plain_payload_is_a_miss_but_not_quarantined(tmp_path):
    store = ResultCache(tmp_path)
    store.path("k").parent.mkdir(parents=True, exist_ok=True)
    store.path("k").write_text(json.dumps({"schema": CACHE_SCHEMA, "stats": {},
                                           "energy": {}}))
    assert store.get("k") is None
    assert store.quarantined == 0
    assert store.path("k").exists()  # stale, not corrupt: left in place


def test_verify_classifies_the_whole_damage_taxonomy(tmp_path):
    store = ResultCache(tmp_path)
    ok = {"schema": CACHE_SCHEMA, "stats": {}, "energy": {}}
    store.put("good", ok)
    store.put("rotten", ok)
    raw = store.path("rotten").read_text()
    store.path("rotten").write_text(raw[:-20] + raw[-18:])
    store.path("legacy").write_text(json.dumps(ok))
    store.put("stale", {"schema": -1, "stats": {}, "energy": {}})
    counts = store.verify()
    assert counts == {"entries": 4, "ok": 1, "quarantined": 1, "stale": 1,
                      "legacy": 1}
    assert (store.quarantine_dir() / "rotten.json").exists()


# ---------------------------------------------------------------------------
# degraded operation: unwritable cache directories
# ---------------------------------------------------------------------------
def test_readonly_cache_degrades_to_memory_with_one_warning(recwarn, tmp_path):
    plan = FaultPlan(specs=[FaultSpec(kind=CACHE_READONLY, site="results",
                                      times=99)])
    store = ResultCache(tmp_path / "cache")
    payload = {"schema": CACHE_SCHEMA, "stats": {}, "energy": {}}
    with faults.injected(plan):
        store.put("a", payload)
        store.put("b", payload)
    warned = [w for w in recwarn.list if "unwritable" in str(w.message)]
    assert len(warned) == 1  # warn once, not per write
    assert store.get("a") == payload  # served from the in-memory overlay
    assert store.get("b") == payload
    assert not list((tmp_path / "cache").glob("*.json"))


def test_enospc_mid_write_leaves_no_partial_entry(recwarn, tmp_path):
    plan = FaultPlan(specs=[FaultSpec(kind=CACHE_ENOSPC, site="results",
                                      ordinal=0)])
    store = ResultCache(tmp_path / "cache")
    payload = {"schema": CACHE_SCHEMA, "stats": {}, "energy": {}}
    with faults.injected(plan):
        store.put("a", payload)  # hits ENOSPC mid-write
        store.put("b", payload)  # the next write finds space again
    assert len([w for w in recwarn.list
                if "unwritable" in str(w.message)]) == 1
    assert store.get("a") == payload  # overlay
    assert store.get("b") == payload  # disk
    on_disk = {p.name for p in (tmp_path / "cache").glob("*")}
    assert on_disk == {"b.json"}  # no a.json and, crucially, no *.tmp


def test_degraded_sweep_completes_with_correct_results(recwarn, tmp_path):
    """A sweep against a read-only cache dir: every cell still simulates
    and renders; the run is merely unpersisted."""
    plan = FaultPlan(specs=[FaultSpec(kind=CACHE_READONLY, site="results",
                                      times=99)])
    cells = [_cell(native_config(1)), _cell(ava_config(8))]
    executor = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    with faults.injected(plan):
        results = executor.run(cells)
    assert all(isinstance(r, CellResult) and r.stats.cycles > 0
               for r in results)
    assert executor.stats.cells_failed == 0
    assert len([w for w in recwarn.list
                if "unwritable" in str(w.message)]) == 1
    # Within the same executor the overlay serves warm requests.
    rerun = executor.run(cells)
    assert executor.stats.cache_hits == 2
    assert [r.stats.cycles for r in rerun] == [r.stats.cycles
                                               for r in results]


def test_corrupt_write_is_quarantined_then_resimulated(tmp_path):
    """cache-corrupt -> verify-on-read quarantines -> the cell re-simulates
    with identical output."""
    plan = FaultPlan(specs=[FaultSpec(kind=CACHE_CORRUPT, site="results",
                                      ordinal=0)])
    cell = _cell()
    first = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    with faults.injected(plan):
        poisoned = first.run_one(cell)

    second = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    replayed = second.run_one(cell)
    assert second.stats.cache_hits == 0  # the corrupt entry was no hit
    assert second.stats.cache_quarantined == 1
    assert replayed.stats.cycles == poisoned.stats.cycles
    quarantine = tmp_path / "cache" / "quarantine"
    assert len(list(quarantine.glob("*.json"))) == 1

    third = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    assert isinstance(third.run_one(cell), CellResult)
    assert third.stats.cache_hits == 1  # the rewrite healed the store


# ---------------------------------------------------------------------------
# eviction: the size bound and its races
# ---------------------------------------------------------------------------
def _sized_payload(tag: str, n: int = 64) -> dict:
    return {"schema": CACHE_SCHEMA, "stats": {}, "energy": {}, "pad": tag * n}


def test_eviction_never_exceeds_the_bound(tmp_path):
    store = ResultCache(tmp_path, max_bytes=2048)
    for i in range(12):
        store.put(f"k{i:02d}", _sized_payload(f"{i:x}"))
        _, size = store.stats()
        assert size <= 2048
    assert store.evicted > 0
    assert store.get("k11") is not None  # the just-written key survives


def test_eviction_is_least_recently_used(tmp_path):
    import os
    store = ResultCache(tmp_path, max_bytes=10**9)  # roomy while seeding
    store.put("old", _sized_payload("a"))
    store.put("hot", _sized_payload("b"))
    # Age both well into the past, then touch `hot` by reading it.
    past = time.time() - 1000
    os.utime(store.path("old"), (past, past))
    os.utime(store.path("hot"), (past + 1, past + 1))
    before = store.path("hot").stat().st_mtime
    assert store.get("hot") is not None
    assert store.path("hot").stat().st_mtime > before  # reads refresh LRU
    # Tighten the bound so the next (equal-sized) put must evict exactly
    # one entry — the least recently *used*, which is now `old` even
    # though `hot` is the older *write*.
    _, size = store.stats()
    store.max_bytes = size + 16
    store.put("big", _sized_payload("c"))
    assert store.evicted == 1
    assert store.get("hot") is not None  # recently read: kept
    assert store.get("big") is not None  # just written: protected
    assert not store.path("old").exists()  # least recently used: gone


def test_forty_cell_sweep_respects_cache_bound(tmp_path):
    """The acceptance bound: across a 40-cell sweep with --cache-max-bytes,
    the store never exceeds the bound at any observation point."""
    bound = 8 * 1024
    cache = ResultCache(tmp_path / "cache", max_bytes=bound)
    high_water = []

    def watermark(progress: Progress) -> None:
        high_water.append(cache.stats()[1])

    executor = CellExecutor(cache=cache, progress=watermark)
    results = executor.run_spec(_grid_40())
    assert len(results) == 40
    assert executor.stats.cells_failed == 0
    assert max(high_water) <= bound
    assert cache.stats()[1] <= bound
    assert executor.stats.cache_evicted > 0  # the bound actually bit


def test_concurrent_eviction_loses_no_in_flight_writes(tmp_path):
    """Two executors evicting against each other: every write either
    survives intact or was evicted whole — nothing corrupts, nothing
    crashes, and each store's own just-written entry is always readable
    immediately after its put."""
    root = tmp_path / "shared"
    errors = []

    def writer(tag: str) -> None:
        try:
            store = ResultCache(root, max_bytes=1500)
            for i in range(40):
                key = f"{tag}{i:02d}"
                store.put(key, _sized_payload(tag))
                got = store.get(key)
                # The atomic-rename contract: a concurrent evictor may
                # remove the entry later, but the commit itself is whole.
                if got is not None and got != _sized_payload(tag):
                    raise AssertionError(f"torn read for {key}: {got}")
        except BaseException as exc:  # noqa: BLE001 — reported to the test
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(t,)) for t in "ab"]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    # Whatever survived is bit-perfect: verify() quarantines nothing.
    counts = ResultCache(root).verify()
    assert counts["quarantined"] == 0
    assert counts["ok"] == counts["entries"]


def test_clear_spares_entries_committed_after_it_started(tmp_path):
    import os
    store = ResultCache(tmp_path)
    store.put("old", {"schema": CACHE_SCHEMA, "stats": {}, "energy": {}})
    store.put("fresh", {"schema": CACHE_SCHEMA, "stats": {}, "energy": {}})
    # A concurrent writer committing while clear() runs lands with a
    # LATER mtime than the clear's start; model that with a future stamp.
    future = time.time() + 30
    os.utime(store.path("fresh"), (future, future))
    removed = store.clear()
    assert removed == 1
    assert not store.path("old").exists()
    assert store.path("fresh").exists()  # the just-committed entry lives


# ---------------------------------------------------------------------------
# retry budget: transient faults retry, deterministic failures fail fast
# ---------------------------------------------------------------------------
def test_transient_fault_retries_and_counts_one_miss(tmp_path):
    cell = _cell()
    plan = FaultPlan(specs=[FaultSpec(kind=WORKER_CRASH, attempt=0)])
    snapshots = []
    executor = CellExecutor(cache=ResultCache(tmp_path / "cache"),
                            backoff_s=0.0,
                            progress=lambda p: snapshots.append(
                                (p.misses, p.retries)))
    with faults.injected(plan):
        result = executor.run_one(cell)
    assert isinstance(result, CellResult)
    assert executor.stats.retries == 1
    assert executor.stats.cache_misses == 1  # ONE miss, not one per attempt
    assert executor.stats.cells_failed == 0
    assert snapshots[-1] == (1, 1)


def test_deterministic_cell_errors_fail_fast(tmp_path):
    from tests.experiments.test_streaming import RaisingAxpy, _arm
    executor = CellExecutor(cache=ResultCache(tmp_path / "cache"),
                            retries=3, backoff_s=0.0)
    with pytest.raises(CellExecutionError):
        executor.run_one(Cell(workload=_arm(RaisingAxpy(), armed=True),
                              config=native_config(1)))
    assert executor.stats.retries == 0  # no budget burned reproducing it


def test_retry_budget_exhausts_into_a_cell_error():
    plan = FaultPlan(specs=[FaultSpec(kind=WORKER_CRASH, attempt=None,
                                      times=99)])
    executor = CellExecutor(retries=2, backoff_s=0.0)
    with faults.injected(plan):
        errors = executor.run([_cell()], errors="return")
    assert errors[0].error.startswith("TransientFaultError")
    assert executor.stats.retries == 2  # the whole budget, then fail
    assert executor.stats.cells_failed == 1


# ---------------------------------------------------------------------------
# deadlines: inline SIGALRM and the pool watchdog
# ---------------------------------------------------------------------------
def test_inline_deadline_interrupts_a_hang_and_the_retry_lands():
    plan = FaultPlan(specs=[FaultSpec(kind=CELL_HANG, attempt=0,
                                      delay_s=30.0)])
    executor = CellExecutor(deadline_s=0.3, retries=1, backoff_s=0.0)
    started = time.monotonic()
    with faults.injected(plan):
        result = executor.run_one(_cell())
    assert time.monotonic() - started < 10  # the hang died at ~0.3s
    assert isinstance(result, CellResult)
    assert executor.stats.timeouts == 1
    assert executor.stats.retries == 1


def test_pool_watchdog_kills_a_hung_worker_and_retries(tmp_path):
    cells = [_cell(config) for config in (native_config(1), ava_config(2),
                                          ava_config(4), ava_config(8))]
    hang_label = cells[0].label()
    plan = FaultPlan(specs=[FaultSpec(kind=CELL_HANG, match=hang_label,
                                      attempt=0, delay_s=30.0)])
    executor = CellExecutor(jobs=2, cache=ResultCache(tmp_path / "cache"),
                            deadline_s=1.0, retries=3, backoff_s=0.0)
    started = time.monotonic()
    with faults.injected(plan), executor:
        results = executor.run(cells)
    assert time.monotonic() - started < 30  # watchdog, not the 30s hang
    assert all(isinstance(r, CellResult) for r in results)
    assert executor.stats.timeouts >= 1
    assert executor.stats.retries >= 1
    assert executor.stats.cells_failed == 0
    # Every cell's one miss was cached despite the carnage.
    assert executor.stats.cache_misses == 4


def test_broken_pool_respawn_preserves_attempt_counts(tmp_path):
    """A cell that crashes its worker on attempts 0 AND 1 must terminate:
    the respawned pool resubmits with the attempt count intact (were it
    reset, the attempt-gated crash would fire forever)."""
    cells = [_cell(native_config(1)), _cell(ava_config(8))]
    crash_label = cells[0].label()
    plan = FaultPlan(specs=[FaultSpec(kind=WORKER_CRASH, match=crash_label,
                                      attempt=[0, 1], times=2)])
    executor = CellExecutor(jobs=2, cache=ResultCache(tmp_path / "cache"),
                            retries=3, backoff_s=0.0)
    with faults.injected(plan), executor:
        results = executor.run(cells)
    assert all(isinstance(r, CellResult) for r in results)
    # The crasher was charged exactly twice; the innocent bystander at
    # most twice (once per wave it was in flight for) — and the budget
    # of 3 was never exceeded, proving attempts survived the respawns.
    assert 2 <= executor.stats.retries <= 4
    assert executor.stats.cells_failed == 0
    assert executor.stats.cache_misses == 2  # still one miss per cell


# ---------------------------------------------------------------------------
# the chaos harness end to end
# ---------------------------------------------------------------------------
def test_chaos_triple_run_is_byte_identical(tmp_path):
    spec = {"name": "chaos-test", "workloads": ["axpy"],
            "machines": ["native-x1", "ava-x8"]}
    out = io.StringIO()
    code = run_chaos(spec, seed=2, jobs=2, cache_dir=tmp_path / "cache",
                     deadline_s=1.0, backoff_s=0.0, out=out)
    text = out.getvalue()
    assert code == 0, text
    assert "byte-identical stdout across clean/faulted/warm runs" in text
    assert "; 0 failed cells;" in text
    # The faulted cache quarantined its corrupted entry on the warm pass.
    quarantine = Path(tmp_path / "cache") / "chaos" / "faulted" / "quarantine"
    assert len(list(quarantine.glob("*.json"))) == 1
