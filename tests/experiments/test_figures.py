"""Figure builders: panels, Figure 4, Figure 5 and headline plumbing."""

import pytest

from repro.experiments.engine import (Cell, CellExecutor, fill_speedups,
                                      record_from_result)
from repro.experiments.figure3 import build_panel
from repro.experiments.figure4 import build_figure4
from repro.experiments.figure5 import build_figure5, render_figure5
from repro.core.config import SCALE_FACTORS, ava_config, native_config
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def axpy_panel():
    return build_panel("axpy")


def test_panel_has_all_14_bars(axpy_panel):
    assert len(axpy_panel.records) == 14
    assert axpy_panel.record("NATIVE X1").speedup == pytest.approx(1.0)
    with pytest.raises(KeyError):
        axpy_panel.record("NATIVE X9")


def test_panel_rows_are_complete(axpy_panel):
    assert len(axpy_panel.memory_breakdown_rows()) == 14
    assert len(axpy_panel.mix_rows()) == 14
    assert len(axpy_panel.performance_rows()) == 14
    assert len(axpy_panel.energy_rows()) == 14


def test_panel_render_contains_all_four_charts(axpy_panel):
    text = axpy_panel.render()
    for marker in ("memory instructions", "instruction mix",
                   "execution time", "energy"):
        assert marker in text


def test_figure4_from_precomputed_records():
    """Figure 4 can reuse engine output instead of re-simulating."""
    cfgs = ([native_config(s) for s in SCALE_FACTORS]
            + [ava_config(s) for s in SCALE_FACTORS])
    results = CellExecutor().run(
        [Cell(workload=get_workload("axpy"), config=cfg) for cfg in cfgs])
    records = {"axpy": fill_speedups(
        [record_from_result(r) for r in results])}
    fig4 = build_figure4(per_workload=records)
    assert len(fig4.native_perf_mm2) == len(SCALE_FACTORS)
    assert fig4.avg_speedups_native[0] == pytest.approx(1.0)
    assert fig4.ava_perf_mm2[-1] > fig4.native_perf_mm2[-1]
    assert "Figure 4" in fig4.render()


def test_figure5_builders():
    native, ava = build_figure5()
    assert native.config_name == "NATIVE X8"
    assert ava.config_name == "AVA X8"
    text = render_figure5()
    assert "longer" in text  # the wire-length comparison line
