"""Sweep spec files: parsing, validation, execution, cache behaviour."""

import json

import pytest

from repro.__main__ import main
from repro.core.config import ava_config, get_machine, native_config
from repro.core.swap import VictimPolicy
from repro.experiments.engine import (Cell, CellExecutor, ResultCache,
                                      cell_key)
from repro.experiments.sweep import parse_sweep, run_sweep
from repro.memory.presets import get_memory_system


BASE_SPEC = {
    "workloads": ["axpy"],
    "machines": ["native-x1", "ava-x8"],
    "memory": ["table2", "slow-dram"],
}


# ---------------------------------------------------------------------------
# parsing and validation
# ---------------------------------------------------------------------------
def test_parse_resolves_presets_and_counts_cells():
    parsed = parse_sweep(dict(BASE_SPEC))
    assert len(parsed) == 4
    assert [e.label for e in parsed.machines] == ["native-x1", "ava-x8"]
    assert parsed.machines[1].value == ava_config(8)
    assert parsed.memory[1].value == get_memory_system("slow-dram")
    pairs = parsed.labelled_cells()
    assert len(pairs) == 4
    # One loop nest owns both: every label describes exactly its cell.
    for (workload, machine, _, memory, _), cell in pairs:
        assert cell.workload_name == workload
        assert cell.config.name == get_machine(machine).name
        assert cell.memsys == get_memory_system(memory)


def test_parse_inline_overrides():
    parsed = parse_sweep({
        "workloads": ["axpy"],
        "machines": [{"base": "ava-x8", "n_physical": 12}],
        "memory": [{"l2": {"latency": 24}, "dram": {"latency": 160}}],
        "timing": [{"preissue_swap_budget": 1}],
        "policies": ["fifo", {"victim_policy": "rac-min",
                              "aggressive_reclamation": False}],
    })
    assert parsed.machines[0].value.n_physical == 12
    assert parsed.memory[0].value.l2.latency == 24
    assert parsed.memory[0].value.dram.latency == 160
    assert parsed.timing[0].value.preissue_swap_budget == 1
    assert parsed.policies[0].value.victim_policy is VictimPolicy.FIFO
    assert parsed.policies[1].value.aggressive_reclamation is False
    # Labels stay readable and deterministic.
    assert parsed.memory[0].label == "table2[dram.latency=160,l2.latency=24]"
    assert parsed.policies[1].label == "rac-min[no-reclaim]"


@pytest.mark.parametrize("broken", [
    {},  # no workloads
    {"workloads": ["axpy"]},  # no machines
    {**BASE_SPEC, "bogus": 1},  # unknown top-level key
    {**BASE_SPEC, "workloads": ["doom"]},  # unknown workload
    {**BASE_SPEC, "machines": ["cray-1"]},  # unknown machine preset
    {**BASE_SPEC, "memory": ["hbm3"]},  # unknown memory preset
    {**BASE_SPEC, "memory": [{"l3": {"latency": 9}}]},  # unknown section
    {**BASE_SPEC, "memory": [{"l2": {"bogus": 9}}]},  # unknown field
    {**BASE_SPEC, "memory": [{"l2": {"latency": 0}}]},  # invalid value
    {**BASE_SPEC, "memory": [{"l2": {"latency": "12"}}]},  # wrong type
    {**BASE_SPEC, "memory": [{"vector_interface_bytes": "64"}]},
    {**BASE_SPEC, "timing": [{"bogus": 1}]},
    {**BASE_SPEC, "timing": [{"preissue_swap_budget": 0}]},
    {**BASE_SPEC, "policies": [{"bogus": True}]},
    {**BASE_SPEC, "workloads": "axpy"},  # bare string, not a list
    {**BASE_SPEC, "machines": "native-x1"},
    {**BASE_SPEC, "memory": "table2"},
    {**BASE_SPEC, "memory": []},  # empty axis
])
def test_bad_specs_fail_at_parse_time(broken):
    with pytest.raises(ValueError):
        parse_sweep(broken)


def test_parse_from_file_uses_the_stem_as_name(tmp_path):
    path = tmp_path / "my-grid.json"
    path.write_text(json.dumps(BASE_SPEC))
    assert parse_sweep(path).name == "my-grid"
    with pytest.raises(ValueError):
        parse_sweep(tmp_path / "missing.json")
    (tmp_path / "broken.json").write_text("{not json")
    with pytest.raises(ValueError):
        parse_sweep(tmp_path / "broken.json")


# ---------------------------------------------------------------------------
# execution and the cache
# ---------------------------------------------------------------------------
def test_memory_presets_produce_distinct_cache_keys():
    """The memory system must be visible to the key: same workload, same
    machine, different preset -> different entry."""
    cell_a = Cell(workload="axpy", config=native_config(1))
    cell_b = Cell(workload="axpy", config=native_config(1),
                  memsys=get_memory_system("slow-dram"))
    cell_c = Cell(workload="axpy", config=native_config(1),
                  memsys=get_memory_system("table2"))
    program = cell_a.resolve_workload().compile(cell_a.config).program
    key_a = cell_key(cell_a, program)
    key_b = cell_key(cell_b, program)
    key_c = cell_key(cell_c, program)
    assert key_a != key_b
    # memsys=None IS the table2 platform; both must share one cache entry.
    assert key_a == key_c


def test_warm_rerun_reuses_each_preset_with_zero_misses(tmp_path):
    cold = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    cold_text = run_sweep(dict(BASE_SPEC), executor=cold)
    assert cold.stats.cache_misses == 4
    assert cold.stats.sims_executed == 4

    warm = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    warm_text = run_sweep(dict(BASE_SPEC), executor=warm)
    assert warm.stats.cache_misses == 0
    assert warm.stats.cache_hits == 4
    assert warm.stats.sims_executed == 0
    assert warm_text == cold_text


def test_rendered_grid_shows_axis_labels(tmp_path):
    text = run_sweep(dict(BASE_SPEC), executor=CellExecutor())
    assert "2 memory" in text and "= 4 cells" in text
    assert "slow-dram" in text and "table2" in text
    assert "native-x1" in text and "ava-x8" in text
    # The single-valued timing/policy axes stay out of the table.
    assert "| timing" not in text and "| policy" not in text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_sweep_runs_a_spec_file(tmp_path, capsys):
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(BASE_SPEC))
    assert main(["sweep", str(path),
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "=== sweep: grid ===" in out
    assert "slow-dram" in out


def test_cli_sweep_progress_is_labelled_with_the_spec_name(tmp_path,
                                                           capsys):
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(BASE_SPEC))
    assert main(["sweep", str(path), "--progress",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    err = capsys.readouterr().err
    assert "grid: " in err and "4/4 cells" in err


def test_cli_sweep_rejects_bad_usage(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep"])  # no spec file
    with pytest.raises(SystemExit):
        main(["sweep", str(tmp_path / "missing.json")])
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(BASE_SPEC))
    with pytest.raises(SystemExit):
        main(["sweep", str(path), "--extended"])


def test_cli_sweep_does_not_mask_execution_errors(tmp_path, monkeypatch):
    """Only parse-time problems are usage errors; a failure inside the
    grid must surface as the exception it is, not exit code 2."""
    import repro.experiments.engine as engine

    path = tmp_path / "grid.json"
    path.write_text(json.dumps(BASE_SPEC))

    def boom(self, cells, **kwargs):
        raise ValueError("simulated mid-grid failure")

    monkeypatch.setattr(engine.CellExecutor, "run", boom)
    with pytest.raises(ValueError, match="mid-grid"):
        main(["sweep", str(path), "--cache-dir", str(tmp_path / "cache")])


def test_cli_version(capsys):
    from repro._version import __version__

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert __version__ in capsys.readouterr().out
