"""Sharded execution: partitioning, counter merging, resume, end-to-end.

The invariants under test: the deterministic partition is disjoint and
exhaustive; per-shard counter deltas merge (field-wise sums) into
exactly the executor's own totals; a killed shard costs only its
unfinished cells — the rerun replays every landed cell from the shared
cache with zero duplicate simulations — and the rendered output never
depends on how the grid was sharded.
"""

import json
from dataclasses import replace

import pytest

from repro.__main__ import main
from repro.core.config import ava_config, native_config
from repro.experiments.engine import (CellExecutor, ExecutorStats, Progress,
                                      ResultCache, SweepSpec)
from repro.experiments.shard import (ShardBackend, merge_progress,
                                     merge_stats, partition, select_shard,
                                     shard_of)
from repro.vpu.params import DEFAULT_TIMING
from repro.workloads import get_workload

SMOKE_SPEC = "examples/sweep_smoke.json"


def _small_axpy(n_elements: int = 256):
    workload = get_workload("axpy")
    workload.n_elements = n_elements
    return workload


def _grid_40() -> SweepSpec:
    """A cheap 40-cell grid: 4 machines x 10 timing variants of tiny axpy."""
    return SweepSpec(
        workloads=(_small_axpy(),),
        configs=(native_config(1), ava_config(2), ava_config(4),
                 ava_config(8)),
        params=tuple(replace(DEFAULT_TIMING, arith_dead_time=i)
                     for i in range(10)))


# ---------------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------------
def test_partition_is_disjoint_and_exhaustive():
    cells = _grid_40().cells()
    buckets = partition(cells, 4)
    flat = sorted(i for bucket in buckets for i in bucket)
    assert flat == list(range(len(cells)))  # every position, exactly once


def test_partition_rejects_bad_shapes():
    cells = _grid_40().cells()
    with pytest.raises(ValueError):
        shard_of(cells[0], 0)
    with pytest.raises(ValueError):
        select_shard(cells, 4, 4)
    with pytest.raises(ValueError):
        select_shard(cells, 4, -1)


def test_single_shard_owns_everything():
    cells = _grid_40().cells()
    assert partition(cells, 1) == [list(range(len(cells)))]


# ---------------------------------------------------------------------------
# counter merging
# ---------------------------------------------------------------------------
def test_merge_progress_sums_counters_and_strips_shard_suffix():
    a = Progress(total=3, label="demo [shard 1/4]", done=3, hits=1, misses=2)
    b = Progress(total=5, label="demo [shard 2/4]", done=4, hits=0, misses=4,
                 failed=1, retries=2, timeouts=1)
    merged = merge_progress(a, b)
    assert merged.label == "demo"
    assert (merged.total, merged.done, merged.hits, merged.misses) == \
        (8, 7, 1, 6)
    assert (merged.failed, merged.retries, merged.timeouts) == (1, 2, 1)
    assert merge_progress().total == 0  # identity


# ---------------------------------------------------------------------------
# the ShardBackend
# ---------------------------------------------------------------------------
def test_shard_backend_matches_inline_and_accounts_per_shard(tmp_path):
    spec = SweepSpec(workloads=(_small_axpy(),),
                     configs=(native_config(1), ava_config(2), ava_config(4),
                              ava_config(8)))
    inline = CellExecutor().run_spec(spec)

    backend = ShardBackend(shards=3)
    executor = CellExecutor(cache=ResultCache(tmp_path / "cache"),
                            backend=backend)
    sharded = executor.run_spec(spec)
    for a, b in zip(inline, sharded):
        assert a.stats == b.stats
        assert a.energy == b.energy

    # The per-shard execution deltas are the whole story: their merge
    # equals the executor's own counters on every execution-side field.
    assert len(backend.per_shard) == 3
    assert sum(backend.shard_sizes) == len(spec.cells())
    merged = merge_stats(*backend.per_shard)
    for field in ("sims_executed", "sim_cycles", "sim_events_processed",
                  "retries", "timeouts", "cells_failed"):
        assert getattr(merged, field) == getattr(executor.stats, field)
    assert merged.sims_executed == len(spec.cells())
    assert [s.sims_executed for s in backend.per_shard] == \
        backend.shard_sizes


def test_killed_shard_resumes_with_zero_duplicate_simulations(tmp_path):
    """The acceptance scenario: a 40-cell grid as 4 shards, one shard
    killed mid-flight; the rerun must simulate only the lost cells."""
    spec = _grid_40()
    buckets = partition(spec.cells(), 4)
    first_two = len(buckets[0]) + len(buckets[1])

    def kill_in_third_shard(progress: Progress) -> None:
        # Fires once the 3rd shard has landed a few cells: shards 1-2 are
        # fully cached, shard 3 is partially cached, shard 4 never ran.
        if progress.done >= first_two + 2:
            raise KeyboardInterrupt

    cold = CellExecutor(cache=ResultCache(tmp_path / "cache"),
                        backend=ShardBackend(shards=4),
                        progress=kill_in_third_shard)
    with pytest.raises(KeyboardInterrupt):
        cold.run_spec(spec)
    cached = len(list((tmp_path / "cache").glob("*.json")))
    assert cached >= first_two + 2
    assert cached < len(spec.cells())

    warm = CellExecutor(cache=ResultCache(tmp_path / "cache"),
                        backend=ShardBackend(shards=4))
    results = warm.run_spec(spec)
    assert len(results) == len(spec.cells())
    assert warm.stats.cache_hits == cached
    # Exactly zero duplicate simulations across the kill + resume.
    assert (cold.stats.sims_executed + warm.stats.sims_executed
            == len(spec.cells()))

    # The resumed sharded grid matches a plain single-executor run.
    reference = CellExecutor().run_spec(spec)
    for a, b in zip(reference, results):
        assert a.stats == b.stats
        assert a.energy == b.energy


# ---------------------------------------------------------------------------
# CLI: --shard-index fan-out, merge, warm full render
# ---------------------------------------------------------------------------
def test_cli_shard_fanout_merges_into_a_byte_identical_sweep(capsys,
                                                             tmp_path):
    """Four `--shard-index` runs over a shared cache dir, then `repro
    merge` + a warm full sweep: the merge sums to the single-run totals
    and the full render replays byte-identically with 0 simulations."""
    cache = ["--cache-dir", str(tmp_path / "cache")]

    # The reference: one ordinary run in its own cache dir.
    assert main(["sweep", SMOKE_SPEC,
                 "--cache-dir", str(tmp_path / "ref")]) == 0
    reference = capsys.readouterr().out

    stats_files = []
    for k in range(4):
        stats_file = tmp_path / f"shard-{k}.json"
        stats_files.append(str(stats_file))
        assert main(["sweep", SMOKE_SPEC, "--shards", "4",
                     "--shard-index", str(k),
                     "--stats-json", str(stats_file)] + cache) == 0
        header = capsys.readouterr().out.splitlines()[0]
        assert f"shard {k}/4" in header

    # Every shard wrote a counter file; merging them reconstructs the
    # single-run totals (4 cells, 4 simulations, no hits on a cold fan-out).
    assert main(["merge"] + stats_files) == 0
    merged = capsys.readouterr().out
    assert "merged 4 runs" in merged
    assert "engine: 4 cells requested, 0 cache hits, 4 misses, " \
        "4 simulations executed" in merged
    per_shard = [json.loads(open(f).read())["stats"] for f in stats_files]
    assert sum(s["cells_requested"] for s in per_shard) == 4
    assert sum(s["sims_executed"] for s in per_shard) == 4

    # Warm full sweep over the merged cache: byte-identical, no new work.
    assert main(["sweep", SMOKE_SPEC, "--cache-stats"] + cache) == 0
    warm = capsys.readouterr()
    assert warm.out == reference
    assert "4 cache hits, 0 misses, 0 simulations executed" in warm.err


def test_cli_shard_of_an_empty_bucket_renders_no_cells(capsys, tmp_path):
    """A shard that owns nothing still exits 0 with an explicit header —
    CI matrix jobs must not fail on an unlucky partition."""
    cache = ["--cache-dir", str(tmp_path / "cache")]
    seen_empty = False
    for k in range(4):
        assert main(["sweep", SMOKE_SPEC, "--shards", "4",
                     "--shard-index", str(k)] + cache) == 0
        out = capsys.readouterr().out
        if "(0 of 4 cells)" in out:
            assert "(no cells)" in out
            seen_empty = True
    assert seen_empty  # the smoke grid leaves at least one empty shard


def test_chaos_runs_under_the_shard_backend(capsys, tmp_path):
    """Fault injection and sharding compose: the clean/faulted/warm
    triple stays byte-identical when each phase runs sharded."""
    assert main(["chaos", SMOKE_SPEC, "--backend", "shard", "--shards", "2",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "byte-identical stdout across clean/faulted/warm runs" in out


def test_executor_stats_round_trip():
    stats = ExecutorStats(cells_requested=7, cache_hits=2, cache_misses=5,
                          sims_executed=5, retries=1, sim_cycles=1234)
    assert ExecutorStats.from_dict(stats.to_dict()) == stats
    # Unknown keys from a newer writer are ignored, not fatal.
    payload = dict(stats.to_dict(), future_counter=9)
    assert ExecutorStats.from_dict(payload) == stats
