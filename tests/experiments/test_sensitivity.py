"""The machine-axis sensitivity study."""

import pytest

from repro.__main__ import main
from repro.experiments.engine import CellExecutor
from repro.experiments.sensitivity import (DRAM_LATENCIES, L2_LATENCIES,
                                           SWAP_BUDGETS, build_sensitivity)


@pytest.fixture(scope="module")
def executor():
    return CellExecutor()


@pytest.fixture(scope="module")
def study(executor):
    return build_sensitivity(executor=executor)


def test_compiles_once_per_distinct_compile_signature(study, executor):
    """The narrowed compile key: the study sweeps timing x memory x policy
    over four machines (NATIVE/AVA at X4 and X8), but NATIVE Xn and AVA Xn
    share an (mvl, n_logical) signature — so the whole grid compiles its
    one workload exactly twice, once per scale, not once per machine."""
    assert executor.stats.compiles == 2


def test_study_covers_every_axis_point(study):
    assert [r.axis_value for r in study.l2_rows] == list(L2_LATENCIES)
    assert [r.axis_value for r in study.dram_rows] == list(DRAM_LATENCIES)
    assert [r.axis_value for r in study.swap_rows] == list(SWAP_BUDGETS)


def test_slower_dram_widens_the_gap_monotonically(study):
    """The headline: AVA pays for its smaller P-VRF in swap traffic
    through the memory hierarchy, so a slower DRAM must widen the
    NATIVE-vs-AVA gap at X8 — monotonically across the axis."""
    gaps = [row.gap_x8 for row in study.dram_rows]
    assert study.dram_gap_is_monotone()
    assert gaps[-1] > gaps[0]  # strictly wider across the full axis
    # NATIVE generates no swap traffic, so its columns stay flat.
    assert len({row.native_x8 for row in study.dram_rows}) == 1


def test_render_contains_all_three_tables(study):
    text = study.render()
    for marker in ("L2 hit latency", "DRAM access latency",
                   "pre-issue swap budget",
                   "gap monotonically at X8: yes"):
        assert marker in text


def test_cli_sensitivity_renders_the_study(monkeypatch, capsys, tmp_path):
    """CLI wiring only — the study itself is monkeypatched to stay fast."""
    import repro.experiments.sensitivity as sensitivity

    calls = []

    class FakeStudy:
        def render(self):
            return "fake sensitivity table"

    def fake_build(executor=None, workload=None):
        calls.append(workload)
        return FakeStudy()

    monkeypatch.setattr(sensitivity, "build_sensitivity", fake_build)
    assert main(["sensitivity",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "fake sensitivity table" in capsys.readouterr().out
    assert calls == ["blackscholes"]

    assert main(["sensitivity", "lavamd",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    capsys.readouterr()
    assert calls[-1] == "lavamd"

    with pytest.raises(SystemExit):
        main(["sensitivity", "doom"])
    # The whole-suite selectors must not sneak past the --extended guard.
    with pytest.raises(SystemExit):
        main(["sensitivity", "extended"])
    with pytest.raises(SystemExit):
        main(["sensitivity", "all"])
    with pytest.raises(SystemExit):
        main(["sensitivity", "--extended"])
