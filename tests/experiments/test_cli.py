"""The `python -m repro` command-line regenerators."""

import pytest

from repro.__main__ import main


def test_table_artifacts(capsys):
    for artifact, marker in (("table1", "P-Regs"), ("table2", "NATIVE X8"),
                             ("table3", "RG-LMUL8"), ("table4", "somier"),
                             ("table5", "WNS")):
        assert main([artifact]) == 0
        assert marker in capsys.readouterr().out


def test_figure5_artifact(capsys):
    assert main(["figure5"]) == 0
    out = capsys.readouterr().out
    assert "floorplans" in out and "lane" in out


def test_figure3_single_app(capsys):
    assert main(["figure3", "axpy"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3 panel: axpy" in out
    assert "Swap-L" in out


def test_unknown_artifact_rejected():
    with pytest.raises(SystemExit):
        main(["figure7"])
