"""The `python -m repro` command-line regenerators."""

import pytest

from repro.__main__ import main


@pytest.fixture
def cache_args(tmp_path):
    """Point the CLI's result cache at a throwaway directory."""
    return ["--cache-dir", str(tmp_path / "cache")]


def test_table_artifacts(capsys, cache_args):
    for artifact, marker in (("table1", "P-Regs"), ("table2", "NATIVE X8"),
                             ("table3", "RG-LMUL8"), ("table4", "somier"),
                             ("table5", "WNS")):
        assert main([artifact] + cache_args) == 0
        assert marker in capsys.readouterr().out


def test_figure5_artifact(capsys, cache_args):
    assert main(["figure5"] + cache_args) == 0
    out = capsys.readouterr().out
    assert "floorplans" in out and "lane" in out


def test_figure3_single_app(capsys, cache_args):
    assert main(["figure3", "axpy"] + cache_args) == 0
    out = capsys.readouterr().out
    assert "Figure 3 panel: axpy" in out
    assert "Swap-L" in out


def test_figure3_no_cache_flag(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    assert main(["figure3", "axpy", "--no-cache",
                 "--cache-dir", str(cache_dir)]) == 0
    assert "Figure 3 panel: axpy" in capsys.readouterr().out
    assert not cache_dir.exists()  # --no-cache must not touch the disk


def test_figure3_warm_cache_skips_simulation(capsys, cache_args):
    assert main(["figure3", "axpy", "--cache-stats"] + cache_args) == 0
    first = capsys.readouterr()
    assert "14 simulations executed" in first.err

    assert main(["figure3", "axpy", "--cache-stats"] + cache_args) == 0
    second = capsys.readouterr()
    assert "Figure 3 panel: axpy" in second.out
    assert second.out == first.out  # cache replay is byte-identical
    assert "14 cache hits" in second.err
    assert "0 simulations executed" in second.err


def test_unknown_artifact_rejected():
    with pytest.raises(SystemExit):
        main(["figure7"])
