"""The `python -m repro` command-line regenerators."""

import pytest

from repro.__main__ import main


@pytest.fixture
def cache_args(tmp_path):
    """Point the CLI's result cache at a throwaway directory."""
    return ["--cache-dir", str(tmp_path / "cache")]


def test_table_artifacts(capsys, cache_args):
    for artifact, marker in (("table1", "P-Regs"), ("table2", "NATIVE X8"),
                             ("table3", "RG-LMUL8"), ("table4", "somier"),
                             ("table5", "WNS")):
        assert main([artifact] + cache_args) == 0
        assert marker in capsys.readouterr().out


def test_figure5_artifact(capsys, cache_args):
    assert main(["figure5"] + cache_args) == 0
    out = capsys.readouterr().out
    assert "floorplans" in out and "lane" in out


def test_figure3_single_app(capsys, cache_args):
    assert main(["figure3", "axpy"] + cache_args) == 0
    out = capsys.readouterr().out
    assert "Figure 3 panel: axpy" in out
    assert "Swap-L" in out


def test_figure3_no_cache_flag(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    assert main(["figure3", "axpy", "--no-cache",
                 "--cache-dir", str(cache_dir)]) == 0
    assert "Figure 3 panel: axpy" in capsys.readouterr().out
    assert not cache_dir.exists()  # --no-cache must not touch the disk


def test_figure3_warm_cache_skips_simulation(capsys, cache_args):
    assert main(["figure3", "axpy", "--cache-stats"] + cache_args) == 0
    first = capsys.readouterr()
    assert "14 simulations executed" in first.err

    assert main(["figure3", "axpy", "--cache-stats"] + cache_args) == 0
    second = capsys.readouterr()
    assert "Figure 3 panel: axpy" in second.out
    assert second.out == first.out  # cache replay is byte-identical
    assert "14 cache hits" in second.err
    assert "0 simulations executed" in second.err


def test_figure3_warm_cache_reports_memoized_compiles(capsys, cache_args):
    """Warm replays pay key computation only, and the trace store covers
    even that: zero compiles, one trace hit per distinct
    (workload, CompileSignature) pair, zero simulations."""
    assert main(["figure3", "axpy", "--cache-stats"] + cache_args) == 0
    cold = capsys.readouterr().err
    # 14 chart configs collapse to 8 distinct (mvl, n_logical) signatures.
    assert "14 simulations executed, 8 kernel compiles" in cold
    assert "8 trace misses" in cold
    assert main(["figure3", "axpy", "--cache-stats"] + cache_args) == 0
    err = capsys.readouterr().err
    assert "0 simulations executed, 0 kernel compiles" in err
    assert "8 trace hits, 0 trace misses" in err


def test_figure3_accepts_extended_workload_names(capsys, cache_args):
    assert main(["figure3", "pathfinder"] + cache_args) == 0
    assert "Figure 3 panel: pathfinder" in capsys.readouterr().out


def test_figure3_workloads_selector(capsys, cache_args):
    assert main(["figure3", "all", "--workloads", "pathfinder"]
                + cache_args) == 0
    out = capsys.readouterr().out
    assert "Figure 3 panel: pathfinder" in out
    assert "Figure 3 panel: axpy" not in out


def test_figure3_bare_extended_runs_the_ten_kernel_suite(monkeypatch,
                                                         capsys, cache_args):
    """`figure3 --extended` (no positional) means the whole suite, while a
    bare `figure3` keeps rendering only the default axpy panel."""
    from types import SimpleNamespace

    import repro.experiments.figure3 as figure3
    from repro.workloads import ALL_WORKLOAD_NAMES

    seen = []

    def fake_build_panels(names, executor=None):
        seen.append(list(names))
        return {n: SimpleNamespace(render=lambda n=n: f"panel {n}")
                for n in names}

    monkeypatch.setattr(figure3, "build_panels", fake_build_panels)
    assert main(["figure3", "--extended"] + cache_args) == 0
    assert main(["figure3"] + cache_args) == 0
    assert main(["figure3", "somier", "--extended"] + cache_args) == 0
    assert seen == [ALL_WORKLOAD_NAMES, ["axpy"], ["somier"]]
    capsys.readouterr()


def test_progress_renders_to_stderr_and_never_touches_stdout(capsys,
                                                             cache_args):
    assert main(["figure3", "axpy", "--progress"] + cache_args) == 0
    first = capsys.readouterr()
    assert "\r" in first.err and "figure3:" in first.err
    assert "14/14 cells" in first.err
    assert "cells |" not in first.out  # stdout is artifact-only

    # Same artifact without progress: stdout must be byte-identical.
    assert main(["figure3", "axpy", "--no-progress"] + cache_args) == 0
    second = capsys.readouterr()
    assert second.out == first.out
    assert second.err == ""


def test_progress_defaults_off_when_stderr_is_not_a_terminal(capsys,
                                                             cache_args):
    """Piped/captured stderr (like CI greps) stays clean by default."""
    assert main(["figure3", "axpy"] + cache_args) == 0
    assert capsys.readouterr().err == ""


def test_progress_line_precedes_cache_stats_cleanly(capsys, cache_args):
    """--progress and --cache-stats share stderr without interleaving."""
    assert main(["figure3", "axpy", "--progress", "--cache-stats"]
                + cache_args) == 0
    err = capsys.readouterr().err
    assert "8 kernel compiles" in err
    stats_section = err[err.rindex("engine:"):]
    assert "\r" not in stats_section  # the live line was terminated first
    assert err[err.rindex("engine:") - 1] == "\n"


def test_bench_rejects_workloads_selector():
    with pytest.raises(SystemExit):
        main(["bench", "engine", "--workloads", "spmv"])


def test_unknown_workload_selection_rejected(cache_args):
    with pytest.raises(SystemExit):
        main(["figure3", "doom"] + cache_args)
    with pytest.raises(SystemExit):
        main(["figure3", "all", "--workloads", "axpy,doom"] + cache_args)


def test_unknown_artifact_rejected():
    with pytest.raises(SystemExit):
        main(["figure7"])


def test_cache_stats_reports_both_stores(capsys, cache_args):
    assert main(["figure3", "axpy"] + cache_args) == 0
    capsys.readouterr()
    assert main(["cache"] + cache_args) == 0  # bare cache == cache stats
    out = capsys.readouterr().out
    assert "results: 14 entries" in out
    assert "traces: 8 entries" in out


def test_cache_clear_results_keeps_traces_warm(capsys, cache_args):
    """The warm-trace workflow: wipe results, keep traces, replay with
    zero compiles."""
    assert main(["figure3", "axpy"] + cache_args) == 0
    capsys.readouterr()
    assert main(["cache", "clear", "--results"] + cache_args) == 0
    out = capsys.readouterr().out
    assert "cleared 14 result entries" in out
    assert "trace entries" not in out  # --results never touches traces

    assert main(["figure3", "axpy", "--cache-stats"] + cache_args) == 0
    err = capsys.readouterr().err
    assert "14 simulations executed, 0 kernel compiles" in err
    assert "8 trace hits, 0 trace misses" in err


def test_cache_clear_wipes_both_stores_by_default(capsys, cache_args):
    assert main(["figure3", "axpy"] + cache_args) == 0
    capsys.readouterr()
    assert main(["cache", "clear"] + cache_args) == 0
    out = capsys.readouterr().out
    assert "cleared 14 result entries" in out
    assert "cleared 8 trace entries" in out
    assert main(["cache", "stats"] + cache_args) == 0
    out = capsys.readouterr().out
    assert "results: 0 entries" in out
    assert "traces: 0 entries" in out


def test_cache_flag_validation():
    with pytest.raises(SystemExit):
        main(["cache", "prune"])  # unknown action
    with pytest.raises(SystemExit):
        main(["cache", "stats", "--traces"])  # flags are clear-only
    with pytest.raises(SystemExit):
        main(["cache", "--no-cache"])  # contradiction
    with pytest.raises(SystemExit):
        main(["figure3", "axpy", "--traces"])  # flags are cache-only
