"""The unified experiment-execution engine: specs, cache, executor."""

from dataclasses import replace

import pytest

from repro.core.config import ava_config, native_config
from repro.core.swap import VictimPolicy
from repro.experiments.engine import (
    Cell,
    CellExecutor,
    CellPolicy,
    ResultCache,
    SweepSpec,
    cell_key,
    make_executor,
    program_fingerprint,
)
from repro.power.mcpat import EnergyReport, McPatModel
from repro.sim.stats import SimStats
from repro.vpu.params import TimingParams
from repro.workloads import get_workload


def _key(cell: Cell) -> str:
    program = cell.resolve_workload().compile(cell.config).program
    return cell_key(cell, program)


# ---------------------------------------------------------------------------
# sweep specs
# ---------------------------------------------------------------------------
def test_sweep_spec_enumerates_full_grid_deterministically():
    spec = SweepSpec(
        workloads=("axpy", "blackscholes"),
        configs=(native_config(1), ava_config(8)),
        policies=(CellPolicy(), CellPolicy(aggressive_reclamation=False)),
    )
    cells = spec.cells()
    assert len(cells) == len(spec) == 8
    # Workload outermost, policy innermost, always the same order.
    assert cells[0].workload_name == "axpy"
    assert cells[-1].workload_name == "blackscholes"
    assert cells == spec.cells()


def test_chunk_by_workload_owns_the_stride_arithmetic():
    spec = SweepSpec(
        workloads=("axpy", "blackscholes"),
        configs=(native_config(1),),
        policies=(CellPolicy(), CellPolicy(aggressive_reclamation=False)),
    )
    chunks = spec.chunk_by_workload(spec.cells())
    assert [name for name, _ in chunks] == ["axpy", "blackscholes"]
    assert all(len(chunk) == 2 for _, chunk in chunks)
    assert all(c.workload_name == name
               for name, chunk in chunks for c in chunk)
    with pytest.raises(ValueError):
        spec.chunk_by_workload(spec.cells()[:-1])


# ---------------------------------------------------------------------------
# cache keying
# ---------------------------------------------------------------------------
def test_cell_key_is_stable_across_recompiles():
    cell = Cell(workload="axpy", config=native_config(1))
    assert _key(cell) == _key(cell)


def test_cell_key_misses_on_any_input_change():
    base = Cell(workload="axpy", config=ava_config(8))
    variants = [
        Cell(workload="axpy", config=ava_config(4)),  # config field
        Cell(workload="blackscholes", config=ava_config(8)),  # program
        replace(base, params=replace(TimingParams(), arith_dead_time=4)),
        replace(base, policy=CellPolicy(victim_policy=VictimPolicy.FIFO)),
        replace(base, policy=CellPolicy(aggressive_reclamation=False)),
        replace(base, check=True),
        replace(base, warm=False),
    ]
    keys = [_key(v) for v in variants]
    assert len(set(keys + [_key(base)])) == len(variants) + 1


def test_cell_key_includes_the_code_fingerprint(monkeypatch):
    """A package source edit must invalidate every cached result."""
    import repro.experiments.engine as engine

    cell = Cell(workload="axpy", config=native_config(1))
    before = _key(cell)
    monkeypatch.setattr(engine, "_CODE_FINGERPRINT", "simulated-code-edit")
    assert _key(cell) != before


def test_program_fingerprint_ignores_instruction_uids():
    workload = get_workload("axpy")
    config = native_config(1)
    first = workload.compile(config).program
    second = get_workload("axpy").compile(config).program
    assert [i.uid for i in first.insts] != [i.uid for i in second.insts]
    assert program_fingerprint(first) == program_fingerprint(second)


# ---------------------------------------------------------------------------
# JSON round-trips
# ---------------------------------------------------------------------------
def test_simstats_roundtrip():
    stats = SimStats(cycles=123, vloads=4, swap_loads=2, config_name="c",
                     program_name="p", meta={"k": 1})
    assert SimStats.from_dict(stats.to_dict()) == stats
    with pytest.raises(ValueError):
        SimStats.from_dict({"cycles": 1, "bogus": 2})


def test_energy_report_roundtrip_is_exact():
    stats = SimStats(cycles=1000, l2_reads=10, vrf_reads=20,
                     fpu_element_ops=30)
    report = McPatModel().energy(ava_config(8), stats)
    clone = EnergyReport.from_dict(report.to_dict())
    assert clone == report  # float-exact, not approximate
    with pytest.raises(ValueError):
        EnergyReport.from_dict({**report.to_dict(), "bogus": 1.0})


# ---------------------------------------------------------------------------
# cache behaviour
# ---------------------------------------------------------------------------
def test_cache_hit_and_miss_counters(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cell = Cell(workload="axpy", config=native_config(1))

    cold = CellExecutor(cache=cache)
    first = cold.run_one(cell)
    assert cold.stats.sims_executed == 1
    assert cold.stats.cache_misses == 1
    assert not first.from_cache

    warm = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    second = warm.run_one(cell)
    assert warm.stats.sims_executed == 0
    assert warm.stats.cache_hits == 1
    assert second.from_cache
    assert second.stats == first.stats
    assert second.energy == first.energy


def test_changed_knob_is_a_cache_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    executor = CellExecutor(cache=cache)
    executor.run_one(Cell(workload="axpy", config=native_config(1)))
    executor.run_one(Cell(workload="axpy", config=native_config(1),
                          policy=CellPolicy(aggressive_reclamation=False)))
    assert executor.stats.sims_executed == 2
    assert executor.stats.cache_hits == 0


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    executor = CellExecutor(cache=cache)
    result = executor.run_one(Cell(workload="axpy", config=native_config(1)))
    # Both syntactically broken and structurally truncated entries must
    # re-simulate, never crash the render.
    for corruption in ("{not json", '{"schema": 1}', '[1, 2]'):
        cache.path(result.key).write_text(corruption)
        rerun = CellExecutor(cache=ResultCache(tmp_path / "cache"))
        again = rerun.run_one(result.cell)
        assert rerun.stats.sims_executed == 1
        assert again.stats == result.stats


def test_program_fingerprint_sees_tiny_scalar_differences():
    """Constants differing past 6 significant digits must not collide."""
    from tests.conftest import compile_kernel, axpy_body

    config = native_config(1)
    a = compile_kernel(axpy_body(0.33333331), config, 64, {"x": 64, "y": 64})
    b = compile_kernel(axpy_body(0.33333334), config, 64, {"x": 64, "y": 64})
    assert f"{0.33333331:g}" == f"{0.33333334:g}"  # display form collides
    assert program_fingerprint(a) != program_fingerprint(b)


def test_duplicate_cells_in_one_batch_simulate_once():
    executor = CellExecutor()
    cell = Cell(workload="axpy", config=native_config(1))
    results = executor.run([cell, cell, cell])
    assert executor.stats.sims_executed == 1
    assert results[0].stats == results[1].stats == results[2].stats
    # ... and compile once: identical (workload, config) pairs share one
    # program through the executor's compilation memo.
    assert executor.stats.compiles == 1


def test_compilation_is_memoized_per_workload_config_pair(tmp_path):
    """At most one compile per distinct (workload, config) pair, hot or cold.

    Cache hits still need the key (which hashes the compiled program), so
    one compile per pair is the floor — but a full-batch warm replay must
    not pay one compile *per cell* like it used to."""
    cells = [
        Cell(workload="axpy", config=native_config(1)),
        Cell(workload="axpy", config=native_config(1), warm=False),
        Cell(workload="axpy", config=ava_config(2)),
        Cell(workload="blackscholes", config=native_config(1)),
    ]
    cold = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    cold.run(cells)
    assert cold.stats.compiles == 3  # axpy×2 configs + blackscholes
    assert cold.stats.sims_executed == 4

    warm = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    warm.run(cells)
    assert warm.stats.cache_hits == 4
    assert warm.stats.sims_executed == 0
    assert warm.stats.compiles == 3  # key computation only
    # A second batch on the same executor re-uses the memo entirely.
    warm.run(cells)
    assert warm.stats.compiles == 3


def test_instance_backed_cells_do_not_share_the_memo():
    """A mutated Workload instance must never alias a registered name."""
    small = get_workload("axpy")
    small.n_elements = 128
    executor = CellExecutor()
    config = native_config(1)
    results = executor.run([Cell(workload=small, config=config),
                            Cell(workload="axpy", config=config)])
    assert executor.stats.compiles == 2
    assert (results[0].stats.cycles != results[1].stats.cycles)


def test_instance_memo_lives_per_batch_only():
    """Mutating an instance between batches must recompile, not replay the
    stale program — but duplicates within one batch still compile once."""
    workload = get_workload("axpy")
    config = native_config(1)
    executor = CellExecutor()
    cell = Cell(workload=workload, config=config)
    first = executor.run([cell, cell])  # one compile for both
    assert executor.stats.compiles == 1

    workload.n_elements = 128
    second = executor.run_one(cell)
    assert executor.stats.compiles == 2  # recompiled after the mutation
    fresh = CellExecutor().run_one(Cell(workload=workload, config=config))
    assert second.stats.cycles == fresh.stats.cycles
    assert second.stats.cycles != first[0].stats.cycles


def test_stats_are_consistent_without_a_cache():
    """cache=None is 'every cell misses', not '0 misses, N simulated'."""
    executor = CellExecutor()
    executor.run([Cell(workload="axpy", config=native_config(1)),
                  Cell(workload="axpy", config=ava_config(2))])
    stats = executor.stats
    assert stats.cells_requested == 2
    assert stats.cache_hits == 0
    assert stats.cache_misses == 2
    assert stats.sims_executed == 2
    assert stats.cache_misses == stats.cells_requested - stats.cache_hits
    assert "2 misses, 2 simulations executed" in stats.summary()


def test_cache_entries_honor_the_umask(tmp_path, monkeypatch):
    """mkstemp's 0600 must not leak into the shared cache directory."""
    import os
    import stat

    import repro.cachefs as cachefs

    old = os.umask(0o022)
    # The umask is read once per process; re-read it under the value this
    # test pins so an earlier memoisation cannot leak in.
    monkeypatch.setattr(cachefs, "_PROCESS_UMASK", None)
    try:
        cache = ResultCache(tmp_path / "cache")
        CellExecutor(cache=cache).run_one(
            Cell(workload="axpy", config=native_config(1)))
        entries = list((tmp_path / "cache").glob("*.json"))
        assert len(entries) == 1
        mode = stat.S_IMODE(entries[0].stat().st_mode)
        assert mode == 0o644
    finally:
        os.umask(old)  # monkeypatch restores the memoised umask itself


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    CellExecutor(cache=cache).run_one(
        Cell(workload="axpy", config=native_config(1)))
    assert cache.clear() == 1
    assert cache.clear() == 0


# ---------------------------------------------------------------------------
# parallel execution
# ---------------------------------------------------------------------------
def test_parallel_matches_serial_on_a_small_grid():
    spec = SweepSpec(workloads=("axpy",),
                     configs=(native_config(1), ava_config(2), ava_config(8)))
    serial = CellExecutor(jobs=1).run_spec(spec)
    parallel = CellExecutor(jobs=4).run_spec(spec)
    assert len(serial) == len(parallel) == 3
    for a, b in zip(serial, parallel):
        assert a.cell.config.name == b.cell.config.name
        assert a.stats == b.stats
        assert a.energy == b.energy


def test_parallel_executor_fills_a_shared_cache(tmp_path):
    spec = SweepSpec(workloads=("axpy",),
                     configs=(native_config(1), ava_config(8)))
    cold = make_executor(jobs=2, cache=True, cache_dir=tmp_path / "cache")
    cold.run_spec(spec)
    assert cold.stats.sims_executed == 2

    warm = make_executor(jobs=2, cache=True, cache_dir=tmp_path / "cache")
    warm.run_spec(spec)
    assert warm.stats.sims_executed == 0
    assert warm.stats.cache_hits == 2


def test_check_cells_carry_correctness_through_the_cache(tmp_path):
    cell = Cell(workload="axpy", config=native_config(1), check=True)
    cache = ResultCache(tmp_path / "cache")
    first = CellExecutor(cache=cache).run_one(cell)
    assert first.correct is True
    warm = CellExecutor(cache=ResultCache(tmp_path / "cache"))
    assert warm.run_one(cell).correct is True
    assert warm.stats.sims_executed == 0


def test_executor_rejects_bad_jobs():
    with pytest.raises(ValueError):
        CellExecutor(jobs=0)
