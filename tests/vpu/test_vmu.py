"""Vector Memory Unit access planning."""

from repro.core.config import native_config
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.operands import data_ref
from repro.isa.program import Program
from repro.memory.hierarchy import MemorySystem
from repro.sim.layout import MemoryLayout
from repro.vpu.vmu import VectorMemoryUnit


def make_vmu(n_elems=1024):
    config = native_config(1)
    program = Program(name="t", buffers={"x": n_elems}, mvl=16)
    memsys = MemorySystem()
    layout = MemoryLayout(program, config)
    return VectorMemoryUnit(memsys, layout), memsys


def unit_load(vl, base=0):
    return Instruction(op=Op.VLE, dst=0, vl=vl, mem=data_ref("x", base))


def test_unit_stride_beats_are_line_granular():
    """512-bit interface: 8 x 64-bit elements per beat."""
    vmu, _ = make_vmu()
    assert vmu.plan(unit_load(16)).beats == 2
    assert vmu.plan(unit_load(128, base=128)).beats == 16
    assert vmu.plan(unit_load(8, base=512)).beats == 1


def test_strided_access_costs_one_beat_per_element():
    vmu, _ = make_vmu(4096)
    inst = Instruction(op=Op.VLSE, dst=0, vl=16,
                       mem=data_ref("x", 0, stride=9))
    plan = vmu.plan(inst)
    assert plan.beats == 16
    assert plan.lines_touched > 2


def test_indexed_access_costs_one_beat_per_element():
    vmu, _ = make_vmu(4096)
    inst = Instruction(op=Op.VLXE, dst=0, srcs=(1,), vl=16,
                       mem=data_ref("x", 0, indexed=True))
    assert vmu.plan(inst).beats == 16


def test_cold_misses_split_bandwidth_and_latency():
    vmu, memsys = make_vmu()
    plan = vmu.plan(unit_load(16))
    assert plan.misses == 2
    assert plan.fill_beats == 2 * memsys.dram.config.line_transfer
    assert plan.miss_latency == memsys.dram.config.latency
    assert plan.occupancy == plan.beats + plan.fill_beats


def test_warm_access_has_no_dram_cost():
    vmu, _ = make_vmu()
    vmu.plan(unit_load(16))
    plan = vmu.plan(unit_load(16))
    assert plan.misses == 0
    assert plan.miss_latency == 0
    assert plan.occupancy == plan.beats


def test_store_allocates_lines():
    vmu, memsys = make_vmu()
    inst = Instruction(op=Op.VSE, srcs=(0,), vl=16, mem=data_ref("x"))
    vmu.plan(inst)
    assert memsys.l2.stats.write_misses == 2
    plan = vmu.plan(inst)
    assert plan.misses == 0


def test_first_element_latency_is_l2_latency():
    vmu, memsys = make_vmu()
    assert vmu.first_element_latency == memsys.config.l2.latency
