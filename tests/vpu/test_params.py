"""Timing parameters."""

import pytest

from repro.vpu.params import TimingParams


def test_table2_structure():
    p = TimingParams()
    assert p.lanes == 8
    assert p.arith_queue_depth == 32
    assert p.mem_queue_depth == 32
    assert p.scalar_clock_ratio == 2.0  # 2 GHz scalar vs 1 GHz VPU


def test_arith_beats_rounding():
    p = TimingParams()
    assert p.arith_beats(16, 1.0) == 2
    assert p.arith_beats(17, 1.0) == 3
    assert p.arith_beats(1, 1.0) == 1
    assert p.arith_beats(16, 4.0) == 8  # iterative divide


def test_scalar_clock_conversion():
    p = TimingParams()
    assert p.scalar_to_vpu(6.0) == 3.0


def test_validation():
    with pytest.raises(ValueError):
        TimingParams(lanes=0)
    with pytest.raises(ValueError):
        TimingParams(scalar_clock_ratio=0)
