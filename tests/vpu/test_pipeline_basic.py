"""Pipeline fundamentals on the baseline configuration."""

import numpy as np
import pytest

from repro import Simulator, ava_config, native_config
from repro.vpu.pipeline import VectorPipeline
from tests.conftest import axpy_body, compile_kernel


def run_axpy(config, n=256, functional=True):
    program = compile_kernel(axpy_body(2.0), config, n, {"x": n, "y": n})
    sim = Simulator(config, program, functional=functional)
    x = np.arange(n, dtype=float)
    y = np.ones(n)
    if functional:
        sim.set_data("x", x)
        sim.set_data("y", y)
    sim.warm_caches()
    return sim.run(), x, y


def test_axpy_executes_correctly():
    result, x, y = run_axpy(native_config(1))
    assert np.allclose(result.buffer("y"), 2.0 * x + y)


def test_all_instructions_commit():
    result, _, _ = run_axpy(native_config(1), n=128)
    stats = result.stats
    assert stats.committed == stats.vector_insts
    assert stats.cycles > 0


def test_instruction_counts_match_static_mix():
    result, _, _ = run_axpy(native_config(1), n=256)
    s = result.stats
    assert s.vloads == 2 * 256 // 16
    assert s.vstores == 256 // 16
    assert s.arith_insts == 256 // 16
    assert s.memory_fraction == pytest.approx(0.75)


def test_longer_vectors_are_faster():
    base, _, _ = run_axpy(native_config(1), functional=False)
    fast, _, _ = run_axpy(native_config(8), functional=False)
    assert fast.cycles < base.cycles


def test_deterministic_cycles():
    a, _, _ = run_axpy(ava_config(4), functional=False)
    b, _, _ = run_axpy(ava_config(4), functional=False)
    assert a.cycles == b.cycles


def test_functional_mode_does_not_change_timing():
    f, _, _ = run_axpy(ava_config(4), functional=True)
    t, _, _ = run_axpy(ava_config(4), functional=False)
    assert f.cycles == t.cycles


def test_program_validation_at_construction():
    from repro import rg_config
    from tests.conftest import high_pressure_body

    config = native_config(1)
    # A register-hungry binary compiled for 32 architectural registers...
    program = compile_kernel(high_pressure_body(18), config, 64,
                             {"x": 64, "out": 64})
    assert len(program.registers_used()) > 4
    # ...runs on any 32-register machine...
    VectorPipeline(ava_config(1), program)
    # ...but not on an RG-LMUL8 machine with 4 architectural registers.
    with pytest.raises(ValueError):
        VectorPipeline(rg_config(8), program)


def test_max_cycles_guard():
    config = native_config(1)
    program = compile_kernel(axpy_body(), config, 2048,
                             {"x": 2048, "y": 2048})
    sim = Simulator(config, program)
    with pytest.raises(RuntimeError):
        sim.run(max_cycles=10)


def test_busy_accounting_is_consistent():
    result, _, _ = run_axpy(native_config(1), functional=False)
    s = result.stats
    assert 0 < s.mem_busy_cycles <= s.cycles
    assert 0 < s.arith_busy_cycles <= s.cycles
    # axpy is memory bound: the memory unit dominates.
    assert s.mem_busy_cycles > s.arith_busy_cycles
