"""Golden equivalence: event-driven scheduler vs the reference stepper.

The event-driven scheduler in :mod:`repro.vpu.pipeline` must be
*observationally invisible*: for any (workload, configuration, policy)
cell it has to produce byte-identical statistics JSON and byte-identical
functional-mode output buffers compared to the retained cycle-by-cycle
reference implementation (:mod:`repro.vpu.reference`).  These tests pin
that equivalence across every registered workload, a grid of MVL / P-VRF /
victim-policy configurations, and Hypothesis-generated random programs.

Workload instances are shrunk (fewer elements, same kernels) so the suite
stays inside tier-1 time budgets; strip counts remain large enough that
renaming, chaining, swap traffic and reclamation are all exercised.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import (ava_config, native_config, rg_config,
                               with_physical_registers)
from repro.core.swap import VictimPolicy
from repro.isa.builder import KernelBuilder
from repro.vpu.params import get_timing, timing_names
from repro.vpu.pipeline import VectorPipeline
from repro.vpu.reference import ReferencePipeline
from repro.workloads.registry import ALL_WORKLOAD_NAMES, get_workload
from tests.conftest import compile_kernel

#: The MVL / P-VRF grid every workload is checked on: a single-level
#: machine, a mildly constrained AVA machine, and the most swap-intensive
#: AVA point (8 physical registers for 64 VVRs).
CONFIGS = [native_config(2), ava_config(2), ava_config(8)]

#: Shrunken problem size: 32+ strips on every configuration in CONFIGS.
SMALL_N = 512


def _compile_small(name, config):
    workload = get_workload(name)
    workload.n_elements = SMALL_N
    return workload, workload.compile(config).program


def _run(cls, workload, program, config, *, functional=True,
         victim_policy=VictimPolicy.RAC_MIN, aggressive_reclamation=True,
         params=None):
    pipe = cls(config, program, params=params, functional=functional,
               victim_policy=victim_policy,
               aggressive_reclamation=aggressive_reclamation)
    data = workload.init_data(np.random.default_rng(42))
    if functional:
        for buf, values in data.items():
            pipe.layout.set_data(buf, values)
    stats = pipe.run()
    buffers = {}
    if functional:
        buffers = {buf: pipe.layout.get_data(buf) for buf in program.buffers}
    return stats, buffers


def _assert_equivalent(workload, program, config, **kwargs):
    ref_stats, ref_bufs = _run(ReferencePipeline, workload, program,
                               config, **kwargs)
    new_stats, new_bufs = _run(VectorPipeline, workload, program,
                               config, **kwargs)
    ref_json = json.dumps(ref_stats.to_dict(), sort_keys=True)
    new_json = json.dumps(new_stats.to_dict(), sort_keys=True)
    assert new_json == ref_json, (
        f"stats diverged on {program.name}: "
        + ", ".join(k for k, v in new_stats.to_dict().items()
                    if ref_stats.to_dict().get(k) != v))
    assert set(new_bufs) == set(ref_bufs)
    for buf in ref_bufs:
        assert np.array_equal(new_bufs[buf], ref_bufs[buf]), (
            f"functional buffer {buf!r} diverged on {program.name}")
    return new_stats


@pytest.mark.parametrize("functional", [True, False],
                         ids=["functional", "counters-only"])
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("name", ALL_WORKLOAD_NAMES)
def test_scheduler_matches_reference(name, config, functional):
    """Both execution modes: functional moves real data through the VRF;
    counters-only (the default for artifact cells) takes the scheduler's
    dedicated accounting fast paths and must produce the same stats."""
    workload, program = _compile_small(name, config)
    stats = _assert_equivalent(workload, program, config,
                               functional=functional)
    # Scheduler-efficiency accounting: the historical fast-forward counter
    # tracks the same skipped cycles; every cycle is either evaluated or
    # jumped (a no-progress probe is evaluated *and* then jumped over, so
    # the two counters overlap by exactly the probe count).
    assert stats.fast_forward_cycles == stats.cycles_skipped
    assert 0 < stats.events_processed <= stats.cycles
    assert stats.cycles <= stats.events_processed + stats.cycles_skipped


@pytest.mark.parametrize("policy", [VictimPolicy.FIFO,
                                    VictimPolicy.ROUND_ROBIN],
                         ids=lambda p: p.value)
def test_scheduler_matches_reference_victim_policies(policy):
    config = ava_config(8)
    workload, program = _compile_small("blackscholes", config)
    _assert_equivalent(workload, program, config, victim_policy=policy)


@pytest.mark.parametrize("timing_name", timing_names())
def test_scheduler_matches_reference_timing_presets(timing_name):
    """Every registered timing preset: the span-charging scheduler's wake
    memos key off queue depths, swap budgets and dead times, so the
    byte-identical guarantee is pinned on each registered departure from
    the calibrated default (deep/shallow queues, single/wide swap)."""
    config = ava_config(8)
    workload, program = _compile_small("blackscholes", config)
    _assert_equivalent(workload, program, config,
                       params=get_timing(timing_name))


def test_scheduler_matches_reference_without_reclamation():
    config = ava_config(8)
    workload, program = _compile_small("blackscholes", config)
    _assert_equivalent(workload, program, config,
                       aggressive_reclamation=False)


def test_scheduler_matches_reference_preg_ablation():
    config = with_physical_registers(ava_config(4), 12)
    workload, program = _compile_small("somier", config)
    _assert_equivalent(workload, program, config)


def test_scheduler_matches_reference_rg_spill_code():
    config = rg_config(4)
    workload, program = _compile_small("swaptions", config)
    _assert_equivalent(workload, program, config)


# ---------------------------------------------------------------------------
# Hypothesis: random small programs
# ---------------------------------------------------------------------------
@st.composite
def kernels(draw):
    kb = KernelBuilder()
    n_consts = draw(st.integers(min_value=0, max_value=16))
    consts = [kb.const(1.0 + 0.05 * i) for i in range(n_consts)]
    pool = [kb.load("a"), kb.load("b")] + consts
    n_ops = draw(st.integers(min_value=3, max_value=20))
    for _ in range(n_ops):
        kind = draw(st.integers(0, 3))
        x = draw(st.sampled_from(pool))
        y = draw(st.sampled_from(pool))
        if kind == 0:
            pool.append(kb.add(x, y))
        elif kind == 1:
            pool.append(kb.mul(x, y))
        elif kind == 2:
            pool.append(kb.sub(x, y))
        else:
            pool.append(kb.fmadd(x, y, draw(st.sampled_from(pool))))
    kb.store(pool[-1], "out")
    return kb.build()


@given(body=kernels(), scale=st.sampled_from([1, 4, 8]))
@settings(max_examples=20, deadline=None)
def test_random_programs_match_reference(body, scale):
    """Property: the two steppers agree on arbitrary small programs."""
    config = ava_config(scale)
    n = 128
    program = compile_kernel(body, config, n,
                             {"a": n, "b": n, "out": n}, name="hyp")
    rng = np.random.default_rng(7)
    a = rng.uniform(0.5, 1.5, n)
    b = rng.uniform(0.5, 1.5, n)

    results = []
    for cls in (ReferencePipeline, VectorPipeline):
        pipe = cls(config, program, functional=True)
        pipe.layout.set_data("a", a)
        pipe.layout.set_data("b", b)
        stats = pipe.run(max_cycles=5_000_000)
        results.append((json.dumps(stats.to_dict(), sort_keys=True),
                        pipe.layout.get_data("out")))
    (ref_json, ref_out), (new_json, new_out) = results
    assert new_json == ref_json
    assert np.array_equal(new_out, ref_out)


def test_max_cycles_guard_reports_position():
    """The budget error is raised promptly after event jumps and names the
    cycle it stopped at."""
    config = ava_config(2)
    workload, program = _compile_small("axpy", config)
    pipe = VectorPipeline(config, program)
    with pytest.raises(RuntimeError, match=r"now="):
        pipe.run(max_cycles=10)
    # The budget check runs before any cycle beyond the jump target is
    # evaluated, so the pipeline cannot have advanced deep past the budget
    # doing work: the overshoot is bounded by a single event jump.
    assert pipe.stats.events_processed <= pipe.now + 1
