"""Swap mechanism behaviour on register-starved configurations."""

import numpy as np

from repro import Simulator, ava_config, native_config
from tests.conftest import compile_kernel, high_pressure_body


def run_hp(config, n=256, n_consts=18, functional=True):
    body = high_pressure_body(n_consts)
    program = compile_kernel(body, config, n, {"x": n, "out": n})
    sim = Simulator(config, program, functional=functional)
    x = np.linspace(0.1, 1.0, n)
    if functional:
        sim.set_data("x", x)
    sim.warm_caches()
    result = sim.run()
    # Reference: acc = 1*x + c0; then acc = acc*c_k + x.
    ref = x + 1.0
    for i in range(1, n_consts):
        ref = ref * (1.0 + 0.1 * i) + x
    return result, ref


def test_no_swaps_when_pregs_cover_pressure():
    result, ref = run_hp(ava_config(2))  # 32 P-regs vs ~21 live
    assert result.stats.swap_insts == 0
    assert np.allclose(result.buffer("out"), ref)


def test_swaps_appear_under_pressure_and_values_survive():
    result, ref = run_hp(ava_config(8))  # 8 P-regs vs ~21 live
    assert result.stats.swap_loads > 0
    assert result.stats.swap_stores > 0
    assert np.allclose(result.buffer("out"), ref)


def test_swap_ops_run_at_mvl_width():
    """Swap traffic is MVL-wide regardless of the strip VL (§III.B)."""
    config = ava_config(8)
    result, _ = run_hp(config, n=100)  # tail strip has VL=4
    s = result.stats
    assert s.swap_insts > 0
    # MVL-wide swaps at MVL=128: every swap moves 128 elements through the
    # P-VRF; check the element counters are consistent with that.
    assert s.mvrf_reads == s.swap_loads * config.mvl
    # Stores whose generation died in flight squash their data movement,
    # so the element count is bounded by (and usually equals) stores x MVL.
    assert s.mvrf_writes <= s.swap_stores * config.mvl
    assert s.mvrf_writes >= s.swap_loads * config.mvl * 0  # non-negative


def test_native_never_swaps():
    result, ref = run_hp(native_config(8))
    assert result.stats.swap_insts == 0
    assert np.allclose(result.buffer("out"), ref)


def test_swap_heavy_config_is_slower_but_correct():
    light, _ = run_hp(ava_config(2), functional=False)
    heavy, _ = run_hp(ava_config(8), functional=False)
    assert heavy.stats.swap_insts > 0
    assert heavy.cycles > light.cycles * 0.5  # sane, finishes


def test_reclamation_reduces_swap_traffic():
    config = ava_config(8)
    body = high_pressure_body(18)
    program = compile_kernel(body, config, 256, {"x": 256, "out": 256})
    on = Simulator(config, program, aggressive_reclamation=True)
    on.warm_caches()
    on_stats = on.run().stats
    off = Simulator(config, program, aggressive_reclamation=False)
    off.warm_caches()
    off_stats = off.run().stats
    assert on_stats.swap_insts <= off_stats.swap_insts


def test_victim_stall_counters_populate():
    result, _ = run_hp(ava_config(8), functional=False)
    s = result.stats
    # The starved configuration exercises the pre-issue/issue stall paths.
    assert s.swap_insts > 0
    assert s.preissue_writer_stalls + s.issue_victim_stalls >= 0
