"""The fault-injection subsystem itself: plans must be deterministic,
serializable, and precisely gated — a chaos harness that misfires proves
nothing about the stack it attacks."""

import json
import os

import pytest

from repro import faults
from repro.faults import (CACHE_CORRUPT, CACHE_ENOSPC, CELL_HANG, SLOW_CELL,
                          WORKER_CRASH, FAULT_PLAN_ENV, FaultPlan, FaultSpec,
                          TransientFaultError, seeded_plan)


# ---------------------------------------------------------------------------
# specs: validation and gating
# ---------------------------------------------------------------------------
def test_unknown_kind_is_rejected_eagerly():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="meteor-strike")


@pytest.mark.parametrize("attempt,fires", [
    (0, [True, False, False]),
    (1, [False, True, False]),
    ([0, 2], [True, False, True]),
    (None, [True, True, True]),
])
def test_attempt_gates(attempt, fires):
    spec = FaultSpec(kind=WORKER_CRASH, attempt=attempt)
    assert [spec.matches_attempt(i) for i in range(3)] == fires


def test_cell_fault_fires_once_and_respects_label_match():
    plan = FaultPlan(specs=[FaultSpec(kind=WORKER_CRASH, match="axpy",
                                      attempt=0)])
    # Non-matching label: nothing fires.
    plan.fire_cell("somier@AVA X8", 0, in_worker=False)
    # Matching label inline: raises instead of killing the process...
    with pytest.raises(TransientFaultError):
        plan.fire_cell("axpy@AVA X8", 0, in_worker=False)
    # ...and `times=1` means it never fires again in this process.
    plan.fire_cell("axpy@AVA X8", 0, in_worker=False)


def test_cell_fault_respects_attempt_gate():
    plan = FaultPlan(specs=[FaultSpec(kind=WORKER_CRASH, attempt=0)])
    plan.fire_cell("axpy@AVA X8", 1, in_worker=False)  # retry: clean
    with pytest.raises(TransientFaultError):
        plan.fire_cell("axpy@AVA X8", 0, in_worker=False)


def test_slow_cell_delays_without_raising():
    plan = FaultPlan(specs=[FaultSpec(kind=SLOW_CELL, delay_s=0.0)])
    plan.fire_cell("axpy@AVA X8", 0, in_worker=False)  # returns normally


def test_cache_fault_counts_matching_writes_by_ordinal():
    plan = FaultPlan(specs=[FaultSpec(kind=CACHE_CORRUPT, site="results",
                                      ordinal=2)])
    # Writes to other sites never advance the ordinal.
    assert plan.cache_fault("traces", "k0") is None
    assert plan.cache_fault("results", "k0") is None  # ordinal 0
    assert plan.cache_fault("results", "k1") is None  # ordinal 1
    assert plan.cache_fault("results", "k2") == CACHE_CORRUPT
    assert plan.cache_fault("results", "k3") is None  # times=1: spent


def test_first_matching_cache_spec_wins():
    plan = FaultPlan(specs=[
        FaultSpec(kind=CACHE_ENOSPC, site="results", ordinal=0),
        FaultSpec(kind=CACHE_CORRUPT, site="results", ordinal=0),
    ])
    # Both match write 0; one fault per write, the first spec claims it —
    # but both ordinals advanced, so the corrupt spec is spent too.
    assert plan.cache_fault("results", "k0") == CACHE_ENOSPC
    assert plan.cache_fault("results", "k1") is None


# ---------------------------------------------------------------------------
# serialization: JSON and the worker-propagation env var
# ---------------------------------------------------------------------------
def test_plan_round_trips_through_json():
    plan = seeded_plan(11, ["a@X", "b@Y", "c@Z"])
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.to_dict() == plan.to_dict()
    assert clone.seed == 11
    assert clone.describe() == plan.describe()


def test_seeded_plans_are_deterministic_and_seed_sensitive():
    labels = [f"w{i}@cfg" for i in range(6)]
    assert (seeded_plan(3, labels).to_json()
            == seeded_plan(3, labels).to_json())
    assert (seeded_plan(3, labels).to_json()
            != seeded_plan(4, labels).to_json())


def test_seeded_plan_always_arms_the_full_mix():
    plan = seeded_plan(0, ["only@one"])
    kinds = [spec.kind for spec in plan.specs]
    assert kinds.count(WORKER_CRASH) == 1
    assert kinds.count(CELL_HANG) == 1
    assert kinds.count(SLOW_CELL) == 1
    assert kinds.count(CACHE_CORRUPT) == 1
    assert kinds.count(CACHE_ENOSPC) == 1
    corrupt, enospc = [spec.ordinal for spec in plan.specs
                       if spec.kind in (CACHE_CORRUPT, CACHE_ENOSPC)]
    assert corrupt != enospc  # distinct writes: both faults always land


def test_seeded_plan_rejects_an_empty_grid():
    with pytest.raises(ValueError, match="at least one cell label"):
        seeded_plan(0, [])


# ---------------------------------------------------------------------------
# activation: install/uninstall and the environment channel
# ---------------------------------------------------------------------------
def test_injected_context_installs_and_always_uninstalls():
    plan = FaultPlan(specs=[FaultSpec(kind=CACHE_ENOSPC, site="results")])
    assert faults.active_plan() is None
    with faults.injected(plan) as active:
        assert active is plan
        assert faults.active_plan() is plan
        assert FAULT_PLAN_ENV in os.environ
    assert faults.active_plan() is None
    assert FAULT_PLAN_ENV not in os.environ


def test_env_var_plan_is_parsed_for_spawned_workers(monkeypatch):
    plan = seeded_plan(5, ["axpy@AVA X8"])
    monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
    parsed = faults.active_plan()
    assert parsed is not None
    assert parsed.to_dict() == plan.to_dict()
    # Memoized per value: the same blob parses once.
    assert faults.active_plan() is parsed


def test_malformed_env_plan_is_ignored(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "{not json")
    assert faults.active_plan() is None
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({"specs": 7}))
    assert faults.active_plan() is None
