"""Engine-level sanitize contract: the flag reaches every cell, keys the
cache, and never perturbs a result."""

import json

from repro.core.config import ava_config
from repro.experiments.engine import Cell, cell_key, make_executor
from repro.workloads.registry import get_workload


def _program(config):
    workload = get_workload("axpy")
    workload.n_elements = 512
    return workload.compile(config).program


def test_sanitize_is_part_of_the_cell_key():
    """A cached plain result proves nothing about the invariants, so a
    sanitized run must never hit it."""
    config = ava_config(2)
    program = _program(config)
    plain = Cell(workload="axpy", config=config)
    checked = Cell(workload="axpy", config=config, sanitize=True)
    assert cell_key(plain, program) != cell_key(checked, program)


def test_executor_sanitize_flag_upgrades_every_cell(tmp_path):
    """make_executor(sanitize=True) semantics: results are byte-identical
    to the plain run, but land under sanitized cache keys."""
    config = ava_config(2)
    cells = [Cell(workload="axpy", config=config)]
    with make_executor(cache=True, cache_dir=tmp_path / "plain") as plain_ex:
        plain = plain_ex.run(cells)
    with make_executor(cache=True, cache_dir=tmp_path / "checked",
                       sanitize=True) as checked_ex:
        checked = checked_ex.run(cells)
        assert checked_ex.stats.cache_misses == 1  # distinct key: no reuse
    assert json.dumps(plain[0].stats.to_dict(), sort_keys=True) == \
        json.dumps(checked[0].stats.to_dict(), sort_keys=True)
    assert plain[0].energy == checked[0].energy


def test_sanitized_cell_result_replays_from_cache(tmp_path):
    config = ava_config(2)
    cells = [Cell(workload="axpy", config=config, sanitize=True)]
    with make_executor(cache=True, cache_dir=tmp_path / "c") as ex:
        first = ex.run(cells)
        second = ex.run(cells)
        assert ex.stats.cache_hits == 1
    assert json.dumps(first[0].stats.to_dict(), sort_keys=True) == \
        json.dumps(second[0].stats.to_dict(), sort_keys=True)
