"""Pragma parsing round-trips: every exemption form the rules honour."""

import pytest

from repro.analysis.pragmas import (KEY_EXEMPT, SLOTS_EXEMPT,
                                    ble_justification, has_pragma,
                                    lint_pragma)


@pytest.mark.parametrize("line,kind,why", [
    ("x: int = 0  # lint: key-exempt(observability only)",
     KEY_EXEMPT, "observability only"),
    ("class C:  # lint: slots-exempt(shared derived-attribute cache)",
     SLOTS_EXEMPT, "shared derived-attribute cache"),
    ("y = 1  #lint:key-exempt( padded why )", KEY_EXEMPT, "padded why"),
])
def test_lint_pragma_parses(line, kind, why):
    parsed = lint_pragma(line)
    assert parsed == {"kind": kind, "why": why}
    assert has_pragma(line, kind)


def test_unjustified_pragma_is_not_honoured():
    line = "x: int = 0  # lint: key-exempt()"
    assert lint_pragma(line) == {"kind": KEY_EXEMPT, "why": ""}
    assert not has_pragma(line, KEY_EXEMPT)  # empty why never exempts


def test_pragma_kind_must_match():
    line = "x: int = 0  # lint: key-exempt(real reason)"
    assert has_pragma(line, KEY_EXEMPT)
    assert not has_pragma(line, SLOTS_EXEMPT)
    assert lint_pragma("x = 1  # just a comment") is None


@pytest.mark.parametrize("line,expected", [
    ("except Exception:  # noqa: BLE001 — plugin code", "plugin code"),
    ("except Exception:  # noqa: BLE001 - ascii dash too", "ascii dash too"),
    ("except Exception:  # noqa: BLE001 —", ""),
    ("except Exception:  # noqa: BLE001", ""),
    ("except Exception:", None),
    ("except ValueError:  # noqa: F401", None),
])
def test_ble_justification(line, expected):
    assert ble_justification(line) == expected
