"""The lint driver: self-hosting, rule selection, --json, --fix, registry."""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (LINT_JSON_SCHEMA, default_lint_paths,
                            register_rule, rule_codes, run_lint)
from repro.analysis.registry import _reset_for_tests

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


# ---------------------------------------------------------------------------
# Self-hosting: the analyzer's own subject is this repository.
# ---------------------------------------------------------------------------
def test_self_lint_clean():
    """Every rule, the whole package, zero findings — the gate CI enforces."""
    result = run_lint(default_lint_paths(REPO_ROOT))
    assert result.findings == [], "\n".join(f.render()
                                            for f in result.findings)
    assert result.exit_code == 0
    assert result.files_checked > 50
    assert result.rules_run == rule_codes()


def test_cli_lint_exits_nonzero_with_file_line_findings():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(FIXTURES / "f002_bad.py"),
         "--rules", "F002"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        cwd=REPO_ROOT)
    assert proc.returncode == 1
    assert "f002_bad.py:5: F002" in proc.stdout


def test_cli_lint_rejects_unknown_rule_family():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--rules", "Q"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        cwd=REPO_ROOT)
    assert proc.returncode == 2
    assert "no lint rules in family" in proc.stderr


# ---------------------------------------------------------------------------
# Rule selection.
# ---------------------------------------------------------------------------
def test_rule_selection_by_code_and_family():
    by_code = run_lint([FIXTURES / "d001_bad.py"], rules=["D001"])
    assert by_code.rules_run == ["D001"]
    by_family = run_lint([FIXTURES / "d001_bad.py"], rules=["D"])
    assert by_family.rules_run == ["D001", "D002"]
    overlapping = run_lint([FIXTURES / "d001_bad.py"],
                           rules=["D", "D001", "D002"])
    assert overlapping.rules_run == ["D001", "D002"]  # deduped, stable order
    with pytest.raises(KeyError):
        run_lint([FIXTURES / "d001_bad.py"], rules=["Q"])
    with pytest.raises(KeyError):
        run_lint([FIXTURES / "d001_bad.py"], rules=["Q123"])


# ---------------------------------------------------------------------------
# --json: a stable machine-readable shape.
# ---------------------------------------------------------------------------
def test_json_report_shape():
    result = run_lint([FIXTURES / "f001_bad.py"], rules=["F001"],
                      as_json=True)
    payload = json.loads(result.output)
    assert payload["schema"] == LINT_JSON_SCHEMA
    assert payload["files_checked"] == 1
    assert payload["rules"] == ["F001"]
    assert payload["count"] == 2 == len(payload["findings"])
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "code", "message", "fixable"}
    assert first["code"] == "F001"
    # sorted by (path, line): the two findings arrive in line order.
    assert [f["line"] for f in payload["findings"]] == [7, 14]


def test_text_report_summary_line():
    result = run_lint([FIXTURES / "f002_bad.py"], rules=["F002"])
    lines = result.output.splitlines()
    assert lines[-1] == "repro lint: 1 finding (1 files, rules: F002)"
    assert lines[0].endswith(result.findings[0].render().split(": ", 1)[1])


# ---------------------------------------------------------------------------
# --fix: mechanical repairs converge and are idempotent.
# ---------------------------------------------------------------------------
def _fix_fixture(tmp_path, name):
    target = tmp_path / name
    shutil.copy(FIXTURES / name, target)
    return target


def test_fix_inserts_slots_and_is_idempotent(tmp_path):
    target = _fix_fixture(tmp_path, "s002_bad.py")
    first = run_lint([target], rules=["S002"], fix=True)
    assert first.fixed == [str(target)]
    assert first.findings == []
    text = target.read_text()
    assert '__slots__ = ("inst", "rob_index", "done_at",)' in text
    # The docstring stays first; the slots land directly after it.
    lines = text.splitlines()
    doc_idx = next(i for i, ln in enumerate(lines)
                   if "fixture twin of the real one" in ln)
    assert "__slots__" in lines[doc_idx + 2]
    # Second run: nothing left to fix, file untouched.
    second = run_lint([target], rules=["S002"], fix=True)
    assert second.fixed == []
    assert second.findings == []
    assert target.read_text() == text


def test_fix_scaffolds_broad_except_justifications(tmp_path):
    target = _fix_fixture(tmp_path, "f001_bad.py")
    first = run_lint([target], rules=["F001"], fix=True)
    assert first.fixed == [str(target)]
    text = target.read_text()
    assert "# noqa: BLE001 — TODO: justify this broad except" in text
    # The scaffold satisfies the missing-pragma finding but deliberately
    # leaves a human-visible TODO; the pre-existing empty-reason pragma on
    # line 14 is untouched (not mechanically repairable).
    assert [f.line for f in first.findings] == [14]
    second = run_lint([target], rules=["F001"], fix=True)
    assert second.fixed == []
    assert target.read_text() == text


def test_fix_leaves_clean_files_alone(tmp_path):
    target = _fix_fixture(tmp_path, "s002_good.py")
    before = target.read_text()
    result = run_lint([target], rules=["S002", "F001"], fix=True)
    assert result.fixed == []
    assert target.read_text() == before


# ---------------------------------------------------------------------------
# Registry: collisions fail loudly, like workload registration.
# ---------------------------------------------------------------------------
def test_duplicate_rule_code_is_rejected():
    snapshot = _reset_for_tests()
    with pytest.raises(ValueError, match="already registered"):
        @register_rule("D001", name="imposter", summary="shadowing")
        def imposter(sources):
            return []
    assert _reset_for_tests() == snapshot  # failed registration mutated nothing
