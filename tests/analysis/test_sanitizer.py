"""Unit tests for the microarchitectural sanitizer: every check fires on a
hand-crafted violation, and the clean path accumulates evidence."""

import pytest

from repro.analysis.sanitizer import PipelineSanitizer, SanitizerError


class _Inst:
    def __init__(self, is_arith=True, is_load=False):
        self.is_arith = is_arith
        self.is_load = is_load


class _Uop:
    def __init__(self, src_pregs=(), dst_preg=0, rob_index=0, done_at=0,
                 inst=None):
        self.src_pregs = list(src_pregs)
        self.dst_preg = dst_preg
        self.rob_index = rob_index
        self.done_at = done_at
        self.inst = inst or _Inst()

    def describe(self):
        return f"stub(rob={self.rob_index})"


class _Stats:
    def __init__(self, span_cycles=0, spans_charged=0, cycles_skipped=0,
                 fast_forward_cycles=0):
        self.span_cycles = span_cycles
        self.spans_charged = spans_charged
        self.cycles_skipped = cycles_skipped
        self.fast_forward_cycles = fast_forward_cycles


class _Rat:
    def __init__(self, rat, frl):
        self._rat = rat
        self._frl = frl


def _sanitizer(cycle=100):
    san = PipelineSanitizer(label="unit")
    san.bind(lambda: cycle)
    return san


def _check(excinfo, name):
    assert excinfo.value.check == name
    assert f"sanitizer:{name} [unit] at cycle 100" in str(excinfo.value)


# ---------------------------------------------------------------------------
# VRF value-lifetime checks.
# ---------------------------------------------------------------------------
def test_read_of_unmapped_register_fails():
    san = _sanitizer()
    with pytest.raises(SanitizerError) as exc:
        san.on_execute(_Uop(src_pregs=[3]))
    _check(exc, "vrf-read-unmapped")
    assert "uop=stub(rob=0)" in str(exc.value)


def test_read_before_producer_write_fails():
    san = _sanitizer()
    san.on_map_alloc(vvr=7, preg=3)  # destination mapped, never written
    with pytest.raises(SanitizerError) as exc:
        san.on_execute(_Uop(src_pregs=[3]))
    _check(exc, "vrf-read-before-write")


def test_write_then_read_is_clean():
    san = _sanitizer()
    san.on_map_alloc(vvr=7, preg=3)
    san.on_execute(_Uop(dst_preg=3))  # producer writes at cycle 100
    san2 = _sanitizer(cycle=101)
    san2._preg = san._preg  # same shadow state, later cycle
    san2.on_execute(_Uop(src_pregs=[3], dst_preg=4, inst=_Inst()))
    assert san.checks_run > 0


def test_reset_alloc_classifies_legal_unwritten_read():
    san = _sanitizer()
    san.on_map_alloc(vvr=7, preg=3)
    san.on_reset_alloc(preg=3)  # pre-issue: never-defined source, SRAM zeros
    san.on_execute(_Uop(src_pregs=[3], inst=_Inst(is_arith=False)))


def test_double_write_same_cycle_fails():
    san = _sanitizer()
    san.on_map_alloc(vvr=7, preg=3)
    san.on_execute(_Uop(dst_preg=3))
    with pytest.raises(SanitizerError) as exc:
        san.on_execute(_Uop(dst_preg=3, rob_index=1))
    _check(exc, "vrf-double-write")


def test_swap_in_counts_as_a_write():
    san = _sanitizer()
    san.on_map_alloc(vvr=7, preg=3)
    san.on_swap_in(vvr=7, preg=3)  # Swap-Load fills the register
    san.on_execute(_Uop(src_pregs=[3], inst=_Inst(is_arith=False)))


# ---------------------------------------------------------------------------
# Swap-Store read ordering.
# ---------------------------------------------------------------------------
def test_overwrite_before_swap_store_read_fails():
    san = _sanitizer()
    san.on_map_alloc(vvr=7, preg=3)
    san.on_execute(_Uop(dst_preg=3))
    san.on_swap_store_emitted(preg=3)  # eviction freed it, store in flight
    san.on_map_alloc(vvr=9, preg=3)  # new owner
    with pytest.raises(SanitizerError) as exc:
        san.on_execute(_Uop(dst_preg=3, rob_index=1))
    _check(exc, "swap-store-overwrite")


def test_swap_store_read_then_overwrite_is_clean():
    san = _sanitizer(cycle=100)
    san.on_map_alloc(vvr=7, preg=3)
    san.on_execute(_Uop(dst_preg=3))
    san.on_swap_store_emitted(preg=3)
    san.on_swap_out(vvr=7, preg=3)  # the streaming read happened
    san.on_map_alloc(vvr=9, preg=3)
    san2 = _sanitizer(cycle=101)
    san2._preg, san2._pending_swap_reads = san._preg, san._pending_swap_reads
    san2.on_execute(_Uop(dst_preg=3, rob_index=1))


def test_unexpected_swap_store_read_fails():
    san = _sanitizer()
    with pytest.raises(SanitizerError) as exc:
        san.on_swap_out(vvr=7, preg=3)
    _check(exc, "swap-store-unexpected")


def test_squash_consumes_the_pending_read():
    san = _sanitizer()
    san.on_swap_store_emitted(preg=3)
    san.on_swap_squashed(preg=3)  # generation died in flight
    with pytest.raises(SanitizerError):
        san.on_swap_squashed(preg=3)  # second squash has nothing to consume


# ---------------------------------------------------------------------------
# ROB / RAT checks.
# ---------------------------------------------------------------------------
def test_out_of_order_commit_fails():
    san = _sanitizer()
    san.on_commit(_Uop(rob_index=0, done_at=90))
    with pytest.raises(SanitizerError) as exc:
        san.on_commit(_Uop(rob_index=2, done_at=90))
    _check(exc, "rob-out-of-order")


def test_early_commit_fails():
    san = _sanitizer()
    with pytest.raises(SanitizerError) as exc:
        san.on_commit(_Uop(rob_index=0, done_at=150))
    _check(exc, "rob-early-commit")


def test_aliased_rat_fails():
    san = _sanitizer()
    san.bind(lambda: 100, rat=_Rat(rat=[5, 5, 6], frl=[7]))
    with pytest.raises(SanitizerError) as exc:
        san.on_rename()
    _check(exc, "rat-aliased")


def test_duplicate_frl_entry_fails():
    san = _sanitizer()
    san.bind(lambda: 100, rat=_Rat(rat=[5, 6], frl=[7, 7]))
    with pytest.raises(SanitizerError) as exc:
        san.on_rename()
    _check(exc, "rat-frl-duplicate")


def test_mapped_register_on_the_frl_fails():
    san = _sanitizer()
    san.bind(lambda: 100, rat=_Rat(rat=[5, 6], frl=[6, 7]))
    with pytest.raises(SanitizerError) as exc:
        san.on_rename()
    _check(exc, "rat-frl-live")


def test_consistent_rat_is_clean():
    san = _sanitizer()
    san.bind(lambda: 100, rat=_Rat(rat=[5, 6], frl=[7, 8]))
    san.on_rename()
    assert san.checks_run == 1


# ---------------------------------------------------------------------------
# Span-accounting conservation.
# ---------------------------------------------------------------------------
def test_span_interval_conservation_fails_on_drift():
    san = _sanitizer()
    san.on_span(_Stats(span_cycles=10, spans_charged=2, cycles_skipped=8))
    with pytest.raises(SanitizerError) as exc:
        san.on_span(_Stats(span_cycles=11, spans_charged=2,
                           cycles_skipped=8))
    _check(exc, "span-conservation")


def test_run_end_checks_the_fast_forward_alias():
    san = _sanitizer()
    san.on_run_end(_Stats(span_cycles=10, spans_charged=2, cycles_skipped=8,
                          fast_forward_cycles=8))
    with pytest.raises(SanitizerError) as exc:
        san.on_run_end(_Stats(span_cycles=10, spans_charged=2,
                              cycles_skipped=8, fast_forward_cycles=7))
    _check(exc, "span-conservation")
