"""Per-rule contract: each bad fixture trips exactly its rule at the
documented lines; each good twin comes back clean."""

from pathlib import Path

import pytest

from repro.analysis import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def _findings(name, rules):
    result = run_lint([FIXTURES / name], rules=rules)
    return result, result.findings


def _lines(findings, code):
    return sorted(f.line for f in findings if f.code == code)


# ---------------------------------------------------------------------------
# Good twins: clean under their rule family.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name,rules", [
    ("d001_good.py", ["D001"]),
    ("d002_good.py", ["D002"]),
    ("k001_good.py", ["K001"]),
    ("k002_good.py", ["K002"]),
    ("s001_good.py", ["S001"]),
    ("s002_good.py", ["S002"]),
    ("f001_good.py", ["F001"]),
    ("f002_good.py", ["F002"]),
])
def test_good_fixture_is_clean(name, rules):
    result, findings = _findings(name, rules)
    assert findings == []
    assert result.exit_code == 0


# ---------------------------------------------------------------------------
# Bad twins: every planted violation found, nothing else.
# ---------------------------------------------------------------------------
def test_d001_catches_every_entropy_category():
    result, findings = _findings("d001_bad.py", ["D001"])
    assert result.exit_code == 1
    # import random / time.time / uuid.uuid4 / np.random.random /
    # unseeded default_rng / os.getenv / datetime.now / os.environ.
    assert _lines(findings, "D001") == [2, 12, 13, 14, 15, 16, 17, 18]


def test_d002_catches_set_iteration_in_every_position():
    _, findings = _findings("d002_bad.py", ["D002"])
    assert _lines(findings, "D002") == [5, 7, 9]


def test_k001_flags_the_unserialized_field_only():
    _, findings = _findings("k001_bad.py", ["K001"])
    assert _lines(findings, "K001") == [10]
    assert "bogus_new_axis" in findings[0].message


def test_k002_flags_the_dropped_from_dict_field():
    _, findings = _findings("k002_bad.py", ["K002"])
    assert _lines(findings, "K002") == [9]
    assert "aggressive_reclamation" in findings[0].message


def test_s001_flags_shape_drift_and_payload_drift():
    _, findings = _findings("s001_bad.py", ["S001"])
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert any("without a CACHE_SCHEMA bump" in m for m in messages)
    assert any("result payload keys" in m for m in messages)


def test_s001_flags_a_stale_lock_after_a_bump():
    _, findings = _findings("s001_bumped_stale_lock.py", ["S001"])
    assert len(findings) == 1
    assert "regenerate the schema lock" in findings[0].message


def test_s002_flags_the_slotless_hot_path_class():
    _, findings = _findings("s002_bad.py", ["S002"])
    assert len(findings) == 1
    assert findings[0].fixable
    assert "MicroOp" in findings[0].message


def test_f001_flags_unjustified_and_unreasoned_handlers():
    _, findings = _findings("f001_bad.py", ["F001"])
    assert _lines(findings, "F001") == [7, 14]
    by_line = {f.line: f for f in findings}
    assert by_line[7].fixable  # missing pragma: scaffoldable
    assert not by_line[14].fixable  # empty reason needs a human
    assert "empty reason" in by_line[14].message


def test_f002_flags_only_the_non_infrastructure_exception():
    _, findings = _findings("f002_bad.py", ["F002"])
    assert _lines(findings, "F002") == [5]
    assert "ValueError" in findings[0].message


# ---------------------------------------------------------------------------
# Scope: the D-rules are allowlisted by sub-package, not by pragma.
# ---------------------------------------------------------------------------
def test_d_rules_skip_the_allowlisted_subpackages(tmp_path):
    bad = (FIXTURES / "d001_bad.py").read_text()
    exempt = tmp_path / "src" / "repro" / "faults" / "plans.py"
    exempt.parent.mkdir(parents=True)
    exempt.write_text(bad)
    covered = tmp_path / "src" / "repro" / "vpu" / "plans.py"
    covered.parent.mkdir(parents=True)
    covered.write_text(bad)
    assert run_lint([exempt], rules=["D"]).findings == []
    assert run_lint([covered], rules=["D"]).findings != []


def test_syntax_error_becomes_a_finding(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    result = run_lint([broken], rules=["D001"])
    assert result.exit_code == 1
    assert [f.code for f in result.findings] == ["E001"]
