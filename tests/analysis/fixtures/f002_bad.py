"""F002 bad fixture: a simulation bug smuggled into the retry tuple."""

_RETRYABLE_EXCEPTIONS = (
    OSError,
    ValueError,  # line 5: retrying a simulation bug masks nondeterminism
    TimeoutError,
)
