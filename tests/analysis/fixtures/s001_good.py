"""S001 good fixture: schema constant and result payload match the lock.

(The real SimStats shape is pinned by self-linting ``src/repro`` — see
test_self_lint_clean — so this fixture covers the other two probes.)
"""

CACHE_SCHEMA = 4


def _run_cell(cell):
    return {"schema": CACHE_SCHEMA, "label": "x", "stats": {}, "energy": {},
            "correct": True}
