"""K002 good fixture: the hand-written from_dict restores every field."""
from dataclasses import dataclass


@dataclass
class CellPolicy:
    victim_policy: str = "rac_min"
    aggressive_reclamation: bool = True

    @classmethod
    def from_dict(cls, data):
        return cls(victim_policy=data["victim_policy"],
                   aggressive_reclamation=bool(data["aggressive_reclamation"]))
