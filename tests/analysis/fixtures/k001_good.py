"""K001 good fixture: every field reaches the payload or is exempted."""
from dataclasses import dataclass


@dataclass
class CellPolicy:
    victim_policy: str = "rac_min"  # present in the real key payload
    aggressive_reclamation: bool = True  # present in the real key payload
    debug_trace: bool = False  # lint: key-exempt(observability only; cannot change any statistic)
