"""F001 bad fixture: swallowing broad excepts, unjustified or unreasoned."""


def swallow_everything(action):
    try:
        return action()
    except Exception:  # line 7: no justification at all
        return None


def empty_reason(action):
    try:
        return action()
    except Exception:  # noqa: BLE001 —
        return None
