"""S002 bad fixture: a hot-path registry class carrying a __dict__.

Also the --fix corpus: the fixer must derive the slot tuple from the
``self.X = ...`` assignments in ``__init__`` (docstring preserved).
"""


class MicroOp:
    """One in-flight micro-operation (fixture twin of the real one)."""

    def __init__(self, inst, rob_index):
        self.inst = inst
        self.rob_index = rob_index
        self.done_at = -1
