"""S001 bad fixture: the serialized shapes drift from the schema lock.

A shrunken SimStats (shape change, no CACHE_SCHEMA bump in this file) and
a ``_run_cell`` returning a payload with a renamed key.
"""
from dataclasses import dataclass


@dataclass
class SimStats:
    cycles: int = 0
    completely_new_counter: int = 0


def _run_cell(cell):
    return {"schema": 4, "label": "x", "stats": {}, "energy": {},
            "is_correct": True}
