"""D002 good fixture: order-stable dedupe and explicit sorting."""


def release_registers(srcs, live):
    for reg in dict.fromkeys(srcs):  # operand-order dedupe
        live.discard(reg)
    for reg in sorted(set(srcs)):  # materialised order before iteration
        live.discard(reg)
    seen = set(srcs)  # building a set is fine; only iteration is the hazard
    return seen
