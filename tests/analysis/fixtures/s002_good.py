"""S002 good fixture: slots declared, or the exemption justified."""


class MicroOp:
    __slots__ = ("inst", "rob_index", "done_at")

    def __init__(self, inst, rob_index):
        self.inst = inst
        self.rob_index = rob_index
        self.done_at = -1


class Instruction:  # lint: slots-exempt(fixture twin of the derived-attribute cache)
    def __init__(self, opcode):
        self.opcode = opcode
