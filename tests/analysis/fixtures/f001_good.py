"""F001 good fixture: every broad handler is justified or re-raises."""


def justified(action):
    try:
        return action()
    except Exception:  # noqa: BLE001 — plugin code raises arbitrarily; one bad plugin must not sink the run
        return None


def cleanup_guard(action, undo):
    try:
        return action()
    except BaseException:
        undo()
        raise  # re-raising handlers swallow nothing: exempt by construction


def narrow(action):
    try:
        return action()
    except (ValueError, KeyError):
        return None
