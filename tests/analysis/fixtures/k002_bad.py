"""K002 bad fixture: a hand-written from_dict drops a declared field, so
deserialized instances silently fall back to the default."""
from dataclasses import dataclass


@dataclass
class CellPolicy:
    victim_policy: str = "rac_min"
    aggressive_reclamation: bool = True  # line 9: never restored below

    @classmethod
    def from_dict(cls, data):
        return cls(victim_policy=data["victim_policy"])
