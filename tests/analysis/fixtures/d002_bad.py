"""D002 bad fixture: set iteration in every syntactic position."""


def release_registers(srcs, live):
    for reg in {s for s in srcs}:  # line 5: set-comprehension iteration
        live.discard(reg)
    for reg in set(srcs):  # line 7: set() call iteration
        live.discard(reg)
    order = [reg for reg in frozenset(srcs)]  # line 9: frozenset in a comp
    return order
