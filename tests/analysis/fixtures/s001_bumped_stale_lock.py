"""S001 bad fixture, second failure mode: the author bumped CACHE_SCHEMA
for a SimStats shape change but forgot to regenerate the schema lock."""
from dataclasses import dataclass

CACHE_SCHEMA = 99


@dataclass
class SimStats:
    cycles: int = 0
    completely_new_counter: int = 0
