"""D001 good fixture: deterministic twins of everything the bad file does."""
import numpy as np


def stamp_cell(seed: int, now_cycle: int, home: str):
    rng = np.random.default_rng(seed)  # seeded Generator: allowed
    noise = rng.random()  # drawn from the threaded Generator, not the global
    when = now_cycle  # simulated time flows from the pipeline clock
    return noise, when, home
