"""K001 bad fixture: a cache-key dataclass grows a field the serializer
never learned about — the classic silent cache collision."""
from dataclasses import dataclass


@dataclass
class CellPolicy:
    victim_policy: str = "rac_min"
    aggressive_reclamation: bool = True
    bogus_new_axis: int = 0  # line 10: never serialized, never hashed
