"""D001 bad fixture: every category of entropy read the rule catches."""
import random  # noqa: F401  (line 2: entropy import)

import numpy as np
import os
import time
import uuid
from datetime import datetime


def stamp_cell():
    started = time.time()  # line 12: clock read
    token = uuid.uuid4()  # line 13: entropy pool
    noise = np.random.random()  # line 14: unseeded global RNG
    rng = np.random.default_rng()  # line 15: default_rng without a seed
    home = os.getenv("HOME")  # line 16: environment read
    when = datetime.now()  # line 17: argless wall-clock
    tag = os.environ["USER"]  # line 18: environ access
    return started, token, noise, rng, home, when, tag
