"""F002 good fixture: the retry tuple stays inside the fault taxonomy."""
from repro import faults

_RETRYABLE_EXCEPTIONS = (
    faults.TransientFaultError,
    OSError,
    TimeoutError,
    ConnectionError,
)

#: Not a retry tuple: names without RETRYABLE in them are out of scope.
_INTERESTING = (ValueError, KeyError)
