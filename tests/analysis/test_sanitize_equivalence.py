"""The sanitizer's acceptance gate: the full equivalence grid runs under
``sanitize=True`` on BOTH pipeline implementations with zero findings, and
the instrumentation is observationally invisible (identical stats)."""

import json

import numpy as np
import pytest

from repro.core.config import ava_config, native_config
from repro.vpu.pipeline import VectorPipeline
from repro.vpu.reference import ReferencePipeline
from repro.workloads.registry import ALL_WORKLOAD_NAMES, get_workload

#: Same grid as tests/vpu/test_pipeline_equivalence.py.
CONFIGS = [native_config(2), ava_config(2), ava_config(8)]
SMALL_N = 512


def _compile_small(name, config):
    workload = get_workload(name)
    workload.n_elements = SMALL_N
    return workload, workload.compile(config).program


def _run(cls, workload, program, config, *, functional, sanitize):
    pipe = cls(config, program, functional=functional, sanitize=sanitize)
    if functional:
        data = workload.init_data(np.random.default_rng(42))
        for buf, values in data.items():
            pipe.layout.set_data(buf, values)
    stats = pipe.run()
    return stats, pipe


@pytest.mark.parametrize("functional", [True, False],
                         ids=["functional", "counters-only"])
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("name", ALL_WORKLOAD_NAMES)
def test_sanitized_grid_is_clean_and_invisible(name, config, functional):
    """Every workload x configuration x mode, both pipelines: a sanitized
    run completes without a finding, actually evaluates invariants, and
    yields byte-identical statistics to the uninstrumented run."""
    workload, program = _compile_small(name, config)
    for cls in (ReferencePipeline, VectorPipeline):
        plain, _ = _run(cls, workload, program, config,
                        functional=functional, sanitize=False)
        checked, pipe = _run(cls, workload, program, config,
                             functional=functional, sanitize=True)
        assert pipe._san is not None
        assert pipe._san.checks_run > 0
        assert json.dumps(checked.to_dict(), sort_keys=True) == \
            json.dumps(plain.to_dict(), sort_keys=True), (
                f"sanitizer perturbed {cls.__name__} stats on "
                f"{program.name}")


def test_sanitizer_is_wired_to_every_structure():
    """The probes land on the mapping, the VRF, the ROB and the RAT — a
    regression here silently turns the grid above into a no-op."""
    config = ava_config(8)
    workload, program = _compile_small("blackscholes", config)
    pipe = VectorPipeline(config, program, sanitize=True)
    assert pipe.mapping.sanitizer is pipe._san
    assert pipe.vrf.sanitizer is pipe._san
    assert pipe.rob.sanitizer is pipe._san
    assert pipe.rat.sanitizer is pipe._san
    ref = ReferencePipeline(config, program, sanitize=True)
    assert ref.mapping.sanitizer is ref._san
    assert ref.vrf.sanitizer is ref._san
    assert ref.rob.sanitizer is ref._san
    assert ref.rat.sanitizer is ref._san


def test_unsanitized_run_pays_no_probe_state():
    config = ava_config(2)
    workload, program = _compile_small("axpy", config)
    pipe = VectorPipeline(config, program)
    assert pipe._san is None
    assert pipe.mapping.sanitizer is None
    pipe.run()  # probes must never fire from a None sanitizer
