"""Property-based tests: the register allocator on random SSA traces."""

from hypothesis import given, settings, strategies as st

from repro.compiler.allocator import allocate
from repro.compiler.liveness import max_pressure
from repro.isa.instructions import Instruction, Tag
from repro.isa.opcodes import Op
from repro.isa.operands import data_ref


@st.composite
def ssa_traces(draw):
    """Random straight-line SSA traces: loads, adds, stores."""
    n_ops = draw(st.integers(min_value=1, max_value=40))
    trace = []
    defined = []
    vid = 0
    for _ in range(n_ops):
        choice = draw(st.integers(0, 2 if len(defined) >= 2 else 0))
        if choice == 0 or len(defined) < 2:
            trace.append(Instruction(op=Op.VLE, dst=vid, vl=8,
                                     mem=data_ref("x")))
            defined.append(vid)
            vid += 1
        elif choice == 1:
            a = draw(st.sampled_from(defined))
            b = draw(st.sampled_from(defined))
            trace.append(Instruction(op=Op.VADD, dst=vid, srcs=(a, b), vl=8))
            defined.append(vid)
            vid += 1
        else:
            a = draw(st.sampled_from(defined))
            trace.append(Instruction(op=Op.VSE, srcs=(a,), vl=8,
                                     mem=data_ref("x")))
    return trace


@given(trace=ssa_traces(), n_regs=st.integers(min_value=4, max_value=32))
@settings(max_examples=80, deadline=None)
def test_allocation_respects_register_supply(trace, n_regs):
    result = allocate(trace, n_regs=n_regs, mvl=16)
    for inst in result.insts:
        for reg in inst.registers:
            assert 0 <= reg < n_regs


@given(trace=ssa_traces(), n_regs=st.integers(min_value=4, max_value=32))
@settings(max_examples=80, deadline=None)
def test_spill_free_iff_pressure_fits(trace, n_regs):
    result = allocate(trace, n_regs=n_regs, mvl=16)
    if max_pressure(trace) <= n_regs:
        assert result.spill_free
    # (The converse — spills imply pressure > supply — holds for Belady on
    # straight-line code:)
    if not result.spill_free:
        assert max_pressure(trace) > n_regs


@given(trace=ssa_traces(), n_regs=st.integers(min_value=4, max_value=16))
@settings(max_examples=60, deadline=None)
def test_original_instructions_preserved_in_order(trace, n_regs):
    result = allocate(trace, n_regs=n_regs, mvl=16)
    kept = [i.op for i in result.insts if i.tag is Tag.NORMAL]
    assert kept == [i.op for i in trace]


@given(trace=ssa_traces(), n_regs=st.integers(min_value=4, max_value=16))
@settings(max_examples=60, deadline=None)
def test_dataflow_preserved_through_spills(trace, n_regs):
    """Replaying the allocated trace reproduces the virtual dataflow.

    We interpret both traces symbolically: values are the uid of the
    instruction that produced them; spill slots must transport the same
    value the virtual registers carried.
    """
    result = allocate(trace, n_regs=n_regs, mvl=16)

    # Virtual execution: virtual reg -> producing instruction index.
    virt_values = {}
    store_values = []
    for idx, inst in enumerate(trace):
        if inst.dst is not None:
            virt_values[inst.dst] = idx
        if inst.is_store and inst.tag is Tag.NORMAL:
            store_values.append(virt_values[inst.srcs[0]])

    # Physical execution with spill slots.
    regs = {}
    slots = {}
    phys_stores = []
    normal_idx = 0
    for inst in result.insts:
        if inst.tag is Tag.SPILL:
            if inst.is_store:
                slots[inst.mem.buffer] = regs[inst.srcs[0]]
            else:
                regs[inst.dst] = slots[inst.mem.buffer]
            continue
        src_vals = [regs[s] for s in inst.srcs]
        if inst.is_store:
            phys_stores.append(src_vals[0])
        if inst.dst is not None:
            regs[inst.dst] = normal_idx
        normal_idx += 1

    assert phys_stores == store_values
