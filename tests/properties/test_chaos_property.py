"""Property-based chaos: no seeded fault plan may change figure 3's bytes.

The chaos harness's core claim — injected infrastructure faults are
*invisible* in rendered output — must hold for every seed, not just the
hand-picked ones in the unit tests.  Hypothesis drives random seeds
through :func:`repro.faults.seeded_plan` over the figure-3 axpy grid and
asserts the faulted render is byte-identical to a clean reference, that
no cell fails, and that the retry budget bounds the damage (the run
terminates with at most ``retries`` charges per cell).

The hang fault is scaled down to milliseconds (``hang_s=0.05``) so the
property stays fast: the *watchdog* path has dedicated unit tests; here
the hang only needs to perturb scheduling, not trip the deadline.
"""

from hypothesis import given, settings, strategies as st

from repro import faults
from repro.experiments.engine import CellExecutor, ResultCache
from repro.experiments.figure3 import build_panels, figure3_spec

_REFERENCE = {}


def _render_axpy_panel(executor: CellExecutor) -> str:
    return build_panels(["axpy"], executor=executor)["axpy"].render()


def _clean_reference() -> str:
    if "text" not in _REFERENCE:
        _REFERENCE["text"] = _render_axpy_panel(CellExecutor())
    return _REFERENCE["text"]


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=5, deadline=None)
def test_seeded_fault_plans_never_change_figure3_bytes(seed, tmp_path_factory):
    clean = _clean_reference()
    spec = figure3_spec(["axpy"])
    labels = [cell.label() for cell in spec.cells()]
    plan = faults.seeded_plan(seed, labels, hang_s=0.05, slow_s=0.01)

    cache = ResultCache(tmp_path_factory.mktemp("chaos-prop"))
    executor = CellExecutor(cache=cache, deadline_s=5.0, retries=3,
                            backoff_s=0.0)
    with faults.injected(plan):
        faulted = _render_axpy_panel(executor)

    assert faulted == clean  # byte-identical despite the plan
    assert executor.stats.cells_failed == 0
    # Termination within budget: every cell got at most `retries` charges.
    assert executor.stats.retries <= 3 * len(labels)
    assert executor.stats.cache_misses == len(labels)  # one miss per cell

    # The warm replay over the scarred cache also matches: any corrupted
    # entry was quarantined into a re-simulation, not replayed as truth.
    warm = CellExecutor(cache=ResultCache(cache.root))
    assert _render_axpy_panel(warm) == clean
    assert warm.stats.cells_failed == 0
