"""Property-based tests on the core renaming structures.

Random but protocol-respecting operation sequences drive the RAT/RAC/
mapping structures directly, checking the invariants the pipeline's
correctness argument rests on.
"""

from hypothesis import given, settings, strategies as st

from repro.core.rac import RAC_MAX, RegisterAccessCounters
from repro.core.rat import RenameTable
from repro.core.vrf_mapping import VRFMapping
from repro.memory.cache import Cache, CacheConfig


@given(ops=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 7)),
                    max_size=200))
@settings(max_examples=60, deadline=None)
def test_rat_frl_conservation(ops):
    """Every VVR is always exactly one of: RAT-mapped, free, or in flight."""
    rat = RenameTable(8, 16)
    in_flight = []  # (logical, new, old) renames awaiting commit
    for kind, logical in ops:
        if kind <= 1 and rat.can_rename_dst():
            in_flight.append((logical, *rat.rename_destination(logical)))
        elif kind == 2 and in_flight:
            rat.commit(*in_flight.pop(0))
        mapped = rat.live_vvrs()
        olds = {old for _, _, old in in_flight}
        assert len(mapped) == 8
        # Conservation: mapped + free + uncommitted-old = all VVRs.
        assert len(mapped) + rat.free_count + len(olds) == 16
        assert not (mapped & olds)


@given(ops=st.lists(st.integers(0, 5), max_size=300))
@settings(max_examples=60, deadline=None)
def test_rac_counts_stay_in_3_bits(ops):
    rac = RegisterAccessCounters(4)
    shadow = [0] * 4
    for op in ops:
        vvr = op % 4
        if op < 4:
            rac.increment(vvr)
            shadow[vvr] += 1
        elif rac.count(vvr) > 0:
            rac.decrement(vvr)
        for v in range(4):
            assert 0 <= rac.count(v) <= RAC_MAX


@given(ops=st.lists(st.tuples(st.integers(0, 2), st.integers(0, 15)),
                    max_size=200))
@settings(max_examples=60, deadline=None)
def test_mapping_invariants_under_random_transitions(ops):
    m = VRFMapping(16, 6)
    for kind, vvr in ops:
        if kind == 0 and m.free_count > 0 and not m.in_pvrf(vvr):
            m.allocate(vvr)
        elif kind == 1 and m.in_pvrf(vvr):
            m.evict(vvr)
        elif kind == 2:
            m.release(vvr)
        m.invariant_check()
        # A VVR is never simultaneously in both levels.
        assert not (m.in_pvrf(vvr) and m.in_mvrf(vvr))


@given(addrs=st.lists(st.integers(0, 31), min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_cache_inclusion_of_recent_lines(addrs):
    """True LRU: the most recent `associativity` lines of a set still hit."""
    cache = Cache(CacheConfig("t", 4 * 64 * 1, 64, 4))  # 1 set, 4 ways
    for a in addrs:
        cache.access(a * 64)
    recent = list(dict.fromkeys(reversed(addrs)))[:4]
    hits_before = cache.stats.reads - cache.stats.read_misses
    for a in recent:
        assert cache.access(a * 64), f"line {a} should be resident"


@given(addrs=st.lists(st.integers(0, 200), min_size=1, max_size=200),
       write_mask=st.lists(st.booleans(), min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_cache_counter_consistency(addrs, write_mask):
    cache = Cache(CacheConfig("t", 8 * 1024, 64, 4))
    for a, w in zip(addrs, write_mask):
        cache.access(a * 64, write=w)
    s = cache.stats
    assert s.accesses == min(len(addrs), len(write_mask))
    assert s.misses <= s.accesses
    assert cache.occupancy <= 8 * 1024 // 64
    assert s.writebacks <= s.writes
